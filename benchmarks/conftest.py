"""Shared helpers for the experiment benchmarks (E1–E11).

Each benchmark module computes its experiment table once (cached at module
scope), prints it through :func:`emit` — so `pytest benchmarks/
--benchmark-only -s` reproduces every table of DESIGN.md §4 — and times the
core operation with pytest-benchmark.

Benchmarks may additionally call :func:`record_obs` with per-experiment
measured costs (work / depth / wall-clock); at session end the collected
records are written to ``benchmarks/BENCH_obs.json`` so CI and the
observability layer (``docs/observability.md``) can track the numbers
machine-readably across runs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.analysis.tables import render_table

_OBS: dict[str, dict] = {}
_OBS_PATH = Path(__file__).resolve().parent / "BENCH_obs.json"


def emit(title: str, headers, rows) -> None:
    """Print an experiment table (visible with -s; captured otherwise)."""
    print("\n" + render_table(title, headers, rows), file=sys.stderr)


def record_obs(experiment: str, **fields) -> None:
    """Record one experiment's measured costs for ``BENCH_obs.json``.

    ``experiment`` is a slash-path key such as ``"e3/build/n=256"``;
    ``fields`` typically include ``work``, ``depth``, and ``wall_s``.
    Re-recording the same key overwrites (the sweeps are lru-cached, so in
    practice each key is written once per session).
    """
    _OBS[experiment] = {
        k: (float(v) if isinstance(v, float) else v) for k, v in fields.items()
    }


def pytest_sessionfinish(session, exitstatus):
    if not _OBS:
        return
    _OBS_PATH.write_text(
        json.dumps({"experiments": _OBS}, indent=2, sort_keys=True) + "\n"
    )
    print(f"\nwrote {_OBS_PATH}", file=sys.stderr)
