"""Shared helpers for the experiment benchmarks (E1–E11).

Each benchmark module computes its experiment table once (cached at module
scope), prints it through :func:`emit` — so `pytest benchmarks/
--benchmark-only -s` reproduces every table of DESIGN.md §4 — and times the
core operation with pytest-benchmark.
"""

from __future__ import annotations

import sys

from repro.analysis.tables import render_table


def emit(title: str, headers, rows) -> None:
    """Print an experiment table (visible with -s; captured otherwise)."""
    print("\n" + render_table(title, headers, rows), file=sys.stderr)
