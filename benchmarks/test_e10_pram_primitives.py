"""E10 — PRAM substrate costs: scan/sort/pointer-jumping depth is Θ(log n).

The appendices lean on [SV82] pointer jumping and [AKS83] sorting; this
experiment verifies the substrate meters them at the advertised rates,
doubling n and reporting depth deltas (which must be additive-constant, the
signature of log growth).
"""

from __future__ import annotations

import time
from functools import lru_cache

import numpy as np
from conftest import emit, record_obs

from repro.graphs.generators import path_graph
from repro.graphs.components import connected_components
from repro.pram.machine import PRAM

NS = [256, 512, 1024, 2048]


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    for n in NS:
        p_scan, p_sort, p_pj, p_cc = PRAM(), PRAM(), PRAM(), PRAM()
        t0 = time.perf_counter()
        p_scan.prefix_sum(np.ones(n))
        p_sort.sort(np.arange(n)[::-1].copy())
        chain = np.concatenate([[0], np.arange(n - 1)])
        p_pj.pointer_jump(chain)
        connected_components(p_cc, path_graph(n))
        wall = time.perf_counter() - t0
        record_obs(
            f"e10/primitives/n={n}",
            n=n,
            work=p_scan.cost.work + p_sort.cost.work + p_pj.cost.work + p_cc.cost.work,
            depth=p_scan.cost.depth
            + p_sort.cost.depth
            + p_pj.cost.depth
            + p_cc.cost.depth,
            wall_s=wall,
            scan_depth=p_scan.cost.depth,
            sort_depth=p_sort.cost.depth,
            pointer_jump_depth=p_pj.cost.depth,
            cc_depth=p_cc.cost.depth,
        )
        rows.append(
            [n, p_scan.cost.depth, p_sort.cost.depth, p_pj.cost.depth, p_cc.cost.depth]
        )
    return rows


def test_e10_depth_grows_additively_on_doubling():
    rows = run_sweep()
    for col in (1, 2, 3):
        deltas = [b[col] - a[col] for a, b in zip(rows, rows[1:])]
        # log growth: each doubling adds a bounded constant
        assert all(0 <= d <= 6 for d in deltas), (col, deltas)


def test_e10_cc_depth_polylog():
    rows = run_sweep()
    # O(log^2 n): quadruple n → depth grows well below 4x
    assert rows[-1][4] < 2.5 * rows[0][4]


def test_e10_work_linear_for_scan():
    p1, p2 = PRAM(), PRAM()
    p1.prefix_sum(np.ones(1000))
    p2.prefix_sum(np.ones(2000))
    assert p2.cost.work == 2 * p1.cost.work


def test_e10_table(benchmark):
    rows = run_sweep()
    emit(
        "E10: PRAM primitive depth vs n (scan / AKS sort / pointer jump / CC)",
        ["n", "scan depth", "sort depth", "pointer-jump depth", "SV-CC depth"],
        rows,
    )
    benchmark(lambda: PRAM().prefix_sum(np.ones(4096)))
