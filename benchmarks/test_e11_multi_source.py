"""E11 — aMSSD: one hopset, |S| parallel explorations (Thms 3.8/C.3).

The multi-source promise: work scales linearly with |S| while depth stays
flat (the explorations run side by side on disjoint processor slices), and
the expensive hopset build is paid once.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from conftest import emit

from repro.graphs.distances import dijkstra
from repro.graphs.generators import layered_hop_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.multi_source import approximate_mssd

SIZES = [1, 2, 4, 8, 16]


@lru_cache(maxsize=None)
def setup():
    g = layered_hop_graph(16, 4, seed=11001)
    pram = PRAM()
    H, report = build_hopset(g, HopsetParams(epsilon=0.25, beta=8), pram)
    return g, H, report


@lru_cache(maxsize=None)
def run_sweep():
    g, H, report = setup()
    rows = []
    for s in SIZES:
        sources = np.arange(s)
        res = approximate_mssd(g, H, sources)
        rows.append([s, res.work, res.depth, report.work, res.work / s])
    return rows


def test_e11_depth_flat_across_source_counts():
    """Depth must not scale with |S| — work must (the separation claim).

    Early exit makes per-source round counts vary (a near source converges
    sooner), so compare the growth *rates*: 16× more sources may at most
    ~2× the depth (the slowest exploration) but must ~8×+ the work.
    """
    rows = run_sweep()
    first, last = rows[0], rows[-1]
    depth_growth = last[2] / first[2]
    work_growth = last[1] / first[1]
    assert depth_growth <= 2.5
    assert work_growth >= 8.0
    assert work_growth > 4 * depth_growth


def test_e11_work_linear_in_sources():
    rows = run_sweep()
    per_source = [r[4] for r in rows]
    # per-source work is bounded by one full exploration's cost (within the
    # early-exit variance band)
    assert max(per_source) <= 2.5 * min(per_source)


def test_e11_build_cost_amortized():
    rows = run_sweep()
    g, H, report = setup()
    assert rows[-1][1] < report.work  # even 16 queries cost less than one build


def test_e11_answers_correct():
    g, H, _ = setup()
    res = approximate_mssd(g, H, np.array([0, 3, 9]))
    for row, s in enumerate((0, 3, 9)):
        exact = dijkstra(g, s)
        fin = np.isfinite(exact) & (exact > 0)
        assert np.max(res.dist[row][fin] / exact[fin]) <= 1.25 + 1e-9


def test_e11_table(benchmark):
    rows = run_sweep()
    emit(
        "E11: multi-source aMSSD scaling (one hopset, |S| explorations)",
        ["|S|", "query work", "query depth", "build work (once)", "work per source"],
        rows,
    )
    g, H, _ = setup()
    benchmark(lambda: approximate_mssd(g, H, np.arange(4)))
