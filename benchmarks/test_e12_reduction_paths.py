"""E12 — Appendix D: Λ-free path-reporting hopsets + SPT (Thms D.1/D.2).

The composition of E7 (weight reduction) and E8 (path reporting): across a
Λ sweep, the SPT extracted from the reduced path-reporting hopset must stay
a valid spanning tree of G with (1+O(ε)) route quality, while the star and
lifted layers respect their structural bounds.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from conftest import emit

from repro.graphs.distances import dijkstra
from repro.graphs.generators import wide_weight_graph
from repro.hopsets.params import HopsetParams
from repro.hopsets.reduction_paths import (
    build_reduced_path_reporting_hopset,
    spt_hop_budget,
)
from repro.hopsets.verification import verify_memory_paths
from repro.sssp.spt import approximate_spt

LAMBDAS = [1e2, 1e4, 1e7]
N = 32


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    params = HopsetParams(epsilon=0.25, beta=8)
    for lam in LAMBDAS:
        g = wide_weight_graph(N, lam, seed=12000 + int(np.log10(lam)))
        H, rep = build_reduced_path_reporting_hopset(g, params)
        verify_memory_paths(g, H)
        spt = approximate_spt(g, H, 0, hop_budget=spt_hop_budget(8))
        exact = dijkstra(g, 0)
        fin = np.isfinite(exact) & (exact > 0)
        stretch = float(np.max(spt.dist[fin] / exact[fin]))
        tree_ok = all(
            g.has_edge(int(spt.parent[v]), v)
            for v in range(g.n)
            if v != 0 and spt.parent[v] >= 0
        )
        rows.append(
            [
                f"{lam:.0e}",
                len(rep.relevant),
                rep.star_edges,
                rep.lifted_edges,
                sum(spt.replacements.values()),
                stretch,
                tree_ok,
            ]
        )
    return rows


def test_e12_tree_quality_flat_across_lambda():
    for row in run_sweep():
        assert row[5] <= 1 + 6 * 0.25 + 1e-6, row


def test_e12_trees_valid_everywhere():
    for row in run_sweep():
        assert row[6], row


def test_e12_star_bound():
    for row in run_sweep():
        assert row[2] <= N * np.log2(N)


def test_e12_table(benchmark):
    rows = run_sweep()
    emit(
        f"E12: Appendix D — SPT from Λ-free path-reporting hopsets (n={N})",
        [
            "Lambda", "relevant scales", "star edges", "lifted edges",
            "edges peeled", "tree stretch", "tree valid",
        ],
        rows,
    )
    g = wide_weight_graph(N, 1e4, seed=12004)
    benchmark(
        lambda: build_reduced_path_reporting_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    )
