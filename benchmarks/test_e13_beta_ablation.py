"""E13 (ablation) — stretch vs the exploration budget β.

DESIGN.md §1/§6: the construction is distance-safe for any β, and the
theory's galactic eq. (2) β is a worst case.  This ablation sweeps β and
reports the certified stretch and achieved hopbound, reproducing the
qualitative claim: stretch converges to 1+ε rapidly as β grows, at a cost
(work) roughly linear in β.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import emit

from repro.graphs.generators import path_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import certify
from repro.pram.machine import PRAM

BETAS = [1, 2, 4, 8, 12]


@lru_cache(maxsize=None)
def run_sweep():
    g = path_graph(56, w_range=(1.0, 3.0), seed=13001)
    rows = []
    for beta in BETAS:
        pram = PRAM()
        H, report = build_hopset(g, HopsetParams(epsilon=0.25, beta=beta), pram)
        cert = certify(g, H, beta=2 * beta + 1, epsilon=0.25)
        rows.append(
            [beta, H.size(), cert.max_stretch, cert.holds, cert.safe, report.work]
        )
    return rows


def test_e13_always_safe():
    for row in run_sweep():
        assert row[4], row


def test_e13_stretch_monotone_toward_target():
    rows = run_sweep()
    stretches = [r[2] for r in rows]
    assert stretches[-1] <= stretches[0]
    assert rows[-1][3], "largest beta must certify eq. (1)"


def test_e13_work_grows_with_beta():
    rows = run_sweep()
    works = [r[5] for r in rows]
    assert works[-1] > works[0]


def test_e13_table(benchmark):
    rows = run_sweep()
    emit(
        "E13 (ablation): beta sweep on a weighted path (n=56, eps=0.25)",
        ["beta", "|H| pairs", "max stretch@2b+1", "eq(1) holds", "safe", "build work"],
        rows,
    )
    g = path_graph(56, w_range=(1.0, 3.0), seed=13001)
    benchmark(lambda: build_hopset(g, HopsetParams(epsilon=0.25, beta=4)))
