"""E14 (ablation) — the (κ, ρ) tradeoff surface.

Theorem 3.7: κ controls sparsity (|H_k| ≤ n^{1+1/κ}), ρ controls the
processor/work budget (deg thresholds n^ρ) and thereby the phase count
ℓ(κ, ρ).  The ablation sweeps both and reports size, interconnection
degree pressure, phase count, and work — reproducing the qualitative
tradeoffs the theorem encodes.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import emit

from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import certify
from repro.pram.machine import PRAM

GRID = [(2, 0.25), (2, 0.4), (3, 0.3), (4, 0.25), (4, 0.45)]


@lru_cache(maxsize=None)
def run_sweep():
    g = erdos_renyi(72, 0.07, seed=14001, w_range=(1.0, 4.0))
    rows = []
    for kappa, rho in GRID:
        params = HopsetParams(epsilon=0.25, kappa=kappa, rho=rho, beta=8)
        pram = PRAM()
        H, report = build_hopset(g, params, pram)
        cert = certify(g, H, beta=17, epsilon=0.25)
        max_phase = max(
            (len(stats) for stats in report.per_scale_stats.values()), default=0
        )
        rows.append(
            [
                kappa,
                rho,
                params.ell,
                max_phase,
                H.size(),
                round(g.n ** (1 + 1 / kappa)),
                cert.max_stretch,
                report.work,
            ]
        )
    return rows


def test_e14_per_scale_size_bound_all_settings():
    g = erdos_renyi(72, 0.07, seed=14001, w_range=(1.0, 4.0))
    for kappa, rho in GRID:
        params = HopsetParams(epsilon=0.25, kappa=kappa, rho=rho, beta=8)
        _, report = build_hopset(g, params)
        for count in report.per_scale_edges.values():
            assert count <= g.n ** (1 + 1 / kappa)


def test_e14_stretch_certified_everywhere():
    for row in run_sweep():
        assert row[6] <= 1.25 + 1e-9, row


def test_e14_phase_count_matches_formula():
    for row in run_sweep():
        assert row[3] <= row[2] + 1  # executed phases ≤ ℓ + 1


def test_e14_table(benchmark):
    rows = run_sweep()
    emit(
        "E14 (ablation): (kappa, rho) sweep (er graph n=72, eps=0.25, beta=8)",
        ["kappa", "rho", "ell", "phases run", "|H| pairs", "n^{1+1/k}", "stretch", "work"],
        rows,
    )
    g = erdos_renyi(72, 0.07, seed=14001, w_range=(1.0, 4.0))
    benchmark(lambda: build_hopset(g, HopsetParams(kappa=3, rho=0.3, beta=8)))
