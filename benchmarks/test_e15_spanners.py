"""E15 — near-additive spanners from the derandomized machinery (§1.2/§1.4).

The paper's framework, re-targeted at the [EM19] application: across graph
families and ε, the spanner must be a subgraph with |S| near n^{1+1/κ} and
d_S ≤ (1+ε)·d_G + β for a small measured β, deterministically.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import emit

from repro.graphs.generators import erdos_renyi, hypercube_graph, preferential_attachment
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.spanners import build_spanner, certify_spanner

CASES = [
    ("er-dense", lambda: erdos_renyi(64, 0.4, seed=15001), 0.5),
    ("er-dense", lambda: erdos_renyi(64, 0.4, seed=15001), 0.25),
    ("hypercube", lambda: hypercube_graph(6), 0.5),
    ("powerlaw", lambda: preferential_attachment(64, 4, seed=15002), 0.5),
]


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    for name, make, eps in CASES:
        g = make()
        params = HopsetParams(epsilon=eps, kappa=2, rho=0.4)
        pram = PRAM()
        s, rep = build_spanner(g, params, pram)
        cert = certify_spanner(g, s, epsilon=eps, kappa=2)
        rows.append(
            [
                name,
                eps,
                g.num_edges,
                s.num_edges,
                round(cert.size_bound),
                cert.multiplicative,
                cert.additive_at_eps,
                rep.work,
            ]
        )
    return rows


def test_e15_stretch_shape():
    for row in run_sweep():
        assert row[6] <= 10, row  # small additive error at the chosen eps


def test_e15_sparsification_on_dense():
    rows = [r for r in run_sweep() if r[0] == "er-dense"]
    for row in rows:
        assert row[3] < row[2], row  # strictly sparser than the input


def test_e15_smaller_eps_denser_spanner():
    dense = {r[1]: r[3] for r in run_sweep() if r[0] == "er-dense"}
    assert dense[0.25] >= dense[0.5]


def test_e15_table(benchmark):
    rows = run_sweep()
    emit(
        "E15: near-additive spanners (derandomized [EM19] machinery)",
        ["graph", "eps", "|E|", "|S|", "n^{1+1/k}", "mult stretch", "additive beta", "work"],
        rows,
    )
    g = erdos_renyi(64, 0.4, seed=15001)
    benchmark(lambda: build_spanner(g, HopsetParams(epsilon=0.5, kappa=2, rho=0.4)))
