"""E16 — hopset SSSP vs Δ-stepping, the practical parallel baseline.

Δ-stepping computes exact distances but its phase count (the depth driver)
scales with the weighted depth of the graph divided by Δ; on long-chain
workloads no Δ avoids Θ(n) sequential phases.  The hopset's β-round
exploration breaks exactly that dependence, at the price of (1+ε) accuracy
and the one-time build — the tradeoff this table quantifies.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from conftest import emit

from repro.baselines.delta_stepping import delta_stepping
from repro.graphs.distances import dijkstra
from repro.graphs.generators import erdos_renyi, layered_hop_graph, path_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.sssp import approximate_sssp_with_hopset

CASES = [
    ("path", lambda: path_graph(96, w_range=(1.0, 2.0), seed=16001)),
    ("layered", lambda: layered_hop_graph(24, 4, seed=16002)),
    ("er", lambda: erdos_renyi(96, 0.06, seed=16003, w_range=(1.0, 4.0))),
]


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    for name, make in CASES:
        g = make()
        p_ds = PRAM()
        ds = delta_stepping(p_ds, g, 0)
        p_h = PRAM()
        H, report = build_hopset(g, HopsetParams(epsilon=0.25, beta=8), p_h)
        q = approximate_sssp_with_hopset(g, H, 0, p_h)
        exact = dijkstra(g, 0)
        fin = np.isfinite(exact) & (exact > 0)
        stretch = float(np.max(q.dist[fin] / exact[fin]))
        rows.append(
            [
                name,
                g.n,
                ds.phases,
                p_ds.cost.depth,
                q.rounds_used,
                q.query_cost.depth,
                stretch,
                report.work,
            ]
        )
    return rows


def test_e16_query_depth_beats_delta_stepping_on_deep_graphs():
    rows = {r[0]: r for r in run_sweep()}
    for name in ("path", "layered"):
        ds_depth, hop_depth = rows[name][3], rows[name][5]
        assert hop_depth < ds_depth, rows[name]


def test_e16_delta_stepping_phase_count_tracks_chain_length():
    rows = {r[0]: r for r in run_sweep()}
    assert rows["path"][2] > 4 * rows["er"][2]


def test_e16_hopset_accuracy_still_certified():
    for row in run_sweep():
        assert row[6] <= 1.25 + 1e-9, row


def test_e16_table(benchmark):
    rows = run_sweep()
    emit(
        "E16: hopset query vs Delta-stepping (exact) — depth comparison",
        [
            "graph", "n", "DS phases", "DS depth", "hopset rounds",
            "hopset query depth", "hopset stretch", "hopset build work",
        ],
        rows,
    )
    g = path_graph(96, w_range=(1.0, 2.0), seed=16001)
    benchmark(lambda: delta_stepping(PRAM(), g, 0))
