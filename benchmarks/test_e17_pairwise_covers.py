"""E17 — pairwise covers vs ruling sets: the two derandomization routes.

§1.2: Cohen's hopsets rest on pairwise covers, whose deterministic NC
construction is still open; this paper replaces them with ruling sets.
The table compares the two objects on the same graphs: the (sequential,
deterministic) cover-based hopset reaches every pair in 2 hops but pays
O(1/ρ)-flavored stretch and heavy star counts, while the ruling-set hopset
holds (1+ε) at β hops with a fraction of the edges.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import emit

from repro.covers import build_cover_hopset, build_pairwise_cover, verify_cover
from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import certify

CASES = [
    ("path", lambda: path_graph(40, w_range=(1.0, 2.0), seed=17001)),
    ("er", lambda: erdos_renyi(40, 0.12, seed=17002, w_range=(1.0, 3.0))),
]


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    for name, make in CASES:
        g = make()
        cover_h, covers = build_cover_hopset(g, rho=0.5)
        ours, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
        c_cover2 = certify(g, cover_h, beta=2, epsilon=1e6)
        c_cover = certify(g, cover_h, beta=17, epsilon=0.25)
        c_ours = certify(g, ours, beta=17, epsilon=0.25)
        max_overlap = max((c.max_overlap() for c in covers.values()), default=0)
        rows.append(
            [
                name,
                cover_h.size(),
                ours.size(),
                c_cover2.max_stretch,
                c_cover.max_stretch,
                c_ours.max_stretch,
                max_overlap,
            ]
        )
    return rows


def test_e17_cover_reaches_all_pairs_in_two_hops():
    for name, make in CASES:
        g = make()
        cover_h, _ = build_cover_hopset(g, rho=0.5)
        cert = certify(g, cover_h, beta=2, epsilon=1e6)
        assert cert.pairs_within_eps == cert.pairs_checked


def test_e17_cover_properties_verified():
    g = erdos_renyi(30, 0.15, seed=17003)
    cover = build_pairwise_cover(g, W=2.0, rho=0.5)
    verify_cover(g, cover)


def test_e17_ruling_set_hopset_wins_on_stretch():
    for row in run_sweep():
        assert row[5] <= row[4] + 1e-9, row


def test_e17_table(benchmark):
    rows = run_sweep()
    emit(
        "E17: cover-based ([Coh94]-route) vs ruling-set hopsets",
        [
            "graph", "cover |H|", "ruling |H|", "cover stretch@2",
            "cover stretch@17", "ruling stretch@17", "max cover overlap",
        ],
        rows,
    )
    g = erdos_renyi(40, 0.12, seed=17002, w_range=(1.0, 3.0))
    benchmark(lambda: build_cover_hopset(g, rho=0.5))
