"""E18 — three hopset constructions, one table.

The paper's deterministic construction vs the two randomized families its
related work discusses: the sampling-supercluster route ([Coh94]/[EN19],
what it derandomizes) and the Thorup–Zwick hierarchy route
([EN17b]/[HP19]).  Compared on size, certified stretch at the common
budget, achieved hopbound, and determinism.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import emit

from repro.baselines.randomized_hopset import build_randomized_hopset
from repro.baselines.thorup_zwick import build_tz_hopset
from repro.graphs.generators import layered_hop_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import achieved_hopbound, certify


@lru_cache(maxsize=None)
def run_sweep():
    g = layered_hop_graph(14, 4, seed=18001)
    params = HopsetParams(epsilon=0.25, beta=8)
    rows = []

    det, _ = build_hopset(g, params)
    rows.append(_row("deterministic (paper)", g, det, deterministic=True))
    rows.append(_row("sampling [Coh94/EN19]", g, build_randomized_hopset(g, params, seed=0)))
    rows.append(_row("sampling seed=1", g, build_randomized_hopset(g, params, seed=1)))
    rows.append(_row("thorup-zwick k=2", g, build_tz_hopset(g, k=2, seed=0)))
    rows.append(_row("thorup-zwick k=3", g, build_tz_hopset(g, k=3, seed=0)))
    return rows


def _row(name, g, H, deterministic=False):
    cert = certify(g, H, beta=17, epsilon=0.25)
    hb = achieved_hopbound(g, H, 0.25, max_hops=40)
    return [name, H.size(), cert.max_stretch, hb, deterministic]


def test_e18_all_constructions_safe():
    g = layered_hop_graph(14, 4, seed=18001)
    params = HopsetParams(epsilon=0.25, beta=8)
    for H in (
        build_hopset(g, params)[0],
        build_randomized_hopset(g, params, seed=0),
        build_tz_hopset(g, k=2, seed=0),
    ):
        assert certify(g, H, beta=g.n - 1, epsilon=1e6).safe


def test_e18_deterministic_competitive_hopbound():
    rows = run_sweep()
    det = rows[0]
    others = rows[1:]
    assert det[3] <= min(r[3] for r in others) + 6  # within a constant band


def test_e18_tz_trades_size_for_hops():
    rows = {r[0]: r for r in run_sweep()}
    assert rows["thorup-zwick k=2"][1] >= rows["thorup-zwick k=3"][1]


def test_e18_table(benchmark):
    rows = run_sweep()
    emit(
        "E18: hopset constructions compared (layered graph n=56, budget 17)",
        ["construction", "|H| pairs", "stretch@17", "achieved hopbound", "deterministic"],
        rows,
    )
    g = layered_hop_graph(14, 4, seed=18001)
    benchmark(lambda: build_tz_hopset(g, k=2, seed=0))
