"""E19 — simulator throughput: wall-clock scaling of the whole pipeline.

Everything else in the harness compares *metered* PRAM costs; this table
answers the engineering question of how far the vectorized simulator
itself scales on one CPU — build + query wall-clock from n = 128 to 1024
on sparse random graphs (the guides' "profile, then optimize" loop ended
with the x=1 dedup fast path; see cluster_graph._dedup_and_prune).
"""

from __future__ import annotations

import time
from functools import lru_cache

from conftest import emit

from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.sssp.sssp import approximate_sssp_with_hopset

NS = [128, 256, 512, 1024]


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    params = HopsetParams(epsilon=0.25, beta=8)
    for n in NS:
        g = erdos_renyi(n, 4.0 / n, seed=19000 + n, w_range=(1.0, 4.0))
        t0 = time.perf_counter()
        H, report = build_hopset(g, params)
        t_build = time.perf_counter() - t0
        t0 = time.perf_counter()
        approximate_sssp_with_hopset(g, H, 0)
        t_query = time.perf_counter() - t0
        rows.append(
            [n, g.num_edges, round(t_build, 3), round(t_query * 1000, 2),
             H.size(), report.work]
        )
    return rows


def test_e19_builds_complete_at_scale():
    rows = run_sweep()
    assert rows[-1][0] == 1024
    assert all(r[4] > 0 for r in rows)


def test_e19_wallclock_subquadratic():
    rows = run_sweep()
    t_small, t_big = rows[0][2], rows[-1][2]
    # 8× n must cost well below 64× wall-clock (quadratic would be 64×)
    assert t_big <= 40 * max(t_small, 1e-3)


def test_e19_queries_are_milliseconds():
    for row in run_sweep():
        assert row[3] < 1000.0  # < 1 s even at n=1024


def test_e19_table(benchmark):
    rows = run_sweep()
    emit(
        "E19: simulator wall-clock scaling (sparse ER, eps=0.25, beta=8)",
        ["n", "m", "build s", "query ms", "|H| pairs", "metered work"],
        rows,
    )
    g = erdos_renyi(256, 4.0 / 256, seed=19256, w_range=(1.0, 4.0))
    benchmark(lambda: build_hopset(g, HopsetParams(epsilon=0.25, beta=8)))
