"""E1 — hopset size vs the eq. (10) bound ⌈log Λ⌉·n^{1+1/κ} (Thm 3.7).

Sweeps n and κ on two workload families and reports measured |H| (distinct
pairs) against the paper's bound; the ratio must stay ≤ 1 and should shrink
with κ on the per-scale bound n^{1+1/κ}.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import emit

from repro.graphs.generators import erdos_renyi, grid_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams

SWEEP = [
    ("er", 48, 2),
    ("er", 96, 2),
    ("er", 144, 2),
    ("er", 96, 3),
    ("er", 96, 4),
    ("grid", 100, 2),
    ("grid", 144, 2),
]


def make_graph(family: str, n: int):
    if family == "er":
        return erdos_renyi(n, 4.0 / n, seed=1000 + n, w_range=(1.0, 4.0))
    side = int(n**0.5)
    return grid_graph(side, side, seed=1000 + n, w_range=(1.0, 2.0))


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    for family, n, kappa in SWEEP:
        g = make_graph(family, n)
        params = HopsetParams(epsilon=0.25, kappa=kappa, rho=0.4, beta=8)
        H, report = build_hopset(g, params)
        num_scales = len(report.scales)
        bound = num_scales * g.n ** (1 + 1 / kappa)
        size = H.size()
        rows.append(
            [family, g.n, g.num_edges, kappa, num_scales, size, round(bound), size / bound]
        )
    return rows


def test_e1_size_within_bound():
    for row in run_sweep():
        size, bound = row[5], row[6]
        assert size <= bound, row


def test_e1_table(benchmark):
    rows = run_sweep()
    emit(
        "E1: hopset size vs eq. (10) bound",
        ["family", "n", "m", "kappa", "scales", "|H| pairs", "bound", "ratio"],
        rows,
    )
    g = make_graph("er", 48)
    params = HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8)
    benchmark(lambda: build_hopset(g, params))
