"""E20 — decremental SSSP via path-reporting hopsets (§1.4 future work).

An update stream of weight increases on one graph; per batch: how many
hopset records the targeted invalidation kills (locality), whether queries
stay safe, and when rebuilds fire.  The point: the memory property turns
"which hopset edges are stale?" from a research question into a lookup.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from conftest import emit

from repro.graphs.distances import dijkstra
from repro.graphs.generators import erdos_renyi
from repro.hopsets.params import HopsetParams
from repro.sssp.dynamic import DecrementalSSSP

BATCHES = 5
UPDATES_PER_BATCH = 4


@lru_cache(maxsize=None)
def run_sweep():
    g = erdos_renyi(48, 0.1, seed=20001, w_range=(1.0, 3.0))
    oracle = DecrementalSSSP(g, HopsetParams(epsilon=0.25, beta=8), rebuild_below=0.4)
    total = len(oracle.hopset.edges)
    rng = np.random.default_rng(20002)
    rows = [[0, total, oracle.live_records(), 1.0, oracle.rebuilds, True]]
    for batch in range(1, BATCHES + 1):
        for _ in range(UPDATES_PER_BATCH):
            i = int(rng.integers(0, oracle.graph.num_edges))
            u = int(oracle.graph.edge_u[i])
            v = int(oracle.graph.edge_v[i])
            w = float(oracle.graph.edge_weight(u, v))
            oracle.increase_weight(u, v, w * 1.5)
        exact = dijkstra(oracle.graph, 0)
        got = oracle.distances(0, hop_budget=17)
        fin = np.isfinite(exact)
        safe = bool(np.all(got[fin] >= exact[fin] - 1e-9))
        rows.append(
            [
                batch * UPDATES_PER_BATCH,
                len(oracle.hopset.edges),
                oracle.live_records(),
                round(oracle.live_fraction, 3),
                oracle.rebuilds,
                safe,
            ]
        )
    return rows


def test_e20_queries_always_safe():
    for row in run_sweep():
        assert row[5], row


def test_e20_invalidation_is_partial_not_total():
    rows = run_sweep()
    mid = rows[1]
    assert 0 < mid[2] <= mid[1]


def test_e20_live_fraction_never_below_rebuild_floor():
    for row in run_sweep():
        assert row[3] >= 0.4 - 1e-9


def test_e20_table(benchmark):
    rows = run_sweep()
    emit(
        "E20: decremental oracle under an update stream (n=48, rebuild<0.4)",
        ["updates", "records", "live", "live fraction", "rebuilds", "safe"],
        rows,
    )
    g = erdos_renyi(48, 0.1, seed=20001, w_range=(1.0, 3.0))
    benchmark(lambda: DecrementalSSSP(g, HopsetParams(epsilon=0.25, beta=8)))
