"""E21 — frontier-driven vs dense relaxation (sparse-frontier engine).

Dense Bellman–Ford charges O(|E|·rounds) regardless of how many vertices
still improve; the sparse engine (``repro.pram.frontier``) gathers only
the changed vertices' out-arcs.  This experiment runs all three engines
on the E-family workload graphs plus a long-path worst case (the graph
that maximizes rounds and minimizes per-round frontiers — dense's worst
regime), asserts bit-exact agreement, and records charged work / depth /
wall-clock per engine to ``benchmarks/BENCH_frontier.json``.
"""

from __future__ import annotations

import json
import time
from functools import lru_cache
from pathlib import Path

import numpy as np
from conftest import emit, record_obs

from repro.graphs.generators import (
    erdos_renyi,
    grid_graph,
    layered_hop_graph,
    path_graph,
    preferential_attachment,
    random_geometric,
    wide_weight_graph,
)
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

OUT_PATH = Path(__file__).resolve().parent / "BENCH_frontier.json"

#: the E-family workloads at experiment size, plus the long-path worst case
GRAPHS = {
    "er": lambda: erdos_renyi(128, 0.08, seed=2101, w_range=(1.0, 4.0)),
    "grid": lambda: grid_graph(12, 12, seed=2102, w_range=(1.0, 2.0)),
    "layered": lambda: layered_hop_graph(32, 4, seed=2103),
    "geometric": lambda: random_geometric(128, 0.18, seed=2104),
    "powerlaw": lambda: preferential_attachment(128, 2, seed=2105),
    "wide": lambda: wide_weight_graph(128, 1e4, seed=2106),
    "long-path": lambda: path_graph(512, seed=2107, w_range=(1.0, 3.0)),
}

ENGINES = ("dense", "sparse", "auto")


def _measure(g, engine):
    pram = PRAM()
    t0 = time.perf_counter()
    res = bellman_ford(pram, g, 0, hops=g.n - 1, engine=engine)
    wall = time.perf_counter() - t0
    return res, pram.cost.work, pram.cost.depth, wall


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    records = {}
    for name, make in GRAPHS.items():
        g = make()
        runs = {e: _measure(g, e) for e in ENGINES}
        dense = runs["dense"][0]
        bit_exact = all(
            np.array_equal(dense.dist, runs[e][0].dist)
            and np.array_equal(dense.parent, runs[e][0].parent)
            and dense.rounds_used == runs[e][0].rounds_used
            for e in ENGINES
        )
        ratio = runs["dense"][1] / max(runs["sparse"][1], 1)
        rows.append(
            [
                name,
                g.n,
                g.num_edges,
                runs["dense"][1],
                runs["sparse"][1],
                runs["auto"][1],
                f"{ratio:.2f}x",
                runs["dense"][2],
                runs["sparse"][2],
                dense.rounds_used,
                bit_exact,
            ]
        )
        records[name] = {
            "n": g.n,
            "m": g.num_edges,
            "rounds": dense.rounds_used,
            "bit_exact": bit_exact,
            "work_ratio_dense_over_sparse": round(ratio, 3),
            **{
                e: {
                    "work": runs[e][1],
                    "depth": runs[e][2],
                    "wall_s": round(runs[e][3], 6),
                }
                for e in ENGINES
            },
        }
        record_obs(
            f"e21/{name}",
            work_dense=runs["dense"][1],
            work_sparse=runs["sparse"][1],
            work_auto=runs["auto"][1],
            depth_dense=runs["dense"][2],
            depth_sparse=runs["sparse"][2],
            wall_s_sparse=runs["sparse"][3],
        )
    OUT_PATH.write_text(
        json.dumps({"experiments": records}, indent=2, sort_keys=True) + "\n"
    )
    return rows


def test_e21_engines_bit_exact_everywhere():
    assert all(row[-1] for row in run_sweep())


def test_e21_sparse_at_least_2x_on_an_e_family_graph():
    rows = [r for r in run_sweep() if r[0] != "long-path"]
    assert any(float(r[6].rstrip("x")) >= 2.0 for r in rows)


def test_e21_sparse_never_charges_more_work():
    for row in run_sweep():
        assert row[4] <= row[3], row[0]


def test_e21_long_path_worst_case_dominates():
    row = [r for r in run_sweep() if r[0] == "long-path"][0]
    assert float(row[6].rstrip("x")) >= 4.0


def test_e21_table(benchmark):
    rows = run_sweep()
    emit(
        "E21: dense vs sparse-frontier relaxation (full-budget SSSP, early exit)",
        [
            "graph", "n", "m", "work dense", "work sparse", "work auto",
            "dense/sparse", "depth dense", "depth sparse", "rounds", "bit-exact",
        ],
        rows,
    )
    g = GRAPHS["layered"]()
    benchmark(lambda: bellman_ford(PRAM(), g, 0, hops=g.n - 1, engine="sparse"))
