"""E22 — wall-clock fast path: fused kernels + buffer pooling vs unfused.

The fused relaxation kernel (``prelax_arcs``) and the pooled per-round
temporaries change *nothing* the model can see — identical ``dist`` /
``parent`` / round counts and bit-identical charged work/depth — so the
only interesting measurement left is host wall-clock.  This experiment
measures:

* **per-primitive µs/op** — one relaxation round, fused vs the unfused
  primitive sequence (gather+add, combining min, changed mask), per arc;
* **end-to-end SSSP** — full-budget Bellman–Ford on the E-family workload
  graphs, fused vs unfused (best-of-N timing), asserting bit-exactness
  and recording the speedup;
* **end-to-end hopset build** — the Theorem 3.7 pipeline under the
  ``REPRO_FUSED`` toggle (the propagation inner loop rides the fused
  gather+add).

Results go to ``benchmarks/BENCH_wallclock.json``; the acceptance test
pins a ≥2× end-to-end SSSP speedup on at least one E-family graph.
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache
from pathlib import Path

import numpy as np
from conftest import emit, record_obs

from repro.graphs.generators import (
    erdos_renyi,
    grid_graph,
    layered_hop_graph,
    path_graph,
)
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram import primitives as P
from repro.pram.cost import CostModel
from repro.pram.machine import PRAM
from repro.pram.workspace import Workspace
from repro.sssp.bellman_ford import bellman_ford

OUT_PATH = Path(__file__).resolve().parent / "BENCH_wallclock.json"

#: E-family workloads (E4/E21 sizes) plus the long-path round-count worst case
GRAPHS = {
    "er": lambda: erdos_renyi(128, 0.08, seed=2201, w_range=(1.0, 4.0)),
    "grid": lambda: grid_graph(12, 12, seed=2202, w_range=(1.0, 2.0)),
    "layered": lambda: layered_hop_graph(48, 3, seed=4001),  # the E4 graph
    "long-path": lambda: path_graph(512, seed=2203, w_range=(1.0, 3.0)),
}

_REPEATS = 3


def _best_of(fn, repeats=_REPEATS):
    """(last result, best wall seconds) over ``repeats`` runs."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


# -- per-primitive microbenchmark --------------------------------------------


def _primitive_rates(rounds=20):
    """µs per arc for one relaxation round, fused vs unfused.

    Measured at ~7k arcs, where the unfused round's per-call lexsort
    (O(m log m)) separates clearly from the fused linear pass; the
    end-to-end sweep below covers the small-graph regime.
    """
    g = erdos_renyi(256, 0.1, seed=2204, w_range=(1.0, 4.0))
    tails, heads, w = g.arcs()
    m = int(tails.size)
    src = np.int64(0)

    def unfused():
        dist = np.full(g.n, np.inf)
        parent = np.full(g.n, -1, dtype=np.int64)
        dist[src] = 0.0
        c = CostModel()
        for _ in range(rounds):
            prev = dist.copy()
            cand = dist[tails] + w
            P.scatter_min_arg(c, dist, parent, heads, cand, tails, label="relax")
            ch = P.elementwise(c, np.not_equal, prev, dist, label="converged")
            P.pselect(c, ch, label="frontier")
        return dist

    ws = Workspace(poison=False)
    plan = P.build_relax_plan(tails, heads, w, n_cells=g.n)

    def fused():
        dist = np.full(g.n, np.inf)
        parent = np.full(g.n, -1, dtype=np.int64)
        dist[src] = 0.0
        c = CostModel()
        for _ in range(rounds):
            P.prelax_arcs(
                c, dist, parent, tails, heads, w,
                plan=plan, workspace=ws, changed="frontier",
            )
        return dist

    d_u, t_u = _best_of(unfused)
    d_f, t_f = _best_of(fused)
    assert np.array_equal(d_u, d_f)
    per_arc = 1e6 / (rounds * m)
    return {
        "arcs": m,
        "rounds": rounds,
        "unfused_us_per_arc": round(t_u * per_arc, 4),
        "fused_us_per_arc": round(t_f * per_arc, 4),
        "speedup": round(t_u / max(t_f, 1e-12), 2),
    }


# -- end-to-end sweeps --------------------------------------------------------


def _measure_sssp(g, fused):
    def run():
        pram = PRAM(CostModel(), workspace=Workspace(poison=False))
        res = bellman_ford(
            pram, g, 0, hops=g.n - 1, early_exit=False, engine="dense", fused=fused
        )
        return res, pram.cost.work, pram.cost.depth

    (res, work, depth), wall = _best_of(run)
    return res, work, depth, wall


def _measure_build(g, fused):
    params = HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8)

    def run():
        os.environ["REPRO_FUSED"] = "1" if fused else "0"
        try:
            pram = PRAM()
            hopset, _ = build_hopset(g, params, pram)
            return hopset, pram.cost.work, pram.cost.depth
        finally:
            os.environ.pop("REPRO_FUSED", None)

    (hopset, work, depth), wall = _best_of(run)
    return hopset, work, depth, wall


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    records = {"primitive": _primitive_rates()}
    for name, make in GRAPHS.items():
        g = make()
        res_u, work_u, depth_u, wall_u = _measure_sssp(g, fused=False)
        res_f, work_f, depth_f, wall_f = _measure_sssp(g, fused=True)
        bit_exact = (
            np.array_equal(res_u.dist, res_f.dist)
            and np.array_equal(res_u.parent, res_f.parent)
            and res_u.rounds_used == res_f.rounds_used
        )
        cost_equal = (work_u, depth_u) == (work_f, depth_f)
        speedup = wall_u / max(wall_f, 1e-12)

        hs_u, bwork_u, bdepth_u, bwall_u = _measure_build(g, fused=False)
        hs_f, bwork_f, bdepth_f, bwall_f = _measure_build(g, fused=True)
        build_equal = (
            hs_u.num_records == hs_f.num_records
            and (bwork_u, bdepth_u) == (bwork_f, bdepth_f)
        )
        build_speedup = bwall_u / max(bwall_f, 1e-12)

        rows.append(
            [
                name, g.n, g.num_edges,
                f"{wall_u * 1e3:.1f}", f"{wall_f * 1e3:.1f}", f"{speedup:.2f}x",
                f"{bwall_u * 1e3:.1f}", f"{bwall_f * 1e3:.1f}",
                f"{build_speedup:.2f}x",
                bit_exact and cost_equal and build_equal,
            ]
        )
        records[name] = {
            "n": g.n,
            "m": g.num_edges,
            "bit_exact": bool(bit_exact),
            "charged_cost_equal": bool(cost_equal),
            "build_cost_equal": bool(build_equal),
            "sssp": {
                "unfused_wall_s": round(wall_u, 6),
                "fused_wall_s": round(wall_f, 6),
                "speedup": round(speedup, 3),
                "work": work_f,
                "depth": depth_f,
            },
            "hopset_build": {
                "unfused_wall_s": round(bwall_u, 6),
                "fused_wall_s": round(bwall_f, 6),
                "speedup": round(build_speedup, 3),
                "work": bwork_f,
                "depth": bdepth_f,
            },
        }
        record_obs(
            f"e22/{name}",
            sssp_speedup=round(speedup, 3),
            build_speedup=round(build_speedup, 3),
            wall_s_fused=wall_f,
            wall_s_unfused=wall_u,
        )
    OUT_PATH.write_text(
        json.dumps({"experiments": records}, indent=2, sort_keys=True) + "\n"
    )
    return rows, records


def test_e22_bit_exact_and_cost_identical_everywhere():
    rows, _ = run_sweep()
    assert all(row[-1] for row in rows)


def test_e22_fused_at_least_2x_on_an_e_family_graph():
    _, records = run_sweep()
    speedups = [
        rec["sssp"]["speedup"]
        for name, rec in records.items()
        if name != "primitive"
    ]
    assert any(s >= 2.0 for s in speedups), speedups


def test_e22_primitive_round_is_faster_fused():
    _, records = run_sweep()
    assert records["primitive"]["speedup"] >= 1.5, records["primitive"]


def test_e22_json_written_and_parses():
    run_sweep()
    data = json.loads(OUT_PATH.read_text())
    assert "experiments" in data and "primitive" in data["experiments"]


def test_e22_table(benchmark):
    rows, _ = run_sweep()
    emit(
        "E22: fused fast path wall-clock (full-budget dense SSSP + hopset build)",
        [
            "graph", "n", "m",
            "sssp unfused ms", "sssp fused ms", "sssp speedup",
            "build unfused ms", "build fused ms", "build speedup",
            "bit-exact+cost-equal",
        ],
        rows,
    )
    g = GRAPHS["layered"]()
    ws = Workspace(poison=False)
    benchmark(
        lambda: bellman_ford(
            PRAM(CostModel(), workspace=ws), g, 0, hops=g.n - 1, fused=True
        )
    )
