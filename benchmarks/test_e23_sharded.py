"""E23 — sharded execution backend: wall-clock scaling vs Brent's bound.

The sharded backend (docs/backends.md) distributes the dense relaxation
round's segmented minimum over ``W`` shared-memory worker processes with
a deterministic tree min-combine — bit-exact outputs, bit-identical
charged costs, only wall-clock changes.  This experiment measures, on a
≥10⁵-arc workload:

* **end-to-end dense SSSP** wall-clock, serial vs sharded for
  W ∈ {1, 2, 4}, asserting bit-exactness and charged-cost identity;
* **per-round kernel** wall-clock (the isolated ``relax_segmin``), which
  separates IPC + combine overhead from the Bellman–Ford scaffolding;
* **measured vs Brent-predicted scaling** — the charged (work, depth)
  give the model's ``T_p ≤ W/p + D`` curve; the JSON records predicted
  and measured speedups side by side so the gap (IPC, combine, memory
  bandwidth) is visible.

The acceptance criterion is a ≥1.5× W=4 speedup **or a documented host
cap**: on hosts with fewer than 4 cores (CI runners here expose 1) the
workers time-slice one core, so the sharded path can only add IPC
overhead; ``host.cap_note`` in ``benchmarks/BENCH_sharded.json`` records
exactly that, and the wall numbers quantify the overhead instead.
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache
from pathlib import Path

import numpy as np
from conftest import emit, record_obs

from repro.graphs.generators import erdos_renyi
from repro.pram import primitives as P
from repro.pram.backends import SerialBackend, ShardedBackend
from repro.pram.cost import CostModel
from repro.pram.machine import PRAM
from repro.pram.workspace import Workspace
from repro.sssp.bellman_ford import bellman_ford

OUT_PATH = Path(__file__).resolve().parent / "BENCH_sharded.json"

_WIDTHS = (1, 2, 4)
_HOPS = 10
_KERNEL_ROUNDS = 12
_REPEATS = 2


@lru_cache(maxsize=None)
def _graph():
    # ~115k directed arcs — comfortably above the 10⁵-arc acceptance floor
    return erdos_renyi(1600, 0.045, seed=2301, w_range=(1.0, 4.0))


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _measure_sssp(g, backend):
    def run():
        pram = PRAM(CostModel(), workspace=Workspace(poison=False), backend=backend)
        res = bellman_ford(
            pram, g, 0, hops=_HOPS, early_exit=False, engine="dense"
        )
        return res, pram.cost.work, pram.cost.depth
    (res, work, depth), wall = _best_of(run)
    return res, work, depth, wall


def _measure_kernel(g, backend):
    """Best-of wall for `_KERNEL_ROUNDS` isolated relax_segmin rounds."""
    tails, heads, w = g.arcs()
    plan = P.build_relax_plan(tails, heads, w, n_cells=g.n)
    rng = np.random.default_rng(2302)
    dist = rng.uniform(0.0, 50.0, size=g.n)
    ws = Workspace(poison=False)

    def run():
        out = None
        for _ in range(_KERNEL_ROUNDS):
            out = backend.relax_segmin(plan, dist, ws.take)
        return out
    out, wall = _best_of(run)
    return out, wall, plan


@lru_cache(maxsize=None)
def run_sweep():
    g = _graph()
    arcs = int(g.indices.size)
    cpu = os.cpu_count() or 1

    serial = SerialBackend()
    ref, work, depth, wall_serial = _measure_sssp(g, serial)
    (ref_mn, ref_py), kwall_serial, _ = _measure_kernel(g, serial)

    # Brent: the model's T_p <= W/p + D in charged units, normalized to a
    # predicted speedup curve the measured walls can be laid against.
    cost = CostModel()
    cost.charge(work=work, depth=depth, label="e23")
    predicted = {
        w: round(cost.time_on(1) / cost.time_on(w), 3) for w in _WIDTHS
    }

    rows = []
    records = {
        "host": {
            "cpu_count": cpu,
            "cap_note": (
                None if cpu >= 4 else
                f"host exposes {cpu} core(s): W>{cpu} workers time-slice "
                f"the same core(s), so sharding adds IPC/combine overhead "
                f"without parallel compute — the Brent curve below is the "
                f"speedup a {max(_WIDTHS)}-core host would make available"
            ),
        },
        "workload": {"family": "er", "n": g.n, "arcs": arcs,
                     "hops": _HOPS, "work": work, "depth": depth},
        "serial": {"sssp_wall_s": round(wall_serial, 6),
                   "kernel_wall_s": round(kwall_serial, 6)},
        "widths": {},
    }
    for w in _WIDTHS:
        be = ShardedBackend(workers=w, min_arcs=1)
        try:
            res, swork, sdepth, wall = _measure_sssp(g, be)
            (mn, py), kwall, _ = _measure_kernel(g, be)
            bit_exact = (
                np.array_equal(ref.dist, res.dist)
                and np.array_equal(ref.parent, res.parent)
                and np.array_equal(ref_mn, mn)
                and np.array_equal(ref_py, py)
            )
            cost_equal = (swork, sdepth) == (work, depth)
            engaged = be.sharded_rounds > 0 and not be.failed
        finally:
            be.close()
        speedup = wall_serial / max(wall, 1e-12)
        kspeedup = kwall_serial / max(kwall, 1e-12)
        records["widths"][str(w)] = {
            "sssp_wall_s": round(wall, 6),
            "kernel_wall_s": round(kwall, 6),
            "measured_speedup": round(speedup, 3),
            "kernel_speedup": round(kspeedup, 3),
            "brent_predicted_speedup": predicted[w],
            "bit_exact": bool(bit_exact),
            "charged_cost_equal": bool(cost_equal),
            "engaged": bool(engaged),
        }
        rows.append([
            f"sharded:{w}", f"{wall_serial * 1e3:.1f}", f"{wall * 1e3:.1f}",
            f"{speedup:.2f}x", f"{kspeedup:.2f}x", f"{predicted[w]:.2f}x",
            bit_exact and cost_equal and engaged,
        ])
        record_obs(
            f"e23/sharded:{w}",
            measured_speedup=round(speedup, 3),
            kernel_speedup=round(kspeedup, 3),
            brent_predicted=predicted[w],
            wall_s=wall,
        )
    OUT_PATH.write_text(
        json.dumps({"experiments": records}, indent=2, sort_keys=True) + "\n"
    )
    return rows, records


def test_e23_workload_clears_the_arc_floor():
    _, records = run_sweep()
    assert records["workload"]["arcs"] >= 100_000


def test_e23_bit_exact_and_cost_identical_at_every_width():
    _, records = run_sweep()
    for w, rec in records["widths"].items():
        assert rec["bit_exact"], w
        assert rec["charged_cost_equal"], w
        assert rec["engaged"], w


def test_e23_speedup_or_documented_host_cap():
    """W=4 must reach 1.5×, unless the host can't — then the cap is recorded."""
    _, records = run_sweep()
    w4 = records["widths"]["4"]["measured_speedup"]
    host = records["host"]
    if host["cpu_count"] >= 4:
        assert w4 >= 1.5, records["widths"]["4"]
    else:
        assert host["cap_note"], host  # why the host caps lower, in the JSON


def test_e23_brent_curve_is_recorded_and_sane():
    _, records = run_sweep()
    preds = [records["widths"][str(w)]["brent_predicted_speedup"] for w in _WIDTHS]
    assert preds[0] == 1.0
    assert all(a <= b + 1e-9 for a, b in zip(preds, preds[1:]))  # monotone
    # depth keeps T_p > W/p: the curve must stay below perfect scaling
    assert all(p <= w for p, w in zip(preds, _WIDTHS))


def test_e23_json_written_and_parses():
    run_sweep()
    data = json.loads(OUT_PATH.read_text())
    exp = data["experiments"]
    assert set(exp["widths"]) == {str(w) for w in _WIDTHS}
    assert "cpu_count" in exp["host"]


def test_e23_table(benchmark):
    rows, _ = run_sweep()
    emit(
        "E23: sharded backend wall-clock vs Brent-predicted scaling "
        f"(dense SSSP, {_graph().indices.size} arcs)",
        ["backend", "serial ms", "sharded ms", "speedup",
         "kernel speedup", "Brent predicted", "exact+cost-equal+engaged"],
        rows,
    )
    g = _graph()
    tails, heads, w = g.arcs()
    plan = P.build_relax_plan(tails, heads, w, n_cells=g.n)
    dist = np.random.default_rng(2303).uniform(0.0, 50.0, size=g.n)
    ws = Workspace(poison=False)
    serial = SerialBackend()
    benchmark(lambda: serial.relax_segmin(plan, dist, ws.take))
