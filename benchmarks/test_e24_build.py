"""E24 — hopset construction fast path: fused build kernels + warm store.

PR 4's fused kernels bought 5–7× on SSSP queries but left construction —
the per-scale superclustering/interconnection pipeline, dominated by
Algorithm 3's multi-key lexsorts — as the open hot path (ROADMAP item 2).
This experiment measures the build-side answer:

* **end-to-end hopset build**, fused (``pprune_entries`` /
  ``paggregate_entries`` + per-scale plan cache) vs unfused sort path,
  per E24 family, asserting bit-identical edges and charged work/depth;
* **per-scale wall split** — inclusive wall seconds of every ``scale{k}``
  span on a traced run of the headline workload, before and after, so
  the JSON shows *where* the speedup lives, not just that it exists;
* **warm store vs cold build** — ``HopsetStore.load`` of an
  already-built (graph, params) artifact against the cold build that
  produced it; the acceptance bar is warm < 10% of cold, bit-identical.

Results go to ``benchmarks/BENCH_build.json``; the acceptance test pins
a ≥2× build speedup on at least one E24 family.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from functools import lru_cache
from pathlib import Path

from conftest import emit, record_obs

from repro.graphs.generators import erdos_renyi, grid_graph, layered_hop_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.store import HopsetStore
from repro.obs.tracer import SpanTracer
from repro.pram.machine import PRAM

OUT_PATH = Path(__file__).resolve().parent / "BENCH_build.json"

#: kappa=3 drives both fused kernels through the x > 1 rank-selection
#: path (the expensive one); rho=0.45 keeps the phase count honest.
_PARAMS = HopsetParams(epsilon=0.25, kappa=3, rho=0.45, beta=8)

#: E24 workloads: the ER graph is the headline (large enough that the
#: per-call O(m log m) lexsorts separate from the fused linear passes);
#: the small families document the regime where fusion is wall-neutral.
GRAPHS = {
    "er": (lambda: erdos_renyi(1200, 0.01, seed=7), 2),
    "grid": (lambda: grid_graph(16, 16, seed=2402), 2),
    "layered": (lambda: layered_hop_graph(64, 4, seed=2403), 2),
}

_HEADLINE = "er"


def _edge_key(e):
    return (e.u, e.v, e.weight, e.scale, e.phase, e.kind, e.path)


def _best_of(fn, repeats):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _measure_build(g, fused, repeats):
    def run():
        os.environ["REPRO_FUSED_BUILD"] = "1" if fused else "0"
        try:
            pram = PRAM()
            hopset, _ = build_hopset(g, _PARAMS, pram=pram)
            return hopset, pram.cost.work, pram.cost.depth
        finally:
            os.environ.pop("REPRO_FUSED_BUILD", None)

    (hopset, work, depth), wall = _best_of(run, repeats)
    return hopset, work, depth, wall


def _scale_split(g, fused):
    """{scale-span name: inclusive wall seconds} for one traced build."""
    os.environ["REPRO_FUSED_BUILD"] = "1" if fused else "0"
    try:
        pram = PRAM()
        tracer = SpanTracer.attach(pram.cost, root_name="build")
        build_hopset(g, _PARAMS, pram=pram)
        tracer.finish()
    finally:
        os.environ.pop("REPRO_FUSED_BUILD", None)
    return {
        span.name: round(span.wall, 6)
        for span in tracer.root.walk()
        if span.level == 1 and span.name.startswith("scale")
    }


def _measure_warm_store(g, hopset):
    """(cold build+save wall, warm load wall, bit-identical) via the store."""
    with tempfile.TemporaryDirectory() as root:
        store = HopsetStore(root)

        def cold():
            pram = PRAM()
            built, _ = build_hopset(g, _PARAMS, pram=pram)
            store.save(g, _PARAMS, built)
            return built

        t0 = time.perf_counter()
        built = cold()
        cold_wall = time.perf_counter() - t0

        warm, warm_wall = _best_of(lambda: store.load(g, _PARAMS), 3)
        identical = warm is not None and sorted(
            map(_edge_key, warm.edges)
        ) == sorted(map(_edge_key, built.edges)) == sorted(
            map(_edge_key, hopset.edges)
        )
    return cold_wall, warm_wall, identical


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    records = {}
    for name, (make, repeats) in GRAPHS.items():
        g = make()
        h_u, work_u, depth_u, wall_u = _measure_build(g, False, repeats)
        h_f, work_f, depth_f, wall_f = _measure_build(g, True, repeats)
        bit_exact = sorted(map(_edge_key, h_u.edges)) == sorted(
            map(_edge_key, h_f.edges)
        )
        cost_equal = (work_u, depth_u) == (work_f, depth_f)
        speedup = wall_u / max(wall_f, 1e-12)
        records[name] = {
            "n": g.n,
            "m": g.num_edges,
            "edges": h_f.num_records,
            "bit_exact": bool(bit_exact),
            "charged_cost_equal": bool(cost_equal),
            "unfused_wall_s": round(wall_u, 6),
            "fused_wall_s": round(wall_f, 6),
            "speedup": round(speedup, 3),
            "work": work_f,
            "depth": depth_f,
        }
        if name == _HEADLINE:
            records[name]["per_scale_wall_s"] = {
                "unfused": _scale_split(g, False),
                "fused": _scale_split(g, True),
            }
            cold_wall, warm_wall, identical = _measure_warm_store(g, h_f)
            records[name]["warm_store"] = {
                "cold_build_wall_s": round(cold_wall, 6),
                "warm_load_wall_s": round(warm_wall, 6),
                "warm_fraction": round(warm_wall / max(cold_wall, 1e-12), 4),
                "bit_identical": bool(identical),
            }
        rows.append(
            [
                name, g.n, g.num_edges,
                f"{wall_u * 1e3:.0f}", f"{wall_f * 1e3:.0f}",
                f"{speedup:.2f}x",
                bit_exact and cost_equal,
            ]
        )
        record_obs(
            f"e24/{name}",
            build_speedup=round(speedup, 3),
            wall_s_fused=wall_f,
            wall_s_unfused=wall_u,
        )
    ws = records[_HEADLINE]["warm_store"]
    record_obs(
        "e24/warm-store",
        warm_fraction=ws["warm_fraction"],
        cold_build_wall_s=ws["cold_build_wall_s"],
        warm_load_wall_s=ws["warm_load_wall_s"],
    )
    OUT_PATH.write_text(
        json.dumps({"experiments": records}, indent=2, sort_keys=True) + "\n"
    )
    return rows, records


def test_e24_bit_exact_and_cost_identical_everywhere():
    _, records = run_sweep()
    for name, rec in records.items():
        assert rec["bit_exact"], name
        assert rec["charged_cost_equal"], name


def test_e24_fused_build_at_least_2x_on_a_family():
    _, records = run_sweep()
    speedups = {name: rec["speedup"] for name, rec in records.items()}
    assert any(s >= 2.0 for s in speedups.values()), speedups


def test_e24_per_scale_split_shows_where_the_time_went():
    _, records = run_sweep()
    split = records[_HEADLINE]["per_scale_wall_s"]
    assert set(split["fused"]) == set(split["unfused"]) != set()
    # the fused run must win the scales that dominate the unfused wall
    hot = max(split["unfused"], key=split["unfused"].get)
    assert split["fused"][hot] < split["unfused"][hot]


def test_e24_warm_store_is_under_a_tenth_of_cold_and_identical():
    _, records = run_sweep()
    ws = records[_HEADLINE]["warm_store"]
    assert ws["bit_identical"]
    assert ws["warm_fraction"] < 0.10, ws


def test_e24_json_written_and_parses():
    run_sweep()
    data = json.loads(OUT_PATH.read_text())
    assert set(data["experiments"]) == set(GRAPHS)


def test_e24_table(benchmark):
    rows, records = run_sweep()
    emit(
        "E24: hopset construction fast path (fused build kernels, "
        f"kappa={_PARAMS.kappa})",
        ["graph", "n", "m", "unfused ms", "fused ms", "speedup",
         "bit-exact+cost-equal"],
        rows,
    )
    ws = records[_HEADLINE]["warm_store"]
    emit(
        "E24: warm hopset store vs cold build (headline family)",
        ["cold build ms", "warm load ms", "warm fraction", "bit-identical"],
        [[
            f"{ws['cold_build_wall_s'] * 1e3:.0f}",
            f"{ws['warm_load_wall_s'] * 1e3:.1f}",
            f"{ws['warm_fraction']:.4f}",
            ws["bit_identical"],
        ]],
    )
    g = GRAPHS["grid"][0]()
    benchmark(lambda: build_hopset(g, _PARAMS, pram=PRAM()))
