"""E25 — oracle serving layer: latency/QPS under the tiered cache.

The serving layer (``docs/serving.md``) answers micro-batched distance
and path queries from a tiered cache (exact-hit pair LRU → per-source
vectors → β-hop exploration).  This experiment drives a mixed-source
query stream through an in-process :class:`OracleServer` and records,
per backend width (serial, ``sharded:2``):

* **p50/p99/mean request latency** (µs, from the ``serve.latency_us``
  log₂-bucket histogram — p50/p99 are bucket-bound approximations);
* **QPS** for the cold pass (every source explores) and the warm pass
  (tier-0/tier-1 hits), i.e. the cache tiers' throughput effect;
* **cache-hit rates** of both tiers after the warm pass;
* **bit-exactness** of the full served transcript against the offline
  :class:`HopsetDistanceOracle` reference — the differential is part of
  the benchmark, so a perf number can never be quoted off a wrong
  answer.

Worker-count scaling is *informational* (CI hosts expose 1 core; the
sharded width mostly measures IPC there) — correctness columns are the
acceptance criteria, wall figures feed the perf ledger.
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache
from pathlib import Path

import numpy as np
from conftest import emit, record_obs

from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.obs.export import histogram_quantile
from repro.pram.backends import ShardedBackend
from repro.serve import OracleServer
from repro.serve.protocol import format_dist, format_path
from repro.sssp.oracle import HopsetDistanceOracle, tree_path

OUT_PATH = Path(__file__).resolve().parent / "BENCH_serve.json"

_WIDTHS = ("serial", "sharded:2")
_N_QUERIES = 600
_N_SOURCES = 24
_BATCH = 32


@lru_cache(maxsize=None)
def _workload():
    g = erdos_renyi(400, 0.03, seed=2501, w_range=(1.0, 4.0))
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H


@lru_cache(maxsize=None)
def _stream():
    g, _ = _workload()
    rng = np.random.default_rng(2502)
    sources = rng.choice(g.n, size=_N_SOURCES, replace=False)
    lines = []
    for i in range(_N_QUERIES):
        u = int(sources[i % _N_SOURCES])
        v = int(rng.integers(0, g.n))
        lines.append(f"{'path' if i % 8 == 7 else 'dist'} {u} {v}")
    return lines


@lru_cache(maxsize=None)
def _reference():
    """The offline transcript every width must reproduce bit-exactly."""
    g, H = _workload()
    offline = HopsetDistanceOracle(g, H, cache_size=g.n)
    expected = []
    for line in _stream():
        kind, u, v = line.split()
        u, v = int(u), int(v)
        dist, parent = offline.vectors_from(u)
        if kind == "dist":
            expected.append(format_dist(u, v, 0.0 if u == v else float(dist[v])))
        else:
            walk = (
                [u] if u == v
                else tree_path(parent, u, v, g.n) if np.isfinite(dist[v])
                else None
            )
            expected.append(format_path(u, v, walk))
    return expected


def _serve_pass(server, lines):
    replies = []
    t0 = time.perf_counter()
    for lo in range(0, len(lines), _BATCH):
        replies.extend(server.serve_batch(lines[lo:lo + _BATCH]))
    return replies, time.perf_counter() - t0


@lru_cache(maxsize=None)
def run_sweep():
    g, H = _workload()
    lines = _stream()
    expected = _reference()
    rows = []
    records = {
        "host": {"cpu_count": os.cpu_count() or 1},
        "workload": {
            "family": "er", "n": g.n, "arcs": int(g.indices.size),
            "queries": len(lines), "sources": _N_SOURCES, "batch": _BATCH,
        },
        "widths": {},
    }
    for width in _WIDTHS:
        backend = (
            ShardedBackend(workers=2, min_arcs=1) if width == "sharded:2" else None
        )
        server = OracleServer(g, H, cache_size=g.n, backend=backend,
                              batch_window=0.0)
        try:
            cold, cold_wall = _serve_pass(server, lines)
            warm, warm_wall = _serve_pass(server, lines)
            bit_exact = cold == expected and warm == expected
            lat = server.registry.histograms["serve.latency_us"]
            pairs = server.pairs.info()
            oracle_info = server.oracle.cache_info()
            rec = {
                "bit_exact": bool(bit_exact),
                "cold_qps": round(len(lines) / max(cold_wall, 1e-12), 1),
                "warm_qps": round(len(lines) / max(warm_wall, 1e-12), 1),
                "latency_p50_us": round(histogram_quantile(lat, 0.50), 2),
                "latency_p99_us": round(histogram_quantile(lat, 0.99), 2),
                "latency_mean_us": round(lat.mean, 2),
                "pair_cache_hit_rate": round(
                    pairs["hits"] / max(pairs["hits"] + pairs["misses"], 1), 4
                ),
                "source_cache_hit_rate": round(
                    oracle_info["hits"]
                    / max(oracle_info["hits"] + oracle_info["misses"], 1),
                    4,
                ),
                "explorations": oracle_info["explorations"],
                "degraded": server.degraded,
            }
        finally:
            server.close()
            if backend is not None:
                engaged = backend.sharded_rounds > 0 and not backend.failed
                backend.close()
            else:
                engaged = None
        if engaged is not None:
            rec["engaged"] = bool(engaged)
        records["widths"][width] = rec
        rows.append([
            width, f"{rec['cold_qps']:.0f}", f"{rec['warm_qps']:.0f}",
            f"{rec['latency_p50_us']:.0f}", f"{rec['latency_p99_us']:.0f}",
            f"{100 * rec['pair_cache_hit_rate']:.0f}%", rec["bit_exact"],
        ])
        record_obs(
            f"e25/{width}",
            cold_qps=rec["cold_qps"],
            warm_qps=rec["warm_qps"],
            latency_p50_us=rec["latency_p50_us"],
            latency_p99_us=rec["latency_p99_us"],
        )
    OUT_PATH.write_text(
        json.dumps({"experiments": records}, indent=2, sort_keys=True) + "\n"
    )
    return rows, records


def test_e25_bit_exact_at_every_width():
    _, records = run_sweep()
    for width, rec in records["widths"].items():
        assert rec["bit_exact"], width
        assert rec["degraded"] is None, width


def test_e25_sharded_width_engaged_the_pool():
    _, records = run_sweep()
    assert records["widths"]["sharded:2"]["engaged"]


def test_e25_cache_tiers_pay_off():
    _, records = run_sweep()
    for width, rec in records["widths"].items():
        # warm pass answers from the caches: strictly faster than cold
        assert rec["warm_qps"] > rec["cold_qps"], width
        assert rec["pair_cache_hit_rate"] > 0.0, width
        assert rec["explorations"] == _N_SOURCES, width  # one per source


def test_e25_latency_quantiles_ordered():
    _, records = run_sweep()
    for width, rec in records["widths"].items():
        assert 0 < rec["latency_p50_us"] <= rec["latency_p99_us"], width


def test_e25_json_written_and_parses():
    run_sweep()
    exps = json.loads(OUT_PATH.read_text())["experiments"]
    assert set(exps["widths"]) == set(_WIDTHS)
    assert exps["workload"]["queries"] == _N_QUERIES
    for rec in exps["widths"].values():
        for key in ("cold_qps", "warm_qps", "latency_p50_us",
                    "latency_p99_us", "pair_cache_hit_rate"):
            assert isinstance(rec[key], (int, float))


def test_e25_table(benchmark):
    rows, _ = run_sweep()
    emit(
        f"E25: oracle serving latency/QPS ({_N_QUERIES} mixed queries, "
        f"{_N_SOURCES} sources, batch {_BATCH})",
        ["backend", "cold qps", "warm qps", "p50 us", "p99 us",
         "pair hits", "bit exact"],
        rows,
    )
    g, H = _workload()
    server = OracleServer(g, H, cache_size=g.n, batch_window=0.0)
    lines = _stream()[:_BATCH]
    server.serve_batch(lines)  # warm the tiers; benchmark the hit path
    try:
        benchmark(lambda: server.serve_batch(lines))
    finally:
        server.close()
