"""E26 — the S×V matrix relaxation engine: crossover and serving payoff.

The matrix engine (``docs/mssp.md``) advances S sources as one
(S × V) distance/parent matrix, one vectorized relaxation pass per
round, instead of S independent arc scans.  This experiment measures
the two numbers the engine's default exists to justify:

* **Loop-vs-batch crossover.**  ``approximate_mssd`` wall-clock with
  ``block=0`` (the per-source loop) against ``block=S`` for
  S ∈ {1, 2, 4, 8, 16, 32}; the *crossover* is the smallest S at which
  the matrix wins.  Each timed pair also re-checks bit-exactness —
  a speedup is never quoted off a wrong matrix.

* **Serving QPS delta.**  An :class:`OracleServer` with the matrix
  grouped pre-explore (``mssp_block`` default) against one forced to
  the per-source loop (``mssp_block`` never engages when the batch has
  one distinct source — the looped server uses ``REPRO_MSSP``-style
  width 1 so every micro-batch explores source-by-source).  Cold QPS is
  where grouping pays (each micro-batch's distinct uncached sources
  become one S×V pass); warm QPS should be unchanged (caches answer).

Wall figures feed the perf ledger via ``record_obs``; correctness
columns are the acceptance criteria.
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache
from pathlib import Path

import numpy as np
from conftest import emit, record_obs

from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.serve import OracleServer
from repro.serve.protocol import format_dist, format_path
from repro.sssp.multi_source import approximate_mssd
from repro.sssp.oracle import HopsetDistanceOracle, tree_path

OUT_PATH = Path(__file__).resolve().parent / "BENCH_mssp.json"

_WIDTHS = (1, 2, 4, 8, 16, 32)
_REPEATS = 3
_N_QUERIES = 480
_N_SOURCES = 32
_BATCH = 32


@lru_cache(maxsize=None)
def _workload():
    g = erdos_renyi(320, 0.04, seed=2601, w_range=(1.0, 4.0))
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H


def _mssd_wall(g, H, sources, block):
    """Best-of-_REPEATS wall for one aMSSD sweep (plus its result)."""
    best, res = float("inf"), None
    for _ in range(_REPEATS):
        pram = PRAM()
        t0 = time.perf_counter()
        out = approximate_mssd(g, H, sources, pram=pram, block=block)
        best = min(best, time.perf_counter() - t0)
        res = out
    return best, res


@lru_cache(maxsize=None)
def crossover_sweep():
    g, H = _workload()
    rng = np.random.default_rng(2602)
    rows, widths = [], {}
    crossover = None
    all_exact = True
    for s in _WIDTHS:
        sources = rng.choice(g.n, size=s, replace=False)
        loop_wall, loop = _mssd_wall(g, H, sources, block=0)
        batch_wall, batch = _mssd_wall(g, H, sources, block=s)
        exact = np.array_equal(loop.dist, batch.dist) and np.array_equal(
            loop.parent, batch.parent
        )
        all_exact = all_exact and exact
        speedup = loop_wall / max(batch_wall, 1e-12)
        if crossover is None and speedup > 1.0:
            crossover = s
        widths[str(s)] = {
            "loop_ms": round(loop_wall * 1e3, 3),
            "batch_ms": round(batch_wall * 1e3, 3),
            "speedup": round(speedup, 3),
            "bit_exact": bool(exact),
        }
        rows.append([s, f"{loop_wall * 1e3:.2f}", f"{batch_wall * 1e3:.2f}",
                     f"{speedup:.2f}x", exact])
        record_obs(f"e26/mssd/S{s}", loop_ms=widths[str(s)]["loop_ms"],
                   batch_ms=widths[str(s)]["batch_ms"], speedup=speedup)
    return rows, {
        "widths": widths,
        "crossover_s": crossover,
        "bit_exact": bool(all_exact),
    }


@lru_cache(maxsize=None)
def _stream():
    g, _ = _workload()
    rng = np.random.default_rng(2603)
    sources = rng.choice(g.n, size=_N_SOURCES, replace=False)
    return [
        f"{'path' if i % 8 == 7 else 'dist'} "
        f"{int(sources[i % _N_SOURCES])} {int(rng.integers(0, g.n))}"
        for i in range(_N_QUERIES)
    ]


@lru_cache(maxsize=None)
def _reference():
    g, H = _workload()
    offline = HopsetDistanceOracle(g, H, cache_size=g.n)
    expected = []
    for line in _stream():
        kind, u, v = line.split()
        u, v = int(u), int(v)
        dist, parent = offline.vectors_from(u)
        if kind == "dist":
            expected.append(format_dist(u, v, 0.0 if u == v else float(dist[v])))
        else:
            walk = (
                [u] if u == v
                else tree_path(parent, u, v, g.n) if np.isfinite(dist[v])
                else None
            )
            expected.append(format_path(u, v, walk))
    return expected


def _serve_pass(server, lines):
    replies = []
    t0 = time.perf_counter()
    for lo in range(0, len(lines), _BATCH):
        replies.extend(server.serve_batch(lines[lo:lo + _BATCH]))
    return replies, time.perf_counter() - t0


@lru_cache(maxsize=None)
def serve_sweep():
    g, H = _workload()
    lines = _stream()
    expected = _reference()
    modes = {}
    rows = []
    for mode, block in (("looped", 1), ("matrix", None)):
        server = OracleServer(
            g, H, cache_size=g.n, batch_window=0.0, mssp_block=block
        )
        try:
            cold, cold_wall = _serve_pass(server, lines)
            warm, warm_wall = _serve_pass(server, lines)
            info = server.oracle.cache_info()
            rec = {
                "bit_exact": bool(cold == expected and warm == expected),
                "cold_qps": round(len(lines) / max(cold_wall, 1e-12), 1),
                "warm_qps": round(len(lines) / max(warm_wall, 1e-12), 1),
                "matrix_passes": info["matrix_passes"],
                "tier2_explorations": info["tier2_explorations"],
            }
        finally:
            server.close()
        modes[mode] = rec
        rows.append([mode, f"{rec['cold_qps']:.0f}", f"{rec['warm_qps']:.0f}",
                     rec["matrix_passes"], rec["bit_exact"]])
        record_obs(f"e26/serve/{mode}", cold_qps=rec["cold_qps"],
                   warm_qps=rec["warm_qps"])
    modes["cold_qps_delta"] = round(
        modes["matrix"]["cold_qps"] - modes["looped"]["cold_qps"], 1
    )
    modes["cold_speedup"] = round(
        modes["matrix"]["cold_qps"] / max(modes["looped"]["cold_qps"], 1e-12), 3
    )
    return rows, modes


@lru_cache(maxsize=None)
def write_bench():
    _, crossover = crossover_sweep()
    _, serve = serve_sweep()
    g, H = _workload()
    records = {
        "host": {"cpu_count": os.cpu_count() or 1},
        "workload": {
            "family": "er", "n": g.n, "arcs": int(g.indices.size),
            "queries": _N_QUERIES, "sources": _N_SOURCES, "batch": _BATCH,
        },
        "crossover": crossover,
        "serve": serve,
    }
    OUT_PATH.write_text(
        json.dumps({"experiments": records}, indent=2, sort_keys=True) + "\n"
    )
    return records


def test_e26_matrix_bit_exact_at_every_width():
    _, crossover = crossover_sweep()
    assert crossover["bit_exact"]
    for s, rec in crossover["widths"].items():
        assert rec["bit_exact"], s


def test_e26_served_transcripts_bit_exact_both_modes():
    _, serve = serve_sweep()
    assert serve["looped"]["bit_exact"]
    assert serve["matrix"]["bit_exact"]


def test_e26_matrix_mode_groups_the_batches():
    _, serve = serve_sweep()
    # the looped server explores source-by-source; the matrix server folds
    # each micro-batch's distinct uncached sources into far fewer passes
    assert serve["looped"]["matrix_passes"] == serve["looped"]["tier2_explorations"]
    assert serve["matrix"]["matrix_passes"] < serve["matrix"]["tier2_explorations"]
    # grouping never changes *what* is explored
    assert (
        serve["matrix"]["tier2_explorations"]
        == serve["looped"]["tier2_explorations"]
        == _N_SOURCES
    )


def test_e26_json_written_and_parses():
    write_bench()
    exps = json.loads(OUT_PATH.read_text())["experiments"]
    assert set(exps["crossover"]["widths"]) == {str(s) for s in _WIDTHS}
    cross = exps["crossover"]["crossover_s"]
    assert cross is None or int(cross) in _WIDTHS
    for key in ("cold_qps_delta", "cold_speedup"):
        assert isinstance(exps["serve"][key], (int, float))


def test_e26_table(benchmark):
    cross_rows, crossover = crossover_sweep()
    serve_rows, _ = serve_sweep()
    write_bench()
    emit(
        f"E26a: aMSSD loop vs S×V matrix (er n=320, best of {_REPEATS})",
        ["S", "loop ms", "batch ms", "speedup", "bit exact"],
        cross_rows,
    )
    emit(
        f"E26b: serving with grouped matrix pre-explore "
        f"({_N_QUERIES} queries, batch {_BATCH})",
        ["mode", "cold qps", "warm qps", "matrix passes", "bit exact"],
        serve_rows,
    )
    g, H = _workload()
    sources = np.arange(16)
    benchmark(lambda: approximate_mssd(g, H, sources, block=16))
