"""E27 — incremental repair vs full recompute under live updates.

The dynamic subsystem (``docs/dynamic.md``) exists for one claim: when
updates are sparse, repairing the affected region costs far less than
recomputing from scratch, and the answers are *identical*.  This
experiment measures both halves:

* **E27a — SSSP repair-vs-rebuild crossover.**  A mixed update schedule
  (weight changes, deletes, re-inserts) over a road network at rates
  r ∈ {1, 2, 8, 32} updates per step.  ``repair`` maintains the tree
  incrementally (:class:`~repro.dynamic.repair.DynamicSSSP`);
  ``rebuild`` answers the same per-step question — "distances after
  this batch" — with one full Bellman–Ford per step.  At every step
  boundary the two distance vectors must agree **bit-exactly** (a
  speedup is never quoted off a wrong tree); the *crossover* is the
  smallest rate at which per-step rebuilding becomes cheaper than
  repairing each update.

* **E27b — hopset decay and lazy refresh.**  A congestion wave worsens
  weights until hopset records die
  (:class:`~repro.dynamic.hopset.DynamicHopset` kills exactly the
  uncertified ones), then one :meth:`maintain` pass refreshes the
  decayed scales.  Recorded: the liveness trajectory, refresh work vs
  the initial full-build work, and the safety invariant (β-hop union
  distances never under exact) before *and* after the refresh.

Charged work is the primary metric (deterministic, host-independent);
wall-clock rides along for the ledger.
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache
from pathlib import Path

import numpy as np
from conftest import emit, record_obs

from repro.dynamic import DynamicGraph, DynamicHopset, DynamicSSSP
from repro.graphs.generators import (
    as_rng,
    periodic_weight_schedule,
    road_network,
)
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

OUT_PATH = Path(__file__).resolve().parent / "BENCH_dynamic.json"

_RATES = (1, 2, 8, 32)
_STEPS = 10
_SOURCE = 0
_PARAMS = HopsetParams(epsilon=0.5)


@lru_cache(maxsize=None)
def _workload():
    return road_network(12, 12, seed=2701, w_range=(1.0, 3.0))


def _mixed_schedule(g, steps, rate, seed):
    """Valid-by-construction mixed batches (update / delete / re-insert)."""
    rng = as_rng(seed)
    live = {
        (int(u), int(v)): float(w)
        for u, v, w in zip(g.edge_u, g.edge_v, g.edge_w)
    }
    dead: dict[tuple[int, int], float] = {}
    batches = []
    for _ in range(steps):
        batch = []
        for _ in range(rate):
            r = rng.random()
            if r < 0.15 and len(live) > 1:
                pair = list(live)[int(rng.integers(0, len(live)))]
                dead[pair] = live.pop(pair)
                batch.append(("delete", *pair, None))
            elif r < 0.3 and dead:
                pair = list(dead)[int(rng.integers(0, len(dead)))]
                w = dead.pop(pair)
                live[pair] = w
                batch.append(("update", *pair, w))
            else:
                pair = list(live)[int(rng.integers(0, len(live)))]
                w = live[pair] * float(rng.uniform(0.5, 2.0))
                live[pair] = w
                batch.append(("update", *pair, w))
        batches.append(batch)
    return batches


def _rebuild_step(graph: DynamicGraph, pram: PRAM) -> np.ndarray:
    """The per-step full-recompute baseline: one converged Bellman–Ford."""
    snap = graph.snapshot()
    machine = PRAM(cost=pram.cost, backend=pram.backend)
    res = bellman_ford(
        machine, snap, _SOURCE, hops=max(snap.n - 1, 1), early_exit=True
    )
    return res.dist


@lru_cache(maxsize=None)
def rate_sweep():
    g = _workload()
    rows, rates = [], {}
    crossover = None
    all_exact = True
    for rate in _RATES:
        schedule = _mixed_schedule(g, _STEPS, rate, seed=2702 + rate)
        repair = DynamicSSSP(g, _SOURCE)
        baseline = DynamicGraph(g)
        base_pram = PRAM()
        # the repair engine's boot rebuild is not part of the comparison
        repair_base = repair.pram.cost.work
        rebuild_base = base_pram.cost.work
        exact = True
        t0 = time.perf_counter()
        for batch in schedule:
            for op in batch:
                if op[0] == "delete":
                    baseline.delete_edge(int(op[1]), int(op[2]))
                elif baseline.has_edge(int(op[1]), int(op[2])):
                    baseline.set_weight(int(op[1]), int(op[2]), float(op[3]))
                else:
                    baseline.insert_edge(int(op[1]), int(op[2]), float(op[3]))
                repair.apply(tuple(op))
            exact = exact and np.array_equal(
                repair.dist, _rebuild_step(baseline, base_pram)
            )
        wall = time.perf_counter() - t0
        all_exact = all_exact and exact
        repair_work = repair.pram.cost.work - repair_base
        rebuild_work = base_pram.cost.work - rebuild_base
        ratio = repair_work / max(rebuild_work, 1)
        if crossover is None and repair_work >= rebuild_work:
            crossover = rate
        rates[str(rate)] = {
            "repair_work": int(repair_work),
            "rebuild_work": int(rebuild_work),
            "work_ratio": round(ratio, 3),
            "repairs": repair.repairs,
            "fallback_rebuilds": repair.rebuilds,
            "bit_exact": bool(exact),
            "wall_ms": round(wall * 1e3, 3),
        }
        rows.append([
            rate, f"{repair_work:,}", f"{rebuild_work:,}", f"{ratio:.2f}x",
            repair.repairs, repair.rebuilds, exact,
        ])
        record_obs(
            f"e27/repair/r{rate}", repair_work=int(repair_work),
            rebuild_work=int(rebuild_work), ratio=ratio,
        )
    return rows, {
        "rates": rates,
        "crossover_rate": crossover,
        "bit_exact": bool(all_exact),
        "steps": _STEPS,
    }


def _never_under(dg: DynamicGraph, dh: DynamicHopset) -> bool:
    """β-hop union distances >= exact − 1e-9, no ghost-finite entries."""
    union = dh.union_graph()
    snap = dg.snapshot()
    budget = 2 * dh.beta + 1
    for s in (0, dg.n // 2):
        exact = bellman_ford(PRAM(), snap, s, hops=snap.n - 1).dist
        approx = bellman_ford(PRAM(), union, s, hops=budget).dist
        fin = np.isfinite(exact)
        if not np.all(approx[fin] >= exact[fin] - 1e-9):
            return False
        if np.isfinite(approx[~fin]).any():
            return False
    return True


@lru_cache(maxsize=None)
def decay_sweep():
    g = _workload()
    dg = DynamicGraph(g)
    pram = PRAM()
    t0 = time.perf_counter()
    dh = DynamicHopset(dg, params=_PARAMS, pram=pram, rebuild_below=0.0)
    build_wall = time.perf_counter() - t0
    build_work = pram.cost.work
    trajectory = [1.0]
    # congestion wave: the decaying half of a rush-hour cycle
    wave = periodic_weight_schedule(
        g, _STEPS, frac=0.3, peak=6.0, period=2 * _STEPS, seed=2703
    )
    for batch in wave:
        for _, u, v, w in batch:
            old = dg.edge_weight(u, v)
            if w > old:
                dg.set_weight(u, v, w)
                dh.on_weight_increase(u, v, old, w)
        trajectory.append(round(dh.live_fraction, 4))
    safe_decayed = _never_under(dg, dh)
    decayed = dh.live_fraction
    before_refresh = pram.cost.work
    t0 = time.perf_counter()
    report = dh.maintain()
    refresh_wall = time.perf_counter() - t0
    refresh_work = pram.cost.work - before_refresh
    safe_refreshed = _never_under(dg, dh)
    rec = {
        "records": dh.num_records(),
        "build_work": int(build_work),
        "build_wall_ms": round(build_wall * 1e3, 3),
        "live_trajectory": trajectory,
        "decayed_live_fraction": round(decayed, 4),
        "action": report.action,
        "scales_refreshed": len(report.scales_refreshed),
        "refresh_work": int(refresh_work),
        "refresh_wall_ms": round(refresh_wall * 1e3, 3),
        "refresh_vs_build": round(refresh_work / max(build_work, 1), 3),
        "live_after_refresh": round(dh.live_fraction, 4),
        "safe_decayed": bool(safe_decayed),
        "safe_refreshed": bool(safe_refreshed),
    }
    record_obs(
        "e27/hopset/refresh", refresh_work=rec["refresh_work"],
        build_work=rec["build_work"], ratio=rec["refresh_vs_build"],
    )
    rows = [[
        rec["records"], f"{decayed:.2f}", rec["action"],
        rec["scales_refreshed"], f"{rec['live_after_refresh']:.2f}",
        f"{rec['refresh_vs_build']:.2f}x",
        rec["safe_decayed"] and rec["safe_refreshed"],
    ]]
    return rows, rec


@lru_cache(maxsize=None)
def write_bench():
    _, repair = rate_sweep()
    _, hopset = decay_sweep()
    g = _workload()
    records = {
        "host": {"cpu_count": os.cpu_count() or 1},
        "workload": {
            "family": "road", "n": g.n, "arcs": int(g.indices.size),
            "steps": _STEPS, "rates": list(_RATES),
        },
        "repair": repair,
        "hopset": hopset,
    }
    OUT_PATH.write_text(
        json.dumps({"experiments": records}, indent=2, sort_keys=True) + "\n"
    )
    return records


def test_e27_repair_is_bit_exact_at_every_rate():
    _, repair = rate_sweep()
    assert repair["bit_exact"]
    for rate, rec in repair["rates"].items():
        assert rec["bit_exact"], rate


def test_e27_repair_beats_rebuild_at_low_rates():
    _, repair = rate_sweep()
    # the subsystem's reason to exist: sparse updates repair cheaper
    # than per-step recomputes, by a wide margin at rate 1
    assert repair["rates"]["1"]["work_ratio"] < 1.0
    cross = repair["crossover_rate"]
    assert cross is None or cross > 1


def test_e27_work_ratio_degrades_with_rate():
    _, repair = rate_sweep()
    # denser batches amortize the rebuild better; the ratio must not
    # *improve* from the sparsest to the densest probed rate
    ratios = [repair["rates"][str(r)]["work_ratio"] for r in _RATES]
    assert ratios[-1] > ratios[0]


def test_e27_hopset_refresh_restores_liveness_safely():
    _, hopset = decay_sweep()
    assert hopset["decayed_live_fraction"] < 1.0
    assert hopset["action"] == "refresh"
    assert hopset["live_after_refresh"] > hopset["decayed_live_fraction"]
    assert hopset["safe_decayed"] and hopset["safe_refreshed"]


def test_e27_json_written_and_parses():
    write_bench()
    exps = json.loads(OUT_PATH.read_text())["experiments"]
    assert set(exps["repair"]["rates"]) == {str(r) for r in _RATES}
    cross = exps["repair"]["crossover_rate"]
    assert cross is None or int(cross) in _RATES
    assert isinstance(exps["hopset"]["refresh_vs_build"], (int, float))


def test_e27_table(benchmark):
    repair_rows, repair = rate_sweep()
    hopset_rows, _ = decay_sweep()
    write_bench()
    emit(
        f"E27a: SSSP repair vs per-step rebuild (road n=144, {_STEPS} steps)",
        ["rate", "repair work", "rebuild work", "ratio", "repairs",
         "fallbacks", "bit exact"],
        repair_rows,
    )
    emit(
        "E27b: hopset decay -> lazy per-scale refresh",
        ["records", "decayed live", "action", "scales", "live after",
         "refresh/build", "safe"],
        hopset_rows,
    )
    # time the unit the crossover is measured against: one full
    # per-step recompute on the road network
    dg = DynamicGraph(_workload())
    pram = PRAM()
    benchmark(lambda: _rebuild_step(dg, pram))
