"""E2 — eq. (1) stretch/hopbound, measured exactly (Thm 3.7).

All-pairs certification across ε, plus the tight-vs-faithful weight
ablation (DESIGN.md §6): faithful formula weights are valid but inflate the
realized stretch, tight weights realize the implementing path exactly.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import emit

from repro.graphs.generators import layered_hop_graph, path_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams, theoretical_beta
from repro.hopsets.verification import achieved_hopbound, certify


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    g = layered_hop_graph(12, 4, seed=2001)
    for eps in (0.1, 0.25, 0.5):
        for tight in (True, False):
            params = HopsetParams(epsilon=eps, beta=8, tight_weights=tight)
            H, _ = build_hopset(g, params)
            cert = certify(g, H, beta=17, epsilon=eps)
            hb = achieved_hopbound(g, H, eps, max_hops=40)
            beta_paper = theoretical_beta(g.n, 2.0 ** 12, eps, 2, 0.4)
            rows.append(
                [
                    eps,
                    "tight" if tight else "faithful",
                    cert.max_stretch,
                    cert.holds,
                    hb,
                    f"{beta_paper:.1e}",
                ]
            )
    return rows


def test_e2_safety_everywhere():
    g = path_graph(48, w_range=(1.0, 3.0), seed=2002)
    for eps in (0.1, 0.5):
        for tight in (True, False):
            H, _ = build_hopset(g, HopsetParams(epsilon=eps, beta=8, tight_weights=tight))
            cert = certify(g, H, beta=48, epsilon=100.0)
            assert cert.safe


def test_e2_tight_weights_dominate_faithful():
    rows = run_sweep()
    by_eps = {}
    for eps, mode, mx, *_ in rows:
        by_eps.setdefault(eps, {})[mode] = mx
    for eps, modes in by_eps.items():
        assert modes["tight"] <= modes["faithful"] + 1e-9


def test_e2_stretch_holds_at_moderate_eps():
    for row in run_sweep():
        eps, mode = row[0], row[1]
        if mode == "tight" and eps >= 0.25:
            assert row[3], f"eq.(1) failed at eps={eps}: {row}"


def test_e2_table(benchmark):
    rows = run_sweep()
    emit(
        "E2: certified stretch and achieved hopbound (layered graph, n=48, beta=8)",
        ["eps", "weights", "max stretch@17", "eq(1) holds", "achieved hopbound", "paper beta eq(2)"],
        rows,
    )
    g = layered_hop_graph(12, 4, seed=2001)
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    benchmark(lambda: certify(g, H, beta=17, epsilon=0.25))
