"""E3 — construction work/depth scaling (Lemma 3.1, Thm 3.7).

Fits log-log slopes of measured work and depth against n.  The claims:
work is *slightly super-linear* (slope ≈ 1 + o(1) in n for fixed ρ, far
below the matmul baseline's 3), and depth grows polylogarithmically
(slope ≈ 0 in any polynomial fit — we check depth grows slower than any
fixed small power of n while work stays near-linear).
"""

from __future__ import annotations

import time
from functools import lru_cache

from conftest import emit, record_obs

from repro.analysis.metrics import loglog_slope
from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM

NS = [32, 64, 128, 256]


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    for n in NS:
        g = erdos_renyi(n, 4.0 / n, seed=3000 + n, w_range=(1.0, 4.0))
        pram = PRAM()
        params = HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8)
        t0 = time.perf_counter()
        H, report = build_hopset(g, params, pram)
        wall = time.perf_counter() - t0
        record_obs(
            f"e3/build/n={n}",
            n=n,
            m=g.num_edges,
            work=report.work,
            depth=report.depth,
            wall_s=wall,
        )
        procs = int((g.num_edges + g.n ** (1 + 0.5)) * g.n**0.4)
        rows.append(
            [
                n,
                g.num_edges,
                report.work,
                report.depth,
                pram.cost.time_on(procs),
                report.work / (g.num_edges * g.n**0.4),
            ]
        )
    return rows


def test_e3_work_scaling_subquadratic():
    rows = run_sweep()
    slope = loglog_slope([r[0] for r in rows], [r[2] for r in rows])
    # slightly super-linear: well below matmul's 3 and below quadratic
    assert slope < 2.0, f"work slope {slope}"


def test_e3_depth_scaling_polylog_like():
    rows = run_sweep()
    slope = loglog_slope([r[0] for r in rows], [r[3] for r in rows])
    work_slope = loglog_slope([r[0] for r in rows], [r[2] for r in rows])
    assert slope < 1.0, f"depth slope {slope}"  # ≪ any linear growth
    assert slope < work_slope  # depth grows much slower than work


def test_e3_brent_time_with_paper_processors_tracks_depth():
    rows = run_sweep()
    for n, m, work, depth, t, _ in rows:
        # with the Thm 3.7 processor count, T_p is within a small factor of depth
        assert t <= 3 * depth


def test_e3_table(benchmark):
    rows = run_sweep()
    slope_w = loglog_slope([r[0] for r in rows], [r[2] for r in rows])
    slope_d = loglog_slope([r[0] for r in rows], [r[3] for r in rows])
    emit(
        f"E3: build cost scaling (work slope {slope_w:.2f}, depth slope {slope_d:.2f})",
        ["n", "m", "work", "depth", "T_p (paper procs)", "work/(m*n^rho)"],
        rows,
    )
    g = erdos_renyi(64, 4.0 / 64, seed=3064, w_range=(1.0, 4.0))
    benchmark(lambda: build_hopset(g, HopsetParams(beta=8)))
