"""E4 — SSSP with hopsets vs hopset-less Bellman–Ford (Thm 3.8).

The headline application: on high-hop-diameter graphs, plain Bellman–Ford
needs Θ(hop diameter) rounds, while G ∪ H converges within the 2β+1 budget.
The table sweeps the hop budget and reports both methods' max stretch: the
crossover (where plain BF catches up) sits near the hop diameter, while the
hopset answer is already correct at tiny budgets.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from conftest import emit

from repro.analysis.metrics import stretch_stats
from repro.baselines.plain_bellman_ford import plain_sssp_budgeted
from repro.graphs.distances import dijkstra
from repro.graphs.generators import layered_hop_graph
from repro.graphs.properties import hop_diameter
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.sssp import approximate_sssp_with_hopset

BUDGETS = [4, 8, 17, 33, 64]


@lru_cache(maxsize=None)
def setup():
    g = layered_hop_graph(48, 3, seed=4001)
    H, report = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H, report


@lru_cache(maxsize=None)
def run_sweep():
    g, H, _ = setup()
    exact = dijkstra(g, 0)
    hd = hop_diameter(g)
    rows = []
    for budget in BUDGETS:
        hop = approximate_sssp_with_hopset(g, H, 0, hop_budget=budget)
        plain = plain_sssp_budgeted(PRAM(), g, 0, hops=budget)
        s_hop = stretch_stats(exact, hop.dist)
        s_plain = stretch_stats(exact, plain.dist)
        rows.append([budget, hd, s_hop.max, s_plain.max, s_plain.unreached])
    return rows


def test_e4_hopset_converges_within_2beta_plus_1():
    rows = run_sweep()
    at_17 = [r for r in rows if r[0] == 17][0]
    assert at_17[2] <= 1.25 + 1e-9


def test_e4_plain_bf_diverges_below_hop_diameter():
    rows = run_sweep()
    small = [r for r in rows if r[0] < r[1]]
    assert small, "sweep must include budgets below the hop diameter"
    assert any(np.isinf(r[3]) for r in small)


def test_e4_hopset_never_worse_than_plain():
    for budget, hd, s_hop, s_plain, _ in run_sweep():
        assert s_hop <= s_plain + 1e-9


def test_e4_crossover_at_hop_diameter():
    g, H, _ = setup()
    hd = hop_diameter(g)
    exact = dijkstra(g, 0)
    plain = plain_sssp_budgeted(PRAM(), g, 0, hops=hd)
    assert not stretch_stats(exact, plain.dist).diverged


def test_e4_table(benchmark):
    rows = run_sweep()
    emit(
        "E4: SSSP stretch at equal hop budgets (layered graph, hop diameter "
        f"{rows[0][1]})",
        ["hop budget", "hop diam", "hopset max stretch", "plain BF max stretch", "plain unreached"],
        rows,
    )
    g, H, _ = setup()
    benchmark(lambda: approximate_sssp_with_hopset(g, H, 0, hop_budget=17))
