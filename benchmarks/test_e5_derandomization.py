"""E5 — derandomization: deterministic vs sampling-based hopsets.

The paper's contribution is removing the randomness of [Coh94]/[EN19]
while keeping size/quality.  Measured here: across seeds the randomized
construction's output varies (size spread > 0) while the deterministic
construction is bit-identical; their certified stretches are comparable.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import emit

from repro.baselines.randomized_hopset import build_randomized_hopset
from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import certify

SEEDS = range(5)


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    for name, g in [
        ("er", erdos_renyi(56, 0.08, seed=5001, w_range=(1.0, 3.0))),
        ("path", path_graph(56, w_range=(1.0, 3.0), seed=5002)),
    ]:
        params = HopsetParams(epsilon=0.25, beta=8)
        det, _ = build_hopset(g, params)
        det2, _ = build_hopset(g, params)
        det_key = sorted((e.u, e.v, round(e.weight, 9)) for e in det.edges)
        det_stable = det_key == sorted(
            (e.u, e.v, round(e.weight, 9)) for e in det2.edges
        )
        det_cert = certify(g, det, beta=17, epsilon=0.25)
        rand_sizes = []
        rand_stretch = []
        for s in SEEDS:
            rh = build_randomized_hopset(g, params, seed=s)
            rand_sizes.append(rh.size())
            rand_stretch.append(certify(g, rh, beta=17, epsilon=0.25).max_stretch)
        rows.append(
            [
                name,
                det.size(),
                det_cert.max_stretch,
                det_stable,
                min(rand_sizes),
                max(rand_sizes),
                min(rand_stretch),
                max(rand_stretch),
            ]
        )
    return rows


def test_e5_deterministic_is_stable():
    for row in run_sweep():
        assert row[3] is True


def test_e5_randomized_varies():
    rows = run_sweep()
    assert any(r[4] != r[5] or r[6] != r[7] for r in rows)


def test_e5_quality_comparable():
    for row in run_sweep():
        det_stretch, rand_best = row[2], row[6]
        assert det_stretch <= max(rand_best * 1.5, 1.5)


def test_e5_table(benchmark):
    rows = run_sweep()
    emit(
        "E5: deterministic vs randomized hopsets (5 seeds)",
        [
            "graph", "det |H|", "det stretch", "det stable",
            "rand |H| min", "rand |H| max", "rand stretch min", "rand stretch max",
        ],
        rows,
    )
    g = erdos_renyi(56, 0.08, seed=5001, w_range=(1.0, 3.0))
    benchmark(lambda: build_randomized_hopset(g, HopsetParams(beta=8), seed=0))
