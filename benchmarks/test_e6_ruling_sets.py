"""E6 — ruling sets: the (3, 2·log n) guarantees and their cost (Cor. B.4).

Sweeps cluster-graph densities; per row: measured minimum pairwise virtual
distance of Q (must be ≥ 3), the worst ruling radius (must be ≤ 2·⌈log n⌉),
and the PRAM depth of the construction (polylog shape).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from conftest import emit

from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.clusters import Partition
from repro.hopsets.ruling_sets import ruling_set
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))
from tests.hopsets.helpers import pairwise_virtual_distances, virtual_adjacency  # noqa: E402

CASES = [
    ("path", lambda: path_graph(48, weight=1.0), 1.0),
    ("er-sparse", lambda: erdos_renyi(48, 0.05, seed=6001), 1.5),
    ("er-dense", lambda: erdos_renyi(48, 0.2, seed=6002), 2.5),
]


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    for name, make, threshold in CASES:
        g = make()
        part = Partition.singletons(g.n)
        cands = np.ones(g.n, dtype=bool)
        pram = PRAM()
        q = ruling_set(pram, g, part, cands, threshold, hops=2)
        adj = virtual_adjacency(g, part, threshold, 2)
        vd = pairwise_virtual_distances(adj)
        q_idx = np.flatnonzero(q)
        min_sep = min(
            (int(vd[a, b]) for i, a in enumerate(q_idx) for b in q_idx[i + 1:] if vd[a, b] >= 0),
            default=-1,
        )
        worst_rule = max(
            min((int(vd[c, s]) for s in q_idx if vd[c, s] >= 0), default=0)
            for c in range(g.n)
        )
        bound = 2 * ceil_log2(g.n)
        rows.append(
            [name, g.n, int(q.sum()), min_sep, worst_rule, bound, pram.cost.depth]
        )
    return rows


def test_e6_separation_at_least_3():
    for row in run_sweep():
        assert row[3] == -1 or row[3] >= 3, row


def test_e6_ruling_radius_within_bound():
    for row in run_sweep():
        assert row[4] <= row[5], row


def test_e6_depth_polylog_shape():
    ns = [48, 96, 192]
    depths = []
    for n in ns:
        g = path_graph(n, weight=1.0)
        pram = PRAM()
        ruling_set(pram, g, Partition.singletons(n), np.ones(n, dtype=bool), 1.0, 2)
        depths.append(pram.cost.depth)
    # doubling n must not double depth (polylog, not polynomial)
    assert depths[-1] < 2 * depths[0]


def test_e6_table(benchmark):
    rows = run_sweep()
    emit(
        "E6: ruling-set guarantees (Q separation >= 3, radius <= 2 log n)",
        ["case", "n", "|Q|", "min sep", "worst radius", "2·log n", "PRAM depth"],
        rows,
    )
    g = path_graph(48, weight=1.0)
    part = Partition.singletons(48)
    cands = np.ones(48, dtype=bool)
    benchmark(lambda: ruling_set(PRAM(), g, part, cands, 1.0, 2))
