"""E7 — Klein–Sairam reduction removes the Λ dependence (Thm C.2).

Λ sweeps over seven orders of magnitude on fixed-n graphs.  The basic
construction's scale count (and hence depth) grows with log Λ; the reduced
construction's per-𝒢_k aspect ratio stays O(n/ε) and its star-edge count
stays within the Lemma C.1 bound n·log n.  Stretch stays certified at the
(1+6ε, 6β+5) shape of [EN19] Lemma 4.3.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from conftest import emit

from repro.graphs.generators import wide_weight_graph
from repro.hopsets.multi_scale import build_hopset, scale_range
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import certify
from repro.hopsets.weight_reduction import build_reduced_hopset
from repro.pram.machine import PRAM

LAMBDAS = [1e2, 1e4, 1e6, 1e9]
N = 36


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    params = HopsetParams(epsilon=0.25, beta=8)
    for lam in LAMBDAS:
        g = wide_weight_graph(N, lam, seed=7000 + int(np.log10(lam)))
        k0, top = scale_range(g, 8)
        basic_scales = top - k0 + 1
        pram = PRAM()
        H, report = build_reduced_hopset(g, params, pram)
        cert = certify(g, H, beta=6 * 8 + 5, epsilon=6 * 0.25)
        rows.append(
            [
                f"{lam:.0e}",
                basic_scales,
                len(report.relevant),
                report.star_edges,
                int(N * np.log2(N)),
                cert.max_stretch,
                cert.holds and cert.safe,
            ]
        )
    return rows


def test_e7_star_bound_lemma_c1():
    for row in run_sweep():
        assert row[3] <= row[4], row


def test_e7_certified_at_en19_shape():
    for row in run_sweep():
        assert row[6], row


def test_e7_relevant_scales_track_edges_not_lambda():
    """Relevant scales ≤ O(m·log(n/ε)) windows, regardless of Λ's span."""
    rows = run_sweep()
    for row in rows:
        # every relevant scale is witnessed by an edge; never more scales
        # than the basic construction would build
        assert row[2] <= row[1] + 8


def test_e7_basic_scale_count_grows_with_lambda():
    rows = run_sweep()
    basic = [r[1] for r in rows]
    assert basic[-1] > basic[0]


def test_e7_table(benchmark):
    rows = run_sweep()
    emit(
        f"E7: weight reduction under Λ sweep (n={N}, eps=0.25, beta=8)",
        [
            "Lambda", "basic scales", "relevant scales", "star edges",
            "n log n", "max stretch@53", "certified",
        ],
        rows,
    )
    g = wide_weight_graph(N, 1e4, seed=7004)
    benchmark(lambda: build_reduced_hopset(g, HopsetParams(epsilon=0.25, beta=8)))
