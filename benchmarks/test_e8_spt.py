"""E8 — path-reporting hopsets and (1+ε)-SPT extraction (Thms 4.5/4.6).

Measures: SPT validity (spanning tree of G edges, exact tree distances),
tree stretch vs exact distances, peeling volume per scale, memory-path
lengths vs the σ bound of eq. (20), and the space overhead of recording.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from conftest import emit

from repro.graphs.distances import dijkstra
from repro.graphs.generators import erdos_renyi, layered_hop_graph, path_graph
from repro.hopsets.params import HopsetParams, PhaseSchedule
from repro.hopsets.path_reporting import build_path_reporting_hopset, memory_path_stats
from repro.sssp.spt import approximate_spt

CASES = [
    ("layered", lambda: layered_hop_graph(12, 4, seed=8001)),
    ("path", lambda: path_graph(48, w_range=(1.0, 3.0), seed=8002)),
    ("er", lambda: erdos_renyi(48, 0.1, seed=8003, w_range=(1.0, 3.0))),
]


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    params = HopsetParams(epsilon=0.25, beta=8)
    for name, make in CASES:
        g = make()
        H, _ = build_path_reporting_hopset(g, params)
        spt = approximate_spt(g, H, 0)
        exact = dijkstra(g, 0)
        fin = np.isfinite(exact) & (exact > 0)
        tree_stretch = float(np.max(spt.dist[fin] / exact[fin]))
        sched = PhaseSchedule.for_scale(g.n, max(H.scales()), params, 0.25, 0.0)
        stats = memory_path_stats(H, sched.sigma)
        rows.append(
            [
                name,
                g.n,
                H.num_records,
                sum(spt.replacements.values()),
                tree_stretch,
                stats.max_hops,
                round(stats.mean_hops, 2),
                round(sched.sigma),
            ]
        )
    return rows


def test_e8_tree_stretch_within_eps():
    for row in run_sweep():
        assert row[4] <= 1.25 + 1e-9, row


def test_e8_memory_paths_within_sigma():
    for row in run_sweep():
        assert row[5] <= row[7], row


def test_e8_peeling_replaces_edges_on_deep_graphs():
    rows = {r[0]: r for r in run_sweep()}
    assert rows["layered"][3] > 0
    assert rows["path"][3] > 0


def test_e8_trees_are_valid():
    params = HopsetParams(epsilon=0.25, beta=8)
    for name, make in CASES:
        g = make()
        H, _ = build_path_reporting_hopset(g, params)
        spt = approximate_spt(g, H, 0)
        for v in range(g.n):
            p = int(spt.parent[v])
            if v == 0 or p < 0:
                continue
            assert g.has_edge(p, v)
            assert np.isclose(spt.dist[v], spt.dist[p] + g.edge_weight(p, v))


def test_e8_table(benchmark):
    rows = run_sweep()
    emit(
        "E8: (1+eps)-SPT extraction (eps=0.25, beta=8)",
        [
            "graph", "n", "hopset records", "edges peeled", "tree stretch",
            "max path hops", "mean path hops", "sigma bound",
        ],
        rows,
    )
    g = layered_hop_graph(12, 4, seed=8001)
    H, _ = build_path_reporting_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    benchmark(lambda: approximate_spt(g, H, 0))
