"""E9 — hopset pipeline vs the n^ω-work deterministic strawman (§1.1).

Before this paper, deterministic polylog-time shortest paths cost matrix-
multiplication work.  The table sweeps n on sparse graphs and reports both
pipelines' work; the hopset side must win by a growing factor, while both
keep polylog depth.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import emit

from repro.analysis.metrics import loglog_slope
from repro.baselines.matmul_apsp import minplus_apsp
from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.sssp import approximate_sssp_with_hopset

NS = [48, 96, 192]


@lru_cache(maxsize=None)
def run_sweep():
    rows = []
    for n in NS:
        g = erdos_renyi(n, 4.0 / n, seed=9000 + n, w_range=(1.0, 3.0))
        p_hop = PRAM()
        H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8), p_hop)
        approximate_sssp_with_hopset(g, H, 0, p_hop)
        p_mat = PRAM()
        minplus_apsp(p_mat, g)
        rows.append(
            [
                n,
                g.num_edges,
                p_hop.cost.work,
                p_mat.cost.work,
                p_mat.cost.work / p_hop.cost.work,
                p_hop.cost.depth,
                p_mat.cost.depth,
            ]
        )
    return rows


def test_e9_hopset_wins_past_the_crossover():
    """Matmul's n³ can win at tiny n; the hopset must win at the largest n
    of the sweep (the asymptotic claim of §1.1), with the gap visible."""
    rows = run_sweep()
    last = rows[-1]
    assert last[2] < last[3], last
    assert last[4] > 1.5, last


def test_e9_gap_grows_with_n():
    ratios = [r[4] for r in run_sweep()]
    assert ratios == sorted(ratios)


def test_e9_matmul_work_slope_cubic_hopset_subquadratic():
    rows = run_sweep()
    ns = [r[0] for r in rows]
    assert loglog_slope(ns, [r[3] for r in rows]) > 2.5
    assert loglog_slope(ns, [r[2] for r in rows]) < 2.0


def test_e9_table(benchmark):
    rows = run_sweep()
    emit(
        "E9: work of hopset SSSP pipeline vs min-plus matmul APSP",
        ["n", "m", "hopset work", "matmul work", "ratio", "hopset depth", "matmul depth"],
        rows,
    )
    g = erdos_renyi(48, 4.0 / 48, seed=9048)
    benchmark(lambda: minplus_apsp(PRAM(), g))
