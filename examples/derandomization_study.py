"""Derandomization study: the paper's contribution, demonstrated.

Builds the deterministic hopset (ruling sets, Appendix B) and the
randomized sampling baseline ([Coh94]/[EN19] style) side by side, across
seeds, and prints what the determinism buys: identical output every run,
no quality variance, no failure tail — at comparable size and stretch.

Run:  python examples/derandomization_study.py
"""

from __future__ import annotations

from repro import HopsetParams, build_hopset, certify
from repro.analysis.tables import render_table
from repro.baselines.randomized_hopset import build_randomized_hopset
from repro.graphs.generators import layered_hop_graph


def main() -> None:
    g = layered_hop_graph(20, 4, seed=99)
    params = HopsetParams(epsilon=0.25, beta=8)
    budget = 2 * 8 + 1
    print(f"graph: n={g.n}, m={g.num_edges} (deep layered workload)\n")

    rows = []
    det, _ = build_hopset(g, params)
    det_cert = certify(g, det, beta=budget, epsilon=params.epsilon)
    fingerprints = set()
    for run in range(3):
        h, _ = build_hopset(g, params)
        fingerprints.add(tuple(sorted((e.u, e.v, round(e.weight, 9)) for e in h.edges)))
    rows.append(
        ["deterministic (this paper)", det.size(), f"{det_cert.max_stretch:.4f}",
         f"{len(fingerprints)} distinct output(s) in 3 runs"]
    )

    rand_outputs = set()
    for seed in range(6):
        rh = build_randomized_hopset(g, params, seed=seed)
        rc = certify(g, rh, beta=budget, epsilon=params.epsilon)
        rand_outputs.add(
            (rh.size(), round(rc.max_stretch, 4))
        )
        rows.append(
            [f"randomized seed={seed}", rh.size(), f"{rc.max_stretch:.4f}", ""]
        )

    print(render_table(
        "deterministic vs sampling-based hopsets",
        ["construction", "|H| pairs", "max stretch", "notes"],
        rows,
    ))
    print(
        f"\nrandomized spread: {len(rand_outputs)} distinct (size, stretch) "
        "outcomes across 6 seeds; the deterministic construction has exactly one."
    )


if __name__ == "__main__":
    main()
