"""Latency estimation in a peer-to-peer overlay with one shared hopset.

Scenario: an overlay network with power-law degrees and RTT edge weights
spanning three orders of magnitude (LAN links vs intercontinental links) —
the aspect-ratio regime that needs the Klein–Sairam reduction (Appendix C).
A monitoring service picks a handful of beacon nodes and needs approximate
latencies from every beacon to every peer: one reduced hopset + the
multi-source aMSSD of Theorem C.3.

Run:  python examples/peer_to_peer_overlay.py
"""

from __future__ import annotations

import numpy as np

from repro import HopsetParams, PRAM, approximate_mssd, build_reduced_hopset
from repro.graphs.build import from_edge_arrays
from repro.graphs.distances import dijkstra
from repro.graphs.generators import as_rng, preferential_attachment
from repro.graphs.properties import weight_aspect_ratio


def make_overlay(n: int, seed: int = 13):
    """Preferential-attachment topology with log-uniform RTT weights."""
    base = preferential_attachment(n, 2, seed=seed)
    rng = as_rng(seed + 1)
    rtt = np.exp(rng.uniform(np.log(1.0), np.log(2000.0), size=base.num_edges))
    return from_edge_arrays(n, base.edge_u, base.edge_v, rtt)


def main() -> None:
    g = make_overlay(100)
    print(
        f"overlay: n={g.n}, m={g.num_edges}, "
        f"RTT spread (aspect) {weight_aspect_ratio(g):,.0f}x"
    )

    params = HopsetParams(epsilon=0.25, beta=8)
    pram = PRAM()
    hopset, report = build_reduced_hopset(g, params, pram)
    print(
        f"reduced hopset: relevant scales {len(report.relevant)}, "
        f"star edges {report.star_edges} (bound {int(g.n * np.log2(g.n))}), "
        f"work={report.work:,}"
    )

    beacons = np.array([0, 1, 2, 50, 99])
    res = approximate_mssd(g, hopset, beacons, pram=pram, hop_budget=6 * 8 + 5)
    print(
        f"aMSSD from {beacons.size} beacons: "
        f"query work={res.work:,}, query depth={res.depth} "
        f"(vs build depth {report.depth:,})"
    )

    worst = 0.0
    for row, b in enumerate(beacons):
        exact = dijkstra(g, int(b))
        finite = np.isfinite(exact) & (exact > 0)
        worst = max(worst, float(np.max(res.dist[row][finite] / exact[finite])))
    print(f"worst latency over-estimate across all beacon-peer pairs: {worst:.4f}x")

    sample = res.dist[0][:6]
    print("beacon 0 → peers 0..5 RTT estimates:", np.round(sample, 1).tolist())


if __name__ == "__main__":
    main()
