"""The CREW PRAM substrate, demonstrated directly.

Three things this script shows:

1. the *literal* CREW memory — a staged-write shared memory that rejects
   genuine write conflicts, running §4.2's pointer jumping for real;
2. the cost-metered vectorized machine agreeing with it bit for bit;
3. Brent scheduling: how one metered (work, depth) pair turns into running
   times across processor counts, and where the construction's work goes
   (per-phase breakdown).

Run:  python examples/pram_model_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import HopsetParams, PRAM, build_hopset
from repro.analysis.breakdown import breakdown_table
from repro.graphs.generators import erdos_renyi
from repro.pram.cost import CostModel
from repro.pram.memory import CREWMemory
from repro.pram.errors import WriteConflictError
from repro.pram.pointer_jumping import pointer_jump
from repro.pram.reference import crew_pointer_jump


def demo_crew_memory() -> None:
    print("== CREW memory semantics ==")
    mem = CREWMemory(4)
    mem.write(0, "a")
    print("before end_round, cell 0 reads:", mem.read(0))
    mem.end_round()
    print("after end_round, cell 0 reads:", mem.read(0))
    try:
        mem.write(1, "x")
        mem.write(1, "y")
    except WriteConflictError as exc:
        print("conflicting concurrent writes rejected:", exc)


def demo_pointer_jumping() -> None:
    print("\n== pointer jumping: literal CREW vs vectorized machine ==")
    parent = [0, 0, 1, 2, 3, 4, 5, 6]
    weight = [0.0, 1.0, 2.0, 1.5, 0.5, 2.5, 1.0, 3.0]
    roots_ref, dists_ref, rounds = crew_pointer_jump(parent, weight)
    cost = CostModel()
    roots_vec, dists_vec = pointer_jump(cost, np.array(parent), np.array(weight))
    assert roots_ref == roots_vec.tolist()
    assert np.allclose(dists_ref, dists_vec)
    print(f"identical results; CREW memory rounds: {rounds}, "
          f"metered depth: {cost.depth}, work: {cost.work}")


def demo_brent_and_breakdown() -> None:
    print("\n== Brent scheduling & cost attribution for one hopset build ==")
    g = erdos_renyi(96, 0.05, seed=11, w_range=(1.0, 4.0))
    pram = PRAM()
    build_hopset(g, HopsetParams(epsilon=0.25, beta=8), pram)
    w, d = pram.cost.work, pram.cost.depth
    print(f"total work={w:,}, depth={d:,}")
    for p in (1, 64, 4096, 10**9):
        print(f"  T_p with p={p:>10,}: {pram.cost.time_on(p):,} rounds")
    table = breakdown_table(pram.cost, title="where the work went (leaf phases)")
    print("\n".join(table.splitlines()[:14]))
    print("  ...")


def main() -> None:
    demo_crew_memory()
    demo_pointer_jumping()
    demo_brent_and_breakdown()


if __name__ == "__main__":
    main()
