"""Quickstart: build a deterministic hopset and answer (1+ε)-SSSP queries.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import HopsetParams, PRAM, approximate_sssp_with_hopset, build_hopset, certify
from repro.graphs.distances import dijkstra
from repro.graphs.generators import erdos_renyi


def main() -> None:
    # A connected weighted random graph.
    g = erdos_renyi(120, 0.05, seed=42, w_range=(1.0, 5.0))
    print(f"graph: n={g.n}, m={g.num_edges}")

    # Build the deterministic (1+ε, β)-hopset of Theorem 3.7 on a metered
    # CREW PRAM.  Everything is deterministic: run it twice, get the same H.
    params = HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8)
    pram = PRAM()
    hopset, report = build_hopset(g, params, pram)
    print(f"hopset: {hopset.size()} edge pairs across scales {report.scales}")
    print(f"construction cost: work={report.work:,}, depth={report.depth:,}")
    print(f"Brent time on 1024 processors: {pram.cost.time_on(1024):,} rounds")

    # Answer a single-source query with a β-hop Bellman–Ford in G ∪ H.
    source = 0
    result = approximate_sssp_with_hopset(g, hopset, source)
    exact = dijkstra(g, source)
    finite = np.isfinite(exact) & (exact > 0)
    worst = float(np.max(result.dist[finite] / exact[finite]))
    print(f"SSSP from {source}: {result.rounds_used} rounds, max stretch {worst:.4f}")

    # Certify eq. (1) exhaustively (affordable at this size).
    cert = certify(g, hopset, beta=2 * params.beta_for(g.n) + 1, epsilon=params.epsilon)
    print(
        f"certification: safe={cert.safe}, holds={cert.holds}, "
        f"max stretch {cert.max_stretch:.4f} over {cert.pairs_checked} pairs"
    )


if __name__ == "__main__":
    main()
