"""Road-network-style routing with explicit (1+ε)-shortest-path trees.

Scenario: a grid-with-diagonals "road network" (long hop distances, modest
weighted diameter) where a routing service must answer *paths*, not just
distances, from a depot to every intersection — exactly the Section 4
use-case: a path-reporting hopset plus the peeling procedure yields a
genuine spanning tree of road segments whose routes are (1+ε)-optimal.

Run:  python examples/road_network_routing.py
"""

from __future__ import annotations

import numpy as np

from repro import HopsetParams, PRAM, approximate_spt, build_path_reporting_hopset
from repro.graphs.build import from_edge_arrays
from repro.graphs.distances import dijkstra, reconstruct_path
from repro.graphs.generators import as_rng
from repro.graphs.properties import hop_diameter


def make_road_grid(side: int, seed: int = 7):
    """A side×side street grid with a few diagonal avenues."""
    rng = as_rng(seed)
    ids = np.arange(side * side).reshape(side, side)
    us = [ids[:, :-1].ravel(), ids[:-1, :].ravel()]
    vs = [ids[:, 1:].ravel(), ids[1:, :].ravel()]
    # diagonal avenues on a sparse subset of blocks
    diag_u, diag_v = ids[:-1, :-1].ravel(), ids[1:, 1:].ravel()
    pick = rng.random(diag_u.size) < 0.15
    us.append(diag_u[pick])
    vs.append(diag_v[pick])
    u = np.concatenate(us)
    v = np.concatenate(vs)
    w = rng.uniform(1.0, 3.0, size=u.size)
    w[-int(pick.sum()):] *= 1.4  # diagonals are longer
    return from_edge_arrays(side * side, u, v, w)


def main() -> None:
    g = make_road_grid(9)
    depot = 0
    print(f"road network: n={g.n}, m={g.num_edges}, hop diameter {hop_diameter(g)}")

    params = HopsetParams(epsilon=0.25, beta=8)
    pram = PRAM()
    hopset, report = build_path_reporting_hopset(g, params, pram)
    print(
        f"path-reporting hopset: {hopset.num_records} records, "
        f"work={report.work:,}, depth={report.depth:,}"
    )

    spt = approximate_spt(g, hopset, depot, pram)
    print(f"peeled hopset edges per scale: {spt.replacements}")

    exact = dijkstra(g, depot)
    finite = np.isfinite(exact) & (exact > 0)
    ratios = spt.dist[finite] / exact[finite]
    print(
        f"route quality: max stretch {ratios.max():.4f}, "
        f"mean {ratios.mean():.4f} over {int(finite.sum())} destinations"
    )

    # Print three concrete routes straight off the tree.
    far = np.argsort(exact)[-3:]
    for t in far:
        route = reconstruct_path(spt.parent, depot, int(t))
        assert route, "connected grid: every intersection is reachable"
        print(
            f"  route to {int(t)}: {len(route) - 1} segments, "
            f"length {spt.dist[t]:.2f} (optimal {exact[t]:.2f}): "
            + " -> ".join(map(str, route[:6]))
            + (" ..." if len(route) > 6 else "")
        )


if __name__ == "__main__":
    main()
