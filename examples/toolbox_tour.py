"""A tour of the derandomization toolbox around the paper.

One graph, four lenses:

1. the deterministic ruling-set hopset (this paper, Theorem 3.7);
2. the distributed [AGLP89] ruling set on a CONGEST simulator — the same
   object in its native model, compared bit for bit;
3. Cohen's pairwise covers — the alternative route whose parallel
   derandomization remains open (§1.2) — and the hopset they induce;
4. Luby's randomized MIS — the historical root of parallel symmetry
   breaking ([Lub86]).

Run:  python examples/toolbox_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import HopsetParams, PRAM, build_hopset, certify
from repro.analysis.tables import render_table
from repro.baselines.luby_mis import is_maximal_independent_set, luby_mis
from repro.congest import distributed_ruling_set
from repro.covers import build_cover_hopset, build_pairwise_cover, verify_cover
from repro.graphs.generators import erdos_renyi
from repro.hopsets.clusters import Partition
from repro.hopsets.ruling_sets import ruling_set


def main() -> None:
    g = erdos_renyi(48, 0.12, seed=2026, w_range=(1.0, 1.0))
    print(f"graph: n={g.n}, m={g.num_edges} (unit weights)\n")

    # 1. the paper's hopset
    params = HopsetParams(epsilon=0.25, beta=8)
    H, _ = build_hopset(g, params)
    cert = certify(g, H, beta=17, epsilon=0.25)
    print(f"1. deterministic hopset: {H.size()} pairs, "
          f"certified stretch {cert.max_stretch:.3f} (holds={cert.holds})")

    # 2. ruling sets, PRAM vs CONGEST
    cands = np.ones(g.n, dtype=bool)
    pram_q = ruling_set(PRAM(), g, Partition.singletons(g.n), cands, 1.0, 1)
    dist_q, rounds, msgs = distributed_ruling_set(g, cands)
    same = bool(np.array_equal(pram_q, dist_q))
    print(f"2. ruling set |Q|={int(pram_q.sum())}; CONGEST run: {rounds} rounds, "
          f"{msgs} messages; identical to PRAM output: {same}")
    assert same

    # 3. pairwise covers
    cover = build_pairwise_cover(g, W=2.0, rho=0.5)
    verify_cover(g, cover)
    cover_h, _ = build_cover_hopset(g, rho=0.5)
    ccert = certify(g, cover_h, beta=2, epsilon=1e6)
    print(f"3. pairwise cover (W=2): {cover.num_clusters} clusters, "
          f"max overlap {cover.max_overlap()}; cover hopset spans all pairs "
          f"in 2 hops ({ccert.pairs_within_eps}/{ccert.pairs_checked})")

    # 4. Luby MIS
    mis, rounds = luby_mis(PRAM(), g, seed=7)
    print(f"4. Luby MIS: |I|={int(mis.sum())} in {rounds} randomized rounds, "
          f"valid={is_maximal_independent_set(g, mis)}")

    print()
    print(render_table(
        "the toolbox at a glance",
        ["object", "guarantee", "deterministic", "parallel"],
        [
            ["ruling-set hopset (paper)", "(1+eps, beta)", True, "NC (this paper)"],
            ["ruling set [AGLP89]", "(3, 2 log n)", True, "NC / CONGEST"],
            ["pairwise cover [Coh94]", "pairs<=W share a cluster", True, "open (sequential here)"],
            ["Luby MIS [Lub86]", "(2,1)-ruling", False, "NC w.h.p."],
        ],
    ))


if __name__ == "__main__":
    main()
