#!/usr/bin/env python
"""Validate the schema of a `python -m repro trace` Chrome trace JSON.

Usage::

    python scripts/check_trace.py trace.json [--min-coverage 0.95]

Exits non-zero (with a message per violation) if the file is not a valid
trace as documented in docs/observability.md: Chrome trace-event envelope,
both clock tracks present, non-negative durations, run totals, watchdog
verdicts with finite constants, and span coverage above the threshold.
CI runs this against a smoke trace on every push.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path


def check_trace(doc: dict, min_coverage: float) -> list[str]:
    """Return a list of schema violations (empty = valid)."""
    errors: list[str] = []
    for key in ("traceEvents", "displayTimeUnit", "otherData"):
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")
    events = doc.get("traceEvents", [])
    x_events = [e for e in events if e.get("ph") == "X"]
    if not x_events:
        errors.append("no complete ('X') span events")
    for e in x_events:
        for key in ("name", "pid", "tid", "ts", "dur", "args"):
            if key not in e:
                errors.append(f"span event missing {key!r}: {e.get('name', '?')}")
                break
        if e.get("dur", 0) < 0 or e.get("ts", 0) < 0:
            errors.append(f"negative ts/dur on span {e.get('name', '?')}")
        args = e.get("args", {})
        if "work" not in args or "depth" not in args:
            errors.append(f"span {e.get('name', '?')} args lack work/depth")
    pids = {e.get("pid") for e in x_events}
    if not {0, 1} <= pids:
        errors.append(f"expected wall-clock (0) and work-clock (1) tracks, got {pids}")
    other = doc.get("otherData", {})
    for key in ("total_work", "total_depth", "wall_s", "span_coverage", "watchdogs"):
        if key not in other:
            errors.append(f"otherData missing {key!r}")
    if other.get("total_work", 0) <= 0:
        errors.append("total_work must be positive")
    coverage = other.get("span_coverage", 0.0)
    if coverage < min_coverage:
        errors.append(f"span coverage {coverage:.3f} below threshold {min_coverage}")
    for w in other.get("watchdogs", []):
        for key in ("name", "metric", "measured", "shape", "constant", "status"):
            if key not in w:
                errors.append(f"watchdog missing {key!r}: {w}")
                break
        else:
            if not math.isfinite(w["constant"]) or w["constant"] < 0:
                errors.append(f"watchdog {w['name']} constant not finite: {w['constant']}")
            if w["status"] not in ("PASS", "WARN"):
                errors.append(f"watchdog {w['name']} bad status {w['status']!r}")
    return errors


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, check the trace, report violations."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace JSON written by `repro trace`")
    ap.add_argument("--min-coverage", type=float, default=0.95)
    args = ap.parse_args(argv)
    doc = json.loads(Path(args.trace).read_text())
    errors = check_trace(doc, args.min_coverage)
    for err in errors:
        print(f"check_trace: {err}", file=sys.stderr)
    if not errors:
        other = doc["otherData"]
        constants = ", ".join(
            f"{w['name']}={w['constant']:.3g} [{w['status']}]"
            for w in other["watchdogs"]
        )
        print(
            f"ok: {len(doc['traceEvents'])} events, "
            f"coverage {other['span_coverage']:.1%}, {constants}"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
