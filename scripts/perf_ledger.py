#!/usr/bin/env python
"""Maintain the append-only benchmark perf ledger from the command line.

Usage::

    python scripts/perf_ledger.py append [--bench-dir benchmarks] [--history H]
    python scripts/perf_ledger.py check  [--bench-dir benchmarks] [--history H] [--warn-only]
    python scripts/perf_ledger.py show   [--bench-dir benchmarks] [--history H] [--bench ID]

A thin wrapper over :mod:`repro.obs.ledger` (the same engine behind
``python -m repro perf``), plus a ``show`` action that prints the recorded
trajectory of one bench id — the per-PR history the BENCH files themselves
never kept.  See docs/observability.md ("perf ledger").
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import cmd_perf  # noqa: E402
from repro.obs import ledger  # noqa: E402


def cmd_show(args) -> int:
    history = (
        Path(args.history) if args.history else ledger.history_path(args.bench_dir)
    )
    records = ledger.load_history(history)
    if args.bench:
        records = [r for r in records if r.get("bench") == args.bench]
    if not records:
        print(f"no records in {history}" + (f" for {args.bench}" if args.bench else ""))
        return 1
    benches = sorted({r.get("bench", "?") for r in records})
    print(f"{history}: {len(records)} records, {len(benches)} bench ids")
    for record in records if args.bench else records[-10:]:
        metrics = record.get("metrics", {})
        print(
            f"  {record.get('bench', '?')}  sha={str(record.get('sha', '?'))[:12]}"
            f"  host={record.get('host', '?')}  ({len(metrics)} metrics)"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="perf_action", required=True)
    for name in ("append", "check", "show"):
        p = sub.add_parser(name)
        p.add_argument("--bench-dir", default="benchmarks")
        p.add_argument("--history", default=None)
        if name == "check":
            p.add_argument("--warn-only", action="store_true")
        if name == "show":
            p.add_argument("--bench", default=None, help="one bench id's trajectory")
    args = ap.parse_args(argv)
    if args.perf_action == "show":
        return cmd_show(args)
    return cmd_perf(args)


if __name__ == "__main__":
    raise SystemExit(main())
