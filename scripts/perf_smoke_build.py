#!/usr/bin/env python
"""CI perf smoke: the fused build path must not be slower, and the store must hit.

Builds the hopset for a small layered workload with the fused build
kernels (``REPRO_FUSED_BUILD=1``: grouped staged-minimum entry prune/
aggregate + per-scale plan cache) and with the unfused lexsort path,
taking the best of a few repeats, and exits non-zero if the fused build
is slower or anything observable diverges (hopset edge set including
provenance, charged work/depth).  Then runs the warm-store round-trip:
saving the built hopset and loading it back by content key must be a
``store.hit`` returning a bit-identical hopset, and must cost less than
half of a cold build (the benchmark's acceptance bar is <10% on the
headline workload; the smoke uses a loose bound so a tiny graph can't
flap on fixed I/O costs).  See docs/hopset_store.md.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

from repro.graphs.generators import layered_hop_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.store import HopsetStore
from repro.pram.machine import PRAM

_REPEATS = 3
_PARAMS = HopsetParams(epsilon=0.25, kappa=3, rho=0.45, beta=8)


def _edge_key(e):
    return (e.u, e.v, e.weight, e.scale, e.phase, e.kind, e.path)


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def main() -> int:
    g = layered_hop_graph(64, 4, seed=2403)

    def run(fused):
        def go():
            os.environ["REPRO_FUSED_BUILD"] = "1" if fused else "0"
            try:
                pram = PRAM()
                hopset, _ = build_hopset(g, _PARAMS, pram=pram)
                return hopset, pram.cost.work, pram.cost.depth
            finally:
                os.environ.pop("REPRO_FUSED_BUILD", None)

        return _best_of(go)

    (unfused, u_work, u_depth), u_wall = run(fused=False)
    (fused, f_work, f_depth), f_wall = run(fused=True)
    speedup = u_wall / max(f_wall, 1e-12)
    print(
        f"layered graph n={g.n} m={g.num_edges}: "
        f"build unfused={u_wall * 1e3:.1f}ms fused={f_wall * 1e3:.1f}ms "
        f"(speedup {speedup:.2f}x)"
    )
    ok = True
    if sorted(map(_edge_key, unfused.edges)) != sorted(map(_edge_key, fused.edges)):
        print("FAIL: fused hopset diverges from unfused", file=sys.stderr)
        ok = False
    if (f_work, f_depth) != (u_work, u_depth):
        print(
            f"FAIL: fused charged cost differs: "
            f"fused=({f_work}, {f_depth}) unfused=({u_work}, {u_depth})",
            file=sys.stderr,
        )
        ok = False
    if f_wall > u_wall:
        print("FAIL: fused build path is slower than unfused", file=sys.stderr)
        ok = False

    with tempfile.TemporaryDirectory() as root:
        store = HopsetStore(root)
        store.save(g, _PARAMS, fused)
        warm, w_wall = _best_of(lambda: store.load(g, _PARAMS))
        print(f"warm store load: {w_wall * 1e3:.1f}ms ({w_wall / f_wall:.3f} of cold)")
        if warm is None:
            print("FAIL: warm store missed its own artifact", file=sys.stderr)
            ok = False
        elif sorted(map(_edge_key, warm.edges)) != sorted(
            map(_edge_key, fused.edges)
        ):
            print("FAIL: warm store returned a different hopset", file=sys.stderr)
            ok = False
        if w_wall > 0.5 * f_wall:
            print("FAIL: warm load cost more than half a cold build", file=sys.stderr)
            ok = False
    if ok:
        print(
            "perf smoke OK: fused build >= unfused speed, bit-exact, "
            "cost-identical, warm store hits"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
