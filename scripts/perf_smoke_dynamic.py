#!/usr/bin/env python
"""CI perf smoke: incremental repair must stay exact and stay cheap.

Three checks on an E27-scale workload (docs/dynamic.md):

* **Bit-exactness hard-fail.**  After every update batch,
  ``DynamicSSSP``'s repaired distance vector must equal a full
  Bellman–Ford recompute on the mutated graph, bitwise.  Any
  divergence fails the job.

* **Sparse-update work budget.**  At one update per step the repair
  engine must charge at most ``_SPARSE_BUDGET`` of the per-step
  rebuild baseline's work.  Charged work is deterministic, so this
  gate has no timer noise — a breach is a real regression in the
  repair path (e.g. the fallback tripping on every op).

* **Hopset safety after decay + refresh.**  A congestion wave kills
  hopset records; ``maintain()`` refreshes the decayed scales.  Both
  before and after the refresh, β-hop distances through the union must
  never under-estimate exact distances on the mutated graph.

The ledgered crossover figures live in ``benchmarks/BENCH_dynamic.json``
(E27); this script is the fast hard gate.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.dynamic import DynamicGraph, DynamicHopset, DynamicSSSP
from repro.graphs.generators import (
    as_rng,
    periodic_weight_schedule,
    road_network,
)
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

_STEPS = 8
_SPARSE_BUDGET = 0.5  # repair work / rebuild work at one update per step


def _reweight_schedule(g, steps, seed):
    rng = as_rng(seed)
    weights = {
        (int(u), int(v)): float(w)
        for u, v, w in zip(g.edge_u, g.edge_v, g.edge_w)
    }
    batches = []
    for _ in range(steps):
        pair = list(weights)[int(rng.integers(0, len(weights)))]
        w = weights[pair] * float(rng.uniform(0.5, 2.0))
        weights[pair] = w
        batches.append([("update", *pair, w)])
    return batches


def _repair_vs_rebuild(g) -> tuple[bool, float]:
    repair = DynamicSSSP(g, 0)
    baseline = DynamicGraph(g)
    base_pram = PRAM()
    repair_base = repair.pram.cost.work
    exact = True
    for batch in _reweight_schedule(g, _STEPS, seed=4202):
        for _, u, v, w in batch:
            baseline.set_weight(u, v, w)
            repair.apply(("update", u, v, w))
        snap = baseline.snapshot()
        full = bellman_ford(
            PRAM(cost=base_pram.cost), snap, 0, hops=snap.n - 1,
            early_exit=True,
        )
        exact = exact and np.array_equal(repair.dist, full.dist)
    repair_work = repair.pram.cost.work - repair_base
    rebuild_work = base_pram.cost.work
    return exact, repair_work / max(rebuild_work, 1)


def _hopset_never_under(g) -> bool:
    dg = DynamicGraph(g)
    dh = DynamicHopset(
        dg, params=HopsetParams(epsilon=0.5), pram=PRAM(), rebuild_below=0.0
    )
    wave = periodic_weight_schedule(
        g, _STEPS, frac=0.3, peak=6.0, period=2 * _STEPS, seed=4203
    )
    for batch in wave:
        for _, u, v, w in batch:
            old = dg.edge_weight(u, v)
            if w > old:
                dg.set_weight(u, v, w)
                dh.on_weight_increase(u, v, old, w)

    def safe() -> bool:
        union = dh.union_graph()
        snap = dg.snapshot()
        budget = 2 * dh.beta + 1
        for s in (0, g.n // 2):
            exact = bellman_ford(PRAM(), snap, s, hops=snap.n - 1).dist
            approx = bellman_ford(PRAM(), union, s, hops=budget).dist
            fin = np.isfinite(exact)
            if not np.all(approx[fin] >= exact[fin] - 1e-9):
                return False
        return True

    decayed_safe = safe()
    dh.maintain()
    return decayed_safe and safe()


def main() -> int:
    g = road_network(12, 12, seed=4201, w_range=(1.0, 3.0))
    ok = True
    exact, ratio = _repair_vs_rebuild(g)
    if not exact:
        print(
            "FAIL: repaired tree diverges from full recompute",
            file=sys.stderr,
        )
        ok = False
    print(
        f"sparse updates: repair charges {ratio:.3f}x the per-step "
        f"rebuild work (budget {_SPARSE_BUDGET}x)"
    )
    if ratio > _SPARSE_BUDGET:
        print(
            f"FAIL: repair work {ratio:.3f}x exceeds the "
            f"{_SPARSE_BUDGET}x sparse-update budget",
            file=sys.stderr,
        )
        ok = False
    if not _hopset_never_under(g):
        print(
            "FAIL: hopset union under-estimates after decay/refresh",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print("perf smoke OK: repair bit-exact, cheap, hopset never-under")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
