#!/usr/bin/env python
"""CI perf smoke: the sparse engine must not out-charge dense on E4.

Runs full-budget single-source Bellman–Ford on the E4 workload graph
(``layered_hop_graph(48, 3, seed=4001)``) with the dense and the forced
sparse-frontier engines, and exits non-zero if the sparse run charges
more work than the dense one or the outputs diverge.  The forced engine
is checked (not ``auto``) because auto's charged mode decision can add
overhead on graphs where it always picks dense — the dominance guarantee
is stated for ``engine="sparse"`` (see docs/frontier.md).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.graphs.generators import layered_hop_graph
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford


def main() -> int:
    g = layered_hop_graph(48, 3, seed=4001)
    runs = {}
    for engine in ("dense", "sparse"):
        pram = PRAM()
        res = bellman_ford(pram, g, 0, hops=g.n - 1, engine=engine)
        runs[engine] = (res, pram.cost.work)
    dense, dense_work = runs["dense"]
    sparse, sparse_work = runs["sparse"]
    print(
        f"E4 graph n={g.n} m={g.num_edges}: "
        f"work dense={dense_work} sparse={sparse_work} "
        f"(ratio {dense_work / max(sparse_work, 1):.2f}x)"
    )
    ok = True
    if not (
        np.array_equal(dense.dist, sparse.dist)
        and np.array_equal(dense.parent, sparse.parent)
        and dense.rounds_used == sparse.rounds_used
    ):
        print("FAIL: sparse engine output diverges from dense", file=sys.stderr)
        ok = False
    if sparse_work > dense_work:
        print("FAIL: sparse engine charged more work than dense", file=sys.stderr)
        ok = False
    if ok:
        print("perf smoke OK: sparse <= dense work, bit-exact outputs")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
