#!/usr/bin/env python
"""CI perf smoke: the S×V matrix engine must be exact and not regress.

Two checks on an E4-scale workload (docs/mssp.md):

* **Correctness hard-fail.**  ``approximate_mssd`` through the matrix
  engine (``block=S``) must produce the bit-identical distance/parent
  matrices of the per-source loop (``block=0``), at every probed width.
  Any divergence fails the job.

* **Overhead budget.**  At width S=16 the matrix sweep must cost at most
  1.3× the loop's wall (on a quiet host it wins — BENCH_mssp.json
  records the measured crossover; the budget only leaves headroom for
  timer noise on loaded runners, never for a real regression).

Per-width speedups are printed for the CI log; the ledgered figures live
in ``benchmarks/BENCH_mssp.json`` (E26).
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.graphs.generators import layered_hop_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM
from repro.sssp.multi_source import approximate_mssd

_WIDTHS = (2, 8, 16)
_REPEATS = 3
_OVERHEAD_BUDGET = 1.3


def _sweep(g, H, sources, block):
    best, res = float("inf"), None
    for _ in range(_REPEATS):
        t0 = time.perf_counter()
        out = approximate_mssd(g, H, sources, pram=PRAM(), block=block)
        best = min(best, time.perf_counter() - t0)
        res = out
    return best, res


def main() -> int:
    g = layered_hop_graph(48, 3, seed=4101)
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    rng = np.random.default_rng(4102)
    ok = True
    ratio_at_16 = None
    for s in _WIDTHS:
        sources = rng.choice(g.n, size=s, replace=False)
        loop_wall, loop = _sweep(g, H, sources, block=0)
        batch_wall, batch = _sweep(g, H, sources, block=s)
        if not (
            np.array_equal(loop.dist, batch.dist)
            and np.array_equal(loop.parent, batch.parent)
        ):
            print(
                f"FAIL: matrix engine diverges from the loop at S={s}",
                file=sys.stderr,
            )
            ok = False
        ratio = batch_wall / max(loop_wall, 1e-12)
        if s == 16:
            ratio_at_16 = ratio
        print(
            f"S={s:2d}: loop {loop_wall * 1e3:.1f}ms, "
            f"matrix {batch_wall * 1e3:.1f}ms "
            f"({loop_wall / max(batch_wall, 1e-12):.2f}x speedup)"
        )
    if ratio_at_16 is not None and ratio_at_16 > _OVERHEAD_BUDGET:
        print(
            f"FAIL: matrix sweep at S=16 costs {ratio_at_16:.2f}x the loop "
            f"(budget {_OVERHEAD_BUDGET}x)",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print("perf smoke OK: matrix bit-exact, within the loop-relative budget")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
