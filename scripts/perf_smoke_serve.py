#!/usr/bin/env python
"""CI perf smoke: the serving layer must answer correctly and batch cheaply.

Three checks on the E4 workload graph (docs/serving.md):

* **Correctness hard-fail.**  Every served reply — across singleton
  batches, full micro-batches, and a warm second pass — must be
  bit-identical to the offline :class:`HopsetDistanceOracle` reference
  under the canonical-source contract.  Any divergence fails the job.

* **Batching overhead budget.**  Serving the stream in micro-batches
  must cost at most 1.5× the singleton-batch wall (batching is a
  wall-clock optimization; on a quiet host it should win, and the budget
  leaves headroom for timer noise on loaded runners, never for a real
  regression).

* **Informational timing.**  Cold/warm QPS and p50/p99 latency are
  printed for the CI log; the ledgered figures live in
  ``benchmarks/BENCH_serve.json`` (E25).

Runs on any host — serving is single-threaded at the numeric tiers, so
no core-count skip applies.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.graphs.generators import layered_hop_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.obs.export import histogram_quantile
from repro.serve import OracleServer
from repro.serve.protocol import format_dist, format_path
from repro.sssp.oracle import HopsetDistanceOracle, tree_path

_BATCH = 32
_N_QUERIES = 400
_OVERHEAD_BUDGET = 1.5


def _workload():
    g = layered_hop_graph(48, 3, seed=4001)
    H, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    return g, H


def _stream(n):
    rng = np.random.default_rng(4002)
    sources = rng.choice(n, size=12, replace=False)
    return [
        f"{'path' if i % 8 == 7 else 'dist'} "
        f"{int(sources[i % 12])} {int(rng.integers(0, n))}"
        for i in range(_N_QUERIES)
    ]


def _reference(g, H, lines):
    offline = HopsetDistanceOracle(g, H, cache_size=g.n)
    out = []
    for line in lines:
        kind, u, v = line.split()
        u, v = int(u), int(v)
        dist, parent = offline.vectors_from(u)
        if kind == "dist":
            out.append(format_dist(u, v, 0.0 if u == v else float(dist[v])))
        else:
            walk = (
                [u] if u == v
                else tree_path(parent, u, v, g.n) if np.isfinite(dist[v])
                else None
            )
            out.append(format_path(u, v, walk))
    return out


def _serve_pass(server, lines, batch):
    replies = []
    t0 = time.perf_counter()
    for lo in range(0, len(lines), batch):
        replies.extend(server.serve_batch(lines[lo:lo + batch]))
    return replies, time.perf_counter() - t0


def main() -> int:
    g, H = _workload()
    lines = _stream(g.n)
    expected = _reference(g, H, lines)
    ok = True

    def check(label, replies):
        nonlocal ok
        if replies != expected:
            bad = next(
                i for i, (a, b) in enumerate(zip(replies, expected)) if a != b
            )
            print(
                f"FAIL: {label} diverges from the offline oracle at "
                f"query {bad}: {replies[bad]!r} != {expected[bad]!r}",
                file=sys.stderr,
            )
            ok = False

    singles = OracleServer(g, H, cache_size=g.n, batch_window=0.0)
    try:
        cold_single, single_wall = _serve_pass(singles, lines, batch=1)
        check("singleton-batch serving", cold_single)
    finally:
        singles.close()

    server = OracleServer(g, H, cache_size=g.n, batch_window=0.0)
    try:
        cold, cold_wall = _serve_pass(server, lines, batch=_BATCH)
        check("micro-batched serving (cold)", cold)
        warm, warm_wall = _serve_pass(server, lines, batch=_BATCH)
        check("micro-batched serving (warm)", warm)
        lat = server.registry.histograms["serve.latency_us"]
        print(
            f"E4 serve ({len(lines)} queries, batch {_BATCH}): "
            f"cold {len(lines) / max(cold_wall, 1e-12):.0f} qps, "
            f"warm {len(lines) / max(warm_wall, 1e-12):.0f} qps, "
            f"p50 {histogram_quantile(lat, 0.5):.0f}us, "
            f"p99 {histogram_quantile(lat, 0.99):.0f}us"
        )
    finally:
        server.close()

    ratio = cold_wall / max(single_wall, 1e-12)
    print(
        f"batching overhead: batched {cold_wall * 1e3:.1f}ms vs "
        f"singleton {single_wall * 1e3:.1f}ms (ratio {ratio:.2f}x, "
        f"budget {_OVERHEAD_BUDGET}x)"
    )
    if ratio > _OVERHEAD_BUDGET:
        print(
            f"FAIL: micro-batching costs {ratio:.2f}x the singleton path "
            f"(budget {_OVERHEAD_BUDGET}x)",
            file=sys.stderr,
        )
        ok = False

    if ok:
        print("perf smoke OK: served transcript bit-exact, batching within budget")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
