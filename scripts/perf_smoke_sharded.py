#!/usr/bin/env python
"""CI perf smoke: the sharded backend must not slow eligible workloads down.

Two checks (docs/backends.md):

* **No-slower guarantee on E4.**  The E4 workload graph's rounds sit far
  below the production ``min_arcs`` threshold, so a sharded machine must
  route every round through the in-process kernel — the guard that keeps
  small graphs from paying IPC.  The sharded run must stay within 1.3×
  of the serial wall-clock (headroom for timer noise on loaded runners),
  bit-exact and charge-identical.

* **Informational large-round run.**  A ≥10⁵-arc dense round with
  ``min_arcs=1`` reports the actual sharded-vs-serial kernel wall so the
  CI log shows where IPC crosses over; it never fails the job (scaling
  is asserted by ``benchmarks/test_e23_sharded.py``, which documents the
  host's core budget).

On single-core hosts the whole smoke **skips cleanly** (exit 0): with
one core the sharded path cannot demonstrate anything but scheduler
noise.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.graphs.generators import erdos_renyi, layered_hop_graph
from repro.pram.backends import SerialBackend, ShardedBackend
from repro.pram.cost import CostModel
from repro.pram.machine import PRAM
from repro.pram.workspace import Workspace
from repro.sssp.bellman_ford import bellman_ford

_REPEATS = 3
_SLOWDOWN_BUDGET = 1.3


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _run(g, backend):
    def go():
        pram = PRAM(CostModel(), workspace=Workspace(poison=False), backend=backend)
        res = bellman_ford(
            pram, g, 0, hops=min(g.n - 1, 24), early_exit=False, engine="dense"
        )
        return res, pram.cost.work, pram.cost.depth

    return _best_of(go)


def main() -> int:
    cpus = os.cpu_count() or 1
    if cpus < 2:
        print(f"perf smoke SKIP: host exposes {cpus} core(s); "
              "sharded scaling needs at least 2")
        return 0

    ok = True

    # -- E4: min_arcs guard keeps small rounds in-process, no slowdown ------
    g = layered_hop_graph(48, 3, seed=4001)
    (serial, s_work, s_depth), s_wall = _run(g, SerialBackend())
    be = ShardedBackend(workers=2)  # production min_arcs threshold
    try:
        (sharded, h_work, h_depth), h_wall = _run(g, be)
        ratio = h_wall / max(s_wall, 1e-12)
        print(
            f"E4 graph n={g.n} m={g.num_edges}: wall serial={s_wall * 1e3:.1f}ms "
            f"sharded:2={h_wall * 1e3:.1f}ms (ratio {ratio:.2f}x, "
            f"{be.sharded_rounds} sharded / {be.serial_rounds} in-process rounds)"
        )
        if not (
            np.array_equal(serial.dist, sharded.dist)
            and np.array_equal(serial.parent, sharded.parent)
        ):
            print("FAIL: sharded output diverges from serial", file=sys.stderr)
            ok = False
        if (h_work, h_depth) != (s_work, s_depth):
            print(
                f"FAIL: sharded charged cost differs: "
                f"sharded=({h_work}, {h_depth}) serial=({s_work}, {s_depth})",
                file=sys.stderr,
            )
            ok = False
        if be.sharded_rounds:
            print(
                "FAIL: sub-threshold rounds crossed the process boundary",
                file=sys.stderr,
            )
            ok = False
        if ratio > _SLOWDOWN_BUDGET:
            print(
                f"FAIL: sharded machine is {ratio:.2f}x serial on E4 "
                f"(budget {_SLOWDOWN_BUDGET}x)",
                file=sys.stderr,
            )
            ok = False
    finally:
        be.close()

    # -- informational: a genuinely large round through the pool ------------
    big = erdos_renyi(1600, 0.045, seed=2301, w_range=(1.0, 4.0))
    (ref, b_work, b_depth), b_wall = _run(big, SerialBackend())
    be = ShardedBackend(workers=2, min_arcs=1)
    try:
        (res, r_work, r_depth), r_wall = _run(big, be)
        exact = (
            np.array_equal(ref.dist, res.dist)
            and (r_work, r_depth) == (b_work, b_depth)
        )
        print(
            f"large round ({big.indices.size} arcs): serial={b_wall * 1e3:.1f}ms "
            f"sharded:2={r_wall * 1e3:.1f}ms "
            f"(speedup {b_wall / max(r_wall, 1e-12):.2f}x, informational) "
            f"bit-exact+cost-equal={exact}"
        )
        if not exact:
            print("FAIL: large sharded round diverges", file=sys.stderr)
            ok = False
    finally:
        be.close()

    if ok:
        print("perf smoke OK: min_arcs guard holds, sharded bit-exact, "
              "cost-identical")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
