#!/usr/bin/env python
"""CI perf smoke: the fused fast path must not be slower than unfused on E4.

Runs full-budget single-source Bellman–Ford on the E4 workload graph
(``layered_hop_graph(48, 3, seed=4001)``) with the fused relaxation
kernel + pooled buffers and with the unfused primitive sequence, taking
the best of a few repeats, and exits non-zero if the fused run is slower
or anything observable diverges (dist/parent/rounds, charged work/depth).
The dense engine is checked because that is where ``prelax_arcs`` does
the round's whole gather+min in one pass (see docs/frontier.md).
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.graphs.generators import layered_hop_graph
from repro.pram.cost import CostModel
from repro.pram.machine import PRAM
from repro.pram.workspace import Workspace
from repro.sssp.bellman_ford import bellman_ford

_REPEATS = 3


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def main() -> int:
    g = layered_hop_graph(48, 3, seed=4001)

    def run(fused):
        def go():
            pram = PRAM(CostModel(), workspace=Workspace(poison=False))
            res = bellman_ford(
                pram, g, 0, hops=g.n - 1,
                early_exit=False, engine="dense", fused=fused,
            )
            return res, pram.cost.work, pram.cost.depth

        return _best_of(go)

    (unfused, u_work, u_depth), u_wall = run(fused=False)
    (fused, f_work, f_depth), f_wall = run(fused=True)
    speedup = u_wall / max(f_wall, 1e-12)
    print(
        f"E4 graph n={g.n} m={g.num_edges}: "
        f"wall unfused={u_wall * 1e3:.1f}ms fused={f_wall * 1e3:.1f}ms "
        f"(speedup {speedup:.2f}x)"
    )
    ok = True
    if not (
        np.array_equal(unfused.dist, fused.dist)
        and np.array_equal(unfused.parent, fused.parent)
        and unfused.rounds_used == fused.rounds_used
    ):
        print("FAIL: fused output diverges from unfused", file=sys.stderr)
        ok = False
    if (f_work, f_depth) != (u_work, u_depth):
        print(
            f"FAIL: fused charged cost differs: "
            f"fused=({f_work}, {f_depth}) unfused=({u_work}, {u_depth})",
            file=sys.stderr,
        )
        ok = False
    if f_wall > u_wall:
        print("FAIL: fused fast path is slower than unfused", file=sys.stderr)
        ok = False
    if ok:
        print("perf smoke OK: fused >= unfused speed, bit-exact, cost-identical")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
