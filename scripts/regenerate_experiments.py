#!/usr/bin/env python
"""Regenerate every experiment table (E1–E17) in one run.

Runs the benchmark harness with output capture disabled, collects the
tables the bench modules emit on stderr, and writes them to
``EXPERIMENTS.generated.md`` — the raw companion to the annotated
``EXPERIMENTS.md``.

Usage:  python scripts/regenerate_experiments.py [output.md]
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("EXPERIMENTS.generated.md")
    repo = Path(__file__).resolve().parents[1]
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "-q", "-s", "-p", "no:cacheprovider"],
        cwd=repo,
        capture_output=True,
        text=True,
    )
    # tables are printed to stderr by benchmarks/conftest.emit
    tables = re.findall(
        r"^(E\d+[^\n]*\n=+\n(?:[^\n]*\n)+?)\n", proc.stderr + "\n", flags=re.M
    )
    if proc.returncode != 0 and not tables:
        sys.stderr.write(proc.stdout[-3000:])
        sys.stderr.write(proc.stderr[-3000:])
        return proc.returncode
    tables.sort(key=lambda t: int(re.match(r"E(\d+)", t).group(1)))
    lines = [
        "# EXPERIMENTS (generated)",
        "",
        "Raw tables from one run of `pytest benchmarks/ -s`.",
        "All runs are deterministic; see EXPERIMENTS.md for the analysis.",
        "",
    ]
    for t in tables:
        lines.append("```")
        lines.append(t.rstrip())
        lines.append("```")
        lines.append("")
    out_path.write_text("\n".join(lines))
    print(f"wrote {len(tables)} tables to {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
