#!/usr/bin/env python
"""Validate every ``BENCH_*.json`` against the shared benchmark schema.

Usage::

    python scripts/validate_bench.py [--bench-dir benchmarks]

The schema all BENCH files share (written by ``benchmarks/conftest.py``'s
session hooks) is deliberately small, and checked by hand here — no
external JSON-schema dependency:

* the document is a JSON object with an ``"experiments"`` object;
* every experiment is itself an object (string keys);
* every *scalar* metric inside is a finite number, a boolean, or a string
  (notes/labels) — NaN/Infinity would silently poison ledger comparisons,
  so they are rejected at the gate.

Exits non-zero with one message per violation.  The ``perf-ledger`` CI job
runs this before appending anything to ``BENCH_history.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path


def _walk(value, path: str, errors: list[str]) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            if not isinstance(key, str):
                errors.append(f"{path}: non-string key {key!r}")
                continue
            _walk(sub, f"{path}.{key}", errors)
    elif isinstance(value, list):
        for i, sub in enumerate(value):
            _walk(sub, f"{path}[{i}]", errors)
    elif isinstance(value, bool) or value is None or isinstance(value, str):
        return
    elif isinstance(value, (int, float)):
        if not math.isfinite(value):
            errors.append(f"{path}: non-finite number {value!r}")
    else:
        errors.append(f"{path}: unsupported value type {type(value).__name__}")


def validate_doc(doc, name: str) -> list[str]:
    """Return the schema violations of one parsed BENCH document."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"{name}: top level is {type(doc).__name__}, expected object"]
    experiments = doc.get("experiments")
    if not isinstance(experiments, dict):
        return [f"{name}: missing or non-object 'experiments'"]
    if not experiments:
        errors.append(f"{name}: 'experiments' is empty")
    for key, exp in experiments.items():
        if not isinstance(exp, dict):
            errors.append(
                f"{name}: experiment {key!r} is {type(exp).__name__}, "
                "expected object"
            )
            continue
        _walk(exp, f"{name}:{key}", errors)
    return errors


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench-dir", default="benchmarks")
    args = ap.parse_args(argv)
    paths = sorted(Path(args.bench_dir).glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json under {args.bench_dir}", file=sys.stderr)
        return 2
    errors: list[str] = []
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            errors.append(f"{path.name}: invalid JSON ({exc})")
            continue
        errors.extend(validate_doc(doc, path.name))
    for err in errors:
        print(f"SCHEMA: {err}", file=sys.stderr)
    print(
        f"validate_bench: {len(paths)} files, {len(errors)} violations -> "
        + ("FAIL" if errors else "PASS")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
