"""Legacy shim so `pip install -e . --no-use-pep517` works offline
with the pinned setuptools (no wheel package available in this env)."""

from setuptools import setup

setup()
