"""repro — Deterministic PRAM approximate shortest paths via hopsets.

A complete Python reproduction of *"Deterministic PRAM Approximate Shortest
Paths in Polylogarithmic Time and Slightly Super-Linear Work"* (Elkin &
Matar, SPAA 2021), built on a CREW PRAM cost-model simulator.

Quickstart::

    from repro import build_hopset, approximate_sssp, HopsetParams
    from repro.graphs.generators import erdos_renyi

    g = erdos_renyi(200, 0.05, seed=7)
    result = approximate_sssp(g, source=0, params=HopsetParams(epsilon=0.25))
    print(result.dist[:10], result.build_report.work, result.build_report.depth)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
measured reproduction of every theorem-level claim.
"""

from repro.graphs import Graph, from_edges
from repro.hopsets import (
    Hopset,
    HopsetEdge,
    HopsetParams,
    build_hopset,
    build_path_reporting_hopset,
    build_reduced_hopset,
    certify,
    theoretical_beta,
)
from repro.pram import PRAM, CostModel
from repro.sssp import (
    approximate_mssd,
    approximate_spt,
    approximate_sssp,
    approximate_sssp_with_hopset,
)

__version__ = "1.0.0"

# Observability classes resolve lazily (PEP 562): the zero-overhead claim
# includes the import — ``import repro`` must not pull the obs machinery in
# at all unless a tracer/registry is actually requested.
_LAZY = {"SpanTracer": "repro.obs.tracer", "MetricsRegistry": "repro.obs.metrics"}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "Graph",
    "from_edges",
    "PRAM",
    "CostModel",
    "Hopset",
    "HopsetEdge",
    "HopsetParams",
    "build_hopset",
    "build_path_reporting_hopset",
    "build_reduced_hopset",
    "certify",
    "theoretical_beta",
    "approximate_sssp",
    "approximate_sssp_with_hopset",
    "approximate_mssd",
    "approximate_spt",
    "SpanTracer",
    "MetricsRegistry",
    "__version__",
]
