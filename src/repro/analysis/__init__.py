"""Measurement and reporting helpers for the experiment harness."""

from repro.analysis.metrics import (
    StretchStats,
    hop_limited_stretch,
    loglog_slope,
    stretch_stats,
)
from repro.analysis.tables import format_value, render_table

__all__ = [
    "StretchStats",
    "stretch_stats",
    "hop_limited_stretch",
    "loglog_slope",
    "render_table",
    "format_value",
]
