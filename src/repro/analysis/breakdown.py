"""Per-phase cost attribution reports.

The hopset constructors label every charge with a phase path such as
``scale5/phase1/ruling``; this module rolls those totals up into readable
tables (where did the work go: detection vs ruling vs superclustering vs
interconnection) — the Lemma 3.1 accounting, measured.

Two attribution columns per phase (see ``docs/model.md``):

* **work/depth** — inclusive: everything charged inside the phase,
  including nested sub-phases.  Summing inclusive rows of nested phases
  over-reports the total, which is why :func:`cost_breakdown` lists only
  leaves.
* **self work/depth** — exclusive: only charges made while the phase was
  the innermost one.  Exclusive rows always sum to ≤ the total charged
  work, regardless of nesting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.pram.cost import CostModel, CostSnapshot

__all__ = ["PhaseCost", "cost_breakdown", "breakdown_table"]

_ZERO = CostSnapshot(0, 0)


@dataclass(frozen=True)
class PhaseCost:
    phase: str
    work: int
    depth: int
    work_share: float
    self_work: int = 0
    self_depth: int = 0


def cost_breakdown(cost: CostModel, depth_level: int = 3) -> list[PhaseCost]:
    """Phase totals, truncated to ``depth_level`` path components.

    Phases nest (``scale5/phase1/ruling`` charges also count toward
    ``scale5``); only the most specific level *visible at* ``depth_level``
    is listed, with inclusive shares relative to the total charged work.
    Deeper phases (e.g. ``scale5/phase1/ruling/bit3``) stay folded into
    their visible ancestor's inclusive totals, so the listed leaves never
    double-count each other.
    """
    visible = {
        name for name in cost.phase_totals if len(name.split("/")) <= depth_level
    }
    total = max(cost.work, 1)
    rolled: dict[str, tuple[int, int]] = {}
    for name in visible:
        # keep leaves only (a visible descendant means this row would
        # double-count it)
        if any(other.startswith(name + "/") for other in visible if other != name):
            continue
        snap = cost.phase_totals[name]
        rolled[name] = (snap.work, snap.depth)
    out = []
    for name, (w, d) in sorted(rolled.items(), key=lambda kv: -kv[1][0]):
        self_snap = cost.phase_self_totals.get(name, _ZERO)
        out.append(
            PhaseCost(
                phase=name,
                work=w,
                depth=d,
                work_share=w / total,
                self_work=self_snap.work,
                self_depth=self_snap.depth,
            )
        )
    return out


def breakdown_table(cost: CostModel, title: str = "cost breakdown") -> str:
    """Render the breakdown as a printable table (inclusive + self columns)."""
    rows = [
        [pc.phase, pc.work, pc.depth, pc.self_work, f"{100 * pc.work_share:.1f}%"]
        for pc in cost_breakdown(cost)
    ]
    return render_table(
        title, ["phase", "work", "depth", "self work", "share"], rows
    )


def step_kind_breakdown(cost: CostModel) -> dict[str, tuple[int, int]]:
    """Totals per step label (requires ``record_steps=True``).

    Answers "how much went into sorting vs relaxation" — the Algorithm 3
    vs propagation split of Appendix A.
    """
    out: dict[str, tuple[int, int]] = {}
    for step in cost.steps:
        w, d = out.get(step.label, (0, 0))
        out[step.label] = (w + step.work, d + step.depth)
    return out
