"""Per-phase cost attribution reports.

The hopset constructors label every charge with a phase path such as
``scale5/phase1/ruling``; this module rolls those totals up into readable
tables (where did the work go: detection vs ruling vs superclustering vs
interconnection) — the Lemma 3.1 accounting, measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.pram.cost import CostModel

__all__ = ["PhaseCost", "cost_breakdown", "breakdown_table"]


@dataclass(frozen=True)
class PhaseCost:
    phase: str
    work: int
    depth: int
    work_share: float


def cost_breakdown(cost: CostModel, depth_level: int = 3) -> list[PhaseCost]:
    """Phase totals, truncated to ``depth_level`` path components.

    Phases nest (``scale5/phase1/ruling`` charges also count toward
    ``scale5``); only the most specific recorded level is listed here, with
    shares relative to the total charged work.
    """
    rolled: dict[str, tuple[int, int]] = {}
    for name, snap in cost.phase_totals.items():
        parts = name.split("/")
        if len(parts) > depth_level:
            continue
        # keep leaves only (nesting means ancestors double-count)
        if any(
            other != name and other.startswith(name + "/")
            for other in cost.phase_totals
        ):
            continue
        rolled[name] = (snap.work, snap.depth)
    total = max(cost.work, 1)
    out = [
        PhaseCost(phase=k, work=w, depth=d, work_share=w / total)
        for k, (w, d) in sorted(rolled.items(), key=lambda kv: -kv[1][0])
    ]
    return out


def breakdown_table(cost: CostModel, title: str = "cost breakdown") -> str:
    """Render the breakdown as a printable table."""
    rows = [
        [pc.phase, pc.work, pc.depth, f"{100 * pc.work_share:.1f}%"]
        for pc in cost_breakdown(cost)
    ]
    return render_table(title, ["phase", "work", "depth", "share"], rows)


def step_kind_breakdown(cost: CostModel) -> dict[str, tuple[int, int]]:
    """Totals per step label (requires ``record_steps=True``).

    Answers "how much went into sorting vs relaxation" — the Algorithm 3
    vs propagation split of Appendix A.
    """
    out: dict[str, tuple[int, int]] = {}
    for step in cost.steps:
        w, d = out.get(step.label, (0, 0))
        out[step.label] = (w + step.work, d + step.depth)
    return out
