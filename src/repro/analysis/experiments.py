"""The experiment registry: machine-readable index of E1–E27.

A single source of truth connecting DESIGN.md §4's experiment table, the
benchmark modules, and the paper claims they reproduce.  Tests assert the
registry, the bench files, and the docs stay in sync — so an experiment
cannot silently lose its harness.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Experiment", "EXPERIMENTS", "experiment", "bench_module_name"]


@dataclass(frozen=True)
class Experiment:
    """One row of the experiment index."""

    exp_id: str
    claim: str
    paper_ref: str
    bench_module: str


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment("E1", "hopset size within ⌈log Λ⌉·n^{1+1/κ}", "eq. (10), Thm 3.7", "test_e1_hopset_size"),
    Experiment("E2", "eq. (1) stretch/hopbound + weight-mode ablation", "eq. (1), Thm 3.7", "test_e2_stretch"),
    Experiment("E3", "build work slightly super-linear, depth polylog", "Lemma 3.1", "test_e3_work_depth"),
    Experiment("E4", "hopset SSSP vs hopset-less Bellman–Ford", "Thm 3.8", "test_e4_sssp"),
    Experiment("E5", "derandomization vs sampling-based hopsets", "§1.2, [Coh94]/[EN19]", "test_e5_derandomization"),
    Experiment("E6", "(3, 2 log n)-ruling-set guarantees and cost", "Cor. B.4", "test_e6_ruling_sets"),
    Experiment("E7", "weight reduction removes Λ dependence", "Thm C.2, Lemma C.1", "test_e7_weight_reduction"),
    Experiment("E8", "path-reporting SPT validity and σ bound", "Thms 4.5/4.6, eq. (20)", "test_e8_spt"),
    Experiment("E9", "work vs the n^ω min-plus strawman", "§1.1, [Zwi02]", "test_e9_vs_matmul"),
    Experiment("E10", "PRAM primitive depth rates", "[SV82], [AKS83]", "test_e10_pram_primitives"),
    Experiment("E11", "multi-source aMSSD: work ∝ |S|, depth flat", "Thm 3.8/C.3", "test_e11_multi_source"),
    Experiment("E12", "Appendix D: Λ-free path-reporting SPT", "Thms D.1/D.2", "test_e12_reduction_paths"),
    Experiment("E13", "β ablation: safety at any β, stretch → 1+ε", "eq. (2) vs practice", "test_e13_beta_ablation"),
    Experiment("E14", "(κ, ρ) tradeoff surface", "Thm 3.7 knobs", "test_e14_kappa_rho"),
    Experiment("E15", "near-additive spanners from the same machinery", "§1.2/§1.4, [EM19]", "test_e15_spanners"),
    Experiment("E16", "depth vs Δ-stepping on deep graphs", "§1.1 context", "test_e16_delta_stepping"),
    Experiment("E17", "pairwise covers vs ruling sets", "§1.2 open problem", "test_e17_pairwise_covers"),
    Experiment("E18", "the hopset construction family compared", "§1.4", "test_e18_hopset_family"),
    Experiment("E19", "simulator wall-clock scaling", "engineering", "test_e19_simulator_scale"),
    Experiment("E20", "decremental SSSP via memory-path invalidation", "§1.4 future work", "test_e20_decremental"),
    Experiment("E21", "sparse-frontier vs dense relaxation engines", "engineering, docs/frontier.md", "test_e21_frontier"),
    Experiment("E22", "wall-clock fast path: fused kernels + pooling", "engineering, docs/frontier.md", "test_e22_wallclock"),
    Experiment("E23", "sharded backend scaling vs Brent's T_p ≤ W/p + D", "engineering, docs/backends.md", "test_e23_sharded"),
    Experiment("E24", "hopset build fast path + warm store", "engineering, docs/hopset_store.md", "test_e24_build"),
    Experiment("E25", "oracle serving layer: latency/QPS under the tiered cache", "engineering, docs/serving.md", "test_e25_serve"),
    Experiment("E26", "S×V matrix relaxation: loop-vs-batch crossover + serving payoff", "engineering, docs/mssp.md", "test_e26_mssp"),
    Experiment("E27", "incremental repair vs full recompute under live updates", "§1.4 / engineering, docs/dynamic.md", "test_e27_dynamic"),
)


def experiment(exp_id: str) -> Experiment:
    """Look one experiment up by id (raises KeyError if unknown)."""
    for e in EXPERIMENTS:
        if e.exp_id == exp_id:
            return e
    raise KeyError(f"unknown experiment id {exp_id!r}")


def bench_module_name(exp_id: str) -> str:
    """The benchmarks/ file (without .py) regenerating an experiment."""
    return experiment(exp_id).bench_module
