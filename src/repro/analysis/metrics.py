"""Measurement helpers shared by the benchmark harness and the examples."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.distances import dijkstra, hop_limited_distances

__all__ = ["StretchStats", "stretch_stats", "hop_limited_stretch", "loglog_slope"]


@dataclass(frozen=True)
class StretchStats:
    """Distribution of approx/exact distance ratios over sources × targets."""

    max: float
    mean: float
    p95: float
    unreached: int  # approximate distance infinite where the exact is finite
    pairs: int

    @property
    def diverged(self) -> bool:
        return self.unreached > 0


def stretch_stats(exact: np.ndarray, approx: np.ndarray) -> StretchStats:
    """Compare two distance arrays/matrices of the same shape."""
    exact = np.asarray(exact, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    if exact.shape != approx.shape:
        raise ValueError("distance arrays must have matching shapes")
    finite = np.isfinite(exact) & (exact > 0)
    pairs = int(finite.sum())
    if pairs == 0:
        return StretchStats(1.0, 1.0, 1.0, 0, 0)
    a = approx[finite]
    e = exact[finite]
    unreached = int(np.sum(~np.isfinite(a)))
    ratios = a[np.isfinite(a)] / e[np.isfinite(a)]
    if ratios.size == 0:
        return StretchStats(float("inf"), float("inf"), float("inf"), unreached, pairs)
    mx = float(ratios.max()) if unreached == 0 else float("inf")
    return StretchStats(
        max=mx,
        mean=float(ratios.mean()),
        p95=float(np.percentile(ratios, 95)),
        unreached=unreached,
        pairs=pairs,
    )


def hop_limited_stretch(graph: Graph, hops: int, sources: list[int]) -> StretchStats:
    """Stretch of plain ``hops``-round Bellman–Ford on ``graph`` itself."""
    exacts = np.stack([dijkstra(graph, s) for s in sources])
    approx = np.stack([hop_limited_distances(graph, s, hops) for s in sources])
    return stretch_stats(exacts, approx)


def loglog_slope(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log y vs log x — the scaling exponent.

    The E3 experiment fits measured work against n to check the
    "slightly super-linear" claim (slope ≈ 1 + ρ + o(1)); depth against n
    should fit a slope ≈ 0 in log-log against polylog-corrected axes.
    """
    lx = np.log(np.asarray(xs, dtype=np.float64))
    ly = np.log(np.asarray(ys, dtype=np.float64))
    if lx.size < 2:
        raise ValueError("need at least two points for a slope")
    A = np.stack([lx, np.ones_like(lx)], axis=1)
    coef, *_ = np.linalg.lstsq(A, ly, rcond=None)
    return float(coef[0])
