"""Plain-text table rendering for the experiment harness.

Every benchmark prints its rows through :func:`render_table` so
EXPERIMENTS.md and the bench output share one format.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_value"]


def format_value(v) -> str:
    """Compact human formatting for one table cell (bool/float/other)."""
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v != v:  # nan
            return "-"
        if v == float("inf"):
            return "inf"
        if abs(v) >= 1e6 or (0 < abs(v) < 1e-3):
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def render_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a fixed-width table with a title rule, ready to print."""
    cells = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for j, c in enumerate(row):
            widths[j] = max(widths[j], len(c))
    sep = "  "
    lines = [title, "=" * len(title)]
    lines.append(sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in cells:
        lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
