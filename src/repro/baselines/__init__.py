"""Baselines the experiments compare against (DESIGN.md §2).

* :func:`plain_sssp` / :func:`plain_sssp_budgeted` — hopset-less parallel
  Bellman–Ford (depth Θ(hop diameter));
* :func:`build_randomized_hopset` — the sampling-based [Coh94]/[EN19]-style
  construction this paper derandomizes;
* :func:`minplus_apsp` — the n^ω-work deterministic matrix strawman;
* exact sequential Dijkstra lives in :mod:`repro.graphs.distances` (it is
  also the test oracle).
"""

from repro.baselines.matmul_apsp import minplus_apsp
from repro.baselines.plain_bellman_ford import plain_sssp, plain_sssp_budgeted
from repro.baselines.randomized_hopset import build_randomized_hopset

__all__ = [
    "plain_sssp",
    "plain_sssp_budgeted",
    "build_randomized_hopset",
    "minplus_apsp",
]
