"""Baseline: Δ-stepping (Meyer & Sanders) with PRAM cost metering.

The standard *practical* parallel SSSP algorithm: distances are processed
in buckets of width Δ; inside a bucket, light edges (w ≤ Δ) are relaxed in
parallel phases until the bucket settles, then heavy edges fire once.  It
computes exact distances, but its depth is Θ((weighted diameter / Δ) ×
phases) — on high-hop-diameter, small-weight graphs that is polynomially
deep, which is exactly the gap hopsets close (experiment E16 measures the
two against each other).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import VertexError
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

__all__ = ["DeltaSteppingResult", "delta_stepping"]


@dataclass
class DeltaSteppingResult:
    dist: np.ndarray
    buckets_processed: int
    phases: int  # total light-edge relaxation phases (the depth driver)
    delta: float


def delta_stepping(
    pram: PRAM, graph: Graph, source: int, delta: float | None = None
) -> DeltaSteppingResult:
    """Exact SSSP by Δ-stepping; Δ defaults to the mean edge weight.

    Each light phase / heavy relaxation is one parallel step: work = arcs
    scanned, depth = O(log n) (the per-vertex min-combine, as everywhere in
    this repository).
    """
    if not 0 <= source < graph.n:
        raise VertexError(f"source {source} out of range")
    if graph.num_edges == 0:
        dist = np.full(graph.n, np.inf)
        dist[source] = 0.0
        return DeltaSteppingResult(dist, 0, 0, 0.0)
    if delta is None:
        delta = float(graph.edge_w.mean())
    if not delta > 0:
        raise VertexError(f"delta must be positive, got {delta}")

    tails, heads, w = graph.arcs()
    light = w <= delta
    lt, lh, lw = tails[light], heads[light], w[light]
    ht, hh, hw = tails[~light], heads[~light], w[~light]

    dist = np.full(graph.n, np.inf)
    dist[source] = 0.0
    log_n = ceil_log2(max(graph.n, 2)) + 1
    buckets = 0
    phases = 0
    current = 0
    # upper bound on bucket index: weighted diameter / delta
    max_bucket = int(np.ceil(graph.total_weight() / delta)) + 1
    with pram.phase("delta_stepping"):
        while current <= max_bucket:
            in_bucket = (dist >= current * delta) & (dist < (current + 1) * delta)
            if not in_bucket.any():
                if not np.isfinite(dist).any() or np.all(
                    ~np.isfinite(dist) | (dist < current * delta)
                ):
                    break
                current += 1
                continue
            buckets += 1
            # light-edge phases until the bucket settles
            for _ in range(graph.n):
                active = in_bucket[lt]
                if not active.any():
                    break
                cand = dist[lt[active]] + lw[active]
                new = dist.copy()
                np.minimum.at(new, lh[active], cand)
                pram.charge(work=int(active.sum()), depth=log_n, label="ds_light")
                phases += 1
                changed = new < dist - 1e-15
                dist = new
                in_bucket = (dist >= current * delta) & (dist < (current + 1) * delta)
                if not changed.any():
                    break
            # heavy edges fire once from everything settled in this bucket
            settled = (dist >= current * delta) & (dist < (current + 1) * delta)
            active = settled[ht]
            if active.any():
                cand = dist[ht[active]] + hw[active]
                np.minimum.at(dist, hh[active], cand)
                pram.charge(work=int(active.sum()), depth=log_n, label="ds_heavy")
            current += 1
    return DeltaSteppingResult(dist=dist, buckets_processed=buckets, phases=phases, delta=delta)
