"""Baseline: Luby's randomized parallel MIS ([Lub86], cited in §1.1).

Maximal independent sets are the historical root of the symmetry-breaking
toolbox the paper's ruling sets come from ([KW85, Lub86] in the paper's
derandomization lineage): an MIS is exactly a (2, 1)-ruling set.  Luby's
algorithm — every round, each live vertex draws a random priority, local
minima join the MIS, they and their neighbors leave — finishes in O(log n)
rounds w.h.p., each round O(m) work: the randomized counterpart against
which the deterministic ruling-set machinery is compared in tests.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

__all__ = ["luby_mis", "is_maximal_independent_set"]


def luby_mis(pram: PRAM, graph: Graph, seed: int = 0) -> tuple[np.ndarray, int]:
    """Luby's MIS; returns (membership mask, rounds used)."""
    n = graph.n
    rng = np.random.default_rng(seed)
    tails, heads, _ = graph.arcs()
    in_mis = np.zeros(n, dtype=bool)
    live = np.ones(n, dtype=bool)
    rounds = 0
    log_n = ceil_log2(max(n, 2)) + 1
    # w.h.p. O(log n) rounds; the 4x slack makes non-termination a reportable bug
    for _ in range(8 * log_n + 8):
        if not live.any():
            break
        rounds += 1
        prio = rng.random(n)
        prio[~live] = np.inf
        # a live vertex wins if its priority beats all live neighbors'
        best_nbr = np.full(n, np.inf)
        act = live[tails] & live[heads]
        np.minimum.at(best_nbr, tails[act], prio[heads[act]])
        winners = live & (prio < best_nbr)
        pram.charge(work=int(act.sum()) + n, depth=log_n, label="luby_round")
        if not winners.any():
            continue
        in_mis |= winners
        # winners and their neighbors retire
        retire = winners.copy()
        touched = winners[tails]
        retire[heads[touched]] = True
        live &= ~retire
    if live.any():
        raise InvalidGraphError("Luby's algorithm failed to terminate (astronomically unlikely)")
    return in_mis, rounds


def is_maximal_independent_set(graph: Graph, mask: np.ndarray) -> bool:
    """Exact check: independent (no edge inside) and maximal (dominating)."""
    u, v, _ = graph.edges()
    if np.any(mask[u] & mask[v]):
        return False
    # maximal ⟺ every non-member has a member neighbor
    covered = mask.copy()
    covered[u[mask[v]]] = True
    covered[v[mask[u]]] = True
    return bool(covered.all())
