"""Baseline: min-plus matrix squaring APSP (the deterministic strawman).

Before this paper, the only deterministic polylog-time PRAM algorithms for
(approximate) shortest paths went through (min,+)/algebraic matrix products
— Ω(n^ω) ≥ Ω(n^2.37) work [Zwi98, Zwi02] (§1.1).  We implement the simplest
member of that family: ⌈log n⌉ min-plus squarings of the distance matrix,
charged at n³ work and O(log n) depth per squaring.  E9 plots its work
against the hopset pipeline's O~((|E|+n^{1+1/κ})·n^ρ) to reproduce the
"slightly super-linear beats matrix-multiplication work" claim.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

__all__ = ["minplus_apsp"]


def minplus_apsp(pram: PRAM, graph: Graph) -> np.ndarray:
    """Exact all-pairs distances by repeated min-plus squaring.

    Returns the n × n distance matrix.  Each squaring is charged n³ work
    and O(log n) depth (an n²-way set of n-element min-reductions).
    """
    n = graph.n
    dist = np.full((n, n), np.inf)
    np.fill_diagonal(dist, 0.0)
    u, v, w = graph.edges()
    dist[u, v] = w
    dist[v, u] = w
    pram.charge(work=n * n, depth=1, label="apsp_init")
    for _ in range(ceil_log2(max(n, 2))):
        # (min,+) square: dist[i,j] = min_k dist[i,k] + dist[k,j]
        nxt = np.min(dist[:, :, None] + dist[None, :, :], axis=1)
        pram.charge(work=n**3, depth=ceil_log2(max(n, 2)) + 1, label="minplus_square")
        if np.array_equal(nxt, dist):
            break
        dist = nxt
    return dist
