"""Baseline: hopset-less parallel Bellman–Ford.

Exact SSSP by relaxing every arc for up to n−1 rounds.  Its depth is
Θ(hop-diameter): on the E4 workloads (deep layered graphs, weighted paths)
that is Θ(n) — the quantity a hopset collapses to β·polylog.  With a hop
*budget* smaller than the hop diameter its output is an *upper bound* that
can be arbitrarily bad; E4 measures exactly that divergence.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import BellmanFordResult, bellman_ford

__all__ = ["plain_sssp", "plain_sssp_budgeted"]


def plain_sssp(pram: PRAM, graph: Graph, source: int) -> BellmanFordResult:
    """Exact SSSP: relax until a fixpoint (≤ n−1 rounds)."""
    with pram.phase("plain_sssp"):
        return bellman_ford(pram, graph, source, hops=max(graph.n - 1, 1))


def plain_sssp_budgeted(
    pram: PRAM, graph: Graph, source: int, hops: int
) -> BellmanFordResult:
    """Bellman–Ford stopped at ``hops`` rounds (possibly non-converged)."""
    with pram.phase("plain_sssp_budgeted"):
        return bellman_ford(pram, graph, source, hops=hops, early_exit=False)
