"""Baseline: the randomized sampling-based hopset ([Coh94]/[EN19] style).

This is the algorithm the paper derandomizes: the identical
superclustering-and-interconnection skeleton, but the ruling-set step is
replaced by *random sampling* — every cluster is sampled with probability
1/degᵢ, sampled clusters grow superclusters via a depth-1 BFS in G̃ᵢ, and
everything unattached interconnects.

The point of the baseline (experiment E5) is the derandomization claim:
this construction's output varies across seeds (and its guarantees hold
only with high probability), while :func:`repro.hopsets.build_hopset`
produces the identical hopset on every run.  Sizes and stretches of the two
should match in *shape*.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.build import reweighted, union_with_edges
from repro.graphs.csr import Graph
from repro.hopsets.cluster_graph import bfs_from_clusters, neighbor_tables
from repro.hopsets.clusters import ClusterMemory, Partition
from repro.hopsets.hopset import INTERCONNECT, SUPERCLUSTER, Hopset, HopsetEdge
from repro.hopsets.multi_scale import scale_range
from repro.hopsets.params import HopsetParams, PhaseSchedule
from repro.pram.machine import PRAM

__all__ = ["build_randomized_hopset"]


def _single_scale_randomized(
    pram: PRAM,
    g_prev: Graph,
    schedule: PhaseSchedule,
    rng: np.random.Generator,
    tight_weights: bool,
) -> list[HopsetEdge]:
    """One scale of the sampling-based construction."""
    n = g_prev.n
    k = schedule.k
    hops = 2 * schedule.beta + 1
    log_n = math.log2(max(n, 2))
    partition = Partition.singletons(n)
    memory = ClusterMemory(n)
    edges: list[HopsetEdge] = []
    for i in range(schedule.ell + 1):
        if partition.num_clusters <= 1:
            break
        members = partition.members_by_cluster()
        centers = partition.centers
        threshold = schedule.threshold(i)
        deg = schedule.degrees[i]
        last_phase = i == schedule.ell
        x = partition.num_clusters if last_phase else deg + 1
        tables = neighbor_tables(
            pram, g_prev, partition, threshold, hops, x, members_by_cluster=members
        )
        sampled = np.zeros(partition.num_clusters, dtype=bool)
        detected = np.zeros(partition.num_clusters, dtype=bool)
        bfs = None
        if not last_phase:
            sampled = rng.random(partition.num_clusters) < 1.0 / deg
        if sampled.any():
            bfs = bfs_from_clusters(
                pram, g_prev, partition, sampled, threshold, hops,
                max_pulses=1, memory=memory, members_by_cluster=members,
            )
            detected = bfs.detected()
            formula_w = 2 * ((1 + schedule.eps_prev) * schedule.deltas[i]
                             + 2 * schedule.radii[i]) * log_n
            for c in np.flatnonzero(detected & ~sampled):
                origin = int(bfs.origin[c])
                weight = float(bfs.acc_weight[c]) if tight_weights else formula_w
                edges.append(
                    HopsetEdge(
                        u=int(centers[origin]), v=int(centers[c]), weight=weight,
                        scale=k, phase=i, kind=SUPERCLUSTER,
                    )
                )
        in_u = ~detected
        for row in range(tables.cluster.size):
            c = int(tables.cluster[row])
            s = int(tables.src[row])
            if c == s or not (in_u[c] and in_u[s]) or centers[c] > centers[s]:
                continue
            dist = float(tables.dist[row])
            if tight_weights:
                weight = (
                    float(memory.cd[int(tables.member[row])])
                    + dist
                    + float(memory.cd[int(tables.seed[row])])
                )
            else:
                weight = dist + 2 * schedule.radii[i]
            edges.append(
                HopsetEdge(
                    u=int(centers[s]), v=int(centers[c]), weight=weight,
                    scale=k, phase=i, kind=INTERCONNECT,
                )
            )
        if not sampled.any():
            break
        assert bfs is not None
        for c in np.flatnonzero(detected & ~sampled):
            memory.absorb(members[int(c)], float(bfs.acc_weight[c]))
        s_idx = np.flatnonzero(sampled)
        new_of_origin = np.full(partition.num_clusters, -1, dtype=np.int64)
        new_of_origin[s_idx] = np.arange(s_idx.size, dtype=np.int64)
        new_cluster_of = np.full(n, -1, dtype=np.int64)
        for c in np.flatnonzero(detected):
            new_cluster_of[members[int(c)]] = new_of_origin[int(bfs.origin[c])]
        partition = Partition(cluster_of=new_cluster_of, centers=centers[s_idx].copy())
    return edges


def build_randomized_hopset(
    graph: Graph,
    params: HopsetParams | None = None,
    seed: int = 0,
    pram: PRAM | None = None,
) -> Hopset:
    """The sampling-based multi-scale hopset (baseline for E5)."""
    params = params if params is not None else HopsetParams()
    pram = pram if pram is not None else PRAM()
    rng = np.random.default_rng(seed)
    n = graph.n
    hopset = Hopset(n=n, beta=params.beta_for(n), epsilon=params.epsilon)
    if graph.num_edges == 0 or n < 2:
        return hopset
    w_min = graph.min_weight()
    scaled = reweighted(graph, 1.0 / w_min) if w_min != 1.0 else graph
    k0, lam = scale_range(scaled, params.beta_for(n))
    num_scales = max(lam - k0 + 1, 1)
    eps_scale = params.epsilon / (2 * num_scales) if params.scale_epsilon else params.epsilon
    eps_prev = 0.0
    prev_edges: list[HopsetEdge] = []
    for k in range(k0, lam + 1):
        if prev_edges:
            u = np.array([e.u for e in prev_edges], dtype=np.int64)
            v = np.array([e.v for e in prev_edges], dtype=np.int64)
            w = np.array([e.weight for e in prev_edges], dtype=np.float64)
            g_prev = union_with_edges(scaled, u, v, w)
        else:
            g_prev = scaled
        schedule = PhaseSchedule.for_scale(n, k, params, eps=eps_scale, eps_prev=eps_prev)
        with pram.phase(f"rand_scale{k}"):
            edges_k = _single_scale_randomized(
                pram, g_prev, schedule, rng, params.tight_weights
            )
        hopset.add(edges_k)
        prev_edges = edges_k
        eps_prev = (1 + eps_prev) * (1 + eps_scale) - 1
    if w_min != 1.0:
        hopset.edges = [
            HopsetEdge(u=e.u, v=e.v, weight=e.weight * w_min,
                       scale=e.scale, phase=e.phase, kind=e.kind)
            for e in hopset.edges
        ]
    return hopset
