"""Baseline: Thorup–Zwick-hierarchy hopsets ([TZ01/TZ06] via [EN17b, HP19]).

The related-work section (§1.4) notes that the best randomized hopsets are
built from the Thorup–Zwick sampling hierarchy, and [HP19] showed TZ
*emulators* are universally optimal hopsets.  The classic construction:

* sample a hierarchy V = A₀ ⊇ A₁ ⊇ … ⊇ A_{k−1} (each level keeps a vertex
  with probability n^{−1/k});
* every vertex u connects to its *bunch*:
  ``B(u) = ⋃ᵢ { v ∈ Aᵢ \\ A_{i+1} : d(u, v) < d(u, A_{i+1}) }``
  plus its level pivots p_i(u), with exact distances as weights.

Expected size O(k·n^{1+1/k}).  Distances are computed exactly (sequential
Dijkstra — this is a quality baseline, not a parallel contender), so the
hopset is distance-safe by construction; its *hopbound/stretch* behaviour
is what E18 compares against the deterministic construction.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.distances import dijkstra
from repro.graphs.errors import InvalidGraphError
from repro.hopsets.hopset import INTERCONNECT, Hopset, HopsetEdge

__all__ = ["build_tz_hopset"]


def build_tz_hopset(graph: Graph, k: int = 2, seed: int = 0) -> Hopset:
    """The TZ bunch hopset with k hierarchy levels (randomized)."""
    if k < 1:
        raise InvalidGraphError(f"hierarchy depth k must be >= 1, got {k}")
    n = graph.n
    hopset = Hopset(n=n, beta=2, epsilon=float("nan"), meta={"construction": "thorup-zwick", "k": k})
    if n < 2 or graph.num_edges == 0:
        return hopset
    rng = np.random.default_rng(seed)
    p = float(n) ** (-1.0 / k)
    levels = [np.ones(n, dtype=bool)]  # A_0 = V
    for _ in range(1, k):
        prev = levels[-1]
        nxt = prev & (rng.random(n) < p)
        levels.append(nxt)
    levels.append(np.zeros(n, dtype=bool))  # A_k = ∅

    # distance to each level set, per vertex (multi-source Dijkstra per level)
    dist_to_level = np.full((k + 1, n), np.inf)
    for i in range(k + 1):
        members = np.flatnonzero(levels[i])
        if members.size == 0:
            continue
        best = np.full(n, np.inf)
        for s in members:
            best = np.minimum(best, dijkstra(graph, int(s)))
        dist_to_level[i] = best

    pairs: dict[tuple[int, int], float] = {}
    for u in range(n):
        du = dijkstra(graph, u)
        for i in range(k):
            cut = dist_to_level[i + 1][u]
            in_ring = levels[i] & ~levels[i + 1]
            for v in np.flatnonzero(in_ring):
                v = int(v)
                if v == u or not np.isfinite(du[v]):
                    continue
                if du[v] < cut:  # bunch condition
                    key = (min(u, v), max(u, v))
                    w = float(du[v])
                    if key not in pairs or w < pairs[key]:
                        pairs[key] = w
            # pivot edge to the nearest A_{i+1} vertex (if any)
            if np.isfinite(cut) and i + 1 <= k - 1:
                members = np.flatnonzero(levels[i + 1])
                if members.size:
                    piv = int(members[np.argmin([du[m] for m in members])])
                    if piv != u and np.isfinite(du[piv]):
                        key = (min(u, piv), max(u, piv))
                        w = float(du[piv])
                        if key not in pairs or w < pairs[key]:
                            pairs[key] = w

    hopset.add(
        HopsetEdge(u=a, v=b, weight=w, scale=0, phase=-1, kind=INTERCONNECT)
        for (a, b), w in sorted(pairs.items())
    )
    return hopset
