"""Command-line interface.

Usage::

    python -m repro build   graph.npz hopset.npz [--epsilon E --kappa K --rho R --beta B --paths --reduce]
                            [--store DIR [--warm]]
    python -m repro sssp    graph.npz hopset.npz --source S [--out dist.npz] [--engine {dense,sparse,auto}]
    python -m repro spt     graph.npz hopset.npz --source S [--out tree.npz]
    python -m repro oracle  graph.npz hopset.npz [--query U V ...] [--batch S1,S2,...]
                            [--mssp-block S]
    python -m repro certify graph.npz hopset.npz [--beta B --epsilon E]
    python -m repro info    artifact.npz
    python -m repro store   {ls,gc} DIR [--keep-newest N --max-bytes B]
    python -m repro gen     graph.npz --family er --n 100 [--seed 7 ...]
    python -m repro trace   {build,sssp,spt} ... --trace-out trace.json [--jsonl spans.jsonl]
    python -m repro profile {build,sssp} ... [--top N] [--flame-out flame.folded]
    python -m repro perf    {append,check} [--bench-dir D] [--history H] [--warn-only]
    python -m repro conformance [--strict] [--seed N] [--n N] [--families er,grid] [--trace-out t.json]
    python -m repro serve   graph.npz [hopset.npz] [--host H --port P] [--probe "dist U V" ...]
                            [--max-requests N --log queries.log --pair-cache K
                             --max-batch B --batch-window MS --cache-size S --hops B --backend SPEC]
                            [--mssp-block S] [--store DIR --warm [--epsilon E --kappa K ...]]

``trace`` runs the wrapped command under the observability layer
(``repro.obs``): it writes a Chrome trace-event JSON (loadable in
``chrome://tracing`` / Perfetto) with per-scale/per-phase span attribution
and per-primitive metrics, prints a flame-style report, and evaluates the
paper's theorem bound watchdogs (measured constants, PASS/WARN).  Under a
sharded backend the trace gains one lane per worker (cross-process
telemetry, docs/observability.md) and a backend-health table.

``profile`` runs build/sssp under the tracer and prints per-scale,
per-phase, per-primitive *exclusive* wall attribution (the ROADMAP item 2
instrument), plus a folded flame file for flamegraph.pl / speedscope.

``perf`` maintains the append-only benchmark ledger
(``benchmarks/BENCH_history.jsonl``): ``append`` records the current
``BENCH_*.json`` values; ``check`` compares them against the recorded
baseline under per-metric tolerance bands and exits nonzero on regression
(``--warn-only`` reports without failing).

``conformance`` diffs every vectorized primitive against a literal CREW
program and sweeps the E-family smoke graphs under the shadow race
detector (``repro.conformance``, docs/conformance.md); exit status 0 iff
everything matches bit-exactly with zero race findings.

``serve`` loads a graph plus a saved hopset into an
:class:`~repro.serve.server.OracleServer` — micro-batched tiered-cache
distance/path serving over a line-protocol TCP socket (docs/serving.md).
``--probe`` answers the given request lines in-process and exits (no
socket; the CI smoke path); otherwise the server listens on
``--host``/``--port`` until interrupted (or until ``--max-requests``).
A serving-health table is printed on exit.

``oracle`` loads a graph plus a saved hopset into a
:class:`~repro.sssp.oracle.HopsetDistanceOracle` and answers point
(``--query U V``, repeatable) or batch (``--batch S1,S2,...``) distance
queries; with neither flag it reads ``query U V`` / ``stats`` / ``quit``
lines from stdin.  Cache hit statistics are printed on exit.

Query-side commands (``sssp``/``spt``/``oracle`` and their traced forms)
accept ``--backend serial|sharded[:W]`` to pick the execution backend
(docs/backends.md); the default follows ``REPRO_BACKEND``.

Edge-list ``.txt`` inputs (``u v w`` per line) are also accepted wherever a
graph archive is expected.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.graphs.build import from_edges
from repro.graphs.csr import Graph
from repro.graphs.errors import VertexError
from repro.dynamic import DynamicSSSP
from repro.graphs.generators import (
    as_rng,
    erdos_renyi,
    failure_burst_schedule,
    grid_graph,
    layered_hop_graph,
    path_graph,
    periodic_weight_schedule,
    preferential_attachment,
    random_geometric,
    road_network,
    wide_weight_graph,
)
from repro.hopsets.errors import PathReportingError
from repro.hopsets.hopset import Hopset
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.hopsets.store import HopsetStore, build_variant
from repro.hopsets.reduction_paths import (
    build_reduced_path_reporting_hopset,
    spt_hop_budget,
)
from repro.hopsets.verification import certify
from repro.hopsets.weight_reduction import build_reduced_hopset
from repro.obs.bounds import (
    evaluate_envelopes,
    query_envelopes,
    theorem_3_7_envelopes,
    watchdog_table,
)
from repro.obs import ledger
from repro.obs.export import (
    backend_health_report,
    flame_report,
    op_wall_report,
    serve_health_report,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import profile_report, write_folded_flame
from repro.obs.tracer import SpanTracer
from repro.pram.frontier import ENGINES
from repro.pram.machine import PRAM
from repro.serialize import load_graph, load_hopset, save_graph, save_hopset
from repro.serve.server import OracleServer, serve_tcp
from repro.sssp.oracle import HopsetDistanceOracle
from repro.sssp.spt import approximate_spt
from repro.sssp.sssp import approximate_sssp_with_hopset

__all__ = ["main"]

_FAMILIES = {
    "er": lambda a: erdos_renyi(a.n, a.p, seed=a.seed, w_range=(a.wmin, a.wmax)),
    "grid": lambda a: grid_graph(
        int(a.n**0.5), int(a.n**0.5), seed=a.seed, w_range=(a.wmin, a.wmax)
    ),
    "path": lambda a: path_graph(a.n, seed=a.seed, w_range=(a.wmin, a.wmax)),
    "layered": lambda a: layered_hop_graph(max(a.n // 4, 2), 4, seed=a.seed),
    "geometric": lambda a: random_geometric(a.n, a.radius, seed=a.seed),
    "powerlaw": lambda a: preferential_attachment(a.n, 2, seed=a.seed),
    "wide": lambda a: wide_weight_graph(a.n, a.aspect, seed=a.seed),
    "road": lambda a: road_network(
        max(int(a.n**0.5), 2), max(int(a.n**0.5), 2),
        seed=a.seed, w_range=(a.wmin, a.wmax),
    ),
}


def _read_graph(path: str) -> Graph:
    p = Path(path)
    if p.suffix == ".npz":
        return load_graph(p)
    triples = []
    n = 0
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        u, v, w = line.split()
        triples.append((int(u), int(v), float(w)))
        n = max(n, int(u) + 1, int(v) + 1)
    return from_edges(n, triples)


def _params(args) -> HopsetParams:
    return HopsetParams(
        epsilon=args.epsilon, kappa=args.kappa, rho=args.rho, beta=args.beta
    )


def _add_param_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--epsilon", type=float, default=0.25)
    p.add_argument("--kappa", type=int, default=2)
    p.add_argument("--rho", type=float, default=0.4)
    p.add_argument("--beta", type=int, default=None)


def cmd_build(args, pram: PRAM | None = None) -> int:
    g = _read_graph(args.graph)
    params = _params(args)
    pram = pram if pram is not None else PRAM()
    if args.warm and not args.store:
        print("--warm needs --store DIR (the artifact cache to load from)",
              file=sys.stderr)
        return 2
    variant = build_variant(paths=args.paths, reduce=args.reduce)
    store = HopsetStore(args.store) if args.store else None
    hopset = None
    if store is not None and args.warm:
        hopset = store.load(g, params, variant=variant, cost=pram.cost)
    warm = hopset is not None
    if hopset is None:
        if args.reduce and args.paths:
            hopset, _ = build_reduced_path_reporting_hopset(g, params, pram)
        elif args.reduce:
            hopset, _ = build_reduced_hopset(g, params, pram)
        elif args.paths:
            hopset, _ = build_path_reporting_hopset(g, params, pram)
        else:
            hopset, _ = build_hopset(g, params, pram)
        if store is not None:
            store.save(g, params, hopset, variant=variant)
    save_hopset(args.out, hopset)
    source = "warm store hit" if warm else "built"
    print(
        f"{source} hopset: {hopset.num_records} records / {hopset.size()} pairs, "
        f"work={pram.cost.work:,}, depth={pram.cost.depth:,} -> {args.out}"
    )
    return 0


def _query_pram(args, pram: PRAM | None) -> PRAM:
    """The machine a query command runs on, honouring ``--backend``."""
    if pram is not None:
        return pram
    return PRAM(backend=getattr(args, "backend", None))


def cmd_sssp(args, pram: PRAM | None = None) -> int:
    g = _read_graph(args.graph)
    hopset = load_hopset(args.hopset)
    pram = _query_pram(args, pram)
    budget = args.hops if args.hops else None
    if hopset.meta.get("reduction"):
        budget = budget or spt_hop_budget(hopset.beta)
    res = approximate_sssp_with_hopset(
        g, hopset, args.source, pram=pram, hop_budget=budget, engine=args.engine
    )
    reached = int(np.isfinite(res.dist).sum())
    print(
        f"sssp from {args.source}: reached {reached}/{g.n} vertices in "
        f"{res.rounds_used} rounds"
    )
    if args.out:
        np.savez_compressed(args.out, dist=res.dist, parent=res.parent)
        print(f"wrote {args.out}")
    else:
        head = ", ".join(f"{d:.3f}" for d in res.dist[: min(10, g.n)])
        print(f"dist[0:10] = [{head}]")
    return 0


def cmd_spt(args, pram: PRAM | None = None) -> int:
    g = _read_graph(args.graph)
    hopset = load_hopset(args.hopset)
    pram = _query_pram(args, pram)
    budget = args.hops or (
        spt_hop_budget(hopset.beta) if hopset.meta.get("reduction") else None
    )
    spt = approximate_spt(g, hopset, args.source, pram=pram, hop_budget=budget)
    print(
        f"spt rooted at {args.source}: {len(spt.tree_edges())} tree edges, "
        f"peeled {sum(spt.replacements.values())} hopset edges"
    )
    if args.out:
        np.savez_compressed(args.out, parent=spt.parent, dist=spt.dist)
        print(f"wrote {args.out}")
    return 0


def cmd_certify(args) -> int:
    g = _read_graph(args.graph)
    hopset = load_hopset(args.hopset)
    beta = args.beta or 2 * hopset.beta + 1
    cert = certify(g, hopset, beta=beta, epsilon=args.epsilon)
    print(
        f"certify(beta={beta}, eps={args.epsilon}): safe={cert.safe} "
        f"holds={cert.holds} max_stretch={cert.max_stretch:.4f} "
        f"pairs={cert.pairs_checked}"
    )
    return 0 if (cert.safe and cert.holds) else 1


def cmd_info(args) -> int:
    p = Path(args.artifact)
    with np.load(p, allow_pickle=False) as data:
        kind = str(data["kind"][0])
    if kind == "graph":
        g = load_graph(p)
        print(f"graph: n={g.n}, m={g.num_edges}, weights "
              f"[{g.min_weight():.4g}, {g.max_weight():.4g}]")
    else:
        h = load_hopset(p)
        print(
            f"hopset: n={h.n}, records={h.num_records}, pairs={h.size()}, "
            f"beta={h.beta}, eps={h.epsilon}, scales={h.scales()}, "
            f"kinds={h.kind_counts()}"
        )
    return 0


def cmd_oracle(args, pram: PRAM | None = None) -> int:
    g = _read_graph(args.graph)
    hopset = load_hopset(args.hopset)
    budget = args.hops or (
        spt_hop_budget(hopset.beta) if hopset.meta.get("reduction") else None
    )
    pram = _query_pram(args, pram)
    registry = MetricsRegistry.attach(pram.cost)
    oracle = HopsetDistanceOracle(
        g, hopset, hop_budget=budget, cache_size=args.cache_size,
        pram=pram, metrics=registry, mssp_block=args.mssp_block,
    )
    ran = False
    for u, v in args.query or ():
        print(f"dist({u}, {v}) ≈ {oracle.query(u, v):.6g}")
        ran = True
    if args.batch:
        sources = np.array(
            [int(s) for s in args.batch.split(",") if s.strip()], dtype=np.int64
        )
        mat = oracle.batch(sources)
        if args.out:
            np.savez_compressed(args.out, sources=sources, dist=mat)
            print(f"wrote {args.out}")
        else:
            for s, row in zip(sources, mat):
                print(f"source {int(s)}: reached {int(np.isfinite(row).sum())}/{g.n}")
        ran = True
    if not ran:
        # interactive: one `query U V` / `stats` / `quit` command per line
        for line in sys.stdin:
            parts = line.split()
            if not parts:
                continue
            try:
                if parts[0] in ("quit", "exit"):
                    break
                elif parts[0] == "stats":
                    print(oracle.cache_info())
                elif parts[0] == "query" and len(parts) == 3:
                    print(f"dist({parts[1]}, {parts[2]}) ≈ "
                          f"{oracle.query(int(parts[1]), int(parts[2])):.6g}")
                else:
                    print(f"? unrecognized: {line.strip()!r} "
                          "(try: query U V | stats | quit)")
            except (ValueError, VertexError) as exc:
                print(f"error: {exc}")
    registry.detach(pram.cost)
    info = oracle.cache_info()
    print(
        f"oracle stats: {info['tier2_explorations']} tier-2 explorations "
        f"({info['matrix_passes']} matrix passes), "
        f"{info['tier1_vector_misses']} tier-1 vector misses, "
        f"{info['hits']} cache hits, {info['cached_sources']} sources cached"
    )
    print(
        "metrics: "
        f"oracle.cache.hit={registry.counter('oracle.cache.hit').value} "
        f"oracle.cache.miss={registry.counter('oracle.cache.miss').value}"
    )
    return 0


def _serve_hopset(args, g: Graph) -> tuple[Hopset | None, str]:
    """The hopset a ``repro serve`` boots from, plus where it came from.

    ``--warm --store DIR`` consults the content-addressed store first
    (key: graph content + build params).  Fail-soft by construction: a
    store miss falls back to the positional artifact if one was given,
    else to a fresh in-process build that is then filed in the store —
    the warm path can degrade, never break, the boot.
    """
    if args.warm:
        if not args.store:
            print("--warm needs --store DIR (the artifact cache to load from)",
                  file=sys.stderr)
            return None, ""
        params = _params(args)
        store = HopsetStore(args.store)
        hopset = store.load(g, params)
        if hopset is not None:
            return hopset, f"warm store hit ({args.store})"
        if args.hopset:
            return load_hopset(args.hopset), f"store miss -> {args.hopset}"
        hopset, _ = build_hopset(g, params, PRAM())
        store.save(g, params, hopset)
        return hopset, "store miss -> fresh build (filed)"
    if not args.hopset:
        print("need a hopset artifact (or --warm --store DIR)", file=sys.stderr)
        return None, ""
    return load_hopset(args.hopset), args.hopset


def cmd_serve(args, pram: PRAM | None = None) -> int:
    g = _read_graph(args.graph)
    if args.dynamic and not args.hopset and not args.warm:
        # the DynamicOracle builds its own path-reporting hopset
        hopset, origin = None, "fresh path-reporting build"
    else:
        hopset, origin = _serve_hopset(args, g)
        if hopset is None:
            return 2
    budget = args.hops or (
        spt_hop_budget(hopset.beta)
        if hopset is not None and hopset.meta.get("reduction")
        else None
    )
    try:
        server = OracleServer(
            g,
            hopset,
            hop_budget=budget,
            cache_size=args.cache_size,
            pair_cache=args.pair_cache,
            backend=getattr(args, "backend", None),
            max_batch=args.max_batch,
            batch_window=args.batch_window / 1000.0,
            log_path=args.log,
            mssp_block=args.mssp_block,
            dynamic=args.dynamic,
            params=_params(args),
            refresh_below=args.refresh_below,
            rebuild_below=args.rebuild_below,
        )
    except PathReportingError:
        print(
            "--dynamic needs a path-reporting hopset (build with --paths) "
            "or no artifact at all (one is built fresh)",
            file=sys.stderr,
        )
        return 2
    rc = 0
    try:
        if args.probe:
            for reply in server.serve_batch(list(args.probe)):
                print(reply)
                if reply.startswith("err "):
                    rc = 1
        else:
            tcp = serve_tcp(server, host=args.host, port=args.port)
            if args.max_requests:
                server.on_request_limit(args.max_requests, tcp.shutdown)
            # flush: clients script against this line to learn the bound
            # port, and block-buffered pipes would hold it until exit
            verbs = "dist U V | path U V"
            if args.dynamic:
                verbs += " | update U V W | delete U V"
            print(
                f"serving {args.graph} + {origin} on "
                f"{args.host}:{tcp.port} (backend {server.pram.backend.describe()}; "
                f"protocol: {verbs} | stats | quit)",
                flush=True,
            )
            try:
                tcp.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive stop
                pass
            finally:
                tcp.shutdown()
                tcp.server_close()
    finally:
        registry = server.registry
        server.close()
    health = serve_health_report(registry)
    if health:
        print(health)
    info = server.oracle.cache_info()
    print(
        f"serve stats: {info['tier2_explorations']} tier-2 explorations "
        f"({info['matrix_passes']} matrix passes), "
        f"{info['tier1_vector_misses']} tier-1 vector misses, "
        f"{info['hits']} cache hits, {info['cached_sources']} sources cached"
    )
    if server.degraded:
        print(f"degraded to in-process serving ({server.degraded})")
    return rc


def _mixed_schedule(g: Graph, steps: int, rate: int, seed) -> list[list[tuple]]:
    """Random update/delete/re-insert batches, valid by construction.

    Mirrors the liveness every op induces while generating, so a delete
    always targets a live edge and a re-insert a dead one — the schedule
    replays cleanly against any consumer.
    """
    rng = as_rng(seed)
    live = {
        (int(u), int(v)): float(w)
        for u, v, w in zip(g.edge_u, g.edge_v, g.edge_w)
    }
    dead: dict[tuple[int, int], float] = {}
    batches: list[list[tuple]] = []
    for _ in range(steps):
        batch: list[tuple] = []
        for _ in range(rate):
            r = rng.random()
            if r < 0.15 and len(live) > 1:
                pairs = list(live)
                u, v = pairs[int(rng.integers(0, len(pairs)))]
                dead[(u, v)] = live.pop((u, v))
                batch.append(("delete", u, v, None))
            elif r < 0.3 and dead:
                pairs = list(dead)
                u, v = pairs[int(rng.integers(0, len(pairs)))]
                w = dead.pop((u, v))
                live[(u, v)] = w
                batch.append(("update", u, v, w))
            else:
                pairs = list(live)
                u, v = pairs[int(rng.integers(0, len(pairs)))]
                w = live[(u, v)] * float(rng.uniform(0.5, 2.0))
                live[(u, v)] = w
                batch.append(("update", u, v, w))
        batches.append(batch)
    return batches


def _dynamic_schedule(g: Graph, args) -> list[list[tuple]]:
    """Materialize the requested time-varying workload as op batches."""
    if args.schedule == "rush":
        frac = min(1.0, max(args.rate, 1) / max(g.num_edges, 1))
        return periodic_weight_schedule(g, args.steps, frac=frac, seed=args.seed)
    if args.schedule == "failures":
        burst_size = max(1, min(args.rate, g.num_edges // max(args.steps, 1)))
        return failure_burst_schedule(
            g, bursts=max(1, args.steps // 3), burst_size=burst_size,
            quiet=1, seed=args.seed,
        )
    return _mixed_schedule(g, args.steps, max(args.rate, 1), args.seed)


def cmd_dynamic(args, pram: PRAM | None = None) -> int:
    g = _read_graph(args.graph)
    pram = _query_pram(args, pram)
    dyn = DynamicSSSP(g, args.source, fallback_frac=args.fallback_frac, pram=pram)
    batches = _dynamic_schedule(g, args)
    print(
        f"dynamic sssp from {args.source}: n={g.n}, m={g.num_edges}, "
        f"schedule={args.schedule}, fallback_frac={dyn.fallback_frac}"
    )
    print(f"{'step':>4} {'ops':>4} {'repair':>6} {'rebuild':>7} "
          f"{'noop':>5} {'dirty':>6} {'work':>12} {'reached':>7}")
    for step, batch in enumerate(batches):
        modes = {"repair": 0, "rebuild": 0, "noop": 0}
        work = dirty = 0
        for op in batch:
            st = dyn.apply(tuple(op))
            modes[st.mode] += 1
            work += st.work
            dirty += st.dirty
        if args.verify:
            dyn.verify()
        reached = int(np.isfinite(dyn.dist).sum())
        print(
            f"{step:>4} {len(batch):>4} {modes['repair']:>6} "
            f"{modes['rebuild']:>7} {modes['noop']:>5} {dirty:>6} "
            f"{work:>12,} {reached:>7}"
        )
    print(
        f"totals: {dyn.updates} updates -> {dyn.repairs} repairs / "
        f"{dyn.rebuilds} rebuilds; charged work repair={dyn.repair_work:,} "
        f"rebuild={dyn.rebuild_work:,}"
        + (" (verified bit-exact each step)" if args.verify else "")
    )
    return 0


_TRACEABLE = {"build": cmd_build, "sssp": cmd_sssp, "spt": cmd_spt}


def _trace_envelopes(args, g: Graph):
    """Pick the theorem envelopes matching the traced subcommand."""
    # Λ bound as used by multi_scale.scale_range: normalized weighted diameter.
    aspect = (g.total_weight() / g.min_weight()) if g.num_edges else 2.0
    if args.traced == "build":
        return theorem_3_7_envelopes(g.n, g.num_edges, _params(args), aspect_ratio=aspect)
    hopset = load_hopset(args.hopset)
    budget = args.hops or (
        spt_hop_budget(hopset.beta) if hopset.meta.get("reduction") else None
    )
    beta = budget if budget is not None else 2 * hopset.beta + 1
    return query_envelopes(g.n, g.num_edges, hopset.num_records, beta)


def cmd_trace(args) -> int:
    runner = _TRACEABLE[args.traced]
    pram = _query_pram(args, None)
    tracer = SpanTracer.attach(pram.cost, root_name=args.traced)
    registry = MetricsRegistry.attach(pram.cost)
    try:
        rc = runner(args, pram)
    finally:
        root = tracer.finish()
        registry.detach(pram.cost)
    if rc != 0:
        return rc
    g = _read_graph(args.graph)
    verdicts = evaluate_envelopes(root, _trace_envelopes(args, g))
    extra = {
        "command": args.traced,
        "graph": {"n": g.n, "m": g.num_edges},
        "watchdogs": [v.to_dict() for v in verdicts],
    }
    write_chrome_trace(
        args.trace_out, tracer, metrics=registry, extra=extra,
        worker_rounds=getattr(pram.backend, "round_log", None),
    )
    if args.jsonl:
        write_jsonl(args.jsonl, tracer)
    print(flame_report(tracer, title=f"trace: {args.traced}"))
    print(op_wall_report(tracer, title=f"where real time goes: {args.traced}"))
    health = backend_health_report(registry)
    if health:
        print(health)
    print(watchdog_table(verdicts))
    print(
        f"span coverage: {100 * tracer.coverage():.1f}% of charged work; "
        f"wrote {args.trace_out}"
        + (f" and {args.jsonl}" if args.jsonl else "")
    )
    # WARN verdicts are advisory (tracked constants), not failures.
    return 0


def cmd_profile(args) -> int:
    runner = _TRACEABLE[args.profiled]
    pram = _query_pram(args, None)
    tracer = SpanTracer.attach(pram.cost, root_name=args.profiled)
    try:
        rc = runner(args, pram)
    finally:
        tracer.finish()
    if rc != 0:
        return rc
    print(profile_report(tracer, top=args.top))
    flame = args.flame_out or f"profile_{args.profiled}.folded"
    write_folded_flame(flame, tracer)
    print(f"wrote folded flame: {flame}")
    return 0


def cmd_perf(args) -> int:
    bench_dir = Path(args.bench_dir)
    history = Path(args.history) if args.history else ledger.history_path(bench_dir)
    if args.perf_action == "append":
        pairs = ledger.scan_bench_dir(bench_dir)
        if not pairs:
            print(f"no BENCH_*.json under {bench_dir}", file=sys.stderr)
            return 2
        host = ledger.host_fingerprint()
        sha = ledger.git_sha()
        records = [
            ledger.make_record(bid, metrics, host=host, sha=sha)
            for bid, metrics in pairs
        ]
        n = ledger.append_records(history, records)
        print(f"appended {n} records ({host}, {sha[:12]}) -> {history}")
        return 0
    regressions, compared, missing = ledger.check(bench_dir, history)
    for r in regressions:
        print(f"REGRESSION: {r}")
    if missing:
        print(f"no baseline yet for {len(missing)} bench(es): {', '.join(missing)}")
    verdict = "FAIL" if regressions else "PASS"
    print(
        f"perf check: {compared} benches vs {history} -> "
        f"{len(regressions)} regressions ({verdict})"
    )
    if regressions and not args.warn_only:
        return 1
    return 0


def cmd_conformance(args) -> int:
    from repro.conformance import (
        SMOKE_FAMILIES,
        ShadowCREW,
        all_clean,
        conformance_summary,
        graph_table,
        primitive_table,
        run_graph_conformance,
        run_primitive_diffs,
    )

    families = (
        tuple(f.strip() for f in args.families.split(",") if f.strip())
        if args.families
        else tuple(SMOKE_FAMILIES)
    )
    unknown = [f for f in families if f not in SMOKE_FAMILIES]
    if unknown:
        print(f"unknown families {unknown}; options: {sorted(SMOKE_FAMILIES)}",
              file=sys.stderr)
        return 2

    prim_outcomes = run_primitive_diffs(seed=args.seed, strict=args.strict)

    # the graph sweep runs on one traced, metered, shadowed machine so the
    # flame report (and optional trace export) attributes the conformance
    # work and any race findings per family
    pram = PRAM()
    tracer = SpanTracer.attach(pram.cost, root_name="conformance")
    registry = MetricsRegistry.attach(pram.cost)
    shadow = ShadowCREW.attach(pram.cost, strict=args.strict)
    try:
        graph_outcomes = run_graph_conformance(
            n=args.n, seed=args.seed, strict=args.strict,
            families=families, pram=pram, shadow=shadow,
        )
    finally:
        shadow.detach(pram.cost)
        tracer.finish()
        registry.detach(pram.cost)

    print(primitive_table(prim_outcomes))
    print()
    print(graph_table(graph_outcomes))
    print()
    mode = "strict" if args.strict else "common"
    print(flame_report(tracer, title=f"conformance sweep ({mode} rule)"))
    summary = conformance_summary(prim_outcomes, graph_outcomes, shadow)
    if args.trace_out:
        write_chrome_trace(
            args.trace_out, tracer, metrics=registry,
            extra={"conformance": summary},
        )
        print(f"wrote {args.trace_out}")
    ok = all_clean(prim_outcomes, graph_outcomes)
    print(
        f"conformance ({mode}): "
        f"{summary['primitives']['passed']}/{summary['primitives']['cases']} "
        f"primitive cases, {sum(1 for r in graph_outcomes if r.ok)}/"
        f"{len(graph_outcomes)} graph families, "
        f"{len(shadow.findings)} race findings -> "
        + ("PASS" if ok else "FAIL")
    )
    return 0 if ok else 1


def _human_age(seconds: float) -> str:
    """Compact age rendering for the store listing (42s / 3.2h / 5.1d)."""
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def cmd_store(args) -> int:
    store = HopsetStore(args.dir)
    if args.store_action == "ls":
        entries = store.entries()
        total = sum(e.size for e in entries)
        print(f"store {args.dir}: {len(entries)} artifacts, {total:,} bytes")
        for e in entries:
            print(f"  {e.key[:16]}  {e.size:>12,} B  {_human_age(e.age_s):>7}  "
                  f"{e.path.name}")
        return 0
    if args.keep_newest is None and args.max_bytes is None:
        print("store gc needs --keep-newest N and/or --max-bytes B",
              file=sys.stderr)
        return 2
    removed = store.gc(keep_newest=args.keep_newest, max_bytes=args.max_bytes)
    freed = sum(e.size for e in removed)
    kept = store.entries()
    held = sum(e.size for e in kept)
    print(
        f"store gc {args.dir}: removed {len(removed)} artifacts "
        f"({freed:,} bytes), kept {len(kept)} ({held:,} bytes)"
    )
    return 0


def cmd_gen(args) -> int:
    if args.family not in _FAMILIES:
        print(f"unknown family {args.family!r}; options: {sorted(_FAMILIES)}",
              file=sys.stderr)
        return 2
    g = _FAMILIES[args.family](args)
    save_graph(args.out, g)
    print(f"generated {args.family}: n={g.n}, m={g.num_edges} -> {args.out}")
    return 0


def _add_build_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("graph")
    p.add_argument("out")
    _add_param_flags(p)
    p.add_argument("--paths", action="store_true", help="record memory paths (§4)")
    p.add_argument("--reduce", action="store_true", help="Klein–Sairam reduction (App. C/D)")
    p.add_argument(
        "--store", default=None, metavar="DIR",
        help="content-addressed hopset store: built artifacts are filed "
             "under graph+params keys (docs/hopset_store.md)",
    )
    p.add_argument(
        "--warm", action="store_true",
        help="consult --store before building: a key hit loads the cached "
             "hopset instead of rebuilding (miss falls back to a build)",
    )


def _add_query_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("graph")
    p.add_argument("hopset")
    p.add_argument("--source", type=int, default=0)
    p.add_argument("--hops", type=int, default=None)
    p.add_argument("--out", default=None)
    p.add_argument(
        "--engine", choices=ENGINES, default="auto",
        help="relaxation schedule: dense, sparse-frontier, or auto-switch "
             "(docs/frontier.md; sssp only)",
    )
    _add_backend_flag(p)


def _add_backend_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend", default=None, metavar="SPEC",
        help="execution backend: serial or sharded[:W] (docs/backends.md; "
             "default follows REPRO_BACKEND)",
    )


def _add_mssp_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--mssp-block", type=int, default=None, metavar="S",
        help="S×V matrix-engine row-block width for grouped explorations "
             "(docs/mssp.md; 0 disables batching, default follows REPRO_MSSP)",
    )


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro", description="Deterministic PRAM hopsets & approximate SSSP"
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="build a hopset for a graph")
    _add_build_flags(p)
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("sssp", help="(1+eps)-approximate single-source distances")
    _add_query_flags(p)
    p.set_defaults(func=cmd_sssp)

    p = sub.add_parser("spt", help="(1+eps)-approximate shortest-path tree")
    _add_query_flags(p)
    p.set_defaults(func=cmd_spt)

    p = sub.add_parser(
        "oracle", help="answer pair/batch distance queries from a saved hopset"
    )
    p.add_argument("graph")
    p.add_argument("hopset")
    p.add_argument(
        "--query", nargs=2, type=int, action="append", metavar=("U", "V"),
        help="approximate U-V distance (repeatable)",
    )
    p.add_argument(
        "--batch", default=None, metavar="S1,S2,...",
        help="comma-separated sources; full distance rows (aMSSD)",
    )
    p.add_argument("--hops", type=int, default=None)
    p.add_argument("--cache-size", type=int, default=32,
                   help="LRU source-vector cache size")
    p.add_argument("--out", default=None,
                   help="write the --batch matrix to this .npz")
    _add_backend_flag(p)
    _add_mssp_flag(p)
    p.set_defaults(func=cmd_oracle)

    p = sub.add_parser(
        "serve",
        help="line-protocol query server over a saved hopset (docs/serving.md)",
    )
    p.add_argument("graph")
    p.add_argument("hopset", nargs="?", default=None,
                   help="saved hopset artifact (optional with --warm --store)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0: pick a free ephemeral port)")
    p.add_argument(
        "--probe", action="append", default=None, metavar="LINE",
        help="serve this request line in-process and exit (repeatable; "
             "no socket — exit 1 if any reply is an error)",
    )
    p.add_argument("--max-requests", type=int, default=None,
                   help="shut the server down after serving this many requests")
    p.add_argument("--log", default=None, metavar="PATH",
                   help="append served dist/path request lines (replay input)")
    p.add_argument("--pair-cache", type=int, default=4096,
                   help="exact-hit pair cache entries (0 disables the tier)")
    p.add_argument("--max-batch", type=int, default=64,
                   help="micro-batch size cap")
    p.add_argument("--batch-window", type=float, default=1.0,
                   help="micro-batch gather window, milliseconds (0: no wait)")
    p.add_argument("--cache-size", type=int, default=128,
                   help="LRU source-vector cache size")
    p.add_argument("--hops", type=int, default=None)
    p.add_argument(
        "--store", default=None, metavar="DIR",
        help="content-addressed hopset store to boot from with --warm "
             "(docs/hopset_store.md)",
    )
    p.add_argument(
        "--warm", action="store_true",
        help="boot from --store: a key hit loads the cached hopset; a miss "
             "falls back to the positional artifact or a fresh build",
    )
    p.add_argument(
        "--dynamic", action="store_true",
        help="accept update U V W / delete U V mutation verbs "
             "(docs/dynamic.md); needs a path-reporting hopset, or no "
             "artifact at all (one is built fresh)",
    )
    p.add_argument(
        "--refresh-below", type=float, default=0.5, metavar="F",
        help="refresh a hopset scale when its live fraction drops below F",
    )
    p.add_argument(
        "--rebuild-below", type=float, default=0.2, metavar="F",
        help="rebuild the whole hopset when overall liveness drops below F",
    )
    _add_param_flags(p)
    _add_backend_flag(p)
    _add_mssp_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "dynamic",
        help="maintain exact SSSP under a time-varying update schedule "
             "(docs/dynamic.md)",
    )
    p.add_argument("graph")
    p.add_argument("--source", type=int, default=0)
    p.add_argument(
        "--schedule", choices=("rush", "failures", "mixed"), default="mixed",
        help="workload: periodic congestion, failure bursts, or random mix",
    )
    p.add_argument("--steps", type=int, default=12,
                   help="schedule steps (batches of updates)")
    p.add_argument(
        "--rate", type=int, default=4,
        help="updates per step (mixed), congested-edge count (rush), "
             "or burst size (failures)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--fallback-frac", type=float, default=None, metavar="F",
        help="repair->rebuild threshold as a fraction of all CSR arcs "
             "(default follows REPRO_DYN_FALLBACK)",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="assert bit-exactness against a full recompute after every step",
    )
    _add_backend_flag(p)
    p.set_defaults(func=cmd_dynamic)

    p = sub.add_parser(
        "trace", help="run build/sssp/spt under the tracer + theorem watchdogs"
    )
    tsub = p.add_subparsers(dest="traced", required=True)
    for name, adder in (
        ("build", _add_build_flags),
        ("sssp", _add_query_flags),
        ("spt", _add_query_flags),
    ):
        tp = tsub.add_parser(name, help=f"traced {name}")
        adder(tp)
        tp.add_argument(
            "--trace-out", required=True, help="Chrome trace-event JSON output path"
        )
        tp.add_argument("--jsonl", default=None, help="also write one span per line")
        tp.set_defaults(func=cmd_trace, traced=name)

    p = sub.add_parser(
        "profile",
        help="per-scale, per-primitive wall attribution + folded flame export",
    )
    psub = p.add_subparsers(dest="profiled", required=True)
    for name, adder in (("build", _add_build_flags), ("sssp", _add_query_flags)):
        pp = psub.add_parser(name, help=f"profiled {name}")
        adder(pp)
        pp.add_argument("--top", type=int, default=12,
                        help="rows in the hot-primitive table")
        pp.add_argument("--flame-out", default=None,
                        help="folded-stack output path "
                             "(default profile_<cmd>.folded)")
        pp.set_defaults(func=cmd_profile, profiled=name)

    p = sub.add_parser(
        "perf", help="append to / check against the benchmark perf ledger"
    )
    fsub = p.add_subparsers(dest="perf_action", required=True)
    for name, hint in (
        ("append", "record current BENCH_*.json values in the ledger"),
        ("check", "compare BENCH_*.json against the recorded baseline"),
    ):
        fp = fsub.add_parser(name, help=hint)
        fp.add_argument("--bench-dir", default="benchmarks",
                        help="directory holding BENCH_*.json (default benchmarks)")
        fp.add_argument("--history", default=None,
                        help="ledger path (default <bench-dir>/BENCH_history.jsonl "
                             "or REPRO_LEDGER_PATH)")
        if name == "check":
            fp.add_argument("--warn-only", action="store_true",
                            help="report regressions without failing")
        fp.set_defaults(func=cmd_perf, perf_action=name)

    p = sub.add_parser(
        "conformance",
        help="diff vectorized primitives vs literal CREW + shadow race scan",
    )
    p.add_argument("--strict", action="store_true",
                   help="reject equal-valued double writes too (strict CREW)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--n", type=int, default=32,
                   help="smoke graph size for the E-family sweep")
    p.add_argument("--families", default=None,
                   help="comma-separated subset of the smoke families")
    p.add_argument("--trace-out", default=None,
                   help="also write a Chrome trace with the conformance summary")
    p.set_defaults(func=cmd_conformance)

    p = sub.add_parser("certify", help="verify eq. (1) exhaustively")
    p.add_argument("graph")
    p.add_argument("hopset")
    p.add_argument("--beta", type=int, default=None)
    p.add_argument("--epsilon", type=float, default=0.25)
    p.set_defaults(func=cmd_certify)

    p = sub.add_parser("info", help="describe a saved artifact")
    p.add_argument("artifact")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser(
        "store", help="inspect / garbage-collect a content-addressed hopset store"
    )
    ssub = p.add_subparsers(dest="store_action", required=True)
    sp = ssub.add_parser("ls", help="list filed artifacts (size, age, key)")
    sp.add_argument("dir", help="store directory (the build --store DIR)")
    sp.set_defaults(func=cmd_store)
    sp = ssub.add_parser("gc", help="evict old artifacts to bound the store")
    sp.add_argument("dir", help="store directory (the build --store DIR)")
    sp.add_argument("--keep-newest", type=int, default=None, metavar="N",
                    help="keep only the N most recently filed artifacts")
    sp.add_argument("--max-bytes", type=int, default=None, metavar="B",
                    help="evict oldest-first until at most B bytes remain")
    sp.set_defaults(func=cmd_store)

    p = sub.add_parser("gen", help="generate a workload graph")
    p.add_argument("out")
    p.add_argument("--family", default="er")
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--p", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--wmin", type=float, default=1.0)
    p.add_argument("--wmax", type=float, default=4.0)
    p.add_argument("--radius", type=float, default=0.2)
    p.add_argument("--aspect", type=float, default=1e4)
    p.set_defaults(func=cmd_gen)
    return ap


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
