"""Command-line interface.

Usage::

    python -m repro build   graph.npz hopset.npz [--epsilon E --kappa K --rho R --beta B --paths --reduce]
    python -m repro sssp    graph.npz hopset.npz --source S [--out dist.npz]
    python -m repro spt     graph.npz hopset.npz --source S [--out tree.npz]
    python -m repro certify graph.npz hopset.npz [--beta B --epsilon E]
    python -m repro info    artifact.npz
    python -m repro gen     graph.npz --family er --n 100 [--seed 7 ...]

Edge-list ``.txt`` inputs (``u v w`` per line) are also accepted wherever a
graph archive is expected.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.graphs.build import from_edges
from repro.graphs.csr import Graph
from repro.graphs.generators import (
    erdos_renyi,
    grid_graph,
    layered_hop_graph,
    path_graph,
    preferential_attachment,
    random_geometric,
    wide_weight_graph,
)
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.hopsets.reduction_paths import (
    build_reduced_path_reporting_hopset,
    spt_hop_budget,
)
from repro.hopsets.verification import certify
from repro.hopsets.weight_reduction import build_reduced_hopset
from repro.pram.machine import PRAM
from repro.serialize import load_graph, load_hopset, save_graph, save_hopset
from repro.sssp.spt import approximate_spt
from repro.sssp.sssp import approximate_sssp_with_hopset

__all__ = ["main"]

_FAMILIES = {
    "er": lambda a: erdos_renyi(a.n, a.p, seed=a.seed, w_range=(a.wmin, a.wmax)),
    "grid": lambda a: grid_graph(
        int(a.n**0.5), int(a.n**0.5), seed=a.seed, w_range=(a.wmin, a.wmax)
    ),
    "path": lambda a: path_graph(a.n, seed=a.seed, w_range=(a.wmin, a.wmax)),
    "layered": lambda a: layered_hop_graph(max(a.n // 4, 2), 4, seed=a.seed),
    "geometric": lambda a: random_geometric(a.n, a.radius, seed=a.seed),
    "powerlaw": lambda a: preferential_attachment(a.n, 2, seed=a.seed),
    "wide": lambda a: wide_weight_graph(a.n, a.aspect, seed=a.seed),
}


def _read_graph(path: str) -> Graph:
    p = Path(path)
    if p.suffix == ".npz":
        return load_graph(p)
    triples = []
    n = 0
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        u, v, w = line.split()
        triples.append((int(u), int(v), float(w)))
        n = max(n, int(u) + 1, int(v) + 1)
    return from_edges(n, triples)


def _params(args) -> HopsetParams:
    return HopsetParams(
        epsilon=args.epsilon, kappa=args.kappa, rho=args.rho, beta=args.beta
    )


def _add_param_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--epsilon", type=float, default=0.25)
    p.add_argument("--kappa", type=int, default=2)
    p.add_argument("--rho", type=float, default=0.4)
    p.add_argument("--beta", type=int, default=None)


def cmd_build(args) -> int:
    g = _read_graph(args.graph)
    params = _params(args)
    pram = PRAM()
    if args.reduce and args.paths:
        hopset, _ = build_reduced_path_reporting_hopset(g, params, pram)
    elif args.reduce:
        hopset, _ = build_reduced_hopset(g, params, pram)
    elif args.paths:
        hopset, _ = build_path_reporting_hopset(g, params, pram)
    else:
        hopset, _ = build_hopset(g, params, pram)
    save_hopset(args.out, hopset)
    print(
        f"built hopset: {hopset.num_records} records / {hopset.size()} pairs, "
        f"work={pram.cost.work:,}, depth={pram.cost.depth:,} -> {args.out}"
    )
    return 0


def cmd_sssp(args) -> int:
    g = _read_graph(args.graph)
    hopset = load_hopset(args.hopset)
    budget = args.hops if args.hops else None
    if hopset.meta.get("reduction"):
        budget = budget or spt_hop_budget(hopset.beta)
    res = approximate_sssp_with_hopset(g, hopset, args.source, hop_budget=budget)
    reached = int(np.isfinite(res.dist).sum())
    print(
        f"sssp from {args.source}: reached {reached}/{g.n} vertices in "
        f"{res.rounds_used} rounds"
    )
    if args.out:
        np.savez_compressed(args.out, dist=res.dist, parent=res.parent)
        print(f"wrote {args.out}")
    else:
        head = ", ".join(f"{d:.3f}" for d in res.dist[: min(10, g.n)])
        print(f"dist[0:10] = [{head}]")
    return 0


def cmd_spt(args) -> int:
    g = _read_graph(args.graph)
    hopset = load_hopset(args.hopset)
    budget = args.hops or (
        spt_hop_budget(hopset.beta) if hopset.meta.get("reduction") else None
    )
    spt = approximate_spt(g, hopset, args.source, hop_budget=budget)
    print(
        f"spt rooted at {args.source}: {len(spt.tree_edges())} tree edges, "
        f"peeled {sum(spt.replacements.values())} hopset edges"
    )
    if args.out:
        np.savez_compressed(args.out, parent=spt.parent, dist=spt.dist)
        print(f"wrote {args.out}")
    return 0


def cmd_certify(args) -> int:
    g = _read_graph(args.graph)
    hopset = load_hopset(args.hopset)
    beta = args.beta or 2 * hopset.beta + 1
    cert = certify(g, hopset, beta=beta, epsilon=args.epsilon)
    print(
        f"certify(beta={beta}, eps={args.epsilon}): safe={cert.safe} "
        f"holds={cert.holds} max_stretch={cert.max_stretch:.4f} "
        f"pairs={cert.pairs_checked}"
    )
    return 0 if (cert.safe and cert.holds) else 1


def cmd_info(args) -> int:
    p = Path(args.artifact)
    with np.load(p, allow_pickle=False) as data:
        kind = str(data["kind"][0])
    if kind == "graph":
        g = load_graph(p)
        print(f"graph: n={g.n}, m={g.num_edges}, weights "
              f"[{g.min_weight():.4g}, {g.max_weight():.4g}]")
    else:
        h = load_hopset(p)
        print(
            f"hopset: n={h.n}, records={h.num_records}, pairs={h.size()}, "
            f"beta={h.beta}, eps={h.epsilon}, scales={h.scales()}, "
            f"kinds={h.kind_counts()}"
        )
    return 0


def cmd_gen(args) -> int:
    if args.family not in _FAMILIES:
        print(f"unknown family {args.family!r}; options: {sorted(_FAMILIES)}",
              file=sys.stderr)
        return 2
    g = _FAMILIES[args.family](args)
    save_graph(args.out, g)
    print(f"generated {args.family}: n={g.n}, m={g.num_edges} -> {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro", description="Deterministic PRAM hopsets & approximate SSSP"
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="build a hopset for a graph")
    p.add_argument("graph")
    p.add_argument("out")
    _add_param_flags(p)
    p.add_argument("--paths", action="store_true", help="record memory paths (§4)")
    p.add_argument("--reduce", action="store_true", help="Klein–Sairam reduction (App. C/D)")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("sssp", help="(1+eps)-approximate single-source distances")
    p.add_argument("graph")
    p.add_argument("hopset")
    p.add_argument("--source", type=int, default=0)
    p.add_argument("--hops", type=int, default=None)
    p.add_argument("--out", default=None)
    p.set_defaults(func=cmd_sssp)

    p = sub.add_parser("spt", help="(1+eps)-approximate shortest-path tree")
    p.add_argument("graph")
    p.add_argument("hopset")
    p.add_argument("--source", type=int, default=0)
    p.add_argument("--hops", type=int, default=None)
    p.add_argument("--out", default=None)
    p.set_defaults(func=cmd_spt)

    p = sub.add_parser("certify", help="verify eq. (1) exhaustively")
    p.add_argument("graph")
    p.add_argument("hopset")
    p.add_argument("--beta", type=int, default=None)
    p.add_argument("--epsilon", type=float, default=0.25)
    p.set_defaults(func=cmd_certify)

    p = sub.add_parser("info", help="describe a saved artifact")
    p.add_argument("artifact")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("gen", help="generate a workload graph")
    p.add_argument("out")
    p.add_argument("--family", default="er")
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--p", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--wmin", type=float, default=1.0)
    p.add_argument("--wmax", type=float, default=4.0)
    p.add_argument("--radius", type=float, default=0.2)
    p.add_argument("--aspect", type=float, default=1e4)
    p.set_defaults(func=cmd_gen)
    return ap


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
