"""CREW conformance harness: shadow race detection + differential execution.

Two complementary checks keep the vectorized PRAM machine honest against
the literal CREW model of Section 1.5.1:

* :class:`ShadowCREW` (see :mod:`repro.conformance.shadow`) subscribes to
  a cost model and validates every primitive's declared per-round write
  footprint against the CREW discipline — the ``CREWMemory.end_round``
  check, applied to the fast path.
* :mod:`repro.conformance.diff` runs each primitive vectorized *and* as a
  literal staged-memory program on the same adversarial inputs, asserting
  bit-exact outputs and consistent round counts, and sweeps the E-family
  smoke graphs end-to-end (literal Bellman–Ford SSSP diff + a shadowed
  hopset build).

``python -m repro conformance [--strict]`` drives both and prints the
pass/fail tables; see ``docs/conformance.md``.
"""

from repro.conformance.diff import (
    PRIMITIVE_CASES,
    SMOKE_FAMILIES,
    DiffOutcome,
    GraphOutcome,
    diff_sssp,
    run_graph_conformance,
    run_primitive_diffs,
)
from repro.conformance.report import (
    all_clean,
    conformance_summary,
    graph_table,
    primitive_table,
)
from repro.conformance.shadow import RaceFinding, ShadowCREW, shadowed

__all__ = [
    "ShadowCREW",
    "RaceFinding",
    "shadowed",
    "DiffOutcome",
    "GraphOutcome",
    "PRIMITIVE_CASES",
    "SMOKE_FAMILIES",
    "run_primitive_diffs",
    "run_graph_conformance",
    "diff_sssp",
    "primitive_table",
    "graph_table",
    "conformance_summary",
    "all_clean",
]
