"""The differential executor: vectorized primitives vs literal CREW.

Every public primitive of the :class:`~repro.pram.machine.PRAM` machine is
run twice on the same inputs — once vectorized (under a
:class:`~repro.conformance.shadow.ShadowCREW` race detector) and once as a
literal program on the staged :class:`~repro.pram.memory.CREWMemory` — and
the harness asserts:

* **bit-exact outputs** (value inputs are integer-valued doubles, so even
  re-associated float sums are exact);
* **consistent round counts**: each side stays within its documented depth
  envelope, and the envelopes are tied to each other where the networks
  match (the literal side pays explicit load rounds; the literal sort is
  an odd–even transposition network, so it has its own O(n) envelope);
* **zero race findings** from the shadow detector.

The adversarial input family per primitive: ``empty``, ``singleton``,
``duplicate-index`` (every update colliding on a few cells), ``all-ties``
(equal keys everywhere — the COMMON-rule stress case), and
``adversarial-stride`` (strided collisions with descending values), plus a
seeded ``random`` case.  No test-time randomness: the seed is an input.

:func:`run_graph_conformance` lifts the same discipline to whole
executions on the E-family smoke graphs: hopset-free SSSP is diffed
against the literal :func:`~repro.pram.reference.crew_sssp` bit-exactly,
and a full hopset construction runs under the shadow detector as a
race scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.generators import (
    erdos_renyi,
    grid_graph,
    layered_hop_graph,
    path_graph,
    preferential_attachment,
    random_geometric,
    wide_weight_graph,
)
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram import pointer_jumping, primitives, reference, scan, sort
from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError, WriteConflictError
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2
from repro.pram.workspace import Workspace
from repro.sssp.bellman_ford import bellman_ford

from repro.conformance.shadow import ShadowCREW

__all__ = [
    "DiffOutcome",
    "GraphOutcome",
    "PRIMITIVE_CASES",
    "SMOKE_FAMILIES",
    "run_primitive_diffs",
    "diff_sssp",
    "run_graph_conformance",
]

#: The adversarial input family every primitive is diffed across.
PRIMITIVE_CASES = (
    "empty",
    "singleton",
    "duplicate-index",
    "all-ties",
    "adversarial-stride",
    "random",
)

_N = 24  # default per-case input size (kept small: the literal side is slow)


@dataclass(frozen=True)
class DiffOutcome:
    """One (primitive, input-case) differential run."""

    primitive: str
    case: str
    n: int
    outputs_equal: bool
    rounds_ok: bool
    races: int
    vec_depth: int
    lit_rounds: int
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outputs_equal and self.rounds_ok and self.races == 0


@dataclass(frozen=True)
class GraphOutcome:
    """One E-family smoke graph swept by the conformance harness."""

    family: str
    n: int
    m: int
    dist_equal: bool
    rounds_ok: bool
    races: int
    vec_rounds: int
    lit_rounds: int

    @property
    def ok(self) -> bool:
        return self.dist_equal and self.rounds_ok and self.races == 0


# -- input construction ------------------------------------------------------


def _values(case: str, seed: int, n: int = _N) -> np.ndarray:
    """Integer-valued doubles per case (exact under any summation order)."""
    rng = np.random.default_rng(seed)
    if case == "empty":
        return np.zeros(0)
    if case == "singleton":
        return np.asarray([5.0])
    if case == "all-ties":
        return np.full(n, 3.0)
    if case == "duplicate-index":
        # few distinct values, heavily repeated
        return rng.integers(0, 3, size=n).astype(np.float64)
    if case == "adversarial-stride":
        return np.asarray([float(n - ((7 * i) % n)) for i in range(n)])
    return rng.integers(-50, 50, size=n).astype(np.float64)


def _scatter_inputs(
    case: str, seed: int, size: int = 8, m: int = _N
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(target, idx, values) per case; idx patterns drive the collisions."""
    rng = np.random.default_rng(seed)
    target = np.full(size, 100.0)
    if case == "empty":
        return target, np.zeros(0, dtype=np.int64), np.zeros(0)
    if case == "singleton":
        return target, np.asarray([2], dtype=np.int64), np.asarray([7.0])
    if case == "duplicate-index":
        idx = np.full(m, 3, dtype=np.int64)
        vals = rng.integers(0, 40, size=m).astype(np.float64)
        return target, idx, vals
    if case == "all-ties":
        idx = np.asarray([i % 3 for i in range(m)], dtype=np.int64)
        return target, idx, np.full(m, 9.0)
    if case == "adversarial-stride":
        idx = np.asarray([(5 * i) % size for i in range(m)], dtype=np.int64)
        vals = np.asarray([float(m - i) for i in range(m)])
        return target, idx, vals
    idx = rng.integers(0, size, size=m).astype(np.int64)
    vals = rng.integers(0, 60, size=m).astype(np.float64)
    return target, idx, vals


def _parent_forest(case: str, seed: int, n: int = _N) -> np.ndarray:
    """Acyclic parent arrays (parent[v] <= v) per case."""
    rng = np.random.default_rng(seed)
    if case == "empty":
        return np.zeros(0, dtype=np.int64)
    if case == "singleton":
        return np.zeros(1, dtype=np.int64)
    if case == "duplicate-index":  # star: everyone points at the root
        return np.zeros(n, dtype=np.int64)
    if case == "all-ties":  # path: maximal pointer-jumping depth
        return np.maximum(np.arange(n) - 1, 0).astype(np.int64)
    if case == "adversarial-stride":
        return np.asarray([max(v - 3, 0) for v in range(n)], dtype=np.int64)
    return np.asarray(
        [int(rng.integers(0, v + 1)) for v in range(n)], dtype=np.int64
    )


# -- the harness -------------------------------------------------------------


def _shadowed_run(fn: Callable[[CostModel], object], strict: bool):
    """Run ``fn`` on a fresh cost model under a shadow detector."""
    cost = CostModel()
    shadow = ShadowCREW.attach(cost, strict=strict)
    try:
        out = fn(cost)
    finally:
        shadow.detach(cost)
    return out, cost, shadow


def _outcome(
    primitive: str,
    case: str,
    n: int,
    equal: bool,
    cost: CostModel,
    shadow: ShadowCREW,
    lit_rounds: int,
    rounds_ok: bool,
    detail: str = "",
) -> DiffOutcome:
    return DiffOutcome(
        primitive=primitive,
        case=case,
        n=n,
        outputs_equal=bool(equal),
        rounds_ok=bool(rounds_ok),
        races=len(shadow.findings),
        vec_depth=cost.depth,
        lit_rounds=lit_rounds,
        detail=detail or ("" if equal else "outputs differ"),
    )


def _diff_map(case, seed, strict):
    arr = _values(case, seed)
    fn = lambda a: 2 * a + 1  # noqa: E731
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.elementwise(c, fn, arr), strict
    )
    lit, rounds = reference.crew_map(arr.tolist(), lambda x: 2 * x + 1)
    equal = np.array_equal(out, np.asarray(lit))
    return _outcome("map", case, arr.size, equal, cost, shadow, rounds,
                    cost.depth == 1 and rounds <= 2)


def _diff_reduce(case, seed, strict):
    arr = _values(case, seed)
    if case == "empty":
        vec_raises = lit_raises = False
        try:
            primitives.preduce(CostModel(), "min", arr)
        except InvalidStepError:
            vec_raises = True
        try:
            reference.crew_reduce("min", arr.tolist())
        except InvalidStepError:
            lit_raises = True
        cost = CostModel()
        return _outcome("reduce", case, 0, vec_raises and lit_raises, cost,
                        ShadowCREW(), 0, True, "both reject empty input")
    op = "sum" if case == "random" else "min"
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.preduce(c, op, arr), strict
    )
    lit, rounds = reference.crew_reduce(op, arr.tolist())
    bound = ceil_log2(arr.size) + 1
    return _outcome("reduce", case, arr.size, out == lit, cost, shadow, rounds,
                    cost.depth == bound and rounds <= bound)


def _diff_broadcast(case, seed, strict):
    n = {"empty": 0, "singleton": 1}.get(case, _N)
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.pbroadcast(c, 4.0, n), strict
    )
    lit, rounds = reference.crew_broadcast(4.0, n)
    equal = np.array_equal(out, np.asarray(lit))
    return _outcome("broadcast", case, n, equal, cost, shadow, rounds,
                    cost.depth == 1 and rounds == 2)


def _diff_scatter(case, seed, strict):
    target, idx, vals = _scatter_inputs(case, seed)
    if case in ("duplicate-index", "adversarial-stride", "random"):
        # exclusive scatter is only CREW-legal on conflict-free updates:
        # deduplicate (keep the first update per cell, like a routed permute)
        _, keep = np.unique(idx, return_index=True)
        idx, vals = idx[np.sort(keep)], vals[np.sort(keep)]
    if case == "all-ties" and strict:
        # equal double writes: COMMON-legal, but strict must reject on BOTH
        # sides — rejection parity is the differential here
        lit_raised = False
        try:
            reference.crew_scatter(
                target.tolist(), idx.tolist(), vals.tolist(), strict=True
            )
        except WriteConflictError:
            lit_raised = True
        out, cost, shadow = _shadowed_run(
            lambda c: primitives.pscatter(c, target.copy(), idx, vals), True
        )
        flagged = any(f.kind == "strict-double-write" for f in shadow.findings)
        unexpected = sum(
            1 for f in shadow.findings if f.kind != "strict-double-write"
        )
        return DiffOutcome(
            primitive="scatter", case=case, n=int(idx.size),
            outputs_equal=lit_raised and flagged, rounds_ok=cost.depth == 1,
            races=unexpected, vec_depth=cost.depth, lit_rounds=0,
            detail="strict: equal double-write rejected on both sides",
        )
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.pscatter(c, target.copy(), idx, vals), strict
    )
    lit, rounds = reference.crew_scatter(
        target.tolist(), idx.tolist(), vals.tolist(), strict=strict
    )
    equal = np.array_equal(out, np.asarray(lit))
    return _outcome("scatter", case, idx.size, equal, cost, shadow, rounds,
                    cost.depth == 1 and rounds == 2)


def _diff_scatter_min(case, seed, strict):
    target, idx, vals = _scatter_inputs(case, seed)
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.scatter_min(c, target.copy(), idx, vals), strict
    )
    lit, rounds = reference.crew_scatter_min(
        target.tolist(), idx.tolist(), vals.tolist()
    )
    equal = np.array_equal(out, np.asarray(lit))
    # literal pays 2 load rounds; its combine tree height <= the charge
    return _outcome("scatter_min", case, idx.size, equal, cost, shadow, rounds,
                    rounds <= cost.depth + 2)


def _diff_scatter_min_arg(case, seed, strict):
    target, idx, vals = _scatter_inputs(case, seed)
    payload = np.full(target.size, -1, dtype=np.int64)
    pay_vals = np.arange(idx.size, dtype=np.int64)[::-1].copy()
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.scatter_min_arg(
            c, target.copy(), payload.copy(), idx, vals, pay_vals
        ),
        strict,
    )
    lit_t, lit_p, rounds = reference.crew_scatter_min_arg(
        target.tolist(), payload.tolist(), idx.tolist(), vals.tolist(),
        pay_vals.tolist(),
    )
    equal = np.array_equal(out[0], np.asarray(lit_t)) and np.array_equal(
        out[1], np.asarray(lit_p)
    )
    return _outcome("scatter_min_arg", case, idx.size, equal, cost, shadow,
                    rounds, rounds <= cost.depth + 2)


def _mask_for(case, seed):
    vals = _values(case, seed)
    if case == "all-ties":
        return np.ones(vals.size, dtype=bool)
    return vals > np.median(vals) if vals.size else np.zeros(0, dtype=bool)


def _diff_select(case, seed, strict):
    mask = _mask_for(case, seed)
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.pselect(c, mask), strict
    )
    lit, rounds = reference.crew_select(mask.tolist())
    equal = np.array_equal(out, np.asarray(lit))
    return _outcome("select", case, mask.size, equal, cost, shadow, rounds,
                    rounds <= cost.depth + 1)


def _diff_compact(case, seed, strict):
    mask = _mask_for(case, seed)
    arr = _values(case, seed + 1)[: mask.size]
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.pcompact(c, arr, mask), strict
    )
    lit, rounds = reference.crew_compact(arr.tolist(), mask.tolist())
    equal = np.array_equal(out, np.asarray(lit))
    return _outcome("compact", case, mask.size, equal, cost, shadow, rounds,
                    rounds <= cost.depth + 1)


def _diff_prefix_sum(case, seed, strict, inclusive=True):
    arr = _values(case, seed)
    out, cost, shadow = _shadowed_run(
        lambda c: scan.prefix_sum(c, arr, inclusive=inclusive), strict
    )
    lit, rounds = reference.crew_prefix_sum(arr.tolist(), inclusive=inclusive)
    equal = np.array_equal(out, np.asarray(lit))
    name = "prefix_sum" if inclusive else "prefix_sum_excl"
    return _outcome(name, case, arr.size, equal, cost, shadow, rounds,
                    rounds <= cost.depth + 1)


def _diff_prefix_sum_excl(case, seed, strict):
    return _diff_prefix_sum(case, seed, strict, inclusive=False)


def _diff_prefix_max(case, seed, strict):
    arr = _values(case, seed)
    out, cost, shadow = _shadowed_run(lambda c: scan.prefix_max(c, arr), strict)
    lit, rounds = reference.crew_prefix_max(arr.tolist())
    equal = np.array_equal(out, np.asarray(lit))
    return _outcome("prefix_max", case, arr.size, equal, cost, shadow, rounds,
                    rounds <= cost.depth + 1)


def _diff_segmented_sum(case, seed, strict):
    _, idx, vals = _scatter_inputs(case, seed)
    k = 8
    out, cost, shadow = _shadowed_run(
        lambda c: scan.segmented_sum(c, vals, idx, k), strict
    )
    lit, rounds = reference.crew_segmented_sum(vals.tolist(), idx.tolist(), k)
    equal = np.array_equal(out, np.asarray(lit))
    return _outcome("segmented_sum", case, idx.size, equal, cost, shadow,
                    rounds, rounds <= cost.depth + 2)


def _diff_sort(case, seed, strict):
    arr = _values(case, seed)
    out, cost, shadow = _shadowed_run(lambda c: sort.parallel_sort(c, arr), strict)
    lit, rounds = reference.crew_sort(arr.tolist())
    equal = np.array_equal(out, np.asarray(lit))
    # the literal network is odd-even transposition: its own O(n) envelope
    return _outcome("sort", case, arr.size, equal, cost, shadow, rounds,
                    rounds <= arr.size + 1,
                    detail="literal = odd-even network" if equal else "")


def _diff_lexsort(case, seed, strict):
    a = _values(case, seed)
    b = _values(case, seed + 1)[: a.size]
    out, cost, shadow = _shadowed_run(
        lambda c: sort.parallel_lexsort(c, (a, b)), strict
    )
    lit, rounds = reference.crew_lexsort((a.tolist(), b.tolist()))
    equal = np.array_equal(out, np.asarray(lit))
    return _outcome("lexsort", case, a.size, equal, cost, shadow, rounds,
                    rounds <= a.size + 1,
                    detail="literal = odd-even network" if equal else "")


def _gather_inputs(case: str, seed: int, n: int = 8) -> tuple[np.ndarray, np.ndarray]:
    """(indptr, frontier) per case; degree/frontier patterns drive the runs.

    ``duplicate-index`` repeats one vertex in every frontier slot (legal —
    the hopset tables gather one vertex once per entry), ``all-ties`` puts
    every vertex on the frontier with equal degrees, ``adversarial-stride``
    mixes zero-degree vertices with a strided frontier.
    """
    rng = np.random.default_rng(seed)
    if case == "empty":
        deg = np.asarray([2, 0, 3, 1], dtype=np.int64)
        frontier = np.zeros(0, dtype=np.int64)
    elif case == "singleton":
        deg = np.asarray([3], dtype=np.int64)
        frontier = np.asarray([0], dtype=np.int64)
    elif case == "duplicate-index":
        deg = rng.integers(0, 4, size=n).astype(np.int64)
        frontier = np.full(_N, n // 2, dtype=np.int64)
    elif case == "all-ties":
        deg = np.full(n, 3, dtype=np.int64)
        frontier = np.arange(n, dtype=np.int64)
    elif case == "adversarial-stride":
        deg = np.asarray([(7 * i) % 4 for i in range(n)], dtype=np.int64)
        frontier = np.asarray([(5 * i) % n for i in range(_N)], dtype=np.int64)
    else:
        deg = rng.integers(0, 5, size=n).astype(np.int64)
        frontier = rng.integers(0, n, size=_N).astype(np.int64)
    indptr = np.zeros(deg.size + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    return indptr, frontier


def _diff_gather_csr(case, seed, strict):
    indptr, frontier = _gather_inputs(case, seed)
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.pgather_csr(c, indptr, frontier), strict
    )
    (lit_slots, lit_arcs), rounds = reference.crew_frontier_gather(
        indptr.tolist(), frontier.tolist()
    )
    equal = np.array_equal(out[0], np.asarray(lit_slots)) and np.array_equal(
        out[1], np.asarray(lit_arcs)
    )
    # literal pays one load round on top of the scan + write schedule
    return _outcome("gather_csr", case, frontier.size, equal, cost, shadow,
                    rounds, rounds <= cost.depth + 1)


def _relax_inputs(
    case: str, seed: int, size: int = 8
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(dist, parent, tails, heads, weights) per case.

    Heads reuse the scatter collision patterns (the combining-min stress
    cases); tails come from an independent draw of the same pattern, and
    weights are folded small so a real mix of improving / stale / tied
    candidates hits every cell.
    """
    _, heads, vals = _scatter_inputs(case, seed)
    _, tails, _ = _scatter_inputs(case, seed + 1)
    dist = np.asarray([float((13 * i) % 23) for i in range(size)])
    parent = np.full(size, -1, dtype=np.int64)
    weights = np.mod(vals, 7.0)
    return dist, parent, tails, heads, weights


def _diff_relax_arcs(case, seed, strict):
    dist, parent, tails, heads, weights = _relax_inputs(case, seed)
    ws = Workspace(poison=True)  # poisoned pool: stale reuse would surface
    plan = (
        primitives.build_relax_plan(tails, heads, weights, n_cells=dist.size)
        if case in ("adversarial-stride", "random")
        else None
    )
    dist0, parent0 = dist.copy(), parent.copy()
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.prelax_arcs(
            c, dist, parent, tails, heads, weights,
            plan=plan, workspace=ws, changed="frontier",
        ),
        strict,
    )
    lit_d, lit_p, lit_changed, rounds = reference.crew_relax_arcs(
        dist0.tolist(), parent0.tolist(),
        tails.tolist(), heads.tolist(), weights.tolist(),
    )
    equal = (
        np.array_equal(dist, np.asarray(lit_d))
        and np.array_equal(parent, np.asarray(lit_p))
        and np.array_equal(out, np.asarray(lit_changed, dtype=np.int64))
    )
    # literal pays load + merge + flag rounds on top of the combine tree
    return _outcome("relax_arcs", case, tails.size, equal, cost, shadow,
                    rounds, rounds <= cost.depth + 4)


def _diff_relax_arcs_batch(case, seed, strict):
    """Batched S×V relaxation round vs S stacked literal CREW programs.

    Three checks per case: (1) the batched kernel's matrix output equals
    the literal batch reference bit-exactly; (2) every row's dist/parent
    *and charged (work, depth)* equal a solo ``prelax_arcs`` run of that
    row — the charge-stream identity the matrix engine rests on; (3) a
    masked-out row is untouched and charges nothing (the per-source early
    exit).  Row 0 runs under the shadow detector, which routes it through
    the per-row footprint path — the mixed shadowed/batched round is
    exactly what a strict conformance sweep of the engine executes.
    """
    dist, parent, tails, heads, weights = _relax_inputs(case, seed)
    n_cells = int(dist.size)
    plan = primitives.build_relax_plan(tails, heads, weights, n_cells=n_cells)
    rows = 3
    dist_m = np.stack([np.roll(dist, r) for r in range(rows)])
    parent_m = np.stack([parent.copy() for _ in range(rows)])
    solo_d, solo_p = dist_m.copy(), parent_m.copy()
    mask_d, mask_p = dist_m.copy(), parent_m.copy()
    ws = Workspace(poison=True)  # poisoned pool: stale reuse would surface
    costs = [CostModel() for _ in range(rows)]
    shadow = ShadowCREW.attach(costs[0], strict=strict)
    try:
        out = primitives.prelax_arcs_batch(
            costs, dist_m, parent_m, plan=plan, workspace=ws,
        )
    finally:
        shadow.detach(costs[0])
    lit_d, lit_p, lit_any, rounds = reference.crew_relax_arcs_batch(
        [np.roll(dist, r).tolist() for r in range(rows)],
        [parent.tolist() for _ in range(rows)],
        tails.tolist(), heads.tolist(), weights.tolist(),
    )
    equal = (
        np.array_equal(dist_m, np.asarray(lit_d))
        and np.array_equal(parent_m, np.asarray(lit_p))
        and np.array_equal(out, np.asarray(lit_any, dtype=bool))
    )
    for r in range(rows):
        solo_cost = CostModel()
        solo_out = primitives.prelax_arcs(
            solo_cost, solo_d[r], solo_p[r], tails, heads, weights,
            plan=plan, workspace=ws, changed="any",
        )
        equal = equal and (
            np.array_equal(solo_d[r], dist_m[r])
            and np.array_equal(solo_p[r], parent_m[r])
            and bool(solo_out) == bool(out[r])
            and (solo_cost.work, solo_cost.depth) == (costs[r].work, costs[r].depth)
        )
    # a converged (masked-out) row is skipped entirely and charges nothing
    mask = np.asarray([True, False, True])
    mask_costs = [CostModel() for _ in range(rows)]
    masked_out = primitives.prelax_arcs_batch(
        mask_costs, mask_d, mask_p, plan=plan, active=mask, workspace=ws,
    )
    equal = equal and (
        not masked_out[1]
        and np.array_equal(mask_d[1], np.roll(dist, 1))
        and np.array_equal(mask_p[1], parent)
        and (mask_costs[1].work, mask_costs[1].depth) == (0, 0)
        and np.array_equal(mask_d[0], dist_m[0])
        and np.array_equal(mask_d[2], dist_m[2])
    )
    # literal pays load + merge + flag rounds on top of the combine tree
    return _outcome("relax_arcs_batch", case, tails.size, equal, costs[0],
                    shadow, rounds, rounds <= costs[0].depth + 4)


def _entry_inputs(
    case: str, seed: int, n: int = _N, k: int = 6
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(vert, src, dist, seed_ids) entry-table rows per case.

    ``duplicate-index`` piles every row onto one vertex (the deepest
    per-group reduction), ``all-ties`` makes every distance equal (the
    staged minima must fall through to the src/seed tiebreaks),
    ``adversarial-stride`` interleaves groups with descending distances.
    Distances are integer-valued doubles, exact under any grouping.
    """
    rng = np.random.default_rng(seed)
    if case == "empty":
        z = np.zeros(0, dtype=np.int64)
        return z, z, np.zeros(0), z
    if case == "singleton":
        return (
            np.asarray([2], dtype=np.int64),
            np.asarray([1], dtype=np.int64),
            np.asarray([4.0]),
            np.asarray([9], dtype=np.int64),
        )
    if case == "duplicate-index":
        vert = np.full(n, 3, dtype=np.int64)
        src = rng.integers(0, 3, size=n).astype(np.int64)
        dist = rng.integers(0, 4, size=n).astype(np.float64)
    elif case == "all-ties":
        vert = np.asarray([i % 3 for i in range(n)], dtype=np.int64)
        src = np.asarray([i % 4 for i in range(n)], dtype=np.int64)
        dist = np.full(n, 7.0)
    elif case == "adversarial-stride":
        vert = np.asarray([(5 * i) % k for i in range(n)], dtype=np.int64)
        src = np.asarray([(3 * i) % k for i in range(n)], dtype=np.int64)
        dist = np.asarray([float(n - i) for i in range(n)])
    else:
        vert = rng.integers(0, k, size=n).astype(np.int64)
        src = rng.integers(0, k, size=n).astype(np.int64)
        dist = rng.integers(0, 20, size=n).astype(np.float64)
    seed_ids = rng.integers(0, 50, size=vert.size).astype(np.int64)
    return vert, src, dist, seed_ids


def _diff_prune_entries(case, seed, strict):
    """Fused entry prune vs the literal sort program, at x = 1 and x = 3."""
    vert, src, dist, seed_ids = _entry_inputs(case, seed)
    ws = Workspace(poison=True)
    equal = True
    depth = rounds = 0
    cost = CostModel()
    shadow = ShadowCREW()
    for x in (1, 3):
        out, cost, shadow = _shadowed_run(
            lambda c: primitives.pprune_entries(
                c, vert, src, dist, seed_ids, x, workspace=ws
            ),
            strict,
        )
        lit, lit_rounds = reference.crew_prune_entries(
            vert.tolist(), src.tolist(), dist.tolist(), seed_ids.tolist(), x
        )
        equal = equal and all(
            np.array_equal(np.asarray(o), np.asarray(l)) for o, l in zip(out, lit)
        )
        depth = max(depth, cost.depth)
        rounds = max(rounds, lit_rounds)
    # the literal side runs two O(n) odd-even networks plus scans
    n = int(vert.size)
    return _outcome("prune_entries", case, n, equal, cost, shadow, rounds,
                    rounds <= 4 * n + depth + 12,
                    detail="literal = odd-even network" if equal else "")


def _diff_aggregate_entries(case, seed, strict):
    """Fused per-cluster aggregation vs the literal sort program (x = 2)."""
    cl, src, dist, seed_ids = _entry_inputs(case, seed)
    rng = np.random.default_rng(seed + 3)
    member = rng.integers(0, 9, size=cl.size).astype(np.int64)
    ws = Workspace(poison=True)
    out, cost, shadow = _shadowed_run(
        lambda c: primitives.paggregate_entries(
            c, cl, src, dist, member, seed_ids, 2, workspace=ws
        ),
        strict,
    )
    lit, rounds = reference.crew_aggregate_entries(
        cl.tolist(), src.tolist(), dist.tolist(), member.tolist(),
        seed_ids.tolist(), 2,
    )
    equal = all(
        np.array_equal(np.asarray(o), np.asarray(l)) for o, l in zip(out, lit)
    )
    n = int(cl.size)
    return _outcome("aggregate_entries", case, n, equal, cost, shadow, rounds,
                    rounds <= 4 * n + cost.depth + 12,
                    detail="literal = odd-even network" if equal else "")


def _diff_pointer_jump(case, seed, strict):
    parent = _parent_forest(case, seed)
    n = parent.size
    rng = np.random.default_rng(seed + 2)
    weight = rng.integers(1, 6, size=n).astype(np.float64)
    out, cost, shadow = _shadowed_run(
        lambda c: pointer_jumping.pointer_jump(c, parent, weight), strict
    )
    lit_r, lit_d, rounds = reference.crew_pointer_jump(
        parent.tolist(), weight.tolist()
    )
    equal = np.array_equal(out[0], np.asarray(lit_r)) and np.array_equal(
        out[1], np.asarray(lit_d)
    )
    bound = 2 * (ceil_log2(max(n, 2)) + 1) + 1
    return _outcome("pointer_jump", case, n, equal, cost, shadow, rounds,
                    cost.depth <= bound and rounds <= bound)


def _diff_list_rank(case, seed, strict):
    parent = _parent_forest(case, seed)
    n = parent.size
    out, cost, shadow = _shadowed_run(
        lambda c: pointer_jumping.list_rank(c, parent), strict
    )
    lit, rounds = reference.crew_list_rank(parent.tolist())
    equal = np.array_equal(out, np.asarray(lit))
    bound = 2 * (ceil_log2(max(n, 2)) + 1) + 1
    return _outcome("list_rank", case, n, equal, cost, shadow, rounds,
                    cost.depth <= bound and rounds <= bound)


#: primitive name -> differential runner(case, seed, strict)
PRIMITIVE_DIFFS: dict[str, Callable[[str, int, bool], DiffOutcome]] = {
    "map": _diff_map,
    "reduce": _diff_reduce,
    "broadcast": _diff_broadcast,
    "scatter": _diff_scatter,
    "scatter_min": _diff_scatter_min,
    "scatter_min_arg": _diff_scatter_min_arg,
    "select": _diff_select,
    "compact": _diff_compact,
    "prefix_sum": _diff_prefix_sum,
    "prefix_sum_excl": _diff_prefix_sum_excl,
    "prefix_max": _diff_prefix_max,
    "segmented_sum": _diff_segmented_sum,
    "gather_csr": _diff_gather_csr,
    "relax_arcs": _diff_relax_arcs,
    "relax_arcs_batch": _diff_relax_arcs_batch,
    "prune_entries": _diff_prune_entries,
    "aggregate_entries": _diff_aggregate_entries,
    "sort": _diff_sort,
    "lexsort": _diff_lexsort,
    "pointer_jump": _diff_pointer_jump,
    "list_rank": _diff_list_rank,
}


def run_primitive_diffs(
    seed: int = 0,
    strict: bool = False,
    primitives_subset: tuple[str, ...] | None = None,
    cases: tuple[str, ...] = PRIMITIVE_CASES,
) -> list[DiffOutcome]:
    """Run the full primitive × case differential matrix."""
    names = primitives_subset or tuple(PRIMITIVE_DIFFS)
    outcomes = []
    for name in names:
        runner = PRIMITIVE_DIFFS[name]
        for case in cases:
            outcomes.append(runner(case, seed, strict))
    return outcomes


# -- whole-execution conformance on the E-family smoke graphs ----------------

#: The generator families the experiment suite (E1–E20) sweeps, at smoke size.
SMOKE_FAMILIES: dict[str, Callable[[int, int], Graph]] = {
    "er": lambda n, s: erdos_renyi(n, 0.15, seed=s, w_range=(1.0, 4.0)),
    "grid": lambda n, s: grid_graph(
        max(int(n**0.5), 2), max(int(n**0.5), 2), seed=s, w_range=(1.0, 2.0)
    ),
    "path": lambda n, s: path_graph(n, seed=s, w_range=(1.0, 3.0)),
    "layered": lambda n, s: layered_hop_graph(max(n // 4, 2), 4, seed=s),
    "geometric": lambda n, s: random_geometric(n, 0.3, seed=s),
    "powerlaw": lambda n, s: preferential_attachment(n, 2, seed=s),
    "wide": lambda n, s: wide_weight_graph(n, 1e4, seed=s),
}

_SMOKE_PARAMS = HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8)


def diff_sssp(
    graph: Graph,
    source: int,
    pram: PRAM,
    engines: tuple[str, ...] = ("dense", "sparse", "auto"),
) -> tuple[bool, bool, int, int]:
    """Vectorized vs literal-CREW SSSP on one graph, across all engines.

    Returns ``(dist_equal, rounds_ok, vec_rounds, lit_rounds)``.  Every
    relaxation engine (dense, sparse frontier, auto-switching — see
    :mod:`repro.pram.frontier`) relaxes a candidate set whose winners are
    identical with identical float operations, so distances must be
    **bit-exact** across engines and against the literal program, and all
    engines must report the same round count; the literal memory commits
    exactly one extra (load) round: ``lit_rounds == vec_rounds + 1``.
    """
    hops = max(graph.n - 1, 1)
    results = [bellman_ford(pram, graph, source, hops, engine=e) for e in engines]
    res = results[0]
    lit, lit_rounds = reference.crew_sssp(graph, source)
    dist_equal = np.array_equal(res.dist, np.asarray(lit)) and all(
        np.array_equal(res.dist, r.dist) and np.array_equal(res.parent, r.parent)
        for r in results[1:]
    )
    rounds_ok = lit_rounds == res.rounds_used + 1 and all(
        r.rounds_used == res.rounds_used for r in results[1:]
    )
    return dist_equal, rounds_ok, res.rounds_used, lit_rounds


def run_graph_conformance(
    n: int = 32,
    seed: int = 7,
    strict: bool = False,
    families: tuple[str, ...] | None = None,
    pram: PRAM | None = None,
    shadow: ShadowCREW | None = None,
) -> list[GraphOutcome]:
    """Sweep the E-family smoke graphs: SSSP diff + hopset-build race scan.

    When ``pram``/``shadow`` are supplied (the CLI passes ones wired to a
    span tracer and metrics registry), the sweep runs on them, one phase
    per family, so the obs flame report attributes the conformance work;
    otherwise a private pair is created and detached afterwards.
    """
    own = pram is None
    pram = pram if pram is not None else PRAM()
    if shadow is None:
        shadow = ShadowCREW.attach(pram.cost, strict=strict)
        own_shadow = True
    else:
        own_shadow = False
    names = families or tuple(SMOKE_FAMILIES)
    rows: list[GraphOutcome] = []
    try:
        for name in names:
            g = SMOKE_FAMILIES[name](n, seed)
            before = len(shadow.findings)
            with pram.cost.phase(name):
                with pram.cost.subphase("sssp_diff"):
                    dist_equal, rounds_ok, vec_rounds, lit_rounds = diff_sssp(
                        g, 0, pram
                    )
                with pram.cost.subphase("hopset_race_scan"):
                    build_hopset(g, _SMOKE_PARAMS, pram)
            rows.append(
                GraphOutcome(
                    family=name,
                    n=g.n,
                    m=g.num_edges,
                    dist_equal=dist_equal,
                    rounds_ok=rounds_ok,
                    races=len(shadow.findings) - before,
                    vec_rounds=vec_rounds,
                    lit_rounds=lit_rounds,
                )
            )
    finally:
        if own_shadow:
            shadow.detach(pram.cost)
        del own
    return rows
