"""Pass/fail reporting for the conformance harness.

Primitive-level outcomes are grouped one row per primitive (the case
matrix collapses to counts); graph-level outcomes print one row per
E-family smoke graph.  Both tables go through
:func:`repro.analysis.tables.render_table` so the CLI output matches the
rest of the bench harness, and :func:`conformance_summary` packs the same
information as JSON for the ``extra`` block of a Chrome trace export.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.analysis.tables import render_table

from repro.conformance.diff import DiffOutcome, GraphOutcome
from repro.conformance.shadow import ShadowCREW

__all__ = [
    "primitive_table",
    "graph_table",
    "conformance_summary",
    "all_clean",
]


def primitive_table(outcomes: list[DiffOutcome]) -> str:
    """One row per primitive: cases run/passed, race count, worst failure."""
    grouped: "OrderedDict[str, list[DiffOutcome]]" = OrderedDict()
    for o in outcomes:
        grouped.setdefault(o.primitive, []).append(o)
    rows = []
    for name, outs in grouped.items():
        failed = [o for o in outs if not o.ok]
        races = sum(o.races for o in outs)
        worst = failed[0] if failed else None
        rows.append(
            [
                name,
                len(outs),
                len(outs) - len(failed),
                races,
                not failed,
                f"{worst.case}: {worst.detail or 'mismatch'}" if worst else "",
            ]
        )
    return render_table(
        "conformance: vectorized vs literal CREW (primitive differential)",
        ["primitive", "cases", "passed", "races", "ok", "first failure"],
        rows,
    )


def graph_table(rows: list[GraphOutcome]) -> str:
    """One row per E-family smoke graph swept by the harness."""
    table_rows = [
        [
            r.family,
            r.n,
            r.m,
            r.dist_equal,
            r.rounds_ok,
            r.vec_rounds,
            r.lit_rounds,
            r.races,
            r.ok,
        ]
        for r in rows
    ]
    return render_table(
        "conformance: E-family smoke graphs (SSSP diff + hopset race scan)",
        ["family", "n", "m", "dist=", "rounds", "vec rds", "lit rds", "races", "ok"],
        table_rows,
    )


def all_clean(
    primitive_outcomes: list[DiffOutcome], graph_outcomes: list[GraphOutcome]
) -> bool:
    """True iff every primitive case and every graph family passed."""
    return all(o.ok for o in primitive_outcomes) and all(
        r.ok for r in graph_outcomes
    )


def conformance_summary(
    primitive_outcomes: list[DiffOutcome],
    graph_outcomes: list[GraphOutcome],
    shadow: ShadowCREW | None = None,
) -> dict:
    """JSON-friendly digest (shipped in the Chrome trace ``extra`` block)."""
    summary = {
        "primitives": {
            "cases": len(primitive_outcomes),
            "passed": sum(1 for o in primitive_outcomes if o.ok),
            "races": sum(o.races for o in primitive_outcomes),
            "failures": [
                {
                    "primitive": o.primitive,
                    "case": o.case,
                    "outputs_equal": o.outputs_equal,
                    "rounds_ok": o.rounds_ok,
                    "races": o.races,
                    "detail": o.detail,
                }
                for o in primitive_outcomes
                if not o.ok
            ],
        },
        "graphs": [
            {
                "family": r.family,
                "n": r.n,
                "m": r.m,
                "dist_equal": r.dist_equal,
                "rounds_ok": r.rounds_ok,
                "races": r.races,
                "ok": r.ok,
            }
            for r in graph_outcomes
        ],
        "clean": all_clean(primitive_outcomes, graph_outcomes),
    }
    if shadow is not None:
        summary["shadow"] = shadow.summary()
    return summary
