"""The shadow CREW race detector for the vectorized PRAM machine.

The production algorithms never touch the literal
:class:`~repro.pram.memory.CREWMemory` — they run on vectorized NumPy
primitives whose CREW-validity used to be asserted in docstrings only.
:class:`ShadowCREW` turns those assertions into machinery: it subscribes to
a :class:`~repro.pram.cost.CostModel` as a footprint-consuming
:class:`~repro.pram.cost.CostHook`, mirrors every primitive's declared
per-round write-set into a staged shadow write-set, and validates the CREW
discipline at each round commit — exactly the check ``CREWMemory.end_round``
performs for the literal reference programs, applied to the vectorized
execution.

Write rules (see ``WRITE_RULES`` in ``pram/cost.py``):

``exclusive``
    Raw CREW writes.  Two writes to one cell with differing values are a
    conflict in every mode; equal-valued duplicates commit under the
    COMMON relaxation, unless ``strict=True`` (mirroring
    ``CREWMemory(strict=True)``), in which case any duplicate conflicts.

``common``
    A declared tie-set (e.g. the min-achieving updates of
    ``scatter_min_arg``): duplicates are expected and carry equal values by
    construction, so they are legal *even in strict mode* — the combine
    stage serializes them.  Differing values still conflict in every mode.

``combine``
    Colliding updates merged by a balanced combine tree (``scatter_min``,
    ``segmented_sum``).  Any value multiset per cell is legal, but the
    primitive must have charged enough depth to pay for the tallest
    per-cell tree: the shadow checks
    ``charged_depth >= ceil_log2(max collision multiplicity) + 1`` and
    reports a ``combine-depth`` finding otherwise — a primitive that
    collides without paying for combining is cheating the model.

Reads are not mirrored at cell granularity: concurrent reads are
unconditionally legal on CREW, so cell-level read tracking could never
produce a finding (read *counts* are already reported through the
``traffic`` event stream and land in ``repro.obs`` metrics).

Every finding is also reported through ``cost.traffic`` under the
``RACE_TRAFFIC_PREFIX`` label, so an attached span tracer or metrics
registry (``repro.obs``) records it with zero extra plumbing — the obs
trace of a shadowed run carries its race findings.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.pram.cost import RACE_TRAFFIC_PREFIX, CostHook, CostModel
from repro.pram.errors import ShadowRaceError
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

__all__ = ["RaceFinding", "ShadowCREW", "shadowed"]


@dataclass(frozen=True)
class RaceFinding:
    """One CREW-discipline violation caught by the shadow detector.

    ``kind`` is one of:

    * ``write-conflict``     — two differing values written to one cell;
    * ``strict-double-write``— duplicate write rejected by strict mode
      (equal values, which COMMON would have allowed);
    * ``combine-depth``      — a combining primitive's charged depth does
      not cover its worst per-cell collision multiplicity.
    """

    label: str
    space: str
    cell: int
    kind: str
    values: tuple
    round_index: int

    def describe(self) -> str:
        return (
            f"[{self.kind}] {self.label}: {self.space}[{self.cell}] "
            f"values={self.values!r} (round {self.round_index})"
        )


class ShadowCREW(CostHook):
    """Shadow-execution CREW checker, installable on any :class:`PRAM`.

    Parameters
    ----------
    strict:
        When ``True``, duplicate *exclusive* writes conflict even with
        equal values (the strict ``CREWMemory`` rule).  Declared tie-sets
        (``common``) and combine-tree updates stay legal — they are how
        the model legalizes collisions.
    mode:
        ``"record"`` collects findings in :attr:`findings`; ``"raise"``
        additionally raises :class:`~repro.pram.errors.ShadowRaceError` at
        the offending round commit.
    """

    wants_footprints = True

    def __init__(self, strict: bool = False, mode: str = "record") -> None:
        if mode not in ("record", "raise"):
            raise ValueError(f"mode must be 'record' or 'raise', got {mode!r}")
        self.strict = strict
        self.mode = mode
        self.findings: list[RaceFinding] = []
        self.rounds_checked = 0
        self.writes_checked = 0
        self.cells_checked = 0
        self._cost: CostModel | None = None
        # per-space staged chunks for the round in flight: space -> list of
        # (cells, values-or-None, rule)
        self._staged: dict[str, list[tuple[np.ndarray, np.ndarray | None, str]]] = {}
        self._last_charge_depth: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def attach(cls, cost: CostModel, strict: bool = False, mode: str = "record") -> "ShadowCREW":
        """Create a detector and subscribe it to ``cost`` in one step."""
        shadow = cls(strict=strict, mode=mode)
        shadow._cost = cost
        cost.subscribe(shadow)
        return shadow

    def detach(self, cost: CostModel | None = None) -> None:
        """Unsubscribe (flushing any round left open by an aborted primitive)."""
        cost = cost if cost is not None else self._cost
        if self._staged:
            self.on_round_commit("<detach>")
        if cost is not None:
            cost.unsubscribe(self)

    # -- CostHook callbacks --------------------------------------------------

    def on_charge(self, work: int, depth: int, label: str) -> None:
        # remembered for the combine-depth check at the next round commit
        self._last_charge_depth[label] = depth

    def on_footprint(self, label: str, space: str, cells, values, rule: str) -> None:
        cells = np.asarray(cells)
        if values is not None:
            values = np.asarray(values)
            if values.shape != cells.shape:
                raise ShadowRaceError(label, space, -1, ("footprint shape mismatch",))
        self._staged.setdefault(space, []).append((cells, values, rule))

    def on_round_commit(self, label: str) -> None:
        staged, self._staged = self._staged, {}
        self.rounds_checked += 1
        for space, chunks in staged.items():
            self._check_space(label, space, chunks)

    # -- the actual race check -----------------------------------------------

    def _check_space(
        self,
        label: str,
        space: str,
        chunks: list[tuple[np.ndarray, np.ndarray | None, str]],
    ) -> None:
        cells = np.concatenate([c for c, _, _ in chunks]) if len(chunks) > 1 else chunks[0][0]
        if cells.size == 0:
            return
        rules = {rule for _, _, rule in chunks}
        if len(rules) > 1:
            # mixed-rule writes to one space in one round: fall back to the
            # strictest interpretation (exclusive)
            rule = "exclusive"
        else:
            (rule,) = rules
        has_values = all(v is not None for _, v, _ in chunks)
        values: np.ndarray | None = None
        if has_values:
            vals = [np.asarray(v) for _, v, _ in chunks]
            values = np.concatenate(vals) if len(vals) > 1 else vals[0]

        self.writes_checked += int(cells.size)
        order = np.argsort(cells, kind="stable")
        cs = cells[order]
        vs = values[order] if values is not None else None
        first = np.ones(cs.size, dtype=bool)
        first[1:] = cs[1:] != cs[:-1]
        self.cells_checked += int(first.sum())

        if rule == "combine":
            # collisions are legal; charged depth must cover the tallest tree
            counts = np.diff(np.flatnonzero(np.append(first, True)))
            max_mult = int(counts.max()) if counts.size else 1
            required = ceil_log2(max_mult) + 1 if max_mult > 1 else 0
            charged = self._last_charge_depth.get(label, 0)
            if charged < required:
                dup_start = int(np.argmax(counts)) if counts.size else 0
                cell = int(cs[np.flatnonzero(first)[dup_start]])
                self._record(
                    label, space, cell, "combine-depth",
                    (f"multiplicity {max_mult}", f"charged depth {charged}"),
                )
            return

        dup_positions = np.flatnonzero(~first)
        if dup_positions.size == 0:
            return
        for pos in dup_positions:
            cell = int(cs[pos])
            if vs is None:
                # opaque values cannot satisfy COMMON — any duplicate conflicts
                self._record(label, space, cell, "write-conflict", ("<opaque>",) * 2)
                continue
            prev, cur = vs[pos - 1], vs[pos]
            equal = bool(prev == cur)
            if not equal:
                self._record(label, space, cell, "write-conflict",
                             (_pyval(prev), _pyval(cur)))
            elif self.strict and rule == "exclusive":
                self._record(label, space, cell, "strict-double-write",
                             (_pyval(prev), _pyval(cur)))
            # equal under COMMON (or a declared common tie-set): legal

    def _record(
        self, label: str, space: str, cell: int, kind: str, values: tuple
    ) -> None:
        finding = RaceFinding(
            label=label,
            space=space,
            cell=cell,
            kind=kind,
            values=values,
            round_index=self.rounds_checked,
        )
        self.findings.append(finding)
        if self._cost is not None:
            # surfaces in any attached obs sink (metrics counter / span op)
            self._cost.traffic(RACE_TRAFFIC_PREFIX + label, calls=1)
        if self.mode == "raise":
            raise ShadowRaceError(label, space, cell, values)

    # -- reporting -----------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.findings

    def summary(self) -> dict:
        """JSON-friendly digest for export next to a trace."""
        return {
            "strict": self.strict,
            "rounds_checked": self.rounds_checked,
            "writes_checked": self.writes_checked,
            "cells_checked": self.cells_checked,
            "findings": [f.describe() for f in self.findings],
            "clean": self.clean,
        }


def _pyval(v):
    """Plain-Python scalar for finding payloads (keeps reprs readable)."""
    return v.item() if isinstance(v, np.generic) else v


@contextmanager
def shadowed(
    pram: PRAM, strict: bool = False, mode: str = "raise"
) -> Iterator[ShadowCREW]:
    """Run a block with a :class:`ShadowCREW` installed on ``pram``.

    ``with shadowed(pram) as shadow: ...`` — by default violations raise
    :class:`~repro.pram.errors.ShadowRaceError` at the offending primitive;
    pass ``mode="record"`` to collect them in ``shadow.findings`` instead.
    """
    shadow = ShadowCREW.attach(pram.cost, strict=strict, mode=mode)
    try:
        yield shadow
    finally:
        shadow.detach(pram.cost)
