"""CONGEST model simulator and the distributed ruling-set original."""

from repro.congest.algorithms import distributed_bfs, distributed_ruling_set
from repro.congest.network import CongestAlgorithm, CongestError, CongestNetwork

__all__ = [
    "CongestNetwork",
    "CongestAlgorithm",
    "CongestError",
    "distributed_bfs",
    "distributed_ruling_set",
]
