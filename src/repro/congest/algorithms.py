"""Distributed algorithms on the CONGEST simulator.

Two classics the paper's toolbox descends from:

* **multi-source BFS** — the distributed primitive underlying every
  exploration in this repository;
* **the [AGLP89]-style (3, 2·log n)-ruling set** — the same ID-bit
  divide-and-conquer the PRAM Algorithm 4 runs, in its native distributed
  habitat: per bit level, the B₀ side floods a 2-hop knockout wave; B₁
  nodes that hear it drop out.  On singleton clusters the PRAM and CONGEST
  versions compute *identical* sets, which the tests assert — the
  derandomization tool really is the same object in both models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.congest.network import CongestNetwork
from repro.graphs.csr import Graph
from repro.pram.primitives import ceil_log2

__all__ = ["distributed_bfs", "distributed_ruling_set"]


# ---------------------------------------------------------------------------
# multi-source BFS
# ---------------------------------------------------------------------------


@dataclass
class _BFSState:
    node: int
    neighbors: list[int]
    level: int
    to_send: bool


class _BFS:
    """Flood levels from the sources; each node forwards once."""

    def __init__(self, sources: set[int]) -> None:
        self.sources = sources

    def init(self, node_id: int, neighbors: list[int]) -> _BFSState:
        is_src = node_id in self.sources
        return _BFSState(
            node=node_id,
            neighbors=neighbors,
            level=0 if is_src else -1,
            to_send=is_src,
        )

    def step(self, state: _BFSState, inbox):
        for _, (lvl,) in inbox:
            if state.level < 0 or lvl + 1 < state.level:
                state.level = lvl + 1
                state.to_send = True
        outbox = {}
        if state.to_send:
            outbox = {nbr: (state.level,) for nbr in state.neighbors}
            state.to_send = False
        return outbox, not outbox


def distributed_bfs(graph: Graph, sources: np.ndarray) -> tuple[np.ndarray, int, int]:
    """BFS levels from a source set; returns (levels, rounds, messages)."""
    net = CongestNetwork(graph)
    states = net.run(_BFS(set(int(s) for s in sources)))
    levels = np.array([s.level for s in states], dtype=np.int64)
    return levels, net.rounds, net.messages


# ---------------------------------------------------------------------------
# ruling set
# ---------------------------------------------------------------------------


@dataclass
class _RulingState:
    node: int
    neighbors: list[int]
    alive: bool
    started: bool = False


class _RulingLevel:
    """One bit level: B₀'s knockout wave travels 2 hops; B₁ listeners die.

    Every alive candidate whose current bit is 0 starts a wave with
    ttl = 2; nodes forward waves with decremented ttl (deduplicated per
    round); alive candidates with bit 1 that hear any wave drop out.
    """

    def __init__(self, bit: int, alive: np.ndarray) -> None:
        self.bit = bit
        self.alive_in = alive

    def init(self, node_id: int, neighbors: list[int]) -> _RulingState:
        return _RulingState(node=node_id, neighbors=neighbors, alive=bool(self.alive_in[node_id]))

    def _is_b0(self, state: _RulingState) -> bool:
        return state.alive and ((state.node >> self.bit) & 1) == 0

    def _is_b1(self, state: _RulingState) -> bool:
        return state.alive and ((state.node >> self.bit) & 1) == 1

    def step(self, state: _RulingState, inbox):
        outbox: dict[int, tuple] = {}
        if self._is_b0(state) and not state.started:
            state.started = True
            outbox = {nbr: (2,) for nbr in state.neighbors}
            return outbox, False
        heard = False
        best_ttl = 0
        for _, (ttl,) in inbox:
            heard = True
            best_ttl = max(best_ttl, ttl)
        if heard and self._is_b1(state):
            state.alive = False
        if heard and best_ttl > 1:
            outbox = {nbr: (best_ttl - 1,) for nbr in state.neighbors}
        return outbox, not outbox


def distributed_ruling_set(graph: Graph, candidates: np.ndarray) -> tuple[np.ndarray, int, int]:
    """The AGLP bit recursion in CONGEST; returns (mask, rounds, messages).

    Matches the PRAM :func:`repro.hopsets.ruling_sets.ruling_set` on
    singleton clusters with threshold = hop = 1 (unit weights): a
    (3, 2·⌈log n⌉)-ruling set of ``candidates`` w.r.t. graph distance.
    """
    alive = candidates.copy()
    total_rounds = 0
    total_msgs = 0
    bits = ceil_log2(max(graph.n, 2))
    for bit in range(bits):
        has0 = np.any(alive & (((np.arange(graph.n) >> bit) & 1) == 0))
        has1 = np.any(alive & (((np.arange(graph.n) >> bit) & 1) == 1))
        if not (has0 and has1):
            continue
        net = CongestNetwork(graph)
        states = net.run(_RulingLevel(bit, alive), max_rounds=graph.n + 8)
        alive = np.array([s.alive for s in states], dtype=bool)
        total_rounds += net.rounds
        total_msgs += net.messages
    return alive, total_rounds, total_msgs
