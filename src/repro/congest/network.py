"""A synchronous CONGEST message-passing simulator.

Ruling sets entered parallel computing from *distributed* algorithms
([GPS88, AGLP89], §1.2), and the paper's closest sibling [EM19] lives in
the CONGEST model: n nodes, synchronous rounds, and per round at most one
O(log n)-bit message per edge per direction.  This simulator provides that
model so the repository can run the distributed originals of its
derandomization tools and cross-validate them against the PRAM versions.

An algorithm is an object with::

    init(node_id, neighbors) -> state          # called once per node
    step(state, inbox) -> (outbox, done)       # called once per round

where ``inbox`` is a list of ``(neighbor, payload)`` and ``outbox`` maps
neighbor → payload.  Payloads must fit the bandwidth: a payload is a tuple
of at most ``bandwidth_words`` ints (CONGEST's O(log n) bits).  The network
runs rounds until every node reports done (or a round limit), counting
rounds and messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.graphs.csr import Graph

__all__ = ["CongestError", "CongestAlgorithm", "CongestNetwork"]


class CongestError(Exception):
    """A CONGEST model violation (bandwidth, unknown neighbor, ...)."""


class CongestAlgorithm(Protocol):  # pragma: no cover - typing only
    def init(self, node_id: int, neighbors: list[int]) -> Any: ...

    def step(self, state: Any, inbox: list[tuple[int, tuple]]) -> tuple[dict[int, tuple], bool]: ...


@dataclass
class CongestNetwork:
    """Synchronous execution of one algorithm on every node of a graph."""

    graph: Graph
    bandwidth_words: int = 3
    rounds: int = 0
    messages: int = 0
    _states: list[Any] = field(default_factory=list)
    _neighbors: list[list[int]] = field(default_factory=list)

    def run(self, algorithm: CongestAlgorithm, max_rounds: int | None = None) -> list[Any]:
        """Run to completion; returns the final per-node states."""
        n = self.graph.n
        self._neighbors = [self.graph.neighbors(v)[0].tolist() for v in range(n)]
        neighbor_sets = [set(nbrs) for nbrs in self._neighbors]
        self._states = [algorithm.init(v, list(self._neighbors[v])) for v in range(n)]
        inboxes: list[list[tuple[int, tuple]]] = [[] for _ in range(n)]
        limit = max_rounds if max_rounds is not None else 4 * n + 16
        self.rounds = 0
        self.messages = 0
        for _ in range(limit):
            all_done = True
            next_inboxes: list[list[tuple[int, tuple]]] = [[] for _ in range(n)]
            for v in range(n):
                outbox, done = algorithm.step(self._states[v], inboxes[v])
                all_done = all_done and done
                seen: set[int] = set()
                for dst, payload in outbox.items():
                    if dst not in neighbor_sets[v]:
                        raise CongestError(
                            f"node {v} tried to message non-neighbor {dst}"
                        )
                    if dst in seen:
                        raise CongestError(
                            f"node {v} sent two messages on edge ({v},{dst}) in one round"
                        )
                    seen.add(dst)
                    if not isinstance(payload, tuple) or len(payload) > self.bandwidth_words:
                        raise CongestError(
                            f"payload {payload!r} exceeds the {self.bandwidth_words}-word "
                            "CONGEST bandwidth"
                        )
                    next_inboxes[dst].append((v, payload))
                    self.messages += 1
            self.rounds += 1
            inboxes = next_inboxes
            if all_done and not any(next_inboxes):
                break
        else:
            raise CongestError(f"algorithm did not terminate within {limit} rounds")
        return self._states
