"""Pairwise covers — the [Coh94] ingredient whose derandomization is open."""

from repro.covers.hopset_from_cover import build_cover_hopset
from repro.covers.pairwise import PairwiseCover, build_pairwise_cover, verify_cover

__all__ = [
    "PairwiseCover",
    "build_pairwise_cover",
    "verify_cover",
    "build_cover_hopset",
]
