"""A cover-based hopset baseline (the [Coh94] route, simplified).

Given a pairwise cover per distance scale, add a *star* into every cluster
(center → member, weighted with the true in-cluster distance): any pair at
distance ≤ W shares a cluster, so two hops through that cluster's center
span it.  The stretch of this simple one-level scheme is governed by the
cover radius — O(1/ρ) rather than 1+ε (Cohen's full construction recurses
to drive it down; this baseline deliberately keeps the single level so the
cover's radius/overlap tradeoff is visible in the measurements of E17).

It is also inherently *sequential* to build (region growing), which is the
entire reason the paper's ruling-set route exists.
"""

from __future__ import annotations

import math

import numpy as np

from repro.covers.pairwise import PairwiseCover, build_pairwise_cover
from repro.graphs.csr import Graph
from repro.graphs.distances import dijkstra
from repro.hopsets.hopset import STAR, Hopset, HopsetEdge

__all__ = ["build_cover_hopset"]


def build_cover_hopset(
    graph: Graph, rho: float = 0.5, beta: int = 2
) -> tuple[Hopset, dict[int, PairwiseCover]]:
    """One star per cover cluster per scale; 2 hops span any covered pair.

    Returns the hopset plus the per-scale covers (for inspection and the
    E17 table).  Weights are exact distances from the region-growing seed,
    so the hopset is distance-safe by construction.
    """
    hopset = Hopset(n=graph.n, beta=beta, epsilon=float("nan"))
    covers: dict[int, PairwiseCover] = {}
    if graph.num_edges == 0 or graph.n < 2:
        return hopset, covers
    w_min = graph.min_weight()
    diameter_bound = graph.total_weight()
    k0 = 0
    lam = max(int(math.ceil(math.log2(max(diameter_bound / w_min, 2.0)))), k0)
    for k in range(k0, lam + 1):
        W = w_min * (2.0**k)
        cover = build_pairwise_cover(graph, W, rho)
        covers[k] = cover
        for center, cluster in zip(cover.centers, cover.clusters):
            if cluster.size <= 1:
                continue
            dist = dijkstra(graph, center)
            for v in cluster:
                v = int(v)
                if v == center or not np.isfinite(dist[v]) or dist[v] <= 0:
                    continue
                hopset.edges.append(
                    HopsetEdge(u=center, v=v, weight=float(dist[v]),
                               scale=k, phase=-1, kind=STAR)
                )
    return hopset, covers
