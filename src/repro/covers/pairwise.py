"""Pairwise covers — the [Coh94] ingredient the paper routes around.

Cohen's randomized hopset rests on *pairwise covers*: for a distance
parameter W, a collection of clusters such that (i) every pair at distance
≤ W lies together in some cluster, (ii) cluster (weak) diameter is O(W/ρ),
and (iii) every vertex belongs to few clusters.  Cohen remarked that a
deterministic NC construction of these covers would derandomize her hopset
— and §1.2 notes that, a quarter century later, none is known; this paper
side-steps covers entirely via ruling sets.

This module provides the *sequential deterministic* construction
(Awerbuch–Peleg-style region growing) so the repository can (a) exhibit the
object the open problem is about, with its properties machine-checked, and
(b) run a cover-based hopset baseline (experiment E17) against the ruling-
set construction.  The sequential nature is the point: it is the thing
that resisted parallelization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.distances import dijkstra
from repro.graphs.errors import InvalidGraphError

__all__ = ["PairwiseCover", "build_pairwise_cover", "verify_cover"]


@dataclass
class PairwiseCover:
    """A pairwise cover for distance parameter W.

    Attributes
    ----------
    W:
        The covered distance.
    clusters:
        List of vertex arrays.
    centers:
        The region-growing seed of each cluster.
    radius:
        Per-cluster radius from the seed (in graph distance).
    """

    W: float
    clusters: list[np.ndarray]
    centers: list[int]
    radius: list[float]

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def max_overlap(self) -> int:
        """Maximum number of clusters any single vertex belongs to."""
        if not self.clusters:
            return 0
        counts: dict[int, int] = {}
        for cl in self.clusters:
            for v in cl:
                counts[int(v)] = counts.get(int(v), 0) + 1
        return max(counts.values())

    def max_radius(self) -> float:
        return max(self.radius, default=0.0)


def build_pairwise_cover(graph: Graph, W: float, rho: float = 0.5) -> PairwiseCover:
    """Deterministic sequential region growing ([Coh94] §2-style).

    Repeatedly pick the smallest-id vertex whose W-ball is not yet
    *captured*, and grow a ball around it in W steps: stop as soon as one
    more W-ring multiplies the ball size by less than ``n^rho``; the
    cluster is the ball extended by one final W (so every captured vertex
    has its entire W-ball inside), and all vertices of the *inner* ball are
    marked captured.  The sparsity argument gives radius
    ≤ (⌈1/ρ⌉ + 1)·W and every vertex in at most O(n^ρ) clusters.
    """
    if W <= 0:
        raise InvalidGraphError(f"cover distance W must be positive, got {W}")
    if not 0 < rho <= 1:
        raise InvalidGraphError(f"rho must be in (0, 1], got {rho}")
    n = graph.n
    growth = max(float(n) ** rho, 2.0)
    captured = np.zeros(n, dtype=bool)
    clusters: list[np.ndarray] = []
    centers: list[int] = []
    radii: list[float] = []
    for seed in range(n):
        if captured[seed]:
            continue
        dist = dijkstra(graph, seed)
        r = W
        # grow while each extra W-ring keeps multiplying the ball
        while True:
            inner = int(np.sum(dist <= r + 1e-12))
            outer = int(np.sum(dist <= r + W + 1e-12))
            if outer < growth * inner or outer == n:
                break
            r += W
        cluster = np.flatnonzero(dist <= r + W + 1e-12)
        clusters.append(cluster.astype(np.int64))
        centers.append(seed)
        radii.append(r + W)
        captured[dist <= r + 1e-12] = True
    return PairwiseCover(W=W, clusters=clusters, centers=centers, radius=radii)


def verify_cover(graph: Graph, cover: PairwiseCover) -> None:
    """Machine-check the cover properties; raises on violation.

    (i) every pair at distance ≤ W shares a cluster;
    (ii) every cluster has radius ≤ (⌈1/ρ⌉ + 1)·W from its seed —
         checked against the recorded radii being consistent with actual
         distances.
    """
    n = graph.n
    membership: list[set[int]] = [set() for _ in range(n)]
    for idx, cl in enumerate(cover.clusters):
        for v in cl:
            membership[int(v)].add(idx)
    for s in range(n):
        dist = dijkstra(graph, s)
        near = np.flatnonzero((dist <= cover.W + 1e-12) & (np.arange(n) != s))
        for t in near:
            if not membership[s] & membership[int(t)]:
                raise InvalidGraphError(
                    f"pair ({s},{int(t)}) at distance {dist[t]} <= W={cover.W} "
                    "shares no cluster"
                )
    for idx, (c, cl, r) in enumerate(zip(cover.centers, cover.clusters, cover.radius)):
        dist = dijkstra(graph, c)
        if np.any(dist[cl] > r + 1e-9):
            raise InvalidGraphError(f"cluster {idx} exceeds its recorded radius")
