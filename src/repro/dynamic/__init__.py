"""The incremental-update subsystem: repair, don't rebuild.

The paper closes (§1.4) by conjecturing its techniques extend to dynamic
shortest paths; ROADMAP item 3 names the workload.  This package is the
real subsystem behind that item, replacing the ``DecrementalSSSP``
prototype's rebuild-everything answers with four layers
(``docs/dynamic.md``):

1. :class:`~repro.dynamic.graph.DynamicGraph` — a mutable wrapper over
   the immutable CSR :class:`~repro.graphs.csr.Graph`: O(1) pair→edge
   lookup, in-place weight mutation (both CSR arc slots share the edge's
   weight cells), and a tombstone mask for deletions, so an update stops
   paying the prototype's O(m) edge-array rebuild.
2. :class:`~repro.dynamic.repair.DynamicSSSP` — exact SSSP maintenance
   that repairs the shortest-path tree after each update by re-relaxing
   only the affected frontier through the sparse engine
   (:func:`~repro.pram.frontier.frontier_relax`), with a charged-cost
   comparison against full recompute and an auto-fallback when the dirty
   region is too large.
3. :class:`~repro.dynamic.hopset.DynamicHopset` — the lazy hopset
   repair: the memory-path dependency index kills exactly the records
   whose certified upper bound may have broken (cover-aware), and decayed
   scales are refreshed one at a time, reusing surviving lower-scale
   edges, instead of a monolithic rebuild.
4. :class:`~repro.dynamic.engine.DynamicOracle` — the serving-facing
   composition: a mutable G ∪ H union kept consistent with both layers
   plus the exact cache-invalidation decisions the
   :class:`~repro.serve.server.OracleServer` ``update``/``delete`` verbs
   need.
"""

from repro.dynamic.engine import DynamicOracle, pair_codes, tree_touches
from repro.dynamic.graph import DynamicGraph
from repro.dynamic.hopset import DynamicHopset, MaintenanceReport
from repro.dynamic.repair import DynamicSSSP, RepairStats, fallback_frac_default

__all__ = [
    "DynamicGraph",
    "DynamicHopset",
    "DynamicOracle",
    "DynamicSSSP",
    "MaintenanceReport",
    "RepairStats",
    "fallback_frac_default",
    "pair_codes",
    "tree_touches",
]
