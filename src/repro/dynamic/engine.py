"""The serving-facing composition: one mutable G, H, and G ∪ H, in sync.

:class:`DynamicOracle` owns the three mutable structures the serving
layer needs to answer queries between updates:

* the base :class:`~repro.dynamic.graph.DynamicGraph` (the truth),
* a :class:`~repro.dynamic.hopset.DynamicHopset` over it (certified
  shortcuts, lazily repaired),
* a second :class:`DynamicGraph` holding **G ∪ live H** — the graph
  β-hop explorations actually run on.  Each union pair's weight is
  ``min(graph weight, cheapest live record)`` — its *cover* — so one
  update patches exactly the pairs whose cover changed, in place,
  instead of re-materializing the union (O(m + |H|)) per update.

:meth:`apply` is the single mutation entry point: it mutates the base,
notifies the hopset (which reports every pair whose cover rose),
patches the union, and performs **plan hygiene** — dropping the union's
cached :class:`~repro.pram.primitives.RelaxPlan` from the workspace and
evicting the sharded backend's shared-memory copy
(:meth:`~repro.pram.backends.base.ExecutionBackend.evict_plan`), since
worker-side copies do not alias the mutated arrays.  It returns what
the server's cache-invalidation decision needs: whether any distance
may have *improved* (decrease/insert — cached vectors are stale upper
bounds everywhere) and the affected pairs (increase/delete — only
vectors whose shortest-path trees touch them can change;
:func:`tree_touches` decides per cached source).

:func:`pair_codes` / :func:`tree_touches` are the vectorized helpers
behind that per-source test.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.hopset import DynamicHopset, MaintenanceReport
from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError
from repro.hopsets.hopset import Hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM

__all__ = ["DynamicOracle", "pair_codes", "tree_touches"]


def pair_codes(pairs, n: int) -> np.ndarray:
    """Encode unordered vertex pairs as sorted int64 codes ``lo·n + hi``.

    The dense encoding lets :func:`tree_touches` test membership with one
    vectorized ``isin`` instead of a Python-level set probe per tree edge.
    """
    if len(pairs) == 0:
        return np.zeros(0, dtype=np.int64)
    arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    lo = arr.min(axis=1)
    hi = arr.max(axis=1)
    return np.unique(lo * np.int64(n) + hi)


def tree_touches(parent: np.ndarray, codes: np.ndarray, n: int) -> bool:
    """Whether any tree edge (parent[v], v) lands on a coded pair.

    ``parent`` is one source's shortest-path-tree parent array (−1 where
    unreached, self at the source); ``codes`` comes from
    :func:`pair_codes`.  The serving layer keeps a cached distance
    vector exactly when this is False — a tree that avoids every
    worsened pair certifies its own distances (and by convergence, the
    full vector; see ``docs/dynamic.md``).
    """
    if codes.size == 0:
        return False
    v = np.flatnonzero(parent >= 0)
    v = v[parent[v] != v]  # drop the source's self-loop
    if v.size == 0:
        return False
    p = parent[v]
    lo = np.minimum(p, v)
    hi = np.maximum(p, v)
    return bool(np.isin(lo * np.int64(n) + hi, codes).any())


class DynamicOracle:
    """Mutable G / H / G ∪ H kept consistent for the serving layer.

    Parameters mirror :class:`~repro.dynamic.hopset.DynamicHopset`; the
    hopset is built path-reporting when not supplied.  ``union`` is the
    graph to hand to β-hop explorations — its object identity is stable
    between :meth:`maintain` calls that refresh or rebuild (which swap
    it for a freshly materialized one; callers re-read the attribute).
    """

    def __init__(
        self,
        graph: Graph | DynamicGraph,
        hopset: Hopset | None = None,
        params: HopsetParams | None = None,
        *,
        pram: PRAM | None = None,
        refresh_below: float = 0.5,
        rebuild_below: float = 0.2,
    ) -> None:
        self.graph = graph if isinstance(graph, DynamicGraph) else DynamicGraph(graph)
        self.pram = pram if pram is not None else PRAM()
        self.hopset = DynamicHopset(
            self.graph,
            hopset,
            params,
            pram=self.pram,
            refresh_below=refresh_below,
            rebuild_below=rebuild_below,
        )
        self.union = DynamicGraph(self.hopset.union_graph())
        self.updates = 0
        self.maintenances = 0

    # -- union consistency ----------------------------------------------------

    def _patch_union(self, pairs) -> None:
        """Re-derive the union weight (the cover) of each affected pair."""
        for u, v in pairs:
            target = min(
                self.graph.edge_weight(u, v), self.hopset.record_cover(u, v)
            )
            if np.isfinite(target):
                if self.union.has_edge(u, v):
                    self.union.set_weight(u, v, target)
                else:
                    self.union.insert_edge(u, v, target)
            elif self.union.has_edge(u, v):
                self.union.delete_edge(u, v)

    def _sync_plans(self) -> None:
        """Plan hygiene after any union mutation (see the module docstring)."""
        old = self.pram.workspace.drop_plan(self.union)
        if old is not None:
            self.pram.backend.evict_plan(old)

    # -- the mutation entry point ---------------------------------------------

    def apply(self, kind: str, u: int, v: int, w: float | None = None) -> dict:
        """Apply one update and restore all invariants.

        ``kind`` is ``"update"`` (upsert: set the weight, inserting the
        edge when absent) or ``"delete"``.  Returns
        ``{"improved": bool, "pairs": [...]}`` — ``improved`` means some
        distance may have *decreased* (cached vectors are stale
        everywhere); ``pairs`` are the worsened pairs for the
        tree-touching invalidation test otherwise.
        """
        u, v = int(u), int(v)
        self.updates += 1
        if kind == "delete":
            old = self.graph.delete_edge(u, v)
            pairs = self.hopset.on_delete(u, v, old)
            improved = False
        elif kind == "update":
            if w is None:
                raise InvalidGraphError("update needs a weight")
            w = float(w)
            if self.graph.has_edge(u, v):
                old = self.graph.set_weight(u, v, w)
                if w == old:
                    return {"improved": False, "pairs": []}
                if w > old:
                    pairs = self.hopset.on_weight_increase(u, v, old, w)
                    improved = False
                else:
                    pairs = [(u, v) if u < v else (v, u)]
                    improved = True
            else:
                self.graph.insert_edge(u, v, w)
                pairs = [(u, v) if u < v else (v, u)]
                improved = True
        else:
            raise InvalidGraphError(f"unknown dynamic verb {kind!r}")
        self._patch_union(pairs)
        self._sync_plans()
        return {"improved": improved, "pairs": pairs}

    def maintain(self) -> MaintenanceReport:
        """Run the hopset's lazy repair; re-materialize the union if it acted."""
        self.maintenances += 1
        report = self.hopset.maintain()
        if report.action != "none":
            self._sync_plans()  # the old union object is about to die
            self.union = DynamicGraph(self.hopset.union_graph())
        return report

    def stats(self) -> dict:
        """Counters for the serving layer's ``stats`` verb."""
        return {
            "updates": self.updates,
            "maintenances": self.maintenances,
            "graph_generation": self.graph.generation,
            "graph_recompactions": self.graph.recompactions,
            "union_edges": self.union.num_edges,
            "hopset": self.hopset.stats(),
        }
