"""A mutable CSR wrapper: in-place weights, tombstoned deletions, O(1) lookup.

:class:`~repro.graphs.csr.Graph` is deliberately immutable — every
algorithm in the repository leans on that.  The dynamic subsystem needs
the opposite: thousands of small weight updates between queries, none of
which can afford the O(m log m) rebuild a fresh ``Graph`` costs.

:class:`DynamicGraph` wraps one immutable base graph and owns *mutable
copies* of exactly the two weight arrays (the unique-edge view and the
CSR arc view); the structural arrays — ``indptr``, ``indices``,
``edge_u``/``edge_v``, ``arc_edge_id`` — stay shared with the base and
read-only.  Three facts make updates cheap:

* ``arc_edge_id`` maps each CSR arc slot to its unique-edge id, so the
  two slots of every edge are precomputed once (``argsort`` grouped by
  id) and a weight update writes exactly three cells;
* a pair→edge-id dict gives O(1) lookup — the prototype's O(m) boolean
  mask is gone;
* deletions **tombstone**: the edge's weight cells become ``+inf`` and an
  alive bit flips.  Relaxation over the CSR is tombstone-transparent
  (an ``inf`` candidate never wins a minimum), so the sparse repair
  engine runs on this object directly; exact recomputes use
  :meth:`snapshot`, which materializes the live edges only.

Only :meth:`insert_edge` of a brand-new pair is structural: CSR cannot
grow in place, so it recompacts into a fresh base (counted,
``recompactions``).  Inserting over a tombstone resurrects it in O(1).

Two generation counters let engines cache derived state safely:
``generation`` bumps on every mutation, ``structural_generation`` only on
recompaction.  Cached :class:`~repro.pram.primitives.RelaxPlan`\\ s alias
``weights`` in-process (no copy), but sharded-backend workers hold
shared-memory *copies* — callers that mutate between explorations must
drop/evict plans via :meth:`~repro.pram.workspace.Workspace.drop_plan`
and :meth:`~repro.pram.backends.base.ExecutionBackend.evict_plan`
(:class:`~repro.dynamic.engine.DynamicOracle` does).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError, VertexError

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """A mutable view over one CSR base graph (see the module docstring).

    Duck-types the :class:`~repro.graphs.csr.Graph` attributes the
    relaxation engines read — ``n``, ``indptr``, ``indices``,
    ``weights``, ``arcs()`` — so ``frontier_relax`` / ``explore_batch``
    run on it unchanged; tombstoned arcs carry ``+inf`` and never win a
    relaxation.
    """

    __slots__ = (
        "n",
        "indptr",
        "indices",
        "weights",
        "arc_edge_id",
        "edge_u",
        "edge_v",
        "edge_w",
        "alive",
        "generation",
        "structural_generation",
        "recompactions",
        "_eid",
        "_slots",
        "_snapshot",
    )

    def __init__(self, base: Graph) -> None:
        self.generation = 0
        self.structural_generation = 0
        self.recompactions = 0
        self._adopt(base)

    def _adopt(self, base: Graph) -> None:
        """(Re)derive all state from an immutable base graph."""
        self.n = base.n
        self.indptr = base.indptr
        self.indices = base.indices
        self.weights = base.weights.copy()
        self.arc_edge_id = base.arc_edge_id
        self.edge_u = base.edge_u
        self.edge_v = base.edge_v
        self.edge_w = base.edge_w.copy()
        m = base.num_edges
        self.alive = np.ones(m, dtype=bool)
        # each edge id appears on exactly two CSR slots (its two arcs)
        self._slots = (
            np.argsort(base.arc_edge_id, kind="stable").reshape(m, 2)
            if m
            else np.zeros((0, 2), dtype=np.int64)
        )
        self._eid = {
            (int(a), int(b)): i
            for i, (a, b) in enumerate(zip(base.edge_u, base.edge_v))
        }
        self._snapshot = (self.generation, base)

    # -- lookups -------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise VertexError(f"vertex {v} out of range for graph on {self.n} vertices")

    def edge_index(self, u: int, v: int) -> int | None:
        """The unique-edge id of pair (u, v), dead or alive; O(1)."""
        self._check_vertex(u)
        self._check_vertex(v)
        return self._eid.get((u, v) if u < v else (v, u))

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of the live edge (u, v); ``inf`` when absent or deleted."""
        eid = self.edge_index(u, v)
        if eid is None or not self.alive[eid]:
            return float("inf")
        return float(self.edge_w[eid])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether (u, v) is a live edge."""
        return np.isfinite(self.edge_weight(u, v))

    @property
    def num_edges(self) -> int:
        """|E|: the number of *live* undirected edges."""
        return int(self.alive.sum())

    @property
    def num_edge_records(self) -> int:
        """Edge slots in the backing arrays, tombstones included."""
        return int(self.edge_u.size)

    def arcs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All directed arc records as (tails, heads, weights), 2·records.

        Tombstoned arcs are present with weight ``+inf`` — harmless to
        relaxation, wrong for exact algorithms; those take
        :meth:`snapshot`.
        """
        tails = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        return tails, self.indices, self.weights

    def live_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The live unique edges as (u, v, w) arrays (views by mask copy)."""
        mask = self.alive
        return self.edge_u[mask], self.edge_v[mask], self.edge_w[mask]

    def snapshot(self) -> Graph:
        """An immutable :class:`Graph` of the current live edges.

        Cached per :attr:`generation`, so repeated exact recomputes
        between mutations share one materialization.
        """
        gen, g = self._snapshot
        if gen != self.generation:
            g = Graph(self.n, *self.live_edges())
            self._snapshot = (self.generation, g)
        return g

    # -- mutations -----------------------------------------------------------

    def _require_eid(self, u: int, v: int) -> int:
        eid = self.edge_index(u, v)
        if eid is None or not self.alive[eid]:
            raise InvalidGraphError(f"({u},{v}) is not a live edge")
        return eid

    @staticmethod
    def _check_weight(w: float) -> float:
        w = float(w)
        if not (np.isfinite(w) and w > 0):
            raise InvalidGraphError(f"edge weights must be positive and finite, got {w}")
        return w

    def set_weight(self, u: int, v: int, w: float) -> float:
        """Set the weight of live edge (u, v) in place; returns the old one."""
        w = self._check_weight(w)
        eid = self._require_eid(u, v)
        old = float(self.edge_w[eid])
        if w != old:
            self.edge_w[eid] = w
            self.weights[self._slots[eid]] = w
            self.generation += 1
        return old

    def increase_weight(self, u: int, v: int, w: float) -> float:
        """:meth:`set_weight` that enforces the decremental direction."""
        old = self.edge_weight(u, v)
        if not np.isfinite(old):
            raise InvalidGraphError(f"({u},{v}) is not a live edge")
        if float(w) < old:
            raise InvalidGraphError(
                f"weight of ({u},{v}) may only increase here ({old} -> {w})"
            )
        return self.set_weight(u, v, w)

    def decrease_weight(self, u: int, v: int, w: float) -> float:
        """:meth:`set_weight` that enforces the incremental direction."""
        old = self.edge_weight(u, v)
        if not np.isfinite(old):
            raise InvalidGraphError(f"({u},{v}) is not a live edge")
        if float(w) > old:
            raise InvalidGraphError(
                f"weight of ({u},{v}) may only decrease here ({old} -> {w})"
            )
        return self.set_weight(u, v, w)

    def delete_edge(self, u: int, v: int) -> float:
        """Tombstone live edge (u, v): alive bit off, weight cells +inf.

        Returns the weight the edge had.  O(1); the CSR keeps its shape,
        and relaxations simply never traverse the dead arcs.
        """
        eid = self._require_eid(u, v)
        old = float(self.edge_w[eid])
        self.alive[eid] = False
        self.edge_w[eid] = np.inf
        self.weights[self._slots[eid]] = np.inf
        self.generation += 1
        return old

    def insert_edge(self, u: int, v: int, w: float) -> bool:
        """Insert edge (u, v); returns True when it recompacted.

        Three cases: a live duplicate is an error (use
        :meth:`set_weight`); a tombstoned pair resurrects in O(1); a
        brand-new pair forces a **counted structural recompaction** — CSR
        cannot grow in place, so the live edges plus the new one become a
        fresh base graph (O(m log m), the honest trade-off this design
        makes to keep every other operation constant-time).
        """
        w = self._check_weight(w)
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise InvalidGraphError("self-loops are not allowed")
        eid = self.edge_index(u, v)
        if eid is not None and self.alive[eid]:
            raise InvalidGraphError(
                f"({u},{v}) already exists; use set_weight to change it"
            )
        if eid is not None:  # resurrect the tombstone
            self.alive[eid] = True
            self.edge_w[eid] = w
            self.weights[self._slots[eid]] = w
            self.generation += 1
            return False
        eu, ev, ew = self.live_edges()
        base = Graph(
            self.n,
            np.append(eu, min(u, v)),
            np.append(ev, max(u, v)),
            np.append(ew, w),
        )
        self.generation += 1
        self.structural_generation += 1
        self.recompactions += 1
        self._adopt(base)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(n={self.n}, live={self.num_edges}/"
            f"{self.num_edge_records}, gen={self.generation})"
        )
