"""Lazy hopset maintenance: cover-aware invalidation, per-scale refresh.

The §4.1 memory property is what makes a hopset maintainable at all:
every record's weight equals the weight of an explicit path in
E ∪ H_{k−1}, so a record stays a *certified upper bound* exactly as long
as every step of that path can still be spanned at no greater cost.
:class:`DynamicHopset` keeps the machinery live over a
:class:`~repro.dynamic.graph.DynamicGraph`:

* **Cover-aware invalidation.**  A scale-k record's memory path lives
  in E ∪ H_{k−1}, so each of its steps is certified by the step pair's
  *support below k*: ``min(live graph weight, cheapest live record of
  scale < k)`` on that pair.  A worsened edge kills a dependent record
  only when the support at the record's scale actually **rose** — if
  the graph edge or a surviving lower-scale record still spans the step
  at the old cost, the memory path remains certified at no greater
  weight.  This is a strict refinement of the ``DecrementalSSSP``
  prototype's kill-all-dependents rule, and the scale restriction is
  what keeps it sound: support is well-founded by induction over scales
  (two same-scale records may never certify each other, else a deleted
  bridge could survive as a mutually-supporting ghost cycle).  Kills
  propagate through a worklist — a killed record raises the support its
  own pair offered to higher scales, compromising them in turn.
* **Scale-by-scale refresh.**  Instead of the prototype's monolithic
  rebuild, :meth:`maintain` rebuilds only the scales whose *own* live
  fraction fell below ``refresh_below``, ascending, each over
  ``G ∪ (live H_{k−1})`` — surviving lower-scale records are reused, and
  a refreshed lower scale mends the higher scales' substrate before they
  are judged.  Normalization reuses the construction-time ``w_min`` so
  refreshed scales stay aligned with the original scale ladder, and the
  compounded stretch a scale assumes from below is the build-time
  ``ε_k = (1+ε')^{k−k0} − 1``.  Only when the *global* live fraction
  drops under ``rebuild_below`` does a full (counted) rebuild run.

Refreshes and rebuilds surface as ``dynamic.rebuild.scale`` /
``dynamic.rebuild.full`` traffic; kills as ``dynamic.repair.kill``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.graphs.build import reweighted, union_with_edges
from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError
from repro.hopsets.hopset import Hopset, HopsetEdge
from repro.hopsets.params import HopsetParams, PhaseSchedule
from repro.hopsets.errors import PathReportingError
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.hopsets.single_scale import build_single_scale
from repro.pram.machine import PRAM

__all__ = ["DynamicHopset", "MaintenanceReport"]


def _key(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


@dataclass
class MaintenanceReport:
    """What one :meth:`DynamicHopset.maintain` call did.

    ``action`` is ``"none"`` (everything healthy), ``"refresh"``
    (``scales_refreshed`` rebuilt individually), or ``"rebuild"`` (the
    global live fraction fell under ``rebuild_below`` and the whole
    hopset was reconstructed).  ``live_before``/``live_after`` bracket
    the live fraction and ``work`` is the charged cost of the call.
    """

    action: str = "none"
    scales_refreshed: list[int] = field(default_factory=list)
    live_before: float = 1.0
    live_after: float = 1.0
    records_before: int = 0
    records_after: int = 0
    work: int = 0


class DynamicHopset:
    """A path-reporting hopset maintained lazily under edge updates.

    Parameters
    ----------
    graph:
        The :class:`DynamicGraph` the hopset certifies paths in.  The
        caller mutates it and *then* notifies this object
        (:meth:`on_weight_increase` / :meth:`on_delete`; improvements
        need no notification — records are upper bounds).
    hopset:
        An existing **path-reporting** hopset to adopt (every record must
        carry its memory path); built fresh when omitted.
    params:
        Hopset parameters for refreshes and rebuilds.
    refresh_below:
        Per-scale live-fraction threshold under which :meth:`maintain`
        rebuilds that single scale.
    rebuild_below:
        Global live-fraction threshold under which :meth:`maintain`
        abandons per-scale repair and rebuilds everything.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        hopset: Hopset | None = None,
        params: HopsetParams | None = None,
        *,
        pram: PRAM | None = None,
        refresh_below: float = 0.5,
        rebuild_below: float = 0.2,
    ) -> None:
        if not 0.0 <= rebuild_below <= 1.0 or not 0.0 <= refresh_below <= 1.0:
            raise InvalidGraphError("refresh/rebuild thresholds must lie in [0, 1]")
        if rebuild_below > refresh_below:
            raise InvalidGraphError(
                "rebuild_below must not exceed refresh_below (rebuild is the "
                "last resort under per-scale refresh)"
            )
        self.graph = graph
        self.params = params if params is not None else HopsetParams()
        self.pram = pram if pram is not None else PRAM()
        self.refresh_below = float(refresh_below)
        self.rebuild_below = float(rebuild_below)
        self.scale_refreshes = 0
        self.full_rebuilds = 0
        self.kills = 0
        if hopset is None:
            self._build_full()
        else:
            for e in hopset.edges:
                if e.path is None:
                    raise PathReportingError(
                        "DynamicHopset needs a path-reporting hopset: record "
                        f"({e.u},{e.v}) carries no memory path"
                    )
            self._adopt(hopset)

    # -- construction & indexing --------------------------------------------

    def _build_full(self) -> None:
        hopset, _ = build_path_reporting_hopset(
            self.graph.snapshot(), self.params, self.pram
        )
        self._adopt(hopset)

    def _adopt(self, hopset: Hopset) -> None:
        """Take ownership of ``hopset``'s records and rebuild all indexes."""
        self.records: list[HopsetEdge] = list(hopset.edges)
        self.beta = hopset.beta
        self.epsilon = hopset.epsilon
        meta = hopset.meta
        snap = self.graph.snapshot()
        self._w_min = float(snap.min_weight()) if snap.num_edges else 1.0
        self._k0 = int(meta["k0"]) if "k0" in meta else 0
        self._lam = int(meta["lambda"]) if "lambda" in meta else -1
        if "eps_per_scale" in meta:
            self._eps_scale = float(meta["eps_per_scale"])
        else:
            num_scales = max(self._lam - self._k0 + 1, 1)
            self._eps_scale = (
                self.params.epsilon / (2 * num_scales)
                if self.params.scale_epsilon
                else self.params.epsilon
            )
        self._reindex()

    def _reindex(self) -> None:
        """Rebuild the parallel arrays and both pair indexes from records."""
        recs = self.records
        self._alive = np.ones(len(recs), dtype=bool)
        self._rec_u = np.array([e.u for e in recs], dtype=np.int64)
        self._rec_v = np.array([e.v for e in recs], dtype=np.int64)
        self._rec_w = np.array([e.weight for e in recs], dtype=np.float64)
        self._scale_of = np.array([e.scale for e in recs], dtype=np.int64)
        self._records_on_pair: dict[tuple[int, int], list[int]] = {}
        self._dependents: dict[tuple[int, int], list[int]] = {}
        for idx, e in enumerate(recs):
            self._records_on_pair.setdefault(_key(e.u, e.v), []).append(idx)
            for a, b in zip(e.path, e.path[1:]):
                self._dependents.setdefault(_key(int(a), int(b)), []).append(idx)

    # -- covers ---------------------------------------------------------------

    def record_cover(self, u: int, v: int) -> float:
        """The cheapest *live* record weight on pair (u, v); inf if none."""
        best = float("inf")
        for idx in self._records_on_pair.get(_key(u, v), ()):
            if self._alive[idx] and self._rec_w[idx] < best:
                best = float(self._rec_w[idx])
        return best

    def cover(self, u: int, v: int) -> float:
        """min(live graph weight, cheapest live record) spanning (u, v)."""
        return min(self.graph.edge_weight(u, v), self.record_cover(u, v))

    def _rec_below(self, pair: tuple[int, int], k: int) -> float:
        """Cheapest live record on ``pair`` of scale strictly below ``k``.

        The record half of a scale-k step's *support* — what certifies
        one step of a scale-k memory path besides the graph edge itself.
        The strict inequality is the soundness linchpin (module
        docstring): support must stay well-founded over scales.
        """
        best = float("inf")
        for idx in self._records_on_pair.get(pair, ()):
            if (
                self._alive[idx]
                and self._scale_of[idx] < k
                and self._rec_w[idx] < best
            ):
                best = float(self._rec_w[idx])
        return best

    # -- liveness -------------------------------------------------------------

    @property
    def n(self) -> int:
        """Vertex count (the dynamic graph's — hopsets never add vertices)."""
        return self.graph.n

    @property
    def live_fraction(self) -> float:
        """Fraction of all hopset records still certified."""
        if self._alive.size == 0:
            return 1.0
        return float(self._alive.sum()) / self._alive.size

    def live_fraction_of_scale(self, k: int) -> float:
        """Fraction of scale-``k`` records still certified (1.0 if none)."""
        mask = self._scale_of == k
        total = int(mask.sum())
        if total == 0:
            return 1.0
        return float(self._alive[mask].sum()) / total

    def live_records(self) -> int:
        """Number of records still certified."""
        return int(self._alive.sum())

    def num_records(self) -> int:
        """Total records, dead included."""
        return len(self.records)

    def scales(self) -> list[int]:
        """The distinct scale indices present, ascending."""
        return sorted(set(int(k) for k in self._scale_of))

    def live_edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The live records as (u, v, w) arrays — the query-side hopset."""
        mask = self._alive
        return self._rec_u[mask], self._rec_v[mask], self._rec_w[mask]

    def union_graph(self) -> Graph:
        """G ∪ (live H) as an immutable graph for β-hop exploration."""
        return union_with_edges(self.graph.snapshot(), *self.live_edge_arrays())

    # -- invalidation ---------------------------------------------------------

    def on_weight_increase(
        self, u: int, v: int, old_weight: float, new_weight: float
    ) -> list[tuple[int, int]]:
        """Note that live edge (u, v) worsened; returns compromised pairs.

        Call *after* mutating the graph.  Kills exactly the records whose
        memory paths rely on a step whose scale-aware support rose (see
        the module docstring); the returned pairs are every pair whose
        overall cover rose — the serving layer uses them to patch its
        G ∪ H union weights.
        """
        pair = _key(u, v)
        risen: list[tuple[int, int]] = []
        rec_all = self.record_cover(u, v)
        if min(new_weight, rec_all) > min(old_weight, rec_all):
            risen.append(pair)
        pending = []
        for idx in self._dependents.get(pair, ()):
            if not self._alive[idx]:
                continue
            rb = self._rec_below(pair, int(self._scale_of[idx]))
            if min(new_weight, rb) > min(old_weight, rb):
                pending.append(idx)
        risen.extend(self._kill(pending))
        return risen

    def on_delete(self, u: int, v: int, old_weight: float) -> list[tuple[int, int]]:
        """Note that live edge (u, v) was deleted; returns compromised pairs."""
        return self.on_weight_increase(u, v, old_weight, float("inf"))

    def _kill(self, pending: list[int]) -> list[tuple[int, int]]:
        """Kill ``pending`` records and propagate support rises upward.

        Each kill may raise the support its pair offers to higher-scale
        dependents; those whose support rose join the worklist.  Every
        record dies at most once, so the loop terminates; the returned
        pairs are those whose *overall* cover rose (for union patching).
        """
        risen: list[tuple[int, int]] = []
        killed = 0
        while pending:
            idx = pending.pop()
            if not self._alive[idx]:
                continue
            e = self.records[idx]
            q = _key(e.u, e.v)
            graph_w = self.graph.edge_weight(e.u, e.v)
            deps = [
                j
                for j in self._dependents.get(q, ())
                if self._alive[j] and j != idx
            ]
            before = {
                j: min(graph_w, self._rec_below(q, int(self._scale_of[j])))
                for j in deps
            }
            cover_before = min(graph_w, self.record_cover(e.u, e.v))
            self._alive[idx] = False
            self.kills += 1
            killed += 1
            if min(graph_w, self.record_cover(e.u, e.v)) > cover_before:
                risen.append(q)
            for j in deps:
                if min(graph_w, self._rec_below(q, int(self._scale_of[j]))) > before[j]:
                    pending.append(j)
        if killed:
            self.pram.cost.traffic("dynamic.repair.kill", elements=killed)
        return risen

    # -- maintenance ----------------------------------------------------------

    def maintain(self) -> MaintenanceReport:
        """Repair decayed scales (or rebuild everything when too far gone).

        The laziness contract: call this between update bursts — updates
        themselves only flip alive bits.  Ascending order matters: a
        refreshed scale k−1 is the substrate scale k rebuilds over, and
        each scale's health is re-checked *after* lower refreshes may
        have compromised it further.
        """
        report = MaintenanceReport(
            live_before=self.live_fraction,
            records_before=self.num_records(),
        )
        before = self.pram.cost.work
        if self.live_fraction < self.rebuild_below:
            self.full_rebuilds += 1
            self.pram.cost.traffic("dynamic.rebuild.full", elements=1)
            self._build_full()
            report.action = "rebuild"
        else:
            for k in self.scales():
                if self.live_fraction_of_scale(k) < self.refresh_below:
                    self._refresh_scale(k)
                    report.scales_refreshed.append(k)
            if report.scales_refreshed:
                report.action = "refresh"
        report.live_after = self.live_fraction
        report.records_after = self.num_records()
        report.work = self.pram.cost.work - before
        return report

    def _refresh_scale(self, k: int) -> None:
        """Rebuild scale ``k`` alone over G ∪ (live H_{k−1}), in place.

        The single-scale construction mirrors one iteration of
        :func:`~repro.hopsets.multi_scale.build_hopset`'s loop:
        normalization by the *original* ``w_min`` keeps the refreshed
        scale on the same ladder, and ``eps_prev = (1+ε')^{k−k0} − 1``
        is the stretch the build-time recurrence had compounded below
        scale k.  After replacement, any pair whose cover rose (records
        the old scale had, the new one lacks) compromises its dependents
        — which live on higher scales only, hence refreshing ascending.
        """
        self.scale_refreshes += 1
        self.pram.cost.traffic("dynamic.rebuild.scale", elements=1)
        snap = self.graph.snapshot()
        w_min = self._w_min
        scaled = reweighted(snap, 1.0 / w_min) if w_min != 1.0 else snap
        prev = self._alive & (self._scale_of == (k - 1))
        if prev.any():
            g_prev = union_with_edges(
                scaled,
                self._rec_u[prev],
                self._rec_v[prev],
                self._rec_w[prev] / w_min,
            )
        else:
            g_prev = scaled
        eps_prev = (1 + self._eps_scale) ** (k - self._k0) - 1
        schedule = PhaseSchedule.for_scale(
            snap.n, k, self.params, eps=self._eps_scale, eps_prev=eps_prev
        )
        with self.pram.phase(f"refresh_scale{k}"):
            edges_k, _ = build_single_scale(
                self.pram,
                g_prev,
                schedule,
                tight_weights=self.params.tight_weights,
                record_paths=True,
            )
        if w_min != 1.0:
            edges_k = [
                HopsetEdge(
                    u=e.u, v=e.v, weight=e.weight * w_min,
                    scale=e.scale, phase=e.phase, kind=e.kind, path=e.path,
                )
                for e in edges_k
            ]
        # pre-swap supports of every pair the outgoing scale spanned, at
        # every scale a dependent might live on, then swap and re-examine
        old_mask = self._scale_of == k
        touched = {
            _key(int(u), int(v))
            for u, v in zip(self._rec_u[old_mask], self._rec_v[old_mask])
        }
        ks = self.scales()
        support_before = {
            (p, kk): min(self.graph.edge_weight(*p), self._rec_below(p, kk))
            for p in touched
            for kk in ks
        }
        survivors = [
            e
            for idx, e in enumerate(self.records)
            if self._alive[idx] and self._scale_of[idx] != k
        ]
        self.records = survivors + edges_k
        self._reindex()
        pending = []
        for p in touched:
            graph_w = self.graph.edge_weight(*p)
            for j in self._dependents.get(p, ()):
                kk = int(self._scale_of[j])
                if min(graph_w, self._rec_below(p, kk)) > support_before[(p, kk)]:
                    pending.append(j)
        self._kill(pending)

    def stats(self) -> dict:
        """Counters for the serving layer's ``stats`` verb."""
        return {
            "records": self.num_records(),
            "live_records": self.live_records(),
            "live_fraction": self.live_fraction,
            "scale_refreshes": self.scale_refreshes,
            "full_rebuilds": self.full_rebuilds,
            "kills": self.kills,
        }
