"""Exact SSSP maintenance under edge updates: repair, don't rebuild.

:class:`DynamicSSSP` keeps an exact shortest-path tree (``dist`` /
``parent``) for one source over a :class:`~repro.dynamic.graph.DynamicGraph`
and repairs it after each mutation instead of recomputing:

* **Weight increase / deletion.**  If the touched edge is not a tree
  edge, nothing changes: every tree path avoids it, its cost is intact
  and still optimal (all path costs only rose).  If it *is* the tree
  edge above child ``c``, exactly the subtree rooted at ``c`` is
  orphaned — found in O(n) from the parent array — and reset to
  ``+inf``; the repair frontier is the set of still-labeled vertices
  adjacent to the orphaned region (every entry point of every possible
  replacement path), re-relaxed to quiescence through the sparse engine
  (:func:`~repro.pram.frontier.frontier_relax`).
* **Weight decrease / insertion.**  Labels are upper bounds that can
  only improve, and any improvement propagates from the touched edge's
  endpoints — they seed the frontier.

Both repairs converge to the *same* floating-point fixpoint a full
Bellman–Ford recompute reaches (the label of every vertex is the minimum
over paths of the left-folded float sum, and float addition of positive
weights is monotone), so ``dist`` agrees **bit-exactly** with a rebuild —
the differential matrix in ``tests/dynamic/test_repair.py`` enforces it.
Parent arrays are only guaranteed *valid* (``dist[v] == dist[parent[v]]
+ w`` exactly), not unique: float ties may resolve differently.

**Auto-fallback.**  An orphaned region whose CSR degree sum exceeds
``fallback_frac`` of all arcs is cheaper to recompute than to repair;
the engine then runs a counted full rebuild instead.  The fraction
defaults from ``REPRO_DYN_FALLBACK``.  Every update returns a
:class:`RepairStats` with the charged-work cost of what was done and the
running repair-vs-rebuild totals feed the E27 experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError, VertexError
from repro.pram.frontier import frontier_relax
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

__all__ = ["DynamicSSSP", "RepairStats", "fallback_frac_default"]


def fallback_frac_default() -> float:
    """Resolve the repair→rebuild threshold default (``REPRO_DYN_FALLBACK``).

    The fraction of all CSR arcs the orphaned region's degree sum may
    reach before a repair falls back to a full recompute; ``0`` forces
    every orphaning update to rebuild, ``1`` (or more) never falls back.
    """
    return float(os.environ.get("REPRO_DYN_FALLBACK", "0.25"))


@dataclass(frozen=True)
class RepairStats:
    """What one update did and what it charged.

    ``mode`` is ``"repair"`` (frontier re-relaxation), ``"rebuild"``
    (auto-fallback or structural recompaction), or ``"noop"`` (the
    update provably changed no label).  ``dirty`` counts orphaned
    vertices, ``seeds`` the repair frontier, ``work`` the charged work
    of this update, and ``est_arcs``/``threshold_arcs`` the fallback
    comparison that chose the mode.
    """

    op: str
    mode: str
    dirty: int = 0
    seeds: int = 0
    rounds: int = 0
    work: int = 0
    est_arcs: int = 0
    threshold_arcs: int = 0


class DynamicSSSP:
    """Exact single-source distances maintained under edge updates.

    Parameters
    ----------
    graph:
        The graph to maintain distances on; an immutable
        :class:`~repro.graphs.csr.Graph` is wrapped into a
        :class:`DynamicGraph` (exposed as ``self.graph``).
    source:
        The SSSP source vertex.
    fallback_frac:
        Repair→rebuild threshold (see :func:`fallback_frac_default`).
    pram:
        The machine charged for repairs; rebuilds run on a fresh
        workspace sharing its cost model, so the plan cache never
        accumulates per-snapshot entries.
    """

    def __init__(
        self,
        graph: Graph | DynamicGraph,
        source: int,
        *,
        fallback_frac: float | None = None,
        pram: PRAM | None = None,
    ) -> None:
        self.graph = graph if isinstance(graph, DynamicGraph) else DynamicGraph(graph)
        if not 0 <= source < self.graph.n:
            raise VertexError(f"source {source} out of range")
        self.source = int(source)
        self.fallback_frac = (
            fallback_frac_default() if fallback_frac is None else float(fallback_frac)
        )
        if self.fallback_frac < 0:
            raise InvalidGraphError("fallback_frac must be non-negative")
        self.pram = pram if pram is not None else PRAM()
        self.repairs = 0
        self.rebuilds = 0
        self.updates = 0
        #: cumulative charged work split by mode (the E27 comparison)
        self.repair_work = 0
        self.rebuild_work = 0
        self.dist = np.empty(0)
        self.parent = np.empty(0)
        self._full_rebuild()

    # -- full recompute ------------------------------------------------------

    def _full_rebuild(self) -> tuple[int, int]:
        """Bellman–Ford to convergence on the live snapshot; returns (work, rounds)."""
        snap = self.graph.snapshot()
        before = self.pram.cost.work
        machine = PRAM(cost=self.pram.cost, backend=self.pram.backend)
        res = bellman_ford(
            machine, snap, self.source, hops=max(snap.n - 1, 1), early_exit=True
        )
        self.dist = res.dist.copy()
        self.parent = res.parent.copy()
        work = self.pram.cost.work - before
        self.rebuild_work += work
        return work, res.rounds_used

    # -- repair internals ----------------------------------------------------

    def _orphans(self, child: int) -> np.ndarray:
        """The tree subtree rooted at ``child``, via one pass over parents."""
        order = np.argsort(self.parent, kind="stable")
        indptr = np.searchsorted(self.parent[order], np.arange(self.graph.n + 1))
        out = [child]
        frontier = [child]
        while frontier:
            nxt: list[int] = []
            for p in frontier:
                kids = order[indptr[p] : indptr[p + 1]]
                if kids.size:
                    nxt.extend(int(k) for k in kids)
            out.extend(nxt)
            frontier = nxt
        return np.array(out, dtype=np.int64)

    def _neighbors_of(self, vertices: np.ndarray) -> np.ndarray:
        """Distinct CSR neighbors of a vertex set (tombstone arcs included)."""
        indptr = self.graph.indptr
        starts = indptr[vertices]
        counts = indptr[vertices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        ends = np.cumsum(counts)
        offsets = np.arange(total) + np.repeat(starts - (ends - counts), counts)
        return np.unique(self.graph.indices[offsets])

    def _relax_from(self, seeds: np.ndarray, label: str) -> int:
        stats = frontier_relax(
            self.pram,
            self.graph,
            self.dist,
            self.parent,
            seeds,
            hops=max(self.graph.n - 1, 1),
            engine="sparse",
            early_exit=True,
            label=label,
        )
        return stats.rounds

    def _repair_worsened(self, u: int, v: int, op: str) -> RepairStats:
        """Repair after a weight increase or deletion on pair (u, v)."""
        self.updates += 1
        before = self.pram.cost.work
        if self.parent[v] == u:
            child = v
        elif self.parent[u] == v:
            child = u
        else:
            # not a tree edge: every label's witness path avoids it and
            # all path costs only rose, so every label is still optimal
            self.pram.cost.traffic(f"dynamic.repair.{op}", elements=1)
            return RepairStats(op=op, mode="noop")
        dirty = self._orphans(int(child))
        est_arcs = int(
            (self.graph.indptr[dirty + 1] - self.graph.indptr[dirty]).sum()
        )
        threshold = int(self.fallback_frac * self.graph.indices.size)
        self.pram.cost.traffic(f"dynamic.repair.{op}", elements=int(dirty.size))
        if est_arcs > threshold:
            self.pram.cost.traffic("dynamic.repair.fallback", elements=1)
            self.rebuilds += 1
            work, rounds = self._full_rebuild()
            return RepairStats(
                op=op, mode="rebuild", dirty=int(dirty.size), rounds=rounds,
                work=work, est_arcs=est_arcs, threshold_arcs=threshold,
            )
        self.dist[dirty] = np.inf
        self.parent[dirty] = -1
        seeds = self._neighbors_of(dirty)
        seeds = seeds[np.isfinite(self.dist[seeds])]
        rounds = self._relax_from(seeds, "dyn_repair") if seeds.size else 0
        self.repairs += 1
        work = self.pram.cost.work - before
        self.repair_work += work
        return RepairStats(
            op=op, mode="repair", dirty=int(dirty.size), seeds=int(seeds.size),
            rounds=rounds, work=work, est_arcs=est_arcs, threshold_arcs=threshold,
        )

    def _repair_improved(self, u: int, v: int, op: str) -> RepairStats:
        """Repair after a weight decrease or insertion on pair (u, v)."""
        self.updates += 1
        before = self.pram.cost.work
        self.pram.cost.traffic(f"dynamic.repair.{op}", elements=1)
        seeds = np.array([u, v], dtype=np.int64)
        seeds = seeds[np.isfinite(self.dist[seeds])]
        if seeds.size == 0:
            # both endpoints unreachable: a cheaper edge between two
            # unreached vertices cannot create a path from the source
            return RepairStats(op=op, mode="noop")
        rounds = self._relax_from(seeds, "dyn_repair")
        self.repairs += 1
        work = self.pram.cost.work - before
        self.repair_work += work
        return RepairStats(
            op=op, mode="repair", seeds=int(seeds.size), rounds=rounds, work=work,
            threshold_arcs=int(self.fallback_frac * self.graph.indices.size),
        )

    # -- the update API ------------------------------------------------------

    def set_weight(self, u: int, v: int, w: float) -> RepairStats:
        """Change the weight of live edge (u, v) and repair the tree."""
        old = self.graph.edge_weight(u, v)
        if not np.isfinite(old):
            raise InvalidGraphError(f"({u},{v}) is not a live edge")
        self.graph.set_weight(u, v, w)
        if float(w) == old:
            self.updates += 1
            return RepairStats(op="update", mode="noop")
        if float(w) > old:
            return self._repair_worsened(u, v, "increase")
        return self._repair_improved(u, v, "decrease")

    def increase_weight(self, u: int, v: int, w: float) -> RepairStats:
        """:meth:`set_weight` restricted to the decremental direction."""
        self.graph.increase_weight(u, v, w)
        return self._repair_worsened(u, v, "increase")

    def decrease_weight(self, u: int, v: int, w: float) -> RepairStats:
        """:meth:`set_weight` restricted to the incremental direction."""
        self.graph.decrease_weight(u, v, w)
        return self._repair_improved(u, v, "decrease")

    def delete_edge(self, u: int, v: int) -> RepairStats:
        """Tombstone edge (u, v) and repair the orphaned subtree, if any."""
        self.graph.delete_edge(u, v)
        return self._repair_worsened(u, v, "delete")

    def insert_edge(self, u: int, v: int, w: float) -> RepairStats:
        """Insert edge (u, v) and propagate any improvement.

        A brand-new pair recompacts the CSR (structural); the repair
        itself is still the incremental frontier relaxation — labels are
        preserved across recompaction because the vertex set is stable.
        """
        recompacted = self.graph.insert_edge(u, v, w)
        if recompacted:
            # derived per-object caches (plans, degrees) refer to the old
            # structure; reset so the next relaxation rebuilds them
            self.pram.workspace.drop_plan(self.graph)
        return self._repair_improved(u, v, "insert")

    def apply(self, op: tuple) -> RepairStats:
        """Apply one schedule op: ``("update"|"delete"|"insert", u, v[, w])``.

        The tuple form the time-varying workload generators emit
        (:func:`repro.graphs.generators.periodic_weight_schedule`,
        :func:`~repro.graphs.generators.failure_burst_schedule`);
        ``update`` upserts — it inserts when the pair is not live.
        """
        kind, u, v = op[0], int(op[1]), int(op[2])
        if kind == "delete":
            return self.delete_edge(u, v)
        if kind not in ("insert", "update"):
            raise InvalidGraphError(f"unknown dynamic op {kind!r}")
        w = float(op[3])
        if kind == "insert" or not self.graph.has_edge(u, v):
            return self.insert_edge(u, v, w)
        return self.set_weight(u, v, w)

    # -- queries & checks ----------------------------------------------------

    def distances(self) -> np.ndarray:
        """The maintained exact distance vector (a live view; do not write)."""
        return self.dist

    def verify(self) -> None:
        """Assert the maintained state against a from-scratch recompute.

        Raises ``AssertionError`` unless ``dist`` matches a full
        Bellman–Ford on the live snapshot **bit-exactly** and every
        finite non-source label satisfies the parent identity
        ``dist[v] == dist[parent[v]] + w(parent[v], v)`` exactly.
        """
        snap = self.graph.snapshot()
        res = bellman_ford(PRAM(), snap, self.source, hops=max(snap.n - 1, 1))
        assert np.array_equal(self.dist, res.dist), "repaired dist diverged"
        finite = np.isfinite(self.dist)
        finite[self.source] = False
        idx = np.flatnonzero(finite)
        for v in idx:
            p = int(self.parent[v])
            assert p >= 0, f"finite label {v} without a parent"
            w = self.graph.edge_weight(p, int(v))
            assert self.dist[v] == self.dist[p] + w, f"parent identity broke at {v}"
