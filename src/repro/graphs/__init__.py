"""Graph substrate: CSR graphs, generators, components, contraction, oracles."""

from repro.graphs.build import (
    from_edge_arrays,
    from_edges,
    reweighted,
    subgraph_by_weight,
    union_with_edges,
)
from repro.graphs.components import component_sizes, connected_components
from repro.graphs.contraction import Quotient, quotient_graph, relabel_dense
from repro.graphs.csr import Graph
from repro.graphs.distances import (
    all_pairs_dijkstra,
    dijkstra,
    dijkstra_with_parents,
    hop_limited_distances,
    path_weight,
    reconstruct_path,
)
from repro.graphs.errors import (
    DisconnectedGraphError,
    GraphError,
    InvalidGraphError,
    VertexError,
)
from repro.graphs.preprocess import (
    ZeroContraction,
    contract_zero_edges,
    lift_distances,
)
from repro.graphs.properties import (
    aspect_ratio_bound,
    exact_aspect_ratio,
    hop_diameter,
    is_connected,
    weight_aspect_ratio,
)

__all__ = [
    "Graph",
    "from_edges",
    "from_edge_arrays",
    "union_with_edges",
    "reweighted",
    "subgraph_by_weight",
    "connected_components",
    "component_sizes",
    "Quotient",
    "quotient_graph",
    "relabel_dense",
    "dijkstra",
    "dijkstra_with_parents",
    "all_pairs_dijkstra",
    "hop_limited_distances",
    "path_weight",
    "reconstruct_path",
    "ZeroContraction",
    "contract_zero_edges",
    "lift_distances",
    "aspect_ratio_bound",
    "exact_aspect_ratio",
    "weight_aspect_ratio",
    "hop_diameter",
    "is_connected",
    "GraphError",
    "InvalidGraphError",
    "DisconnectedGraphError",
    "VertexError",
]
