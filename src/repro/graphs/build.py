"""Validated graph constructors and graph surgery helpers."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError

__all__ = [
    "from_edges",
    "from_edge_arrays",
    "union_with_edges",
    "reweighted",
    "subgraph_by_weight",
]


def from_edges(num_vertices: int, edges: Iterable[Sequence]) -> Graph:
    """Build a graph from an iterable of ``(u, v, w)`` triples.

    Parallel edges are deduplicated keeping the lightest; self-loops are
    rejected.  This mirrors the paper's convention that ω(u, v) is a single
    positive weight per unordered pair.
    """
    triples = list(edges)
    if not triples:
        return Graph(num_vertices, np.zeros(0), np.zeros(0), np.zeros(0))
    arr = np.asarray(triples, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise InvalidGraphError("edges must be (u, v, w) triples")
    return from_edge_arrays(
        num_vertices,
        arr[:, 0].astype(np.int64),
        arr[:, 1].astype(np.int64),
        arr[:, 2],
    )


def from_edge_arrays(
    num_vertices: int, u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> Graph:
    """Build a graph from parallel edge arrays, deduplicating parallels."""
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    if np.any(u == v):
        raise InvalidGraphError("self-loops are not allowed")
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    # Keep the minimum weight per unordered pair: sort by (lo, hi, w) and
    # take the first occurrence of each pair.
    order = np.lexsort((w, hi, lo))
    lo, hi, w = lo[order], hi[order], w[order]
    if lo.size:
        keep = np.ones(lo.size, dtype=bool)
        keep[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
        lo, hi, w = lo[keep], hi[keep], w[keep]
    return Graph(num_vertices, lo, hi, w)


def union_with_edges(
    graph: Graph, u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> Graph:
    """The graph ``G ∪ H``: add edges, keeping min weight on collisions.

    This realizes the paper's ``G_k = (V, E ∪ H_k, ω_k)`` with
    ``ω_k(u,v) = min(ω(u,v), ω_{H_k}(u,v))``.
    """
    all_u = np.concatenate([graph.edge_u, np.asarray(u, dtype=np.int64)])
    all_v = np.concatenate([graph.edge_v, np.asarray(v, dtype=np.int64)])
    all_w = np.concatenate([graph.edge_w, np.asarray(w, dtype=np.float64)])
    return from_edge_arrays(graph.n, all_u, all_v, all_w)


def reweighted(graph: Graph, scale: float) -> Graph:
    """Copy of ``graph`` with all weights multiplied by ``scale`` > 0."""
    if not scale > 0:
        raise InvalidGraphError(f"weight scale must be positive, got {scale}")
    return Graph(graph.n, graph.edge_u, graph.edge_v, graph.edge_w * scale)


def subgraph_by_weight(
    graph: Graph, min_w: float = 0.0, max_w: float = float("inf")
) -> Graph:
    """Subgraph keeping edges with weight in ``(min_w, max_w]``.

    Used by the Klein–Sairam reduction (Appendix C), which deletes edges
    above ``2^{k+1}`` and contracts edges at most ``(ε/n)·2^k``.
    """
    mask = (graph.edge_w > min_w) & (graph.edge_w <= max_w)
    return Graph(graph.n, graph.edge_u[mask], graph.edge_v[mask], graph.edge_w[mask])
