"""Connected components on the PRAM machine (Shiloach–Vishkin style).

The paper invokes the O(log n)-time connected-components algorithm of
Shiloach and Vishkin [SV82] twice: to contract zero-weight edges (footnote 1)
and inside the Klein–Sairam weight reduction (Appendix C), which contracts
all edges of weight at most (ε/n)·2^k per scale.

We implement the standard hook-and-shortcut scheme, vectorized: every
iteration hooks each component's root to the smallest neighboring root and
then pointer-doubles, halving the tree height.  Convergence is O(log n)
iterations, each O(n + m) work and O(log n) depth (the hook step combines
colliding writes with a min-tree, see ``scatter_min``).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

__all__ = ["connected_components", "component_sizes"]


def connected_components(pram: PRAM, graph: Graph) -> np.ndarray:
    """Component labels, each component labelled by its smallest vertex id.

    Returns an array ``label`` with ``label[v] == label[u]`` iff u and v are
    connected; the shared label is the minimum vertex id of the component
    (deterministic, as everything in this repository must be).
    """
    n = graph.n
    label = np.arange(n, dtype=np.int64)
    if graph.num_edges == 0 or n == 0:
        pram.charge(work=n, depth=1, label="cc_trivial")
        return label
    u, v, _ = graph.edges()
    max_iters = 2 * (ceil_log2(max(n, 2)) + 1)
    for _ in range(max_iters):
        lu = label[u]
        lv = label[v]
        lo = np.minimum(lu, lv)
        new = label.copy()
        # Hook both endpoint roots (and the endpoints themselves) onto the
        # smaller neighboring label.
        np.minimum.at(new, lu, lo)
        np.minimum.at(new, lv, lo)
        # Shortcut: pointer-double until this round's forest is flat.
        for _ in range(ceil_log2(max(n, 2)) + 1):
            nxt = new[new]
            if np.array_equal(nxt, new):
                break
            new = nxt
        pram.charge(
            work=2 * int(u.size) + 2 * n,
            depth=2 * ceil_log2(max(n, 2)) + 2,
            label="cc_round",
        )
        if np.array_equal(new, label):
            break
        label = new
    else:  # pragma: no cover - convergence is guaranteed by the doubling
        raise InvalidGraphError("connected components failed to converge")
    return label


def component_sizes(labels: np.ndarray) -> dict[int, int]:
    """Map from component label to component size."""
    uniq, counts = np.unique(labels, return_counts=True)
    return {int(k): int(c) for k, c in zip(uniq, counts)}
