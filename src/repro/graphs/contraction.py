"""Quotient (contracted) graphs — the node graphs of Appendix C.

Given component labels, :func:`quotient_graph` groups vertices into *nodes*
and keeps, for every pair of adjacent nodes, the lightest crossing edge —
remembering which original edge realized it (the reduction's path-reporting
variant, Appendix D, needs the realizing endpoints (x, y) per superedge).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError

__all__ = ["Quotient", "quotient_graph", "relabel_dense"]


@dataclass(frozen=True)
class Quotient:
    """A contracted graph plus the bookkeeping to lift results back.

    Attributes
    ----------
    graph:
        The node graph; vertices are dense node ids ``0 .. num_nodes-1``.
    node_of:
        For each original vertex, its node id.
    members:
        For each node id, the array of original vertex ids it contains.
    rep_u, rep_v:
        For node-graph edge j (in ``graph.edges()`` order), the original
        endpoints realizing the lightest crossing edge, with
        ``node_of[rep_u[j]] == graph.edge_u[j]``.
    """

    graph: Graph
    node_of: np.ndarray
    members: list[np.ndarray]
    rep_u: np.ndarray
    rep_v: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.graph.n

    def node_sizes(self) -> np.ndarray:
        return np.array([m.size for m in self.members], dtype=np.int64)


def relabel_dense(labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Relabel arbitrary labels to ``0..k-1``; returns (dense, originals)."""
    originals, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64), originals


def quotient_graph(
    base: Graph,
    labels: np.ndarray,
    max_weight: float = float("inf"),
    weight_offset: np.ndarray | None = None,
) -> Quotient:
    """Contract ``base`` by ``labels``, keeping lightest crossing edges.

    Parameters
    ----------
    base:
        The original graph.
    labels:
        Per-vertex group labels (any integers).
    max_weight:
        Crossing edges heavier than this are dropped (Appendix C deletes
        edges above 2^{k+1} *before* reweighting).
    weight_offset:
        Optional per-node additive offsets; superedge (X, Y) realized by an
        original edge of weight w gets weight ``w + offset[X] + offset[Y]``
        — exactly eq. (21)'s ``ω(x,y) + (|X|+|Y|)·(ε/n)·2^k`` when the
        offset of node X is ``|X|·(ε/n)·2^k``.
    """
    if labels.shape != (base.n,):
        raise InvalidGraphError("labels must have one entry per vertex")
    node_of, originals = relabel_dense(labels)
    k = int(originals.size)
    members = [np.flatnonzero(node_of == g) for g in range(k)]

    u, v, w = base.edges()
    nu, nv = node_of[u], node_of[v]
    cross = (nu != nv) & (w <= max_weight)
    u, v, w, nu, nv = u[cross], v[cross], w[cross], nu[cross], nv[cross]
    lo = np.minimum(nu, nv)
    hi = np.maximum(nu, nv)
    # orient the realizing endpoints to match (lo, hi)
    swap = nu > nv
    ru = np.where(swap, v, u)
    rv = np.where(swap, u, v)
    order = np.lexsort((w, hi, lo))
    lo, hi, w, ru, rv = lo[order], hi[order], w[order], ru[order], rv[order]
    if lo.size:
        keep = np.ones(lo.size, dtype=bool)
        keep[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
        lo, hi, w, ru, rv = lo[keep], hi[keep], w[keep], ru[keep], rv[keep]
    if weight_offset is not None:
        if weight_offset.shape != (k,):
            raise InvalidGraphError("weight_offset must have one entry per node")
        w = w + weight_offset[lo] + weight_offset[hi]
    qgraph = Graph(k, lo, hi, w)
    # Graph() re-sorts edges; (lo, hi) were already sorted in the same key
    # order (lexsort by (hi, lo) equals lexsort by (w, hi, lo) after dedup,
    # because each (lo, hi) pair is now unique), so rep arrays stay aligned.
    return Quotient(
        graph=qgraph, node_of=node_of, members=members, rep_u=ru, rep_v=rv
    )
