"""Weighted undirected graphs in compressed-sparse-row form.

This is the substrate every algorithm in the repository works on: the input
graph G = (V, E, ω) of the paper (Section 1.5), with positive edge weights
and vertex ids ``0 .. n-1``.

The representation keeps two views that the algorithms need:

* a **unique-edge view** (``edge_u``, ``edge_v``, ``edge_w``): each
  undirected edge once, ``edge_u < edge_v`` — used for hopset accounting and
  edge-parallel relaxation;
* a **CSR adjacency view** (``indptr``, ``indices``, ``weights``): both
  directions of every edge, sorted by endpoint — used for traversals.

Graphs are immutable; "G ∪ H" unions are materialized by
:func:`repro.graphs.build.union_with_edges` into a fresh object.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.errors import InvalidGraphError, VertexError

__all__ = ["Graph"]


class Graph:
    """An immutable weighted undirected graph.

    Parameters
    ----------
    num_vertices:
        n, the number of vertices (ids ``0 .. n-1``).
    edge_u, edge_v, edge_w:
        Parallel arrays of the unique undirected edges.  Self-loops and
        duplicate pairs are rejected here — use
        :func:`repro.graphs.build.from_edges` to build from raw edge soup
        (it deduplicates, keeping the lightest parallel edge).
    """

    __slots__ = (
        "n",
        "edge_u",
        "edge_v",
        "edge_w",
        "indptr",
        "indices",
        "weights",
        "arc_edge_id",
    )

    def __init__(
        self,
        num_vertices: int,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        edge_w: np.ndarray,
    ) -> None:
        if num_vertices < 0:
            raise InvalidGraphError(f"vertex count must be non-negative, got {num_vertices}")
        edge_u = np.asarray(edge_u, dtype=np.int64)
        edge_v = np.asarray(edge_v, dtype=np.int64)
        edge_w = np.asarray(edge_w, dtype=np.float64)
        if not (edge_u.shape == edge_v.shape == edge_w.shape):
            raise InvalidGraphError("edge arrays must have equal length")
        m = int(edge_u.size)
        if m:
            if edge_u.min(initial=0) < 0 or edge_v.min(initial=0) < 0:
                raise InvalidGraphError("negative vertex id in edge list")
            if max(edge_u.max(initial=-1), edge_v.max(initial=-1)) >= num_vertices:
                raise InvalidGraphError("vertex id out of range in edge list")
            if np.any(edge_u == edge_v):
                raise InvalidGraphError("self-loops are not allowed")
            if np.any(~np.isfinite(edge_w)) or np.any(edge_w <= 0):
                raise InvalidGraphError("edge weights must be positive and finite")
        # Canonicalize edge direction and order.
        lo = np.minimum(edge_u, edge_v)
        hi = np.maximum(edge_u, edge_v)
        order = np.lexsort((hi, lo))
        lo, hi, edge_w = lo[order], hi[order], edge_w[order]
        if m > 1 and np.any((lo[1:] == lo[:-1]) & (hi[1:] == hi[:-1])):
            raise InvalidGraphError(
                "duplicate edges; use repro.graphs.build.from_edges to deduplicate"
            )
        self.n = int(num_vertices)
        self.edge_u = lo
        self.edge_v = hi
        self.edge_w = edge_w
        self.edge_u.setflags(write=False)
        self.edge_v.setflags(write=False)
        self.edge_w.setflags(write=False)

        # CSR over both arc directions.
        heads = np.concatenate([lo, hi])
        tails = np.concatenate([hi, lo])
        arc_w = np.concatenate([edge_w, edge_w])
        arc_eid = np.tile(np.arange(m, dtype=np.int64), 2)
        arc_order = np.lexsort((tails, heads))
        heads = heads[arc_order]
        self.indices = tails[arc_order]
        self.weights = arc_w[arc_order]
        self.arc_edge_id = arc_eid[arc_order]
        self.indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(self.indptr, heads + 1, 1)
        np.cumsum(self.indptr, out=self.indptr)
        for arr in (self.indices, self.weights, self.arc_edge_id, self.indptr):
            arr.setflags(write=False)

    # -- basic queries -------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """|E|: the number of unique undirected edges."""
        return int(self.edge_u.size)

    def degree(self, v: int | None = None):
        """Degree of ``v``, or the full degree array when ``v`` is None."""
        degs = np.diff(self.indptr)
        if v is None:
            return degs
        self._check_vertex(v)
        return int(degs[v])

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor ids, edge weights) of vertex ``v``."""
        self._check_vertex(v)
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge (u, v); ``inf`` if absent (paper's convention)."""
        self._check_vertex(u)
        self._check_vertex(v)
        nbrs, ws = self.neighbors(u)
        hit = np.flatnonzero(nbrs == v)
        return float(ws[hit[0]]) if hit.size else float("inf")

    def has_edge(self, u: int, v: int) -> bool:
        return np.isfinite(self.edge_weight(u, v))

    def arcs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All directed arcs as (tails, heads, weights) — 2|E| of them.

        "Tail" is the arc's source vertex.  The arrays are aligned with the
        CSR layout, so ``tails`` is simply the CSR row of each slot.
        """
        tails = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        return tails, self.indices, self.weights

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The unique undirected edges as (u, v, w) with u < v."""
        return self.edge_u, self.edge_v, self.edge_w

    def min_weight(self) -> float:
        if self.num_edges == 0:
            raise InvalidGraphError("graph has no edges")
        return float(self.edge_w.min())

    def max_weight(self) -> float:
        if self.num_edges == 0:
            raise InvalidGraphError("graph has no edges")
        return float(self.edge_w.max())

    def total_weight(self) -> float:
        return float(self.edge_w.sum())

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise VertexError(f"vertex {v} out of range for graph on {self.n} vertices")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.num_edges})"
