"""Exact distance oracles used as verification references.

These are *sequential* reference implementations (Dijkstra, brute-force
hop-limited Bellman–Ford).  They are deliberately outside the PRAM cost
model: the test-suite and the stretch certifier compare the parallel
algorithms' outputs against these ground truths.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import VertexError

__all__ = [
    "dijkstra",
    "dijkstra_with_parents",
    "all_pairs_dijkstra",
    "hop_limited_distances",
    "path_weight",
    "reconstruct_path",
]


def dijkstra(graph: Graph, source: int) -> np.ndarray:
    """Exact single-source distances; unreachable vertices get ``inf``."""
    dist, _ = dijkstra_with_parents(graph, source)
    return dist


def dijkstra_with_parents(graph: Graph, source: int) -> tuple[np.ndarray, np.ndarray]:
    """Exact single-source distances and a shortest-path-tree parent array.

    ``parent[source] == source``; unreachable vertices keep ``parent == -1``.
    """
    if not 0 <= source < graph.n:
        raise VertexError(f"source {source} out of range")
    dist = np.full(graph.n, np.inf)
    parent = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0.0
    parent[source] = source
    done = np.zeros(graph.n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        d, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        lo, hi = indptr[v], indptr[v + 1]
        for t, w in zip(indices[lo:hi], weights[lo:hi]):
            nd = d + w
            if nd < dist[t]:
                dist[t] = nd
                parent[t] = v
                heapq.heappush(heap, (nd, int(t)))
    return dist, parent


def all_pairs_dijkstra(graph: Graph) -> np.ndarray:
    """n × n exact distance matrix (reference only; O(n·m log n))."""
    return np.stack([dijkstra(graph, s) for s in range(graph.n)])


def hop_limited_distances(graph: Graph, source: int, hops: int) -> np.ndarray:
    """``d^{(h)}_G(source, ·)``: shortest distance using at most h edges.

    Implemented as ``hops`` rounds of full edge relaxation (the textbook
    Bellman–Ford recurrence), so it is exactly the quantity the paper writes
    as ``d^{(β)}``.
    """
    if hops < 0:
        raise VertexError(f"hop bound must be non-negative, got {hops}")
    if not 0 <= source < graph.n:
        raise VertexError(f"source {source} out of range")
    dist = np.full(graph.n, np.inf)
    dist[source] = 0.0
    tails, heads, w = graph.arcs()
    for _ in range(hops):
        cand = dist[tails] + w
        new = dist.copy()
        np.minimum.at(new, heads, cand)
        if np.array_equal(new, dist):
            break
        dist = new
    return dist


def path_weight(graph: Graph, path: list[int]) -> float:
    """Total weight of a vertex path; ``inf`` if an edge is missing."""
    total = 0.0
    for a, b in zip(path, path[1:]):
        total += graph.edge_weight(a, b)
    return total


def reconstruct_path(parent: np.ndarray, source: int, target: int) -> list[int]:
    """Vertex sequence source → target from a parent array; [] if unreachable."""
    if parent[target] < 0:
        return []
    out = [int(target)]
    v = int(target)
    for _ in range(parent.size + 1):
        if v == source:
            return out[::-1]
        v = int(parent[v])
        out.append(v)
    return []  # cycle guard: malformed parent array
