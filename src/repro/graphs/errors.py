"""Exception types for the graph substrate."""

from __future__ import annotations


class GraphError(Exception):
    """Base class for graph-construction and graph-query errors."""


class InvalidGraphError(GraphError):
    """The edge data does not describe a valid weighted undirected graph."""


class DisconnectedGraphError(GraphError):
    """An operation requiring connectivity was run on a disconnected graph."""


class VertexError(GraphError):
    """A vertex id is out of range."""
