"""Workload generators for the experiments.

All generators are deterministic given a seed (randomness only ever enters
through a seeded :class:`numpy.random.Generator`), so every experiment in the
benchmark harness is reproducible end to end.

The families map to the experiments of DESIGN.md §4:

* Erdős–Rényi and random geometric graphs — generic hopset workloads (E1–E3, E5);
* grids / tori — the structured sparse workloads;
* weighted paths, caterpillars and layered graphs — *high hop-diameter*
  workloads where a hopset is essential for polylog-depth SSSP (E4);
* wide-weight-range graphs — aspect-ratio stress for the Klein–Sairam
  reduction (E7);
* road networks plus the *time-varying schedules* (periodic congestion,
  failure bursts) — the dynamic-update workloads of E27
  (:mod:`repro.dynamic`); schedules are plain op-batch lists so the same
  sequence drives :class:`~repro.dynamic.repair.DynamicSSSP`,
  :class:`~repro.dynamic.engine.DynamicOracle`, and a serving session.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.build import from_edge_arrays
from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError

__all__ = [
    "as_rng",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "erdos_renyi",
    "random_geometric",
    "preferential_attachment",
    "caterpillar",
    "layered_hop_graph",
    "wide_weight_graph",
    "hypercube_graph",
    "random_regular",
    "binary_tree",
    "circulant_graph",
    "road_network",
    "periodic_weight_schedule",
    "failure_burst_schedule",
]


def as_rng(seed) -> np.random.Generator:
    """Coerce an int seed or Generator into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _weights(rng: np.random.Generator, m: int, lo: float, hi: float) -> np.ndarray:
    if not (0 < lo <= hi):
        raise InvalidGraphError(f"invalid weight range ({lo}, {hi})")
    if lo == hi:
        return np.full(m, lo)
    return rng.uniform(lo, hi, size=m)


def path_graph(n: int, weight: float = 1.0, seed=None, w_range=None) -> Graph:
    """A weighted path 0 - 1 - ... - (n-1)."""
    if n < 1:
        raise InvalidGraphError("path needs at least one vertex")
    u = np.arange(n - 1, dtype=np.int64)
    v = u + 1
    if w_range is not None:
        w = _weights(as_rng(seed), n - 1, *w_range)
    else:
        w = np.full(n - 1, float(weight))
    return from_edge_arrays(n, u, v, w)


def cycle_graph(n: int, weight: float = 1.0) -> Graph:
    """A weighted cycle on n >= 3 vertices."""
    if n < 3:
        raise InvalidGraphError("cycle needs at least three vertices")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return from_edge_arrays(n, u, v, np.full(n, float(weight)))


def star_graph(n: int, weight: float = 1.0) -> Graph:
    """A star: center 0 joined to vertices 1..n-1."""
    if n < 2:
        raise InvalidGraphError("star needs at least two vertices")
    v = np.arange(1, n, dtype=np.int64)
    u = np.zeros(n - 1, dtype=np.int64)
    return from_edge_arrays(n, u, v, np.full(n - 1, float(weight)))


def complete_graph(n: int, seed=None, w_range=(1.0, 2.0)) -> Graph:
    """K_n with random weights in ``w_range``."""
    if n < 2:
        raise InvalidGraphError("complete graph needs at least two vertices")
    u, v = np.triu_indices(n, k=1)
    w = _weights(as_rng(seed), u.size, *w_range)
    return from_edge_arrays(n, u.astype(np.int64), v.astype(np.int64), w)


def grid_graph(rows: int, cols: int, seed=None, w_range=(1.0, 1.0)) -> Graph:
    """A rows × cols grid; vertex (r, c) has id ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise InvalidGraphError("grid dimensions must be positive")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    hor_u = ids[:, :-1].ravel()
    hor_v = ids[:, 1:].ravel()
    ver_u = ids[:-1, :].ravel()
    ver_v = ids[1:, :].ravel()
    u = np.concatenate([hor_u, ver_u])
    v = np.concatenate([hor_v, ver_v])
    w = _weights(as_rng(seed), u.size, *w_range)
    return from_edge_arrays(rows * cols, u, v, w)


def erdos_renyi(
    n: int,
    p: float,
    seed=None,
    w_range=(1.0, 2.0),
    ensure_connected: bool = True,
) -> Graph:
    """G(n, p) with uniform random weights.

    With ``ensure_connected`` a random spanning tree (random parent among
    earlier vertices) is added, so SSSP experiments always reach every
    vertex.
    """
    if n < 1:
        raise InvalidGraphError("graph needs at least one vertex")
    if not 0 <= p <= 1:
        raise InvalidGraphError(f"edge probability must be in [0,1], got {p}")
    rng = as_rng(seed)
    iu, iv = np.triu_indices(n, k=1)
    mask = rng.random(iu.size) < p
    u = iu[mask].astype(np.int64)
    v = iv[mask].astype(np.int64)
    if ensure_connected and n > 1:
        kids = np.arange(1, n, dtype=np.int64)
        parents = (rng.random(n - 1) * kids).astype(np.int64)  # parent < kid
        u = np.concatenate([u, parents])
        v = np.concatenate([v, kids])
    w = _weights(rng, u.size, *w_range)
    return from_edge_arrays(n, u, v, w)


def random_geometric(n: int, radius: float, seed=None, connect: bool = True) -> Graph:
    """Random geometric graph on the unit square; weights = distances.

    Points within ``radius`` are joined; weights are Euclidean distances
    (scaled so the minimum weight is >= a small positive floor).  With
    ``connect``, a nearest-unreached-neighbor tree links any stray
    components.
    """
    rng = as_rng(seed)
    pts = rng.random((n, 2))
    diff = pts[:, None, :] - pts[None, :, :]
    dist = np.sqrt((diff**2).sum(-1))
    iu, iv = np.triu_indices(n, k=1)
    mask = dist[iu, iv] <= radius
    u, v = iu[mask].astype(np.int64), iv[mask].astype(np.int64)
    w = dist[u, v]
    if connect and n > 1:
        # Prim-style: connect each vertex 1..n-1 to its nearest predecessor.
        kids = np.arange(1, n, dtype=np.int64)
        # nearest neighbor among vertices with a smaller id
        best = np.array([int(np.argmin(dist[k, :k])) for k in kids], dtype=np.int64)
        u = np.concatenate([u, best])
        v = np.concatenate([v, kids])
        w = np.concatenate([w, dist[best, kids]])
    floor = 1e-6
    w = np.maximum(w, floor)
    return from_edge_arrays(n, u, v, w)


def preferential_attachment(n: int, m_per: int, seed=None, w_range=(1.0, 2.0)) -> Graph:
    """Barabási–Albert-style preferential attachment (power-law degrees)."""
    if n < 2 or m_per < 1:
        raise InvalidGraphError("need n >= 2 and m_per >= 1")
    rng = as_rng(seed)
    targets_pool: list[int] = [0]
    us: list[int] = []
    vs: list[int] = []
    for new in range(1, n):
        k = min(m_per, new)
        choices = rng.choice(len(targets_pool), size=k, replace=False)
        picked = {targets_pool[c] for c in choices}
        for t in picked:
            us.append(t)
            vs.append(new)
            targets_pool.append(t)
        targets_pool.extend([new] * len(picked))
    w = _weights(rng, len(us), *w_range)
    return from_edge_arrays(n, np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64), w)


def caterpillar(spine: int, legs_per: int, seed=None, w_range=(1.0, 1.0)) -> Graph:
    """A caterpillar tree: a spine path with ``legs_per`` leaves per vertex."""
    if spine < 2:
        raise InvalidGraphError("caterpillar spine needs at least two vertices")
    n = spine * (1 + legs_per)
    su = np.arange(spine - 1, dtype=np.int64)
    sv = su + 1
    leg_u = np.repeat(np.arange(spine, dtype=np.int64), legs_per)
    leg_v = np.arange(spine, n, dtype=np.int64)
    u = np.concatenate([su, leg_u])
    v = np.concatenate([sv, leg_v])
    w = _weights(as_rng(seed), u.size, *w_range)
    return from_edge_arrays(n, u, v, w)


def layered_hop_graph(layers: int, width: int, seed=None, w_range=(1.0, 2.0)) -> Graph:
    """A deep layered graph: high hop diameter, the E4 stress workload.

    ``layers`` layers of ``width`` vertices; each vertex joins a random
    subset of the next layer.  Any s-t path crosses all layers, so plain
    Bellman–Ford needs Θ(layers) rounds while a hopset cuts the depth to β.
    """
    if layers < 2 or width < 1:
        raise InvalidGraphError("need layers >= 2 and width >= 1")
    rng = as_rng(seed)
    n = layers * width
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for layer in range(layers - 1):
        base = layer * width
        nxt = base + width
        src = np.repeat(np.arange(base, base + width, dtype=np.int64), 2)
        dst = nxt + rng.integers(0, width, size=src.size)
        # guarantee layer-to-layer connectivity with an aligned matching
        src = np.concatenate([src, np.arange(base, base + width, dtype=np.int64)])
        dst = np.concatenate([dst, np.arange(nxt, nxt + width, dtype=np.int64)])
        us.append(src)
        vs.append(dst.astype(np.int64))
    u = np.concatenate(us)
    v = np.concatenate(vs)
    w = _weights(rng, u.size, *w_range)
    return from_edge_arrays(n, u, v, w)


def wide_weight_graph(n: int, aspect: float, seed=None, p: float = 0.05) -> Graph:
    """Connected random graph whose edge weights span ``[1, aspect]``.

    Weights are drawn log-uniformly so every scale (2^k, 2^{k+1}] is
    populated — the stress case for the Klein–Sairam weight reduction (E7).
    """
    if aspect < 1:
        raise InvalidGraphError(f"aspect must be >= 1, got {aspect}")
    rng = as_rng(seed)
    g = erdos_renyi(n, p, seed=rng, w_range=(1.0, 1.0), ensure_connected=True)
    m = g.num_edges
    w = np.exp(rng.uniform(0.0, np.log(max(aspect, 1.0 + 1e-12)), size=m))
    return from_edge_arrays(n, g.edge_u, g.edge_v, w)


def hypercube_graph(dim: int, seed=None, w_range=(1.0, 1.0)) -> Graph:
    """The d-dimensional hypercube: 2^d vertices, edges across one bit flip.

    Log-diameter, highly symmetric — a favorable workload where even small
    hop budgets reach everything (the counterpoint to the layered graphs).
    """
    if dim < 1:
        raise InvalidGraphError("hypercube dimension must be at least 1")
    n = 1 << dim
    ids = np.arange(n, dtype=np.int64)
    us, vs = [], []
    for b in range(dim):
        mask = (ids >> b) & 1
        lo = ids[mask == 0]
        us.append(lo)
        vs.append(lo | (1 << b))
    u = np.concatenate(us)
    v = np.concatenate(vs)
    return from_edge_arrays(n, u, v, _weights(as_rng(seed), u.size, *w_range))


def random_regular(n: int, degree: int, seed=None, w_range=(1.0, 2.0)) -> Graph:
    """An (approximately) d-regular random graph via the pairing model.

    Self-loops and duplicate pairs from the pairing are dropped, so a few
    vertices may end up with degree d−O(1); the expander-like structure
    (constant diameter for d ≥ 3) is what the tests rely on.
    """
    if degree < 2 or degree >= n:
        raise InvalidGraphError("need 2 <= degree < n")
    if (n * degree) % 2 != 0:
        raise InvalidGraphError("n * degree must be even for the pairing model")
    rng = as_rng(seed)
    stubs = np.repeat(np.arange(n, dtype=np.int64), degree)
    rng.shuffle(stubs)
    u = stubs[0::2]
    v = stubs[1::2]
    keep = u != v
    u, v = u[keep], v[keep]
    return from_edge_arrays(n, u, v, _weights(rng, u.size, *w_range))


def binary_tree(depth: int, seed=None, w_range=(1.0, 1.0)) -> Graph:
    """A complete binary tree of the given depth (root = vertex 0)."""
    if depth < 1:
        raise InvalidGraphError("tree depth must be at least 1")
    n = (1 << (depth + 1)) - 1
    kids = np.arange(1, n, dtype=np.int64)
    parents = (kids - 1) // 2
    return from_edge_arrays(n, parents, kids, _weights(as_rng(seed), kids.size, *w_range))


def circulant_graph(n: int, offsets: tuple[int, ...] = (1, 2), weight: float = 1.0) -> Graph:
    """A circulant (vertex-transitive) graph: i ~ i±o for each offset o.

    With spread offsets this is a decent constant-degree expander stand-in
    for the dense-neighborhood regime of the superclustering phases.
    """
    if n < 3:
        raise InvalidGraphError("circulant needs at least 3 vertices")
    if not offsets or any(o <= 0 or o >= n for o in offsets):
        raise InvalidGraphError("offsets must lie in [1, n-1]")
    ids = np.arange(n, dtype=np.int64)
    us, vs = [], []
    for o in offsets:
        us.append(ids)
        vs.append((ids + o) % n)
    u = np.concatenate(us)
    v = np.concatenate(vs)
    keep = u != v
    return from_edge_arrays(n, u[keep], v[keep], np.full(int(keep.sum()), float(weight)))

def road_network(rows: int, cols: int, diag_p: float = 0.15, seed=None, w_range=(1.0, 3.0)) -> Graph:
    """A grid with sprinkled diagonal shortcuts — a road-network stand-in.

    The planar grid gives the high hop-diameter of real road graphs; the
    diagonals (each cell gets one with probability ``diag_p``) give the
    occasional bypass/overpass that makes repair-vs-rebuild interesting:
    worsening one street reroutes traffic through a *local* detour
    instead of invalidating a whole quadrant.  The dynamic experiments
    (E27) run their update schedules over this family.
    """
    if rows < 2 or cols < 2:
        raise InvalidGraphError("road network needs at least a 2 x 2 grid")
    if not 0.0 <= diag_p <= 1.0:
        raise InvalidGraphError(f"diag_p must lie in [0, 1], got {diag_p}")
    rng = as_rng(seed)
    base = grid_graph(rows, cols, seed=rng, w_range=w_range)
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    nw = ids[:-1, :-1].ravel()  # cell corners: NW -> SE diagonals
    se = ids[1:, 1:].ravel()
    keep = rng.random(nw.size) < diag_p
    if not keep.any():
        return base
    # a diagonal is longer than either street it bridges (sqrt(2) - ish)
    diag_w = _weights(rng, int(keep.sum()), *w_range) * 1.5
    u = np.concatenate([base.edge_u, nw[keep]])
    v = np.concatenate([base.edge_v, se[keep]])
    w = np.concatenate([base.edge_w, diag_w])
    return from_edge_arrays(rows * cols, u, v, w)


def periodic_weight_schedule(
    graph: Graph, steps: int, *, frac: float = 0.2, peak: float = 3.0, period: int = 8, seed=None
):
    """Rush-hour congestion: sinusoidal weight multipliers on a fixed subset.

    Picks ``frac`` of the edges once (the congested streets) and emits
    ``steps`` batches of ``("update", u, v, w)`` ops; batch ``t`` scales
    each congested edge's *base* weight by ``1 + (peak-1) * s_t`` where
    ``s_t`` sweeps a sinusoid of the given period.  Weights therefore
    return to baseline every cycle — the workload where lazy hopset
    repair shines, because invalidated records become valid again
    without a rebuild.  Deterministic given the seed.
    """
    if steps < 1:
        raise InvalidGraphError("schedule needs at least one step")
    if not 0.0 < frac <= 1.0:
        raise InvalidGraphError(f"frac must lie in (0, 1], got {frac}")
    if peak < 1.0:
        raise InvalidGraphError(f"peak multiplier must be >= 1, got {peak}")
    if period < 2:
        raise InvalidGraphError(f"period must be at least 2, got {period}")
    rng = as_rng(seed)
    m = graph.edge_u.size
    count = max(1, int(round(frac * m)))
    congested = rng.choice(m, size=count, replace=False)
    congested.sort()
    base = graph.edge_w[congested]
    batches = []
    for t in range(steps):
        s = 0.5 * (1.0 - float(np.cos(2.0 * np.pi * t / period)))
        mult = 1.0 + (peak - 1.0) * s
        batches.append(
            [
                ("update", int(graph.edge_u[i]), int(graph.edge_v[i]), float(b * mult))
                for i, b in zip(congested, base)
            ]
        )
    return batches


def failure_burst_schedule(
    graph: Graph, *, bursts: int = 3, burst_size: int = 4, quiet: int = 5, seed=None
):
    """Outage waves: delete a clustered batch of edges, then restore them.

    Each burst deletes ``burst_size`` random live edges in one batch,
    idles for ``quiet`` empty batches (queries keep arriving against the
    degraded graph), then re-inserts the same edges at their original
    weights.  Bursts never overlap and never pick an already-failed
    edge, so every delete in the schedule targets a live edge — replay
    is well-defined from any consumer.  Deterministic given the seed.
    """
    if bursts < 1 or burst_size < 1:
        raise InvalidGraphError("bursts and burst_size must be positive")
    if quiet < 0:
        raise InvalidGraphError(f"quiet must be >= 0, got {quiet}")
    m = graph.edge_u.size
    if bursts * burst_size > m:
        raise InvalidGraphError(
            f"schedule needs {bursts * burst_size} distinct edges, graph has {m}"
        )
    rng = as_rng(seed)
    picks = rng.choice(m, size=bursts * burst_size, replace=False)
    batches = []
    for b in range(bursts):
        wave = picks[b * burst_size : (b + 1) * burst_size]
        batches.append(
            [
                ("delete", int(graph.edge_u[i]), int(graph.edge_v[i]), None)
                for i in wave
            ]
        )
        batches.extend([] for _ in range(quiet))
        batches.append(
            [
                ("update", int(graph.edge_u[i]), int(graph.edge_v[i]), float(graph.edge_w[i]))
                for i in wave
            ]
        )
    return batches
