"""Input preprocessing: non-negative weights via zero-edge contraction.

Footnote 1 of the paper: the algorithms assume strictly positive weights;
graphs with zero-weight edges are handled by contracting them first (one
[SV82] connected-components pass over the zero edges), running everything
on the contracted graph, and lifting the answers back — vertices merged by
zero edges are at distance 0 from each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.contraction import Quotient
from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

__all__ = ["ZeroContraction", "contract_zero_edges", "lift_distances"]


@dataclass(frozen=True)
class ZeroContraction:
    """Result of contracting zero-weight edges.

    ``graph`` has strictly positive weights; ``node_of[v]`` maps every
    original vertex to its contracted vertex; ``representative[c]`` is the
    smallest original vertex id in contracted vertex c.
    """

    graph: Graph
    node_of: np.ndarray
    representative: np.ndarray

    @property
    def contracted(self) -> bool:
        return self.graph.n != self.node_of.size


def contract_zero_edges(
    pram: PRAM,
    num_vertices: int,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
) -> ZeroContraction:
    """Build a positive-weight graph from edges that may include zeros.

    Negative weights are rejected.  Zero-weight edges define an equivalence
    (their connected components, computed with hook-and-shortcut label
    propagation); each class becomes one vertex, positive edges are lifted
    with min-weight dedup, and intra-class positive edges vanish.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    if np.any(w < 0):
        raise InvalidGraphError("negative edge weights are not supported")
    if np.any(u == v):
        raise InvalidGraphError("self-loops are not allowed")
    zero = w == 0.0
    label = np.arange(num_vertices, dtype=np.int64)
    if zero.any():
        zu, zv = u[zero], v[zero]
        for _ in range(2 * (ceil_log2(max(num_vertices, 2)) + 1)):
            lu, lv = label[zu], label[zv]
            lo = np.minimum(lu, lv)
            new = label.copy()
            np.minimum.at(new, lu, lo)
            np.minimum.at(new, lv, lo)
            for _ in range(ceil_log2(max(num_vertices, 2)) + 1):
                nxt = new[new]
                if np.array_equal(nxt, new):
                    break
                new = nxt
            pram.charge(
                work=2 * int(zu.size) + 2 * num_vertices,
                depth=2 * ceil_log2(max(num_vertices, 2)) + 2,
                label="zero_cc",
            )
            if np.array_equal(new, label):
                break
            label = new
    representative, node_of = np.unique(label, return_inverse=True)
    node_of = node_of.astype(np.int64)
    pu, pv, pw = u[~zero], v[~zero], w[~zero]
    cu, cv = node_of[pu], node_of[pv]
    keep = cu != cv
    from repro.graphs.build import from_edge_arrays

    g = from_edge_arrays(int(representative.size), cu[keep], cv[keep], pw[keep])
    return ZeroContraction(graph=g, node_of=node_of, representative=representative)


def lift_distances(zc: ZeroContraction, contracted_dist: np.ndarray) -> np.ndarray:
    """Distances on the contracted graph → distances for original vertices."""
    if contracted_dist.shape != (zc.graph.n,):
        raise InvalidGraphError("distance array does not match the contracted graph")
    return contracted_dist[zc.node_of]
