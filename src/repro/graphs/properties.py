"""Graph statistics: aspect ratio, hop diameter, connectivity.

The paper's complexity bounds depend on the *aspect ratio*
``Λ = max-distance / min-distance`` (Section 1.5).  Exact Λ needs all-pairs
distances, affordable only for test-sized graphs; :func:`aspect_ratio_bound`
gives the standard overestimate ``n · max-weight / min-weight`` used to size
the scale range ``k ∈ [k0, λ]``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.distances import all_pairs_dijkstra, dijkstra
from repro.graphs.errors import InvalidGraphError

__all__ = [
    "weight_aspect_ratio",
    "aspect_ratio_bound",
    "exact_aspect_ratio",
    "is_connected",
    "hop_diameter",
    "weighted_diameter_upper_bound",
]


def weight_aspect_ratio(graph: Graph) -> float:
    """max edge weight / min edge weight."""
    return graph.max_weight() / graph.min_weight()


def aspect_ratio_bound(graph: Graph) -> float:
    """Upper bound on Λ: any shortest path has < n edges of max weight."""
    if graph.num_edges == 0:
        return 1.0
    return (graph.n - 1) * graph.max_weight() / graph.min_weight()


def exact_aspect_ratio(graph: Graph) -> float:
    """Exact Λ via all-pairs Dijkstra (test-sized graphs only)."""
    dmat = all_pairs_dijkstra(graph)
    finite = dmat[np.isfinite(dmat) & (dmat > 0)]
    if finite.size == 0:
        raise InvalidGraphError("graph has no connected vertex pairs")
    return float(finite.max() / finite.min())


def is_connected(graph: Graph) -> bool:
    """Whole-graph connectivity via one Dijkstra sweep."""
    if graph.n <= 1:
        return True
    return bool(np.all(np.isfinite(dijkstra(graph, 0))))


def hop_diameter(graph: Graph) -> int:
    """Maximum over vertices of unweighted eccentricity (BFS levels).

    This is the quantity that lower-bounds the round count of a hopset-less
    Bellman–Ford; the E4 workloads are built to make it large.
    """
    if graph.n == 0:
        return 0
    tails, heads, _ = graph.arcs()
    worst = 0
    for s in range(graph.n):
        level = np.full(graph.n, -1, dtype=np.int64)
        level[s] = 0
        frontier = np.array([s], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            mask = np.isin(tails, frontier)
            nxt = heads[mask]
            nxt = np.unique(nxt[level[nxt] < 0])
            level[nxt] = depth
            frontier = nxt
        reached = level[level >= 0]
        worst = max(worst, int(reached.max(initial=0)))
    return worst


def weighted_diameter_upper_bound(graph: Graph) -> float:
    """Cheap upper bound on the weighted diameter: total edge weight."""
    if graph.num_edges == 0:
        return 0.0
    return graph.total_weight()
