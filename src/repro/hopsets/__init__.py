"""The paper's contribution: deterministic PRAM hopset construction.

Public entry points:

* :func:`build_hopset` — Theorem 3.7: the multi-scale deterministic
  (1+ε, β)-hopset;
* :func:`certify` — exact verification of eq. (1) on experiment-sized
  graphs;
* :class:`HopsetParams` — the (ε, κ, ρ, β) knobs and derived schedules;
* :func:`ruling_set` — the Appendix B derandomization engine;
* weight reduction (Appendix C) and path reporting (§4) live in
  :mod:`repro.hopsets.weight_reduction` and
  :mod:`repro.hopsets.path_reporting`.
"""

from repro.hopsets.cluster_graph import bfs_from_clusters, neighbor_tables
from repro.hopsets.clusters import ClusterMemory, Partition
from repro.hopsets.errors import (
    CertificationError,
    HopsetError,
    ParameterError,
    PathReportingError,
)
from repro.hopsets.hopset import INTERCONNECT, STAR, SUPERCLUSTER, Hopset, HopsetEdge
from repro.hopsets.multi_scale import BuildReport, build_hopset, scale_range
from repro.hopsets.params import (
    HopsetParams,
    PhaseSchedule,
    practical_beta,
    theoretical_beta,
)
from repro.hopsets.path_reporting import (
    PathStats,
    build_path_reporting_hopset,
    memory_path_stats,
)
from repro.hopsets.reduction_paths import (
    PathReductionReport,
    build_reduced_path_reporting_hopset,
    spt_hop_budget,
)
from repro.hopsets.ruling_sets import ruling_set
from repro.hopsets.single_scale import PhaseStats, build_single_scale
from repro.hopsets.weight_reduction import (
    ReductionReport,
    build_reduced_hopset,
    relevant_scales,
)
from repro.hopsets.verification import (
    Certification,
    achieved_hopbound,
    certify,
    certify_sampled,
    verify_memory_paths,
)

__all__ = [
    "build_hopset",
    "BuildReport",
    "scale_range",
    "Hopset",
    "HopsetEdge",
    "SUPERCLUSTER",
    "INTERCONNECT",
    "STAR",
    "HopsetParams",
    "PhaseSchedule",
    "practical_beta",
    "theoretical_beta",
    "Partition",
    "ClusterMemory",
    "neighbor_tables",
    "bfs_from_clusters",
    "ruling_set",
    "build_single_scale",
    "PhaseStats",
    "build_path_reporting_hopset",
    "memory_path_stats",
    "PathStats",
    "build_reduced_hopset",
    "relevant_scales",
    "ReductionReport",
    "build_reduced_path_reporting_hopset",
    "PathReductionReport",
    "spt_hop_budget",
    "certify",
    "certify_sampled",
    "Certification",
    "achieved_hopbound",
    "verify_memory_paths",
    "HopsetError",
    "ParameterError",
    "CertificationError",
    "PathReportingError",
]
