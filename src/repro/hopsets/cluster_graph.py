"""Algorithm 2: parallel hop-limited explorations in the virtual graph G̃ᵢ.

The virtual graph G̃ᵢ has the current clusters ``P_i`` as supervertices and
an edge between clusters at (2β+1)-hop-bounded distance ≤ (1+ε_{k−1})δᵢ in
``G_{k−1}`` (Section 2.1.1).  Its edges are never materialized; instead the
explorations run at the *vertex* level of G_{k−1}:

* **distribution** — every vertex copies its cluster's records,
* **propagation** — 2β+1 rounds of edge relaxation, keeping per vertex the
  x closest sources, pruning entries beyond the distance threshold,
* **aggregation** — every cluster merges its members' records.

Entries are flat NumPy arrays ``(vert, src, dist, seed)`` — ``seed`` is the
vertex at which the entry was seeded (the paper's first path vertex), used
for tight edge weights and path reporting.  The per-round merge implements
the paper's Algorithm 3 (sort, dedup by source, re-sort by distance, keep
x), charged at AKS sorting rates.

Two drivers are exported:

* :func:`neighbor_tables` — the d=1 variants (popular-cluster detection
  with x = degᵢ+1, and the phase-ℓ interconnection with x = |P_ℓ|);
* :func:`bfs_from_clusters` — the x=1 BFS variant (superclustering sweeps
  to depth 2·log n, and the depth-2 knockout sweeps inside Algorithm 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.hopsets.clusters import ClusterMemory, Partition
from repro.hopsets.errors import HopsetError
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2
from repro.pram.workspace import fused_build_default, fused_default

__all__ = ["EntryTable", "ClusterTables", "BFSResult", "neighbor_tables", "bfs_from_clusters"]

_EPS_PAD = 1e-9  # float-safe threshold comparisons


@dataclass
class EntryTable:
    """Flat per-vertex exploration entries (the paper's L(v) lists)."""

    vert: np.ndarray
    src: np.ndarray
    dist: np.ndarray
    seed: np.ndarray
    paths: list[tuple[int, ...]] | None = None

    @property
    def size(self) -> int:
        return int(self.vert.size)

    def take(self, idx: np.ndarray) -> "EntryTable":
        return EntryTable(
            vert=self.vert[idx],
            src=self.src[idx],
            dist=self.dist[idx],
            seed=self.seed[idx],
            paths=None if self.paths is None else [self.paths[i] for i in idx],
        )

    @staticmethod
    def concat(a: "EntryTable", b: "EntryTable") -> "EntryTable":
        paths: list[tuple[int, ...]] | None = None
        if (a.paths is None) != (b.paths is None):
            raise HopsetError("cannot concat path-recording with non-recording tables")
        if a.paths is not None and b.paths is not None:
            paths = a.paths + b.paths
        return EntryTable(
            vert=np.concatenate([a.vert, b.vert]),
            src=np.concatenate([a.src, b.src]),
            dist=np.concatenate([a.dist, b.dist]),
            seed=np.concatenate([a.seed, b.seed]),
            paths=paths,
        )


@dataclass
class ClusterTables:
    """Aggregated per-cluster records: the paper's m(C) arrays.

    Rows are grouped by cluster and sorted by (dist, src) within a cluster.
    ``member`` is the cluster vertex that realized the entry (paper's u);
    ``seed`` the vertex where it originated inside the source cluster (z).
    """

    num_clusters: int
    cluster: np.ndarray
    src: np.ndarray
    dist: np.ndarray
    member: np.ndarray
    seed: np.ndarray
    paths: list[tuple[int, ...]] | None
    row_start: np.ndarray  # (num_clusters + 1,) CSR offsets into the rows

    def rows_of(self, c: int) -> slice:
        return slice(int(self.row_start[c]), int(self.row_start[c + 1]))

    def counts(self) -> np.ndarray:
        return np.diff(self.row_start)


@dataclass
class BFSResult:
    """Outcome of a multi-pulse BFS in G̃ᵢ from a set of source clusters."""

    pulse: np.ndarray       # detection pulse per cluster; -1 = undetected, 0 = source
    origin: np.ndarray      # originating source cluster (-1 = undetected)
    pred: np.ndarray        # predecessor cluster on the detection chain (-1 at sources)
    acc_weight: np.ndarray  # realized origin-center → cluster-center path weight
    seg_seed: np.ndarray    # z: seed vertex (in pred) of the detecting segment
    seg_member: np.ndarray  # u: member vertex (in cluster) where detection arrived
    seg_dist: np.ndarray    # weight of the z → u segment in G_{k−1}
    seg_paths: list[tuple[int, ...] | None] | None

    def detected(self) -> np.ndarray:
        return self.pulse >= 0


# ---------------------------------------------------------------------------
# internal machinery
# ---------------------------------------------------------------------------


def _seed(
    members_by_cluster: list[np.ndarray],
    clusters: np.ndarray,
    src_of_cluster: np.ndarray,
    record_paths: bool,
) -> EntryTable:
    """Distribution part: every member of each listed cluster gets (src, 0)."""
    member_lists = [members_by_cluster[int(c)] for c in clusters]
    if member_lists:
        vert = np.concatenate(member_lists)
        sizes = np.array([m.size for m in member_lists], dtype=np.int64)
        src = np.repeat(np.asarray(src_of_cluster, dtype=np.int64), sizes)
    else:
        vert = np.zeros(0, dtype=np.int64)
        src = np.zeros(0, dtype=np.int64)
    paths = [(int(v),) for v in vert] if record_paths else None
    return EntryTable(
        vert=vert,
        src=src,
        dist=np.zeros(vert.size, dtype=np.float64),
        seed=vert.copy(),
        paths=paths,
    )


def _dedup_and_prune(
    table: EntryTable, x: int, pram: PRAM, fused: bool | None = None
) -> EntryTable:
    """Algorithm 3: dedup per (vertex, source) by min distance, keep x per vertex.

    ``fused=None`` follows :func:`fused_build_default` (``REPRO_FUSED_BUILD``).
    The fused path replaces the multi-key lexsorts with the grouped
    staged-minimum kernel :func:`~repro.pram.primitives.pprune_entries` —
    bit-identical rows and charges, wall-clock only.  Path-recording
    tables always take the sort path: path tuples are selected by sorted
    row *position*, which value-space minima cannot reproduce.
    """
    n = table.size
    if n == 0:
        return table
    if fused is None:
        fused = fused_build_default()
    if fused and table.paths is None:
        vert, src, dist, seed = pram.prune_entries(
            table.vert, table.src, table.dist, table.seed, x
        )
        return EntryTable(vert=vert, src=src, dist=dist, seed=seed)
    if x == 1:
        # Per-vertex pruning to one entry subsumes the per-(vertex, source)
        # dedup: keep the minimum (dist, src, seed) row per vertex.
        order = np.lexsort((table.seed, table.src, table.dist, table.vert))
        t = table.take(order)
        first = np.ones(t.size, dtype=bool)
        first[1:] = t.vert[1:] != t.vert[:-1]
        out = t.take(np.flatnonzero(first))
        pram.charge(
            work=n * max(1, ceil_log2(n)),
            depth=ceil_log2(max(n, 2)) + 1,
            label="algo3_sort",
        )
        return out
    # Sort by (vert, src, dist, seed): first row of each (vert, src) group is
    # the minimum-distance entry (seed is a deterministic tiebreak).
    order = np.lexsort((table.seed, table.dist, table.src, table.vert))
    t = table.take(order)
    first = np.ones(t.size, dtype=bool)
    first[1:] = (t.vert[1:] != t.vert[:-1]) | (t.src[1:] != t.src[:-1])
    t = t.take(np.flatnonzero(first))
    # Keep the x closest sources per vertex (ties by src id).
    order2 = np.lexsort((t.src, t.dist, t.vert))
    t = t.take(order2)
    new_vert = np.ones(t.size, dtype=bool)
    new_vert[1:] = t.vert[1:] != t.vert[:-1]
    group_start = np.flatnonzero(new_vert)
    group_id = np.cumsum(new_vert) - 1
    rank = np.arange(t.size) - group_start[group_id]
    t = t.take(np.flatnonzero(rank < x))
    pram.charge(
        work=2 * n * max(1, ceil_log2(n)),
        depth=2 * (ceil_log2(max(n, 2)) + 1),
        label="algo3_sort",
    )
    return t


def _propagate(
    pram: PRAM,
    graph: Graph,
    table: EntryTable,
    rounds: int,
    threshold: float,
    x: int,
) -> EntryTable:
    """Propagation part: ``rounds`` rounds of threshold-pruned relaxation.

    The per-round arc expansion runs through the shared CSR frontier-gather
    primitive (each table entry is one frontier slot; entries of one vertex
    gather its out-arcs once per entry), so the gather's prefix-sum depth is
    charged honestly and its write-set is declared to the race detector.
    """
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    use_fused = fused_default()
    fused_build = fused_build_default()
    # per-scale cluster-graph gather plan: the cached degree array spares
    # every round below one row-pointer gather + subtract
    deg_all = pram.workspace.csr_degrees(graph)
    table = _dedup_and_prune(table, x, pram, fused=fused_build)
    for _ in range(rounds):
        if table.size == 0:
            break
        if use_fused:
            # Fused gather + candidate add: one pass, pooled temporaries,
            # charged identically to the gather_csr + raw-add sequence below.
            rep, head, cand_dist = pram.gather_add(
                indptr, indices, weights, table.vert, table.dist,
                label="relax_gather", add_label="relax", deg_all=deg_all,
            )
            if head.size == 0:
                break
        else:
            rep, arc = pram.gather_csr(indptr, table.vert, label="relax_gather")
            total = int(arc.size)
            if total == 0:
                break
            head = indices[arc]
            cand_dist = table.dist[rep] + weights[arc]
            pram.charge(work=total, depth=1, label="relax")
        keep = cand_dist <= threshold + _EPS_PAD
        rep_k = rep[keep]
        if rep_k.size == 0:
            break
        head_k = head[keep]
        cand = EntryTable(
            vert=head_k,
            src=table.src[rep_k],
            dist=cand_dist[keep],
            seed=table.seed[rep_k],
            paths=(
                None
                if table.paths is None
                else [
                    table.paths[int(i)] + (int(h),)
                    for i, h in zip(rep_k, head_k)
                ]
            ),
        )
        before = table.size
        before_key = (table.vert.copy(), table.src.copy(), table.dist.copy())
        table = _dedup_and_prune(EntryTable.concat(table, cand), x, pram, fused=fused_build)
        if table.size == before and np.array_equal(table.vert, before_key[0]) and np.array_equal(
            table.src, before_key[1]
        ) and np.array_equal(table.dist, before_key[2]):
            break  # converged early; remaining rounds are no-ops
    return table


def _aggregate(
    pram: PRAM,
    partition: Partition,
    table: EntryTable,
    x: int,
) -> ClusterTables:
    """Aggregation part: merge member entries into per-cluster m(C) tables.

    The fused path (``REPRO_FUSED_BUILD``, default on) runs the grouped
    staged-minimum kernel :func:`~repro.pram.primitives.paggregate_entries`
    instead of the 5-key lexsort — bit-identical rows and charges;
    path-recording tables always take the sort path (path tuples are
    selected by sorted row position).
    """
    ncl = partition.num_clusters
    cl = partition.cluster_of[table.vert] if table.size else np.zeros(0, dtype=np.int64)
    live = cl >= 0
    idx = np.flatnonzero(live)
    t = table.take(idx)
    cl = cl[idx]
    n = t.size
    if n and t.paths is None and fused_build_default():
        cl, src_a, dist_a, member_a, seed_a = pram.aggregate_entries(
            cl, t.src, t.dist, t.vert, t.seed, x
        )
        t = EntryTable(vert=member_a, src=src_a, dist=dist_a, seed=seed_a)
    elif n:
        # dedup per (cluster, src) keeping min (dist, member, seed)
        order = np.lexsort((t.seed, t.vert, t.dist, t.src, cl))
        t = t.take(order)
        cl = cl[order]
        first = np.ones(n, dtype=bool)
        first[1:] = (cl[1:] != cl[:-1]) | (t.src[1:] != t.src[:-1])
        sel = np.flatnonzero(first)
        t = t.take(sel)
        cl = cl[sel]
        # keep the x closest sources per cluster
        order2 = np.lexsort((t.src, t.dist, cl))
        t = t.take(order2)
        cl = cl[order2]
        new_cl = np.ones(t.size, dtype=bool)
        new_cl[1:] = cl[1:] != cl[:-1]
        group_start = np.flatnonzero(new_cl)
        group_id = np.cumsum(new_cl) - 1
        rank = np.arange(t.size) - group_start[group_id]
        sel2 = np.flatnonzero(rank < x)
        t = t.take(sel2)
        cl = cl[sel2]
        pram.charge(
            work=2 * n * max(1, ceil_log2(n)),
            depth=2 * (ceil_log2(max(n, 2)) + 1),
            label="aggregate",
        )
    counts = np.zeros(ncl, dtype=np.int64)
    if t.size:
        np.add.at(counts, cl, 1)
    row_start = np.zeros(ncl + 1, dtype=np.int64)
    np.cumsum(counts, out=row_start[1:])
    return ClusterTables(
        num_clusters=ncl,
        cluster=cl,
        src=t.src,
        dist=t.dist,
        member=t.vert,
        seed=t.seed,
        paths=t.paths,
        row_start=row_start,
    )


# ---------------------------------------------------------------------------
# public drivers
# ---------------------------------------------------------------------------


def neighbor_tables(
    pram: PRAM,
    graph: Graph,
    partition: Partition,
    threshold: float,
    hops: int,
    x: int,
    record_paths: bool = False,
    members_by_cluster: list[np.ndarray] | None = None,
) -> ClusterTables:
    """One pulse (d=1) of Algorithm 2 from *all* clusters, x sources kept.

    With ``x = degᵢ + 1`` this is the popular-cluster detection of
    Lemma A.3: a cluster is popular iff its table holds x records (itself +
    degᵢ neighbors).  With ``x = |P_ℓ|`` it is the phase-ℓ interconnection
    sweep.  Every record carries the (2β+1)-hop cluster distance, the
    realizing member vertex, and the seed vertex inside the source cluster.
    """
    if x < 1:
        raise HopsetError(f"x must be >= 1, got {x}")
    members = members_by_cluster if members_by_cluster is not None else partition.members_by_cluster()
    all_clusters = np.arange(partition.num_clusters, dtype=np.int64)
    table = _seed(members, all_clusters, all_clusters, record_paths)
    pram.charge(work=table.size, depth=1, label="distribute")
    with pram.subphase("explore"):
        table = _propagate(pram, graph, table, hops, threshold, x)
    with pram.subphase("aggregate"):
        return _aggregate(pram, partition, table, x)


def bfs_from_clusters(
    pram: PRAM,
    graph: Graph,
    partition: Partition,
    source_mask: np.ndarray,
    threshold: float,
    hops: int,
    max_pulses: int,
    memory: ClusterMemory | None = None,
    record_paths: bool = False,
    members_by_cluster: list[np.ndarray] | None = None,
) -> BFSResult:
    """The x=1 BFS variant (Appendix A.3.2) from ``source_mask`` clusters.

    Each pulse advances the detection frontier one G̃ᵢ-hop (Lemma A.4); per
    pulse the frontier clusters' members are re-seeded at distance 0 and
    relaxed for ``hops`` rounds within ``threshold``.  Detection is
    deterministic: ties broken by (segment distance, predecessor id,
    member id, seed id).

    ``memory`` supplies CD(·) so ``acc_weight`` is the *realized* weight of
    the composed center-to-center path (tight edge weights, §4.3); without
    it the CD terms are treated as 0 and ``acc_weight`` only sums segment
    weights (callers in faithful mode use the formula weight anyway).
    """
    ncl = partition.num_clusters
    if source_mask.shape != (ncl,):
        raise HopsetError("source_mask must have one flag per cluster")
    members = members_by_cluster if members_by_cluster is not None else partition.members_by_cluster()
    pulse = np.full(ncl, -1, dtype=np.int64)
    origin = np.full(ncl, -1, dtype=np.int64)
    pred = np.full(ncl, -1, dtype=np.int64)
    acc = np.full(ncl, np.inf)
    seg_seed = np.full(ncl, -1, dtype=np.int64)
    seg_member = np.full(ncl, -1, dtype=np.int64)
    seg_dist = np.full(ncl, np.inf)
    seg_paths: list[tuple[int, ...] | None] | None = [None] * ncl if record_paths else None

    sources = np.flatnonzero(source_mask)
    pulse[sources] = 0
    origin[sources] = sources
    acc[sources] = 0.0
    frontier = sources
    cd = memory.cd if memory is not None else None

    for p in range(1, max_pulses + 1):
        if frontier.size == 0:
            break
        table = _seed(members, frontier, frontier, record_paths)
        pram.charge(work=table.size, depth=1, label="distribute")
        table = _propagate(pram, graph, table, hops, threshold, x=1)
        agg = _aggregate(pram, partition, table, x=1)
        fresh: list[int] = []
        for row in range(agg.cluster.size):
            c = int(agg.cluster[row])
            if pulse[c] >= 0:
                continue
            pulse[c] = p
            pr = int(agg.src[row])
            pred[c] = pr
            origin[c] = origin[pr]
            z = int(agg.seed[row])
            u = int(agg.member[row])
            d = float(agg.dist[row])
            seg_seed[c] = z
            seg_member[c] = u
            seg_dist[c] = d
            cd_z = float(cd[z]) if cd is not None else 0.0
            cd_u = float(cd[u]) if cd is not None else 0.0
            acc[c] = acc[pr] + cd_z + d + cd_u
            if seg_paths is not None and agg.paths is not None:
                seg_paths[c] = agg.paths[row]
            fresh.append(c)
        pram.charge(work=ncl, depth=1, label="bfs_bookkeep")
        frontier = np.array(fresh, dtype=np.int64)
    return BFSResult(
        pulse=pulse,
        origin=origin,
        pred=pred,
        acc_weight=acc,
        seg_seed=seg_seed,
        seg_member=seg_member,
        seg_dist=seg_dist,
        seg_paths=seg_paths,
    )
