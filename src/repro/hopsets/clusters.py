"""Clusters, partitions, and cluster memory (Sections 2.1 and 4.3).

A *partition state* tracks the paper's ``P_i``: the collection of clusters
that are still being superclustered.  Every cluster has a center vertex
(its processors simulate the cluster) and the cluster's ID is its center's
ID (Section 1.5).  Vertices whose cluster has left the game (joined some
``U_j``) carry ``cluster_of == -1``.

:class:`ClusterMemory` is the §4.3 cluster-memory: for every vertex ``v``
currently in a cluster ``C`` centered at ``r_C``, it stores ``CD(v)`` — the
weight of a *remembered* path from v to r_C in ``E ∪ H_{k−1}`` — and, in
path-reporting mode, ``CP(v)`` — the path itself.  These let hopset edges be
assigned *realized* path weights (tight mode) and implementing paths
(path-reporting mode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hopsets.errors import HopsetError

__all__ = ["Partition", "ClusterMemory"]


@dataclass
class Partition:
    """The current cluster collection ``P_i``.

    Attributes
    ----------
    cluster_of:
        (n,) array; ``cluster_of[v]`` is v's dense cluster index in
        ``[0, num_clusters)`` or -1 if v's cluster has left ``P_i``.
    centers:
        (num_clusters,) array of center vertex ids; ``centers[c]`` is the
        paper's ``r_C`` and doubles as the cluster's ID for tie-breaking
        and the ruling-set bit recursion.
    """

    cluster_of: np.ndarray
    centers: np.ndarray

    @staticmethod
    def singletons(n: int) -> "Partition":
        """Phase 0: ``P_0 = {{v} | v ∈ V}`` (every vertex its own center)."""
        ids = np.arange(n, dtype=np.int64)
        return Partition(cluster_of=ids.copy(), centers=ids.copy())

    @property
    def num_clusters(self) -> int:
        return int(self.centers.size)

    @property
    def n(self) -> int:
        return int(self.cluster_of.size)

    def members(self, c: int) -> np.ndarray:
        """Vertex ids of cluster ``c``."""
        return np.flatnonzero(self.cluster_of == c)

    def members_by_cluster(self) -> list[np.ndarray]:
        """Members of every cluster (one pass, grouped)."""
        order = np.argsort(self.cluster_of, kind="stable")
        sorted_cl = self.cluster_of[order]
        live = sorted_cl >= 0
        order, sorted_cl = order[live], sorted_cl[live]
        out: list[np.ndarray] = [np.zeros(0, dtype=np.int64) for _ in range(self.num_clusters)]
        if order.size == 0:
            return out
        bounds = np.flatnonzero(np.diff(sorted_cl)) + 1
        starts = np.concatenate([[0], bounds])
        ends = np.concatenate([bounds, [order.size]])
        for s, e in zip(starts, ends):
            out[int(sorted_cl[s])] = order[s:e]
        return out

    def sizes(self) -> np.ndarray:
        counts = np.zeros(self.num_clusters, dtype=np.int64)
        live = self.cluster_of >= 0
        np.add.at(counts, self.cluster_of[live], 1)
        return counts

    def validate(self) -> None:
        """Internal-consistency checks (each center belongs to its cluster)."""
        if self.num_clusters:
            owner = self.cluster_of[self.centers]
            if not np.array_equal(owner, np.arange(self.num_clusters)):
                raise HopsetError("partition centers do not belong to their clusters")


class ClusterMemory:
    """Per-vertex distance (and optionally path) to the current cluster center.

    Paths are stored root-last: ``cp[v] == (v, ..., r_C)``.  Vertices outside
    any current cluster keep their last values; callers only read entries of
    currently clustered vertices.
    """

    def __init__(self, n: int, record_paths: bool = False) -> None:
        self.cd = np.zeros(n, dtype=np.float64)
        self.record_paths = record_paths
        self.cp: list[tuple[int, ...]] | None = (
            [(v,) for v in range(n)] if record_paths else None
        )

    def reset_singletons(self) -> None:
        """Phase 0: every vertex is its own center at distance 0."""
        self.cd[:] = 0.0
        if self.cp is not None:
            for v in range(len(self.cp)):
                self.cp[v] = (v,)

    def absorb(
        self,
        vertices: np.ndarray,
        extra_dist: float,
        extra_path: tuple[int, ...] | None = None,
    ) -> None:
        """The §4.3 update when these vertices' cluster joins a supercluster.

        Their new center is reached by appending the superclustering edge's
        memory path (old center → new center) after their old CP path:
        ``CP_new(v) = CP_old(v) ++ path(r_old → r_new)``,
        ``CD_new(v) = CD_old(v) + weight(path)``.
        """
        self.cd[vertices] += extra_dist
        if self.cp is not None:
            if extra_path is None:
                raise HopsetError("path-reporting memory requires an extra_path")
            tail = extra_path[1:]  # old center is already the CP path's last vertex
            for v in vertices:
                self.cp[int(v)] = self.cp[int(v)] + tail

    def path(self, v: int) -> tuple[int, ...]:
        if self.cp is None:
            raise HopsetError("cluster memory was built without path recording")
        return self.cp[int(v)]
