"""Exception types for the hopset construction."""

from __future__ import annotations


class HopsetError(Exception):
    """Base class for hopset-construction errors."""


class ParameterError(HopsetError):
    """A construction parameter is outside its legal range."""


class CertificationError(HopsetError):
    """A constructed hopset failed its safety/stretch certification."""


class PathReportingError(HopsetError):
    """A memory path or peeling invariant was violated."""
