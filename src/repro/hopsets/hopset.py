"""The hopset container: per-scale edge records and the union graph G ∪ H.

A hopset edge is born in a specific scale k, phase i, and step
(superclustering or interconnection); the path-reporting machinery (§4)
needs all of that provenance, plus the *memory path* implementing the edge
in ``E ∪ H_{k−1}``.  The container keeps the full per-scale records and
exposes the deduplicated union for distance computations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.graphs.build import union_with_edges
from repro.graphs.csr import Graph
from repro.hopsets.errors import HopsetError

__all__ = ["HopsetEdge", "Hopset", "SUPERCLUSTER", "INTERCONNECT", "STAR"]

SUPERCLUSTER = "supercluster"
INTERCONNECT = "interconnect"
STAR = "star"  # Appendix C node-star edges


@dataclass(frozen=True)
class HopsetEdge:
    """One hopset edge with its provenance.

    ``path`` (path-reporting mode only) is the memory path: a vertex tuple
    from ``u`` to ``v`` whose edges all lie in ``E ∪ H_{k−1}`` and whose
    total weight is at most ``weight`` (the §4.1 memory property).
    """

    u: int
    v: int
    weight: float
    scale: int
    phase: int
    kind: str
    path: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise HopsetError("hopset self-loop")
        if not self.weight > 0:
            raise HopsetError(f"hopset edge weight must be positive, got {self.weight}")
        if self.path is not None:
            if len(self.path) < 2 or self.path[0] != self.u or self.path[-1] != self.v:
                raise HopsetError(
                    f"memory path endpoints {self.path[:1]}..{self.path[-1:]} "
                    f"do not match edge ({self.u}, {self.v})"
                )


@dataclass
class Hopset:
    """A (1+ε, β)-hopset: the union over scales of single-scale hopsets."""

    n: int
    edges: list[HopsetEdge] = field(default_factory=list)
    beta: int = 0
    epsilon: float = 0.0
    meta: dict = field(default_factory=dict)

    def add(self, edges: Iterable[HopsetEdge]) -> None:
        self.edges.extend(edges)

    @property
    def num_records(self) -> int:
        """Total edge records over all scales (with per-scale multiplicity)."""
        return len(self.edges)

    def size(self) -> int:
        """|H|: distinct vertex pairs carrying a hopset edge."""
        if not self.edges:
            return 0
        pairs = {(min(e.u, e.v), max(e.u, e.v)) for e in self.edges}
        return len(pairs)

    def scales(self) -> list[int]:
        return sorted({e.scale for e in self.edges})

    def of_scale(self, k: int) -> list[HopsetEdge]:
        return [e for e in self.edges if e.scale == k]

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All records as (u, v, w) arrays (duplicates included; the union
        graph construction keeps the per-pair minimum)."""
        if not self.edges:
            z = np.zeros(0, dtype=np.int64)
            return z, z.copy(), np.zeros(0, dtype=np.float64)
        u = np.array([e.u for e in self.edges], dtype=np.int64)
        v = np.array([e.v for e in self.edges], dtype=np.int64)
        w = np.array([e.weight for e in self.edges], dtype=np.float64)
        return u, v, w

    def union_graph(self, base: Graph) -> Graph:
        """``G ∪ H`` with ``ω(u,v) = min(ω_G, ω_H)`` — the paper's 𝒢."""
        if base.n != self.n:
            raise HopsetError(
                f"hopset built for n={self.n} cannot union with a graph on n={base.n}"
            )
        u, v, w = self.edge_arrays()
        return union_with_edges(base, u, v, w)

    def union_graph_up_to_scale(self, base: Graph, k: int) -> Graph:
        """``G ∪ H_{k0} ∪ ... ∪ H_k`` (used by the peeling procedure)."""
        sub = [e for e in self.edges if e.scale <= k]
        if not sub:
            return base
        u = np.array([e.u for e in sub], dtype=np.int64)
        v = np.array([e.v for e in sub], dtype=np.int64)
        w = np.array([e.weight for e in sub], dtype=np.float64)
        return union_with_edges(base, u, v, w)

    def kind_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.edges:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hopset(n={self.n}, records={self.num_records}, pairs={self.size()}, "
            f"scales={self.scales()}, beta={self.beta})"
        )
