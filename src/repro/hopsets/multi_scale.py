"""The multi-scale hopset driver: H = ⋃_{k ∈ [k0, λ]} H_k (Theorem 3.7).

Scales k = k0 .. λ are built bottom-up; the scale-k construction explores
``G_{k−1} = G ∪ H_{k−1}`` (only the *previous* scale's hopset is used,
Section 3.2).  Scales below k0 = ⌊log β⌋ are empty: a shortest path of
weight ≤ 2^{k0+1} ≤ 2β already has ≤ 2β edges when the minimum weight is 1.

Edge weights are normalized so the minimum weight is 1 (the paper's
Section 1.5 convention) and rescaled back on output.  The per-scale stretch
compounds as ε_k = (1+ε_{k−1})(1+ε') − 1 (Lemma 3.6); with
``params.scale_epsilon`` the per-scale ε' is ε / (2 · #scales) so the final
guarantee stays ≈ 1+ε (Section 3.4's rescaling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.graphs.build import reweighted, union_with_edges
from repro.graphs.csr import Graph
from repro.hopsets.hopset import Hopset, HopsetEdge
from repro.hopsets.params import HopsetParams, PhaseSchedule
from repro.hopsets.single_scale import PhaseStats, build_single_scale
from repro.pram.machine import PRAM

import numpy as np

__all__ = ["BuildReport", "build_hopset", "scale_range"]


@dataclass
class BuildReport:
    """Construction record: per-scale stats plus total work/depth."""

    scales: list[int] = field(default_factory=list)
    per_scale_stats: dict[int, list[PhaseStats]] = field(default_factory=dict)
    per_scale_edges: dict[int, int] = field(default_factory=dict)
    work: int = 0
    depth: int = 0


def scale_range(graph: Graph, beta: int) -> tuple[int, int]:
    """(k0, λ): the scale indices [⌊log β⌋, ⌈log Λ⌉ − 1] after normalization.

    Λ is bounded by the normalized weighted diameter (total weight / min
    weight): no vertex pair is farther than that, so higher scales are empty.
    """
    if graph.num_edges == 0:
        return 0, -1
    k0 = max(int(math.floor(math.log2(max(beta, 1)))), 0)
    diameter_bound = graph.total_weight() / graph.min_weight()
    lam = max(int(math.ceil(math.log2(max(diameter_bound, 2.0)))) - 1, k0)
    return k0, lam


def build_hopset(
    graph: Graph,
    params: HopsetParams | None = None,
    pram: PRAM | None = None,
    record_paths: bool = False,
) -> tuple[Hopset, BuildReport]:
    """Deterministically build a (1+ε, β)-hopset for ``graph``.

    Returns the hopset and a :class:`BuildReport`.  The construction is
    fully deterministic: identical inputs yield identical hopsets (the
    derandomization claim of the paper, tested in E5).
    """
    params = params if params is not None else HopsetParams()
    pram = pram if pram is not None else PRAM()
    n = graph.n
    hopset = Hopset(n=n, beta=params.beta_for(n), epsilon=params.epsilon)
    report = BuildReport()
    if graph.num_edges == 0 or n < 2:
        return hopset, report

    w_min = graph.min_weight()
    scaled = reweighted(graph, 1.0 / w_min) if w_min != 1.0 else graph
    beta = params.beta_for(n)
    k0, lam = scale_range(scaled, beta)
    num_scales = max(lam - k0 + 1, 1)
    eps_scale = params.epsilon / (2 * num_scales) if params.scale_epsilon else params.epsilon

    start = pram.snapshot()
    eps_prev = 0.0
    prev_scale_edges: list[HopsetEdge] = []
    for k in range(k0, lam + 1):
        if prev_scale_edges:
            u = np.array([e.u for e in prev_scale_edges], dtype=np.int64)
            v = np.array([e.v for e in prev_scale_edges], dtype=np.int64)
            w = np.array([e.weight for e in prev_scale_edges], dtype=np.float64)
            g_prev = union_with_edges(scaled, u, v, w)
        else:
            g_prev = scaled
        schedule = PhaseSchedule.for_scale(n, k, params, eps=eps_scale, eps_prev=eps_prev)
        with pram.phase(f"scale{k}"):
            edges_k, stats_k = build_single_scale(
                pram,
                g_prev,
                schedule,
                tight_weights=params.tight_weights,
                record_paths=record_paths,
            )
        hopset.add(edges_k)
        report.scales.append(k)
        report.per_scale_stats[k] = stats_k
        report.per_scale_edges[k] = len(edges_k)
        prev_scale_edges = edges_k
        eps_prev = (1 + eps_prev) * (1 + eps_scale) - 1

    if w_min != 1.0:
        hopset.edges = [
            HopsetEdge(
                u=e.u, v=e.v, weight=e.weight * w_min,
                scale=e.scale, phase=e.phase, kind=e.kind, path=e.path,
            )
            for e in hopset.edges
        ]
    delta = pram.snapshot() - start
    report.work = delta.work
    report.depth = delta.depth
    hopset.meta.update(
        {
            "k0": k0,
            "lambda": lam,
            "eps_per_scale": eps_scale,
            "eps_compounded": eps_prev,
            "work": report.work,
            "depth": report.depth,
        }
    )
    return hopset, report
