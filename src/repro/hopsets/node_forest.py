"""The nodes forest Ḡ and laminar center selection (Appendix C.3, Fig. 10).

Across the relevant scales, the contracted nodes form a laminar family:
the contraction threshold (ε/n)·2^k grows with k, so every scale-k node is
a union of nodes of the previous relevant scale.  Centers are chosen
consistently — a node inherits the center of its *largest* sub-node — which
Lemma C.1 turns into the ``|S| ≤ n·log n`` star-edge bound: every vertex
pays a star edge only when its sub-node loses the "largest" contest, which
halves the containing size each time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hopsets.errors import HopsetError

__all__ = ["ScaleNodes", "select_centers"]


@dataclass
class ScaleNodes:
    """Nodes of one relevant scale: labels, members, centers, star targets."""

    scale: int
    node_of: np.ndarray            # per-vertex dense node id
    members: list[np.ndarray]
    centers: np.ndarray            # per-node center vertex
    star_targets: list[np.ndarray]  # per-node vertices that receive a star edge


def select_centers(
    scale: int,
    node_of: np.ndarray,
    members: list[np.ndarray],
    prev: ScaleNodes | None,
) -> ScaleNodes:
    """Pick node centers for one scale, consistently with the previous one.

    Base scale (``prev is None``): the smallest-id member is the center and
    every other member gets a star edge (deterministic stand-in for the
    paper's "arbitrary vertex").

    Higher scales: among the previous-scale sub-nodes of U, the largest
    (ties → smallest center id) donates its center; every vertex of U
    outside that sub-node gets a star edge.  Vertices inside it keep their
    existing star edges — none are re-added, which is what caps |S|.
    """
    num_nodes = len(members)
    centers = np.full(num_nodes, -1, dtype=np.int64)
    star_targets: list[np.ndarray] = []
    if prev is None:
        for j, mem in enumerate(members):
            if mem.size == 0:
                raise HopsetError("empty node in contraction")
            centers[j] = int(mem.min())
            star_targets.append(mem[mem != centers[j]])
        return ScaleNodes(scale, node_of, members, centers, star_targets)

    for j, mem in enumerate(members):
        sub_ids = np.unique(prev.node_of[mem])
        sizes = np.array([prev.members[int(s)].size for s in sub_ids])
        sub_centers = prev.centers[sub_ids]
        # largest sub-node wins; ties broken by smallest center id
        order = np.lexsort((sub_centers, -sizes))
        winner = int(sub_ids[order[0]])
        centers[j] = int(prev.centers[winner])
        inside_winner = prev.node_of[mem] == winner
        star_targets.append(mem[~inside_winner])
    return ScaleNodes(scale, node_of, members, centers, star_targets)
