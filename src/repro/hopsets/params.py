"""Construction parameters and the paper's derived schedules.

Section 2 fixes, for input parameters 0 < ε < 1/10, κ ∈ {1, 2, ...} and
0 < ρ < 1/2, the per-phase schedules used by every scale's construction:

* number of phases       ``ℓ = ⌊log κρ⌋ + ⌈(κ+1)/(κρ)⌉ − 1``
* degree thresholds      ``deg_i = n^{2^i/κ}`` (exponential stage,
  ``i ≤ i₀ = ⌊log κρ⌋``) then ``deg_i = n^ρ`` (fixed stage)
* distance thresholds    ``δ_i = α·(1/ε)^i`` with ``α = ℓ·2^{k+1}``
* radius bounds          ``R₀ = 0, R_{i+1} = (2(1+ε_{k−1})δ_i + 4R_i)·log n + R_i``
* path-length bounds     ``σ₀ = 0, σ_{i+1} = (4 log n + 1)σ_i + 2(2β+1) log n``
  (eq. 20, path-reporting)
* hopbound               eq. (2) — implemented exactly in
  :func:`theoretical_beta`, which is astronomically large for real n; the
  constructor therefore also accepts a *practical* β (see DESIGN.md §1 and
  §6: the construction is distance-safe for every β).

When κρ < 1 the exponential stage is empty (i₀ < 0) and every phase uses
``deg_i = n^ρ`` — the paper's formulas specialize cleanly to this case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hopsets.errors import ParameterError

__all__ = ["HopsetParams", "PhaseSchedule", "theoretical_beta", "practical_beta"]


def theoretical_beta(n: int, aspect_ratio: float, epsilon: float, kappa: int, rho: float) -> float:
    """The paper's hopbound, eq. (2).

    ``β = O(log Λ · log n · (log κρ + 1/ρ) / ε)^{⌊log κρ⌋ + ⌈(κ+1)/(κρ)⌉ − 1}``

    Returned as a float because it overflows any practical hop budget —
    that is the point of exposing it: the benchmark harness reports the
    paper bound next to the practical β that the experiments actually use.
    """
    if n < 2:
        return 1.0
    ell = num_phases(kappa, rho)
    base = (
        math.log2(max(aspect_ratio, 2.0))
        * math.log2(n)
        * (max(math.log2(kappa * rho), 0.0) + 1.0 / rho)
        / epsilon
    )
    return max(base, 1.0) ** max(ell, 1)


def practical_beta(n: int) -> int:
    """Default practical hopbound: Θ(log n) exploration budget."""
    return max(4, int(math.ceil(math.log2(max(n, 2)))) + 2)


def num_phases(kappa: int, rho: float) -> int:
    """``ℓ = ⌊log κρ⌋ + ⌈(κ+1)/(κρ)⌉ − 1`` (at least 1)."""
    ell = math.floor(math.log2(kappa * rho)) + math.ceil((kappa + 1) / (kappa * rho)) - 1
    return max(int(ell), 1)


def exponential_stage_end(kappa: int, rho: float) -> int:
    """``i₀ = ⌊log κρ⌋``; negative when κρ < 1 (empty exponential stage)."""
    return math.floor(math.log2(kappa * rho))


@dataclass(frozen=True)
class HopsetParams:
    """User-facing knobs of the deterministic hopset construction.

    Parameters
    ----------
    epsilon:
        The per-scale construction ε (drives the δ_i thresholds and the
        per-scale stretch target).  The end-to-end stretch compounds across
        scales as (1+ε)^{#scales} (Lemma 3.6); pass
        ``scale_epsilon=True`` to divide ε by the scale count up front so
        the compounded stretch stays ≈ 1+ε, at the cost of larger δ_i.
    kappa:
        Sparsity: |H_k| ≤ n^{1+1/κ} (eq. 9).
    rho:
        Work exponent: ~n^ρ processors per edge/vertex; 0 < ρ < 1/2.
    beta:
        Exploration hop budget (2β+1-hop explorations).  ``None`` selects
        :func:`practical_beta`.  Any value is *safe*; small values may
        degrade the certified stretch, which experiments measure.
    tight_weights:
        ``True`` (default): hopset edges carry the realized path weight
        (still an upper bound on the true distance, but not inflated).
        ``False``: the paper's worst-case formula weights
        (superclustering: ``2((1+ε_{k−1})δ_i + 2R_i)·log n``,
        interconnection: ``d^{(2β+1)} + 2R_i``) — the faithful-mode
        ablation of DESIGN.md §4/E2.
    scale_epsilon:
        Rescale ε per Section 3.4 so the compounded multi-scale stretch
        stays ≤ 1+ε.
    """

    epsilon: float = 0.25
    kappa: int = 2
    rho: float = 0.4
    beta: int | None = None
    tight_weights: bool = True
    scale_epsilon: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.kappa < 1:
            raise ParameterError(f"kappa must be a positive integer, got {self.kappa}")
        if not 0 < self.rho < 0.5:
            raise ParameterError(f"rho must be in (0, 1/2), got {self.rho}")
        if self.beta is not None and self.beta < 1:
            raise ParameterError(f"beta must be positive, got {self.beta}")

    def beta_for(self, n: int) -> int:
        """The hop budget used for graphs on n vertices."""
        return self.beta if self.beta is not None else practical_beta(n)

    @property
    def ell(self) -> int:
        return num_phases(self.kappa, self.rho)

    @property
    def i0(self) -> int:
        return exponential_stage_end(self.kappa, self.rho)

    def degree_threshold(self, n: int, phase: int) -> int:
        """``deg_i``: exponential then fixed growth (Section 2.1), ≥ 2."""
        if phase < 0 or phase > self.ell:
            raise ParameterError(f"phase {phase} outside [0, {self.ell}]")
        if phase <= self.i0:
            exponent = (2.0**phase) / self.kappa
        else:
            exponent = self.rho
        deg = int(math.ceil(n**exponent))
        return max(2, min(deg, n))


@dataclass(frozen=True)
class PhaseSchedule:
    """All derived per-phase quantities for one scale-k construction.

    Built once per (n, k) by :meth:`for_scale`; the single-scale
    constructor then reads thresholds off it, and the faithful-weights
    mode reads the radius bounds ``R_i``.
    """

    n: int
    k: int
    beta: int
    eps: float
    eps_prev: float
    ell: int
    alpha: float
    degrees: tuple[int, ...]
    deltas: tuple[float, ...]
    radii: tuple[float, ...] = field(default=())
    sigmas: tuple[float, ...] = field(default=())

    @staticmethod
    def for_scale(
        n: int, k: int, params: HopsetParams, eps: float, eps_prev: float
    ) -> "PhaseSchedule":
        """Instantiate Section 2.1's schedules for scale (2^k, 2^{k+1}]."""
        ell = params.ell
        beta = params.beta_for(n)
        # δ_i = α·(1/ε)^i with δ_{ℓ−1} = 2^{k+1}.  The paper's text prints
        # α = ℓ·2^{k+1}, but its own analysis (Lemma 2.8's "thus
        # d_G(C_u, C_v) ≤ 2^{k+1}" and Corollary 3.5's additive-term
        # algebra) only goes through with α = ε^{ℓ−1}·2^{k+1}, which is
        # also the schedule of the randomized original [EN19].
        alpha = (eps ** (ell - 1)) * (2.0 ** (k + 1))
        degrees = tuple(params.degree_threshold(n, i) for i in range(ell + 1))
        deltas = tuple(alpha * (1.0 / eps) ** i for i in range(ell + 1))
        log_n = math.log2(max(n, 2))
        radii = [0.0]
        for i in range(ell):
            radii.append((2 * (1 + eps_prev) * deltas[i] + 4 * radii[i]) * log_n + radii[i])
        sigmas = [0.0]
        for _ in range(ell):
            sigmas.append((4 * log_n + 1) * sigmas[-1] + 2 * (2 * beta + 1) * log_n)
        return PhaseSchedule(
            n=n,
            k=k,
            beta=beta,
            eps=eps,
            eps_prev=eps_prev,
            ell=ell,
            alpha=alpha,
            degrees=degrees,
            deltas=deltas,
            radii=tuple(radii),
            sigmas=tuple(sigmas),
        )

    def threshold(self, phase: int) -> float:
        """The exploration prune distance ``(1+ε_{k−1})·δ_i``."""
        return (1.0 + self.eps_prev) * self.deltas[phase]

    @property
    def sigma(self) -> float:
        """eq. (20): maximum memory-path length ``σ = 2σ_ℓ + 2β + 1``."""
        return 2 * self.sigmas[-1] + 2 * self.beta + 1
