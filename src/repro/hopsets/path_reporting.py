"""Path-reporting hopsets — Section 4 / Theorem 4.5.

A hopset is *path-reporting* when every edge satisfies the memory property
(§4.1): it carries an explicit path in ``E ∪ H_{k−1}`` of weight at most
the edge's weight.  The construction threads paths through the Algorithm 2
messages (the paper's L_P/L_dist lists; our entry tables carry the same
tuples) and through the cluster memory CP/CD (§4.3), so recording costs a
σ-factor in space/work — eq. (20) bounds σ, and
:func:`memory_path_stats` measures the realized lengths against it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.hopsets.errors import PathReportingError
from repro.hopsets.hopset import Hopset
from repro.hopsets.multi_scale import BuildReport, build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM

__all__ = ["PathStats", "build_path_reporting_hopset", "memory_path_stats"]


@dataclass(frozen=True)
class PathStats:
    """Realized memory-path lengths vs the σ bound of eq. (20)."""

    num_edges: int
    max_hops: int
    mean_hops: float
    sigma_bound: float

    @property
    def within_bound(self) -> bool:
        return self.max_hops <= self.sigma_bound


def build_path_reporting_hopset(
    graph: Graph,
    params: HopsetParams | None = None,
    pram: PRAM | None = None,
) -> tuple[Hopset, BuildReport]:
    """Theorem 4.5: the deterministic hopset with the memory property."""
    return build_hopset(graph, params, pram, record_paths=True)


def memory_path_stats(hopset: Hopset, sigma_bound: float) -> PathStats:
    """Hop-length statistics of all memory paths in ``hopset``."""
    lens: list[int] = []
    for e in hopset.edges:
        if e.path is None:
            raise PathReportingError(
                f"edge ({e.u},{e.v}) has no memory path; "
                "build with build_path_reporting_hopset"
            )
        lens.append(len(e.path) - 1)
    if not lens:
        return PathStats(0, 0, 0.0, sigma_bound)
    arr = np.array(lens)
    return PathStats(
        num_edges=len(lens),
        max_hops=int(arr.max()),
        mean_hops=float(arr.mean()),
        sigma_bound=sigma_bound,
    )
