"""Appendix D: path-reporting hopsets *without* aspect-ratio dependence.

Combines the Klein–Sairam reduction (Appendix C) with the memory property
(§4), yielding Theorem D.1/D.2: a path-reporting hopset (and thus a
(1+ε)-SPT) whose β and depth do not depend on Λ.

Per relevant scale k the construction produces three layers of edges whose
memory paths reference strictly lower layers — exactly the three
replacement steps of Figure 11:

* **lifted hop-edges** (the per-𝒢_k hopset, node centers substituted for
  nodes): a memory path over node centers where each step is either a
  lower-scale lifted edge or one *superedge step*;
* each superedge step (c_X → c_Y) is expanded inline to
  ``c_X → x → y → c_Y`` — the realizing original edge (x, y) of the
  superedge (Figure 12) flanked by two **star edges**;
* **star edges** (center → member) carry spanning-forest paths inside the
  contracted node (only original edges).

The layers are ordered by integer *scale codes* (stars < lifted edges of
the same k; everything of scale k below everything of later relevant
scales), so the generic peeling procedure of :mod:`repro.sssp.spt`
consumes the result unchanged.  The SPT query budget is (6β+5) hops
([EN19] Lemma 4.3's hop expansion).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.build import reweighted, subgraph_by_weight
from repro.graphs.components import connected_components
from repro.graphs.contraction import quotient_graph
from repro.graphs.csr import Graph
from repro.hopsets.errors import PathReportingError
from repro.hopsets.hopset import STAR, Hopset, HopsetEdge
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.node_forest import ScaleNodes, select_centers
from repro.hopsets.params import HopsetParams
from repro.hopsets.weight_reduction import relevant_scales
from repro.pram.machine import PRAM

__all__ = ["PathReductionReport", "build_reduced_path_reporting_hopset", "spt_hop_budget"]

_CODE_STRIDE = 256  # scale codes per relevant scale (stars, then lifted layers)


def spt_hop_budget(beta: int) -> int:
    """The [EN19] Lemma 4.3 hop expansion for reduced hopsets: 6β+5."""
    return 6 * beta + 5


@dataclass
class PathReductionReport:
    """Accounting for the Appendix D construction."""

    relevant: list[int] = field(default_factory=list)
    star_edges: int = 0
    lifted_edges: int = 0
    code_of_scale: dict[int, int] = field(default_factory=dict)  # k → base code
    work: int = 0
    depth: int = 0


def _star_tree(graph: Graph, threshold: float, centers: np.ndarray):
    """Multi-source shortest-path forest from node centers on light edges.

    Returns (dist, parent): the §C.3 spanning-tree distances with explicit
    parents, so star edges can carry their in-node paths.
    """
    sub = subgraph_by_weight(graph, max_w=threshold)
    dist = np.full(graph.n, np.inf)
    parent = np.full(graph.n, -1, dtype=np.int64)
    dist[centers] = 0.0
    parent[centers] = centers
    tails, heads, w = sub.arcs()
    for _ in range(graph.n):
        cand = dist[tails] + w
        new = dist.copy()
        np.minimum.at(new, heads, cand)
        changed = new < dist - 1e-15
        if not changed.any():
            break
        # recover winning parents for the changed cells (deterministic: the
        # smallest tail among ties)
        for h in np.flatnonzero(changed):
            arcs_in = np.flatnonzero(heads == h)
            vals = dist[tails[arcs_in]] + w[arcs_in]
            best = arcs_in[np.lexsort((tails[arcs_in], vals))[0]]
            parent[h] = tails[best]
        dist = new
    return dist, parent


def _vertex_path_to_center(parent: np.ndarray, z: int) -> tuple[int, ...]:
    """Center-first path (center, ..., z) following the star forest."""
    chain = [int(z)]
    cur = int(z)
    for _ in range(parent.size + 1):
        p = int(parent[cur])
        if p == cur:
            return tuple(reversed(chain))
        chain.append(p)
        cur = p
    raise PathReportingError("star forest parent chain does not terminate")


def build_reduced_path_reporting_hopset(
    graph: Graph,
    params: HopsetParams | None = None,
    pram: PRAM | None = None,
) -> tuple[Hopset, PathReductionReport]:
    """Theorem D.1: deterministic path-reporting hopset, Λ-free."""
    params = params if params is not None else HopsetParams()
    pram = pram if pram is not None else PRAM()
    n = graph.n
    beta = params.beta_for(n)
    hopset = Hopset(n=n, beta=beta, epsilon=params.epsilon)
    report = PathReductionReport()
    if graph.num_edges == 0 or n < 2:
        return hopset, report

    w_min = graph.min_weight()
    scaled = reweighted(graph, 1.0 / w_min) if w_min != 1.0 else graph
    eps = params.epsilon
    scales = relevant_scales(scaled, eps, beta)
    report.relevant = scales
    start = pram.snapshot()

    prev_nodes: ScaleNodes | None = None
    for idx, k in enumerate(scales):
        base_code = (idx + 1) * _CODE_STRIDE
        report.code_of_scale[k] = base_code
        contract_thr = (eps / n) * (2.0**k)
        delete_thr = 2.0 ** (k + 1)
        light = subgraph_by_weight(scaled, max_w=contract_thr)
        labels = connected_components(pram, light)
        _, dense = np.unique(labels, return_inverse=True)
        sizes = np.bincount(dense).astype(np.float64)
        offset = sizes * contract_thr
        quot = quotient_graph(scaled, labels, max_weight=delete_thr, weight_offset=offset)
        nodes = select_centers(k, quot.node_of, quot.members, prev_nodes)

        # --- star edges with in-node paths -----------------------------
        star_dist, star_parent = _star_tree(scaled, contract_thr, nodes.centers)
        for j, targets in enumerate(nodes.star_targets):
            c = int(nodes.centers[j])
            for z in targets:
                d = float(star_dist[int(z)])
                if not np.isfinite(d) or d <= 0:
                    continue
                path = _vertex_path_to_center(star_parent, int(z))
                hopset.edges.append(
                    HopsetEdge(u=c, v=int(z), weight=d, scale=base_code,
                               phase=-1, kind=STAR, path=path)
                )
                report.star_edges += 1
        pram.charge(work=n, depth=1, label="stars")

        if quot.graph.num_edges == 0 or quot.num_nodes < 2:
            prev_nodes = nodes
            continue

        # --- per-superedge realization table ----------------------------
        qe_u, qe_v, qe_w = quot.graph.edges()
        superedge: dict[tuple[int, int], tuple[int, int, float]] = {}
        for a, b, w, ru, rv in zip(qe_u, qe_v, qe_w, quot.rep_u, quot.rep_v):
            superedge[(int(a), int(b))] = (int(ru), int(rv), float(w))

        # --- lifted hopset of the contracted graph ----------------------
        sub_hopset, _ = build_hopset(quot.graph, params, pram, record_paths=True)
        sub_scales = sub_hopset.scales()
        code_of_sub = {ks: base_code + 1 + r for r, ks in enumerate(sorted(sub_scales))}
        # min sub-record weight per node pair and sub scale prefix, used to
        # replicate the union-min semantics of memory-path steps
        best_below: dict[tuple[int, int], list[tuple[int, float]]] = {}
        for e in sub_hopset.edges:
            key = (min(e.u, e.v), max(e.u, e.v))
            best_below.setdefault(key, []).append((e.scale, e.weight))

        def step_realization(a: int, b: int, sub_scale: int):
            """How a node-path step (a, b) is realized below ``sub_scale``.

            Returns ("graph", (x, y, w)) for a superedge (expanded via
            stars + the realizing original edge) or ("lifted", w) for a
            lower-scale lifted record.
            """
            key = (min(a, b), max(a, b))
            gw = superedge.get(key, (None, None, np.inf))[2]
            rec_w = min(
                (w for s, w in best_below.get(key, []) if s < sub_scale),
                default=np.inf,
            )
            if not np.isfinite(gw) and not np.isfinite(rec_w):
                raise PathReportingError(
                    f"node step ({a},{b}) is not realizable below scale {sub_scale}"
                )
            if gw <= rec_w:
                ru, rv, _ = superedge[key]
                # orient the realizing endpoints a-side first
                if quot.node_of[ru] != a:
                    ru, rv = rv, ru
                return "graph", (ru, rv, gw)
            return "lifted", rec_w

        def convert_path(node_path: tuple[int, ...], sub_scale: int) -> tuple[int, ...]:
            """Node-id memory path → vertex path over centers/stars/edges."""
            out: list[int] = [int(nodes.centers[node_path[0]])]
            for a, b in zip(node_path, node_path[1:]):
                kind, info = step_realization(int(a), int(b), sub_scale)
                cb = int(nodes.centers[int(b)])
                if kind == "graph":
                    x, y, _ = info
                    for vtx in (int(x), int(y), cb):
                        if vtx != out[-1]:
                            out.append(vtx)
                else:
                    if cb != out[-1]:
                        out.append(cb)
            return tuple(out)

        for e in sub_hopset.edges:
            cu = int(nodes.centers[e.u])
            cv = int(nodes.centers[e.v])
            if cu == cv:
                continue
            if e.path is None:
                raise PathReportingError("sub-hopset was not built path-reporting")
            vpath = convert_path(e.path, e.scale)
            if vpath[0] != cu or vpath[-1] != cv:
                raise PathReportingError("lifted memory path lost its endpoints")
            hopset.edges.append(
                HopsetEdge(u=cu, v=cv, weight=e.weight, scale=code_of_sub[e.scale],
                           phase=e.phase, kind=e.kind, path=vpath)
            )
            report.lifted_edges += 1
        prev_nodes = nodes

    if w_min != 1.0:
        hopset.edges = [
            HopsetEdge(u=e.u, v=e.v, weight=e.weight * w_min,
                       scale=e.scale, phase=e.phase, kind=e.kind, path=e.path)
            for e in hopset.edges
        ]
    delta = pram.snapshot() - start
    report.work, report.depth = delta.work, delta.depth
    hopset.meta.update(
        {
            "reduction": True,
            "path_reporting": True,
            "relevant_scales": scales,
            "star_edges": report.star_edges,
            "lifted_edges": report.lifted_edges,
        }
    )
    return hopset, report
