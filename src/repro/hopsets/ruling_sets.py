"""Algorithm 4: deterministic (3, 2·log n)-ruling sets for cluster graphs.

The derandomization engine of the paper (Appendix B), after
[AGLP89, SEW13, KMW18]: a divide-and-conquer over the bits of cluster IDs
(IDs = center vertex ids, Section 1.5).  The recursion tree is processed
level by level, bottom-up; at each level every invocation splits its alive
clusters by the current ID bit into B₀ (bit 0) and B₁ (bit 1), all B₀ sets
jointly run one BFS to depth 2 in the virtual graph G̃ᵢ, and every detected
B₁ cluster is *knocked out* — possibly by a different invocation's
exploration, which the paper explicitly allows (Figure 9).

Guarantees (Lemmas B.2, B.3): the output Q is 3-separated w.r.t. G̃ᵢ, and
every input cluster has a Q-cluster within G̃ᵢ-distance 2·⌈log n⌉.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import Graph
from repro.hopsets.cluster_graph import bfs_from_clusters
from repro.hopsets.clusters import Partition
from repro.hopsets.errors import HopsetError
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

__all__ = ["ruling_set"]


def ruling_set(
    pram: PRAM,
    graph: Graph,
    partition: Partition,
    candidates: np.ndarray,
    threshold: float,
    hops: int,
    members_by_cluster: list[np.ndarray] | None = None,
) -> np.ndarray:
    """Compute a (3, 2·⌈log n⌉)-ruling set for ``candidates`` w.r.t. G̃ᵢ.

    Parameters
    ----------
    partition:
        The cluster collection ``P_i`` defining G̃ᵢ's supervertices.
    candidates:
        Boolean mask over clusters — the paper's ``W_i`` (popular clusters).
    threshold, hops:
        G̃ᵢ's edge rule: clusters at (``hops``-bounded) distance ≤
        ``threshold`` in the underlying graph are adjacent.

    Returns
    -------
    Boolean mask of the selected clusters Q ⊆ candidates.
    """
    ncl = partition.num_clusters
    if candidates.shape != (ncl,):
        raise HopsetError("candidates mask must have one flag per cluster")
    alive = candidates.copy()
    if not alive.any():
        return alive
    ids = partition.centers.astype(np.int64)
    bits = ceil_log2(max(int(partition.n), 2))
    members = (
        members_by_cluster if members_by_cluster is not None else partition.members_by_cluster()
    )
    for h in range(bits):
        # one span per ID-bit level of the divide-and-conquer recursion
        with pram.subphase(f"bit{h}"):
            bit = (ids >> h) & 1
            b0 = alive & (bit == 0)
            b1 = alive & (bit == 1)
            pram.charge(work=ncl, depth=1, label="ruling_split")
            if not (b0.any() and b1.any()):
                continue
            bfs = bfs_from_clusters(
                pram,
                graph,
                partition,
                source_mask=b0,
                threshold=threshold,
                hops=hops,
                max_pulses=2,
                members_by_cluster=members,
            )
            knocked = b1 & bfs.detected()
            alive &= ~knocked
            pram.charge(work=ncl, depth=1, label="ruling_knockout")
    return alive
