"""Single-scale hopset construction — Section 2.1 of the paper.

One scale k handles vertex pairs with d_G(u, v) ∈ (2^k, 2^{k+1}].  The
construction runs ℓ+1 phases of superclustering-and-interconnection over the
cluster collection ``P_i``:

1. **detect popular clusters** (Lemma A.3): one pulse of Algorithm 2 with
   x = degᵢ+1 sources kept — a cluster with ≥ degᵢ neighbors in G̃ᵢ is
   popular;
2. **ruling set** (Corollary B.4): a deterministic (3, 2·log n)-ruling set
   Qᵢ for the popular clusters;
3. **superclustering**: a BFS to depth 2·log n in G̃ᵢ from Qᵢ; every
   detected cluster joins the supercluster of its detecting source and its
   center adds one superclustering edge to H_k;
4. **interconnection**: clusters left out (``U_i``) connect their centers
   to the centers of all neighbors that are also in ``U_i``.

Phase ℓ skips superclustering (eq. 5 guarantees |P_ℓ| ≤ n^ρ) and
interconnects everything.

Edge weights come in two modes (DESIGN.md §6): *faithful* uses the paper's
worst-case formulas (superclustering ``2((1+ε_{k−1})δᵢ + 2Rᵢ)·log n``,
Lemma 2.3; interconnection ``d^{(2β+1)}(C,C') + 2Rᵢ``, Lemma 2.9); *tight*
(default) uses the realized weight of the implementing path, which the
cluster memory (§4.3) makes available at no asymptotic cost.  Both are
upper bounds on the true distance, so the hopset never shortens distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.hopsets.cluster_graph import BFSResult, bfs_from_clusters, neighbor_tables
from repro.hopsets.clusters import ClusterMemory, Partition
from repro.hopsets.errors import CertificationError
from repro.hopsets.hopset import INTERCONNECT, SUPERCLUSTER, HopsetEdge
from repro.hopsets.params import PhaseSchedule
from repro.hopsets.ruling_sets import ruling_set
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

__all__ = ["PhaseStats", "build_single_scale", "compose_supercluster_path", "interconnect_path"]


@dataclass(frozen=True)
class PhaseStats:
    """Per-phase accounting, used by the E3/E6 experiment tables."""

    phase: int
    num_clusters: int
    popular: int
    ruling_set_size: int
    supercluster_edges: int
    interconnect_edges: int
    degree_threshold: int
    distance_threshold: float


def compose_supercluster_path(
    bfs: BFSResult, c: int, memory: ClusterMemory, centers: np.ndarray
) -> tuple[int, ...]:
    """Memory path: origin center → center of detected cluster ``c``.

    Walks the detection chain (Figure 2): per hop, descend from the
    predecessor's center to the seed z (reversed CP(z)), traverse the
    recorded z → u segment, then climb CP(u) to the detected cluster's
    center.
    """
    chain: list[int] = []
    cur = c
    while bfs.pred[cur] >= 0:
        chain.append(cur)
        cur = int(bfs.pred[cur])
    path: tuple[int, ...] = (int(centers[cur]),)
    for cl in reversed(chain):
        z = int(bfs.seg_seed[cl])
        u = int(bfs.seg_member[cl])
        down = memory.path(z)[::-1]  # pred center → z
        if down[0] != path[-1]:
            raise CertificationError("memory-path composition lost the predecessor center")
        path = path + down[1:]
        seg = bfs.seg_paths[cl] if bfs.seg_paths is not None else None
        if seg is None:
            raise CertificationError("superclustering BFS did not record a segment path")
        path = path + seg[1:]
        path = path + memory.path(u)[1:]
    return path


def interconnect_path(
    memory: ClusterMemory, z: int, u: int, seg: tuple[int, ...]
) -> tuple[int, ...]:
    """Memory path: center(C') → z → u → center(C) for an interconnection."""
    down = memory.path(z)[::-1]
    if seg[0] != z or seg[-1] != u:
        raise CertificationError("interconnection segment endpoints are inconsistent")
    return down + seg[1:] + memory.path(u)[1:]


def build_single_scale(
    pram: PRAM,
    g_prev: Graph,
    schedule: PhaseSchedule,
    tight_weights: bool = True,
    record_paths: bool = False,
) -> tuple[list[HopsetEdge], list[PhaseStats]]:
    """Construct the scale-k hopset H_k over ``g_prev = G ∪ H_{k−1}``.

    Returns the new hopset edges and per-phase statistics.  ``schedule``
    carries every derived parameter of Section 2.1 for this scale (see
    :class:`repro.hopsets.params.PhaseSchedule`).
    """
    n = g_prev.n
    k = schedule.k
    hops = 2 * schedule.beta + 1
    log_n = math.log2(max(n, 2))
    partition = Partition.singletons(n)
    memory = ClusterMemory(n, record_paths=record_paths)
    edges: list[HopsetEdge] = []
    stats: list[PhaseStats] = []

    for i in range(schedule.ell + 1):
        if partition.num_clusters <= 1:
            break
        members = partition.members_by_cluster()
        centers = partition.centers
        threshold = schedule.threshold(i)
        deg = schedule.degrees[i]
        last_phase = i == schedule.ell
        x = partition.num_clusters if last_phase else deg + 1

        with pram.phase(f"scale{k}/phase{i}/detect"):
            tables = neighbor_tables(
                pram, g_prev, partition, threshold, hops, x,
                record_paths=record_paths, members_by_cluster=members,
            )
        counts = tables.counts()
        popular = (
            np.zeros(partition.num_clusters, dtype=bool)
            if last_phase
            else counts >= (deg + 1)
        )

        q_mask = np.zeros(partition.num_clusters, dtype=bool)
        detected = np.zeros(partition.num_clusters, dtype=bool)
        bfs: BFSResult | None = None
        n_super = 0
        if popular.any():
            with pram.phase(f"scale{k}/phase{i}/ruling"):
                q_mask = ruling_set(
                    pram, g_prev, partition, popular, threshold, hops,
                    members_by_cluster=members,
                )
            with pram.phase(f"scale{k}/phase{i}/supercluster"):
                bfs = bfs_from_clusters(
                    pram, g_prev, partition, q_mask, threshold, hops,
                    max_pulses=2 * ceil_log2(max(n, 2)),
                    memory=memory, record_paths=record_paths,
                    members_by_cluster=members,
                )
            detected = bfs.detected()
            if np.any(popular & ~detected):
                raise CertificationError(
                    "Lemma 2.4 violated: a popular cluster was not superclustered"
                )
            formula_w = 2 * ((1 + schedule.eps_prev) * schedule.deltas[i]
                             + 2 * schedule.radii[i]) * log_n
            # Compose every memory path before any CP is extended below —
            # compositions read CP values of *this* phase.
            super_paths: dict[int, tuple[int, ...] | None] = {}
            for c in np.flatnonzero(detected & ~q_mask):
                super_paths[int(c)] = (
                    compose_supercluster_path(bfs, int(c), memory, centers)
                    if record_paths
                    else None
                )
            for c in np.flatnonzero(detected & ~q_mask):
                origin = int(bfs.origin[c])
                weight = float(bfs.acc_weight[c]) if tight_weights else formula_w
                path = super_paths[int(c)]
                edges.append(
                    HopsetEdge(
                        u=int(centers[origin]),
                        v=int(centers[c]),
                        weight=weight,
                        scale=k,
                        phase=i,
                        kind=SUPERCLUSTER,
                        path=path,
                    )
                )
                n_super += 1

        # ---- interconnection (Section 2.1.2) -----------------------------
        in_u = ~detected  # phase ℓ: detected is all-False, so U_ℓ = P_ℓ
        n_inter = 0
        with pram.phase(f"scale{k}/phase{i}/interconnect"):
            r_i = schedule.radii[i]
            for row in range(tables.cluster.size):
                c = int(tables.cluster[row])
                s = int(tables.src[row])
                if c == s or not (in_u[c] and in_u[s]):
                    continue
                if centers[c] > centers[s]:
                    continue  # each unordered pair is emitted once
                u_vtx = int(tables.member[row])
                z_vtx = int(tables.seed[row])
                dist = float(tables.dist[row])
                if tight_weights:
                    weight = float(memory.cd[u_vtx]) + dist + float(memory.cd[z_vtx])
                else:
                    weight = dist + 2 * r_i
                path = None
                if record_paths:
                    seg = tables.paths[row] if tables.paths is not None else None
                    if seg is None:
                        raise CertificationError("interconnection row lacks a segment path")
                    path = interconnect_path(memory, z_vtx, u_vtx, seg)
                edges.append(
                    HopsetEdge(
                        u=int(centers[s]),
                        v=int(centers[c]),
                        weight=weight,
                        scale=k,
                        phase=i,
                        kind=INTERCONNECT,
                        path=path,
                    )
                )
                n_inter += 1
            pram.charge(work=int(tables.cluster.size), depth=1, label="interconnect")

        stats.append(
            PhaseStats(
                phase=i,
                num_clusters=partition.num_clusters,
                popular=int(popular.sum()),
                ruling_set_size=int(q_mask.sum()),
                supercluster_edges=n_super,
                interconnect_edges=n_inter,
                degree_threshold=deg,
                distance_threshold=threshold,
            )
        )

        if not popular.any():
            break  # P_{i+1} is empty; later phases are no-ops

        # ---- advance to P_{i+1} ------------------------------------------
        assert bfs is not None
        for c in np.flatnonzero(detected & ~q_mask):
            verts = members[int(c)]
            extra = float(bfs.acc_weight[c])
            epath = None
            if record_paths:
                # CP extension runs detected-center → origin-center; reuse
                # the composition taken before any CP was extended.
                epath = super_paths[int(c)][::-1]
            memory.absorb(verts, extra, epath)
        q_idx = np.flatnonzero(q_mask)
        new_of_origin = np.full(partition.num_clusters, -1, dtype=np.int64)
        new_of_origin[q_idx] = np.arange(q_idx.size, dtype=np.int64)
        new_cluster_of = np.full(n, -1, dtype=np.int64)
        for c in np.flatnonzero(detected):
            new_cluster_of[members[int(c)]] = new_of_origin[int(bfs.origin[c])]
        partition = Partition(cluster_of=new_cluster_of, centers=centers[q_idx].copy())
        pram.charge(work=n, depth=1, label="reform_partition")

    return edges, stats
