"""Warm hopset store: a content-addressed cache of built hopsets.

Hopset construction is the expensive half of the paper's pipeline —
Theorem 3.7 work for an artifact that is then queried many times.  The
store makes repeated builds of the same ``(graph, params, variant)``
free: artifacts are the versioned ``.npz`` archives of
:mod:`repro.serialize`, filed under a key derived from the *content* of
the inputs, so a warm run loads the cached hopset (bit-identical to a
fresh build — the construction is deterministic) instead of rebuilding.

Key derivation (see ``docs/hopset_store.md``):

* the **graph fingerprint** hashes ``n`` and the canonical undirected
  edge arrays ``edge_u`` / ``edge_v`` / ``edge_w`` exactly as the
  :class:`~repro.graphs.csr.Graph` constructor normalized them
  (endpoint-sorted, lexicographically ordered), so two graphs built from
  differently-permuted edge lists share a fingerprint iff they are the
  same weighted graph;
* the **store key** folds in every :class:`~repro.hopsets.params.HopsetParams`
  field (``epsilon``, ``kappa``, ``rho``, ``beta``, ``tight_weights``,
  ``scale_epsilon``), the build *variant* (``plain`` / ``paths`` /
  ``reduce`` / ``reduce-paths``) and :data:`STORE_FORMAT_VERSION` — any
  perturbation of graph or parameters changes the key, and bumping the
  format version invalidates every older artifact at once.

Misses never raise: a missing, truncated, or corrupted artifact (or one
whose recorded ``n`` disagrees with the graph) reports a ``store.miss``
traffic event and returns ``None`` so the caller falls back to a fresh
build; hits report ``store.hit``.  Per-event slugs
(``store.miss.{absent,corrupt,mismatch}``) make the reason visible in
trace summaries.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from pathlib import Path

from repro.hopsets.hopset import Hopset
from repro.hopsets.params import HopsetParams

__all__ = [
    "STORE_FORMAT_VERSION",
    "StoreEntry",
    "graph_fingerprint",
    "store_key",
    "HopsetStore",
    "build_variant",
]


@dataclass(frozen=True)
class StoreEntry:
    """One artifact in the store: its key, location, size, and age."""

    key: str
    path: Path
    size: int    # bytes on disk
    mtime: float  # seconds since the epoch (filing time)

    @property
    def age_s(self) -> float:
        return max(0.0, time.time() - self.mtime)

#: Bump to invalidate every artifact written under an older layout.
STORE_FORMAT_VERSION = 1

#: The build variants ``repro build`` can produce (flag combinations).
_VARIANTS = ("plain", "paths", "reduce", "reduce-paths")


def build_variant(paths: bool = False, reduce: bool = False) -> str:
    """The store variant slug for a build-flag combination."""
    if reduce and paths:
        return "reduce-paths"
    if reduce:
        return "reduce"
    if paths:
        return "paths"
    return "plain"


def graph_fingerprint(graph) -> str:
    """SHA-256 over the graph's canonical content (hex digest).

    Hashes ``n`` plus the raw bytes of the canonical edge arrays; the
    :class:`~repro.graphs.csr.Graph` constructor already endpoint-sorts
    and lexicographically orders them, so the fingerprint is a function
    of the weighted graph, not of the edge-list permutation it was built
    from.
    """
    h = hashlib.sha256()
    h.update(b"repro-graph-v1")
    h.update(int(graph.n).to_bytes(8, "little"))
    for arr in (graph.edge_u, graph.edge_v, graph.edge_w):
        h.update(arr.tobytes())
    return h.hexdigest()


def store_key(graph, params: HopsetParams, variant: str = "plain") -> str:
    """The content key of a ``(graph, params, variant)`` build (hex digest)."""
    if variant not in _VARIANTS:
        raise ValueError(f"unknown build variant {variant!r}; one of {_VARIANTS}")
    h = hashlib.sha256()
    h.update(b"repro-hopset-store-v%d" % STORE_FORMAT_VERSION)
    h.update(graph_fingerprint(graph).encode())
    h.update(
        repr(
            (
                float(params.epsilon),
                int(params.kappa),
                float(params.rho),
                None if params.beta is None else int(params.beta),
                bool(params.tight_weights),
                bool(params.scale_epsilon),
            )
        ).encode()
    )
    h.update(variant.encode())
    return h.hexdigest()


class HopsetStore:
    """A directory of content-addressed hopset artifacts.

    ``load`` is fail-soft by contract: every failure mode short of a bug
    (absent file, truncated archive, foreign/corrupt content, stale
    graph) is a miss, reported as ``store.miss`` traffic on the optional
    cost model, never an exception — the warm path degrades to a cold
    build, it cannot break one.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Artifact location of ``key`` inside the store."""
        return self.root / f"hopset-{key}.npz"

    def load(
        self, graph, params: HopsetParams, variant: str = "plain", cost=None
    ) -> Hopset | None:
        """The cached hopset of ``(graph, params, variant)``, or ``None``."""
        from repro.serialize import load_hopset

        key = store_key(graph, params, variant)
        path = self.path_for(key)
        if not path.is_file():
            self._miss(cost, "absent")
            return None
        try:
            hopset = load_hopset(path)
        except Exception:  # corrupt/truncated/foreign artifact -> fresh build
            self._miss(cost, "corrupt")
            return None
        if hopset.n != graph.n:  # key collision would be required; stay safe
            self._miss(cost, "mismatch")
            return None
        if cost is not None:
            cost.traffic("store.hit", elements=1)
        return hopset

    def save(
        self, graph, params: HopsetParams, hopset: Hopset, variant: str = "plain"
    ) -> Path:
        """File ``hopset`` under its content key; returns the artifact path."""
        from repro.serialize import save_hopset

        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(store_key(graph, params, variant))
        save_hopset(path, hopset)
        return path

    @staticmethod
    def _miss(cost, reason: str) -> None:
        if cost is not None:
            cost.traffic("store.miss", elements=1)
            cost.traffic(f"store.miss.{reason}", elements=1)

    # -- inventory and garbage collection (``repro store {ls,gc}``) ----------

    def entries(self) -> list[StoreEntry]:
        """Every artifact currently filed, newest first.

        Files that vanish mid-scan (a concurrent GC) are skipped — the
        listing, like ``load``, is fail-soft.
        """
        found: list[StoreEntry] = []
        if not self.root.is_dir():
            return found
        for path in self.root.glob("hopset-*.npz"):
            try:
                stat = path.stat()
            except OSError:
                continue
            key = path.stem[len("hopset-"):]
            found.append(
                StoreEntry(key=key, path=path, size=stat.st_size, mtime=stat.st_mtime)
            )
        found.sort(key=lambda e: (-e.mtime, e.key))
        return found

    def total_bytes(self) -> int:
        """Bytes currently occupied by filed artifacts."""
        return sum(e.size for e in self.entries())

    def gc(
        self, keep_newest: int | None = None, max_bytes: int | None = None
    ) -> list[StoreEntry]:
        """Evict old artifacts; returns the entries that were removed.

        ``keep_newest=N`` keeps only the N most recently filed
        artifacts; ``max_bytes=B`` then evicts oldest-first until the
        survivors occupy at most B bytes.  Both constraints may be
        combined; with neither, nothing is removed.  Races with a
        concurrent writer are tolerated (an already-gone file counts as
        removed).
        """
        if keep_newest is not None and keep_newest < 0:
            raise ValueError(f"keep_newest must be >= 0, got {keep_newest}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        survivors = self.entries()  # newest first
        doomed: list[StoreEntry] = []
        if keep_newest is not None and len(survivors) > keep_newest:
            doomed.extend(survivors[keep_newest:])
            survivors = survivors[:keep_newest]
        if max_bytes is not None:
            held = sum(e.size for e in survivors)
            while survivors and held > max_bytes:
                oldest = survivors.pop()
                held -= oldest.size
                doomed.append(oldest)
        for entry in doomed:
            try:
                entry.path.unlink()
            except FileNotFoundError:
                pass
        return doomed
