"""Hopset certification: the eq. (1) guarantees, measured exactly.

A (1+ε, β)-hopset must satisfy, for every pair u, v:

    d_G(u, v)  ≤  d^{(β)}_{G∪H}(u, v)  ≤  (1+ε)·d_G(u, v)

The left inequality is the *safety* invariant (hopset edges never shorten
true distances); the right is the *stretch/hopbound* guarantee.  The
certifier computes both sides exactly (Dijkstra + hop-limited Bellman–Ford)
for every pair — affordable at experiment sizes — and additionally reports
the *achieved hopbound*: the smallest h for which the stretch bound already
holds, which the experiments compare against the practical β and the
galactic eq. (2) bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.distances import dijkstra, hop_limited_distances, path_weight
from repro.hopsets.errors import CertificationError
from repro.hopsets.hopset import Hopset

__all__ = ["Certification", "certify", "certify_sampled", "achieved_hopbound", "verify_memory_paths"]

_REL_TOL = 1e-9


@dataclass(frozen=True)
class Certification:
    """Outcome of a full-pairs hopset certification."""

    n: int
    beta: int
    safe: bool                 # d_{G∪H} >= d_G for all pairs (no shortening)
    max_stretch: float         # max over pairs of d^{(β)}_{G∪H} / d_G
    mean_stretch: float
    pairs_checked: int
    pairs_within_eps: int      # pairs meeting (1+ε) at hop budget β
    epsilon: float

    @property
    def holds(self) -> bool:
        """eq. (1) verified at (ε, β) for every pair."""
        return self.safe and self.pairs_within_eps == self.pairs_checked


def certify(graph: Graph, hopset: Hopset, beta: int, epsilon: float) -> Certification:
    """Exact eq. (1) check over all connected vertex pairs."""
    union = hopset.union_graph(graph)
    n = graph.n
    safe = True
    stretches: list[float] = []
    within = 0
    checked = 0
    for s in range(n):
        exact = dijkstra(graph, s)
        exact_union = dijkstra(union, s)
        limited = hop_limited_distances(union, s, beta)
        for t in range(s + 1, n):
            if not np.isfinite(exact[t]):
                continue
            checked += 1
            if exact_union[t] < exact[t] * (1 - _REL_TOL):
                safe = False
            stretch = limited[t] / exact[t] if exact[t] > 0 else 1.0
            stretches.append(float(stretch))
            if stretch <= (1 + epsilon) * (1 + _REL_TOL):
                within += 1
    if checked == 0:
        return Certification(n, beta, True, 1.0, 1.0, 0, 0, epsilon)
    arr = np.array(stretches)
    return Certification(
        n=n,
        beta=beta,
        safe=safe,
        max_stretch=float(arr.max()),
        mean_stretch=float(arr.mean()),
        pairs_checked=checked,
        pairs_within_eps=within,
        epsilon=epsilon,
    )


def achieved_hopbound(
    graph: Graph, hopset: Hopset, epsilon: float, max_hops: int | None = None
) -> int:
    """Smallest h with ``d^{(h)}_{G∪H} ≤ (1+ε)·d_G`` for every pair.

    Returns ``max_hops + 1`` if the bound is not met within ``max_hops``
    (default: n−1, where hop-limited equals unlimited).
    """
    union = hopset.union_graph(graph)
    n = graph.n
    cap = max_hops if max_hops is not None else max(n - 1, 1)
    exact = [dijkstra(graph, s) for s in range(n)]
    tails, heads, w = union.arcs()
    dist = np.full((n, n), np.inf)
    for s in range(n):
        dist[s, s] = 0.0
    target = np.stack(exact) * (1 + epsilon) * (1 + _REL_TOL)
    for h in range(1, cap + 1):
        for s in range(n):
            cand = dist[s][tails] + w
            np.minimum.at(dist[s], heads, cand)
        ok = np.all((dist <= target) | ~np.isfinite(np.stack(exact)))
        if ok:
            return h
    return cap + 1


def verify_memory_paths(graph: Graph, hopset: Hopset) -> None:
    """Check the §4.1 memory property of a path-reporting hopset.

    Every edge of scale k must carry a path whose edges lie in
    ``E ∪ H_{k−1}`` (lower scales suffice) and whose weight is at most the
    edge's weight.  Raises :class:`CertificationError` on violation.
    """
    by_scale: dict[int, list] = {}
    for e in hopset.edges:
        if e.path is None:
            raise CertificationError(f"hopset edge ({e.u},{e.v}) has no memory path")
        by_scale.setdefault(e.scale, []).append(e)
    for k in sorted(by_scale):
        lower = hopset.union_graph_up_to_scale(graph, k - 1)
        for e in by_scale[k]:
            w = path_weight(lower, list(e.path))
            if not np.isfinite(w):
                raise CertificationError(
                    f"memory path of ({e.u},{e.v}) uses an edge outside E ∪ H_(<k)"
                )
            if w > e.weight * (1 + 1e-6) + 1e-9:
                raise CertificationError(
                    f"memory path of ({e.u},{e.v}) weighs {w} > edge weight {e.weight}"
                )


def certify_sampled(
    graph: Graph,
    hopset: Hopset,
    beta: int,
    epsilon: float,
    num_sources: int = 8,
    seed: int = 0,
) -> Certification:
    """eq. (1) checked from a random sample of sources (for larger graphs).

    Exact per sampled source (Dijkstra + hop-limited Bellman–Ford over all
    targets), sampled across sources — the scalable companion to
    :func:`certify`, used by the larger E-sweeps.  The returned
    ``pairs_checked`` counts sampled pairs only.
    """
    import numpy as _np

    rng = _np.random.default_rng(seed)
    n = graph.n
    sources = rng.choice(n, size=min(num_sources, n), replace=False)
    union = hopset.union_graph(graph)
    safe = True
    stretches: list[float] = []
    within = 0
    checked = 0
    for s in sources:
        s = int(s)
        exact = dijkstra(graph, s)
        exact_union = dijkstra(union, s)
        limited = hop_limited_distances(union, s, beta)
        for t in range(n):
            if t == s or not np.isfinite(exact[t]):
                continue
            checked += 1
            if exact_union[t] < exact[t] * (1 - _REL_TOL):
                safe = False
            stretch = limited[t] / exact[t] if exact[t] > 0 else 1.0
            stretches.append(float(stretch))
            if stretch <= (1 + epsilon) * (1 + _REL_TOL):
                within += 1
    if checked == 0:
        return Certification(n, beta, True, 1.0, 1.0, 0, 0, epsilon)
    arr = np.array(stretches)
    return Certification(
        n=n,
        beta=beta,
        safe=safe,
        max_stretch=float(arr.max()),
        mean_stretch=float(arr.mean()),
        pairs_checked=checked,
        pairs_within_eps=within,
        epsilon=epsilon,
    )
