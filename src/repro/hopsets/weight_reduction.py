"""Appendix C: the Klein–Sairam weight reduction — Λ-free hopsets.

The basic construction's hopbound and depth carry a log Λ factor (one
single-scale hopset per distance scale).  The reduction removes it:

1. For every *relevant* scale k (one where some edge weight lies in
   ((ε/n)·2^k, 2^{k+1}]), build the contracted graph 𝒢_k: contract all
   edges ≤ (ε/n)·2^k into *nodes* (connected components, [SV82]), delete
   edges > 2^{k+1}, and give each surviving superedge the eq. (21) weight
   ``ω(x,y) + (|X|+|Y|)·(ε/n)·2^k``.  Each 𝒢_k has aspect ratio O(n/ε).
2. Build a deterministic hopset for 𝒢_k (Section 2 machinery) and *lift*
   its edges to the original graph as center-to-center edges.
3. Select node centers laminarly (Appendix C.3) and add the *star* edges
   center → member, weighted by spanning-tree distance inside the node —
   at most n·log n of them (Lemma C.1).

The resulting H = stars ∪ lifted hopsets is a (1+O(ε), O(β))-hopset for G
(Lemma 4.3 of [EN19]); E7 measures that its β and depth stay flat while Λ
grows over seven orders of magnitude.

One documented deviation (DESIGN.md §6): the paper keeps only the
top-scale hopset of each 𝒢_k; we lift *all* scales of each 𝒢_k's hopset
(an extra O(log(n/ε)) size factor, matching the Theorem D.1 bound) because
the per-𝒢_k normalization makes scale boundaries misalign with G's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.graphs.build import reweighted, subgraph_by_weight
from repro.graphs.components import connected_components
from repro.graphs.contraction import quotient_graph
from repro.graphs.csr import Graph
from repro.hopsets.hopset import STAR, Hopset, HopsetEdge
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.node_forest import ScaleNodes, select_centers
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM

__all__ = ["ReductionReport", "relevant_scales", "build_reduced_hopset"]


@dataclass
class ReductionReport:
    """Per-scale accounting of the reduction (E7's table rows)."""

    relevant: list[int] = field(default_factory=list)
    nodes_per_scale: dict[int, int] = field(default_factory=dict)
    superedges_per_scale: dict[int, int] = field(default_factory=dict)
    lifted_per_scale: dict[int, int] = field(default_factory=dict)
    star_edges: int = 0
    work: int = 0
    depth: int = 0


def relevant_scales(graph: Graph, epsilon: float, beta: int) -> list[int]:
    """Scales k ∈ [k0, λ] with an edge weight in ((ε/n)·2^k, 2^{k+1}]."""
    if graph.num_edges == 0:
        return []
    n = graph.n
    w = graph.edge_w
    k0 = max(int(math.floor(math.log2(max(beta, 1)))), 0)
    lam = max(int(math.ceil(math.log2(graph.total_weight()))) - 1, k0)
    out = []
    for k in range(k0, lam + 1):
        lo = (epsilon / n) * (2.0**k)
        hi = 2.0 ** (k + 1)
        if np.any((w > lo) & (w <= hi)):
            out.append(k)
    return out


def _star_distances(
    graph: Graph, threshold: float, nodes: ScaleNodes
) -> np.ndarray:
    """Distance of every vertex to its node's center inside the node.

    Uses only contracted edges (weight ≤ threshold); this is the
    spanning-tree distance bound d_{T_U}(z, x*) < |U|·threshold of §C.3
    (we take the shortest such distance, which can only be smaller).
    """
    sub = subgraph_by_weight(graph, max_w=threshold)
    dist = np.full(graph.n, np.inf)
    dist[nodes.centers] = 0.0
    tails, heads, w = sub.arcs()
    for _ in range(graph.n):
        cand = dist[tails] + w
        new = dist.copy()
        np.minimum.at(new, heads, cand)
        if np.array_equal(new, dist):
            break
        dist = new
    return dist


def build_reduced_hopset(
    graph: Graph,
    params: HopsetParams | None = None,
    pram: PRAM | None = None,
) -> tuple[Hopset, ReductionReport]:
    """Theorem C.2: deterministic hopset with no aspect-ratio dependence."""
    params = params if params is not None else HopsetParams()
    pram = pram if pram is not None else PRAM()
    n = graph.n
    beta = params.beta_for(n)
    hopset = Hopset(n=n, beta=beta, epsilon=params.epsilon)
    report = ReductionReport()
    if graph.num_edges == 0 or n < 2:
        return hopset, report

    w_min = graph.min_weight()
    scaled = reweighted(graph, 1.0 / w_min) if w_min != 1.0 else graph
    eps = params.epsilon
    scales = relevant_scales(scaled, eps, beta)
    report.relevant = scales
    start = pram.snapshot()

    star_edges: list[HopsetEdge] = []
    prev_nodes: ScaleNodes | None = None
    for k in scales:
        contract_thr = (eps / n) * (2.0**k)
        delete_thr = 2.0 ** (k + 1)
        light = subgraph_by_weight(scaled, max_w=contract_thr)
        labels = connected_components(pram, light)
        _, dense = np.unique(labels, return_inverse=True)
        sizes = np.bincount(dense).astype(np.float64)
        offset = sizes * contract_thr  # |X|·(ε/n)·2^k per node, eq. (21)
        quot = quotient_graph(scaled, labels, max_weight=delete_thr, weight_offset=offset)
        nodes = select_centers(k, quot.node_of, quot.members, prev_nodes)
        report.nodes_per_scale[k] = quot.num_nodes
        report.superedges_per_scale[k] = quot.graph.num_edges

        # star edges (weights = in-node center distances, §C.3)
        any_targets = any(t.size for t in nodes.star_targets)
        if any_targets:
            center_dist = _star_distances(scaled, contract_thr, nodes)
            for j, targets in enumerate(nodes.star_targets):
                c = int(nodes.centers[j])
                for z in targets:
                    d = float(center_dist[int(z)])
                    if not np.isfinite(d) or d <= 0:
                        continue  # z is the center itself or disconnected
                    star_edges.append(
                        HopsetEdge(u=c, v=int(z), weight=d, scale=k, phase=-1, kind=STAR)
                    )
            pram.charge(work=n, depth=1, label="stars")

        # hopset of the contracted graph, lifted to node centers
        if quot.graph.num_edges > 0 and quot.num_nodes >= 2:
            sub_hopset, _ = build_hopset(quot.graph, params, pram)
            lifted = 0
            for e in sub_hopset.edges:
                cu = int(nodes.centers[e.u])
                cv = int(nodes.centers[e.v])
                if cu == cv:
                    continue
                hopset.edges.append(
                    HopsetEdge(u=cu, v=cv, weight=e.weight, scale=k,
                               phase=e.phase, kind=e.kind)
                )
                lifted += 1
            report.lifted_per_scale[k] = lifted
        prev_nodes = nodes

    hopset.add(star_edges)
    report.star_edges = len(star_edges)
    if w_min != 1.0:
        hopset.edges = [
            HopsetEdge(u=e.u, v=e.v, weight=e.weight * w_min,
                       scale=e.scale, phase=e.phase, kind=e.kind)
            for e in hopset.edges
        ]
    delta = pram.snapshot() - start
    report.work, report.depth = delta.work, delta.depth
    hopset.meta.update({"reduction": True, "relevant_scales": scales,
                        "star_edges": report.star_edges})
    return hopset, report
