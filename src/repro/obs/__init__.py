"""Observability for the CREW PRAM simulator.

Four pieces, all driven by the :class:`~repro.pram.cost.CostModel` hook
interface (``cost.subscribe(...)``), so the simulator itself stays
zero-overhead when nothing is attached:

* :mod:`repro.obs.tracer` — nested spans mirroring the cost model's phase
  stack, with charged work/depth deltas, wall-clock time, and per-label op
  counts per span.
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry fed by the
  per-primitive traffic events (calls, elements, CREW cells read/written).
* :mod:`repro.obs.export` — Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto), JSONL, and a plain-text flame-style report.
* :mod:`repro.obs.bounds` — declarative watchdog envelopes encoding the
  paper's asymptotic bounds; evaluate a finished run and report measured
  constants with PASS/WARN status.
* :mod:`repro.obs.profile` — per-scale, per-primitive wall attribution of
  hopset builds plus the folded flame exporter (``repro profile``).
* :mod:`repro.obs.ledger` — the append-only perf-regression ledger behind
  ``repro perf {append,check}`` and the ``perf-ledger`` CI job.

See ``docs/observability.md`` for the guide.
"""

from repro.obs.bounds import (
    Envelope,
    WatchdogVerdict,
    evaluate_envelopes,
    query_envelopes,
    theorem_3_7_envelopes,
    watchdog_table,
)
from repro.obs.export import (
    backend_health_report,
    chrome_trace_events,
    flame_report,
    op_wall_report,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.ledger import (
    Regression,
    append_records,
    baseline_for,
    check,
    compare_metrics,
    flatten_metrics,
    history_path,
    load_history,
    make_record,
    scan_bench_dir,
)
from repro.obs.profile import profile_report, write_folded_flame
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Span, SpanTracer

__all__ = [
    "Span",
    "SpanTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "flame_report",
    "op_wall_report",
    "backend_health_report",
    "profile_report",
    "write_folded_flame",
    "Regression",
    "flatten_metrics",
    "make_record",
    "scan_bench_dir",
    "append_records",
    "load_history",
    "baseline_for",
    "compare_metrics",
    "check",
    "history_path",
    "Envelope",
    "WatchdogVerdict",
    "theorem_3_7_envelopes",
    "query_envelopes",
    "evaluate_envelopes",
    "watchdog_table",
]
