"""Watchdog envelopes: the paper's asymptotic bounds, evaluated on traces.

A :class:`Envelope` encodes one theorem bound as an instance-evaluated
*shape* — the asymptotic expression with its hidden constant stripped.
Evaluating a finished run divides the measured resource by the shape,
yielding the **measured constant** ``c`` such that
``measured = c · shape(instance)``.  The watchdog reports

* ``PASS``  if ``c <= warn_at`` (the run is inside the envelope with the
  calibrated constant budget), or
* ``WARN``  otherwise (a perf regression, a mis-instrumented run, or an
  instance outside the theorem's regime).

Envelopes are declarative data, not assertions: benchmarks track the
constants over time, and CI only smoke-checks that they are finite.

Theorem 3.7 (construction): depth ``O(log Λ · (log κρ + 1/ρ) · β · log² n)``
with ``O((|E| + n^{1+1/κ}) · n^ρ)`` processors — so work (= processors ×
polylog time per unit) is tracked against the "slightly super-linear"
envelope ``(|E| + n^{1+1/κ}) · n^ρ · log Λ · log n``.  Theorem 3.8's query
part (β-hop Bellman–Ford over G ∪ H): depth ``O(β log n)``, work
``O(β · (|E| + |H|))``.  The default ``warn_at`` constants were calibrated
on the E3 graph families (er / grid / path, n = 64..256: measured depth
constants 0.8–1.6, work constants 8–15 and shrinking with n), then given
roughly 2× headroom; tripping them signals a perf regression, a
mis-instrumented run, or an instance outside the theorem's regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from repro.analysis.tables import render_table
from repro.hopsets.params import HopsetParams

__all__ = [
    "Envelope",
    "WatchdogVerdict",
    "theorem_3_7_envelopes",
    "query_envelopes",
    "evaluate_envelopes",
    "watchdog_table",
]


class _Measured(Protocol):
    work: int
    depth: int


@dataclass(frozen=True)
class Envelope:
    """One asymptotic bound, instantiated for a concrete input."""

    name: str
    metric: str  # "work" or "depth"
    shape: float  # the bound expression sans constant, evaluated > 0
    formula: str  # human-readable form of the shape
    warn_at: float  # measured-constant threshold separating PASS from WARN

    def __post_init__(self) -> None:
        if self.metric not in ("work", "depth"):
            raise ValueError(f"metric must be 'work' or 'depth', got {self.metric!r}")
        if not (self.shape > 0 and math.isfinite(self.shape)):
            raise ValueError(f"envelope shape must be finite positive, got {self.shape}")


@dataclass(frozen=True)
class WatchdogVerdict:
    """The result of evaluating one envelope against a measured run."""

    name: str
    metric: str
    measured: int
    shape: float
    constant: float  # measured / shape
    warn_at: float
    formula: str

    @property
    def status(self) -> str:
        return "PASS" if self.constant <= self.warn_at else "WARN"

    @property
    def passed(self) -> bool:
        return self.status == "PASS"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "measured": self.measured,
            "shape": self.shape,
            "constant": self.constant,
            "warn_at": self.warn_at,
            "status": self.status,
            "formula": self.formula,
        }


def _log2(x: float) -> float:
    return math.log2(max(x, 2.0))


def theorem_3_7_envelopes(
    n: int,
    m: int,
    params: HopsetParams | None = None,
    aspect_ratio: float = 2.0,
    warn_work: float = 32.0,
    warn_depth: float = 4.0,
) -> list[Envelope]:
    """Theorem 3.7's construction envelopes for a graph with n vertices,
    m edges, and weight aspect ratio Λ (``aspect_ratio``).

    The depth shape is ``log Λ · (log κρ + 1/ρ) · β · log² n``; the work
    shape is ``(m + n^{1+1/κ}) · n^ρ · log Λ · log n`` — the theorem's
    processor count times one polylog factor, i.e. the Õ(|E|·n^ρ)
    "slightly super-linear work" claim with the polylog spelled out.
    """
    params = params if params is not None else HopsetParams()
    beta = params.beta_for(n)
    log_n = _log2(n)
    log_lam = _log2(aspect_ratio)
    phase_term = max(math.log2(params.kappa * params.rho), 0.0) + 1.0 / params.rho
    depth_shape = log_lam * phase_term * beta * log_n**2
    work_shape = (m + n ** (1.0 + 1.0 / params.kappa)) * n**params.rho * log_lam * log_n
    return [
        Envelope(
            name="thm3.7-depth",
            metric="depth",
            shape=depth_shape,
            formula="logΛ·(log κρ + 1/ρ)·β·log²n",
            warn_at=warn_depth,
        ),
        Envelope(
            name="thm3.7-work",
            metric="work",
            shape=work_shape,
            formula="(|E|+n^{1+1/κ})·n^ρ·logΛ·log n",
            warn_at=warn_work,
        ),
    ]


def query_envelopes(
    n: int,
    m: int,
    hopset_edges: int,
    beta: int,
    warn_work: float = 8.0,
    warn_depth: float = 8.0,
) -> list[Envelope]:
    """Theorem 3.8's query envelopes: β-hop Bellman–Ford over G ∪ H.

    Depth ``O(β log n)`` (each round's concurrent min is a combine tree);
    work ``O(β · (|E| + |H|))`` (each round relaxes every arc once).
    """
    log_n = _log2(n)
    arcs = max(m + hopset_edges, 1)
    return [
        Envelope(
            name="thm3.8-query-depth",
            metric="depth",
            shape=max(beta, 1) * log_n,
            formula="β·log n",
            warn_at=warn_depth,
        ),
        Envelope(
            name="thm3.8-query-work",
            metric="work",
            shape=float(max(beta, 1) * arcs),
            formula="β·(|E|+|H|)",
            warn_at=warn_work,
        ),
    ]


def evaluate_envelopes(
    measured: _Measured, envelopes: list[Envelope]
) -> list[WatchdogVerdict]:
    """Evaluate every envelope against a measured run.

    ``measured`` is anything with ``work`` and ``depth`` attributes — a
    :class:`~repro.pram.cost.CostModel`, a
    :class:`~repro.pram.cost.CostSnapshot`, or a
    :class:`~repro.obs.tracer.Span`.
    """
    out = []
    for env in envelopes:
        value = int(getattr(measured, env.metric))
        out.append(
            WatchdogVerdict(
                name=env.name,
                metric=env.metric,
                measured=value,
                shape=env.shape,
                constant=value / env.shape,
                warn_at=env.warn_at,
                formula=env.formula,
            )
        )
    return out


def watchdog_table(
    verdicts: list[WatchdogVerdict], title: str = "theorem watchdogs"
) -> str:
    """Render verdicts as a printable table (measured constants included)."""
    rows = [
        [v.name, v.metric, v.measured, v.shape, v.constant, v.warn_at, v.status]
        for v in verdicts
    ]
    return render_table(
        title,
        ["envelope", "metric", "measured", "shape", "constant", "warn at", "status"],
        rows,
    )
