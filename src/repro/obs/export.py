"""Trace exporters: Chrome trace-event JSON, JSONL, and flame-style text.

Chrome trace output loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev.  Two process tracks are emitted:

* **wall-clock** (pid 0) — span timestamps/durations in real microseconds
  of the simulator's execution (engineering view);
* **work-clock** (pid 1) — the same spans on a timeline where one
  microsecond equals one unit of charged PRAM work, so span *widths are
  proportional to the model cost* they account for (the view that matches
  the paper's accounting; depth is attached as an argument).

Every span event carries ``args`` with inclusive/self work and depth, so
Perfetto's selection panel shows the model figures directly.  The JSONL
exporter writes one span per line (``Span.to_dict``) for ad-hoc analytics,
and :func:`flame_report` renders an indented plain-text tree through
``repro.analysis.tables``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.analysis.tables import render_table
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, SpanTracer
from repro.pram.cost import RACE_TRAFFIC_PREFIX

__all__ = [
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "flame_report",
    "op_wall_report",
    "backend_health_report",
    "histogram_quantile",
    "serve_health_report",
]

_SourceT = Union[Span, SpanTracer]


def _root_of(source: _SourceT) -> Span:
    return source.root if isinstance(source, SpanTracer) else source


def chrome_trace_events(
    source: _SourceT, worker_rounds: list[dict] | None = None
) -> list[dict]:
    """Flatten a span tree into Chrome trace-event dicts (``ph: "X"``).

    ``worker_rounds`` — a :class:`ShardedBackend`'s ``round_log`` — adds
    one wall-clock lane per worker (tid ``1 + worker``) under pid 0, so a
    sharded run renders as a real multi-track timeline: each round's
    per-shard compute appears as an ``X`` slice on its worker's lane,
    placed on the parent's clock (round launch time plus the worker's
    reported wall).
    """
    root = _root_of(source)
    events: list[dict] = [
        {"ph": "M", "pid": 0, "name": "process_name", "args": {"name": "wall-clock"}},
        {"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "work-clock"}},
    ]
    t0 = root.wall_start
    if worker_rounds:
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "name": "thread_name",
                "args": {"name": "parent"},
            }
        )
        workers = sorted(
            {w["worker"] for entry in worker_rounds for w in entry["workers"]}
        )
        for widx in workers:
            events.append(
                {
                    "ph": "M",
                    "pid": 0,
                    "tid": 1 + widx,
                    "name": "thread_name",
                    "args": {"name": f"worker {widx}"},
                }
            )
        for entry in worker_rounds:
            ts = max((entry["t0"] - t0) * 1e6, 0.0)
            for w in entry["workers"]:
                events.append(
                    {
                        "name": f"round {entry['round']}",
                        "ph": "X",
                        "pid": 0,
                        "tid": 1 + w["worker"],
                        "ts": ts,
                        "dur": w["wall_ns"] / 1e3,
                        "args": {
                            "arcs": w["arcs"],
                            "gather_ns": w["gather_ns"],
                            "segmin_ns": w["segmin_ns"],
                            "serialize_ns": w["serialize_ns"],
                        },
                    }
                )
    for span in root.walk():
        args = {
            "work": span.work,
            "depth": span.depth,
            "self_work": span.self_work,
            "self_depth": span.self_depth,
            "charges": span.charges,
        }
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": (span.wall_start - t0) * 1e6,
                "dur": span.wall * 1e6,
                "args": args,
            }
        )
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": 0,
                "ts": float(span.work_start - root.work_start),
                "dur": float(span.work),
                "args": args,
            }
        )
    return events


def to_chrome_trace(
    source: _SourceT,
    metrics: MetricsRegistry | None = None,
    extra: dict | None = None,
    worker_rounds: list[dict] | None = None,
) -> dict:
    """The full Chrome trace JSON object for a finished trace."""
    root = _root_of(source)
    other: dict = {
        "total_work": root.work,
        "total_depth": root.depth,
        "wall_s": root.wall,
    }
    if isinstance(source, SpanTracer):
        other["span_coverage"] = source.coverage()
    if metrics is not None:
        other["metrics"] = metrics.snapshot()
    if extra:
        other.update(extra)
    return {
        "traceEvents": chrome_trace_events(root, worker_rounds),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str | Path,
    source: _SourceT,
    metrics: MetricsRegistry | None = None,
    extra: dict | None = None,
    worker_rounds: list[dict] | None = None,
) -> Path:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(to_chrome_trace(source, metrics, extra, worker_rounds), indent=1)
    )
    return path


def write_jsonl(path: str | Path, source: _SourceT) -> Path:
    """One JSON object per span (pre-order), one per line."""
    path = Path(path)
    root = _root_of(source)
    with path.open("w") as fh:
        for span in root.walk():
            fh.write(json.dumps(span.to_dict()) + "\n")
    return path


def flame_report(source: _SourceT, title: str = "trace report") -> str:
    """Indented flame-style text table of the span tree.

    Columns: inclusive work/depth, exclusive (self) work, share of the root
    work, and wall-clock milliseconds.  Indentation shows nesting; span
    names keep only their last path component (the ancestry is the
    indentation).  If a shadow race detector reported findings during the
    trace (``crew_race:*`` traffic labels, see ``repro.conformance``), a
    ``races`` column appears attributing them to the offending span.
    """
    root = _root_of(source)
    total = max(root.work, 1)
    races = [_span_races(span) for span in root.walk()]
    with_races = any(races)
    rows = []
    for span, n_races in zip(root.walk(), races):
        short = span.name.rsplit("/", 1)[-1]
        row = [
            "  " * span.level + short,
            span.work,
            span.depth,
            span.self_work,
            f"{100.0 * span.work / total:.1f}%",
            f"{span.wall * 1e3:.2f}",
        ]
        if with_races:
            row.append(n_races)
        rows.append(row)
    headers = ["span", "work", "depth", "self work", "share", "wall ms"]
    if with_races:
        headers.append("races")
    return render_table(title, headers, rows)


def op_wall_report(
    source: _SourceT, title: str = "where real time goes", top: int = 20
) -> str:
    """Per-primitive *measured* wall time vs charged work, tree-wide.

    Aggregates every span's per-label :class:`~repro.obs.tracer.OpStats`
    and ranks labels by attributed host nanoseconds (delta timing, see
    ``OpStats.wall_ns``).  Columns: calls, charged work, wall
    milliseconds, microseconds per call, and the label's share of all
    attributed wall time — the table that answers "the model charges X,
    but where does the *real* time go?".
    """
    root = _root_of(source)
    agg: dict[str, list[int]] = {}  # label -> [calls, work, wall_ns]
    for span in root.walk():
        for label, s in span.ops.items():
            row = agg.setdefault(label, [0, 0, 0])
            row[0] += s.calls
            row[1] += s.work
            row[2] += s.wall_ns
    total_ns = max(sum(r[2] for r in agg.values()), 1)
    ranked = sorted(agg.items(), key=lambda kv: kv[1][2], reverse=True)[:top]
    rows = []
    for label, (calls, work, wall_ns) in ranked:
        rows.append(
            [
                label,
                calls,
                work,
                f"{wall_ns / 1e6:.2f}",
                f"{wall_ns / 1e3 / max(calls, 1):.1f}",
                f"{100.0 * wall_ns / total_ns:.1f}%",
            ]
        )
    headers = ["op", "calls", "work", "wall ms", "us/call", "share"]
    return render_table(title, headers, rows)


def backend_health_report(
    metrics: MetricsRegistry, title: str = "backend health"
) -> str:
    """Sharded-backend health table from a registry's ``backend.*`` counters.

    Summarizes rounds routed sharded vs serial (with the serial reason),
    fallback events by reason, IPC/imbalance/combine-depth figures, and one
    row per worker (rounds, arcs, wall split).  Returns ``""`` when the
    registry saw no backend traffic at all — callers can print the result
    unconditionally.
    """
    counters = metrics.counters

    def val(label: str, field: str = "elements") -> int:
        c = counters.get(f"primitive.{label}.{field}")
        return c.value if c is not None else 0

    if not any(k.startswith("primitive.backend.") for k in counters):
        return ""
    rows = [["sharded rounds", val("backend.round", "calls")]]
    for reason in ("min-arcs", "fallback"):
        n = val(f"backend.serial_round.{reason}")
        if n:
            rows.append([f"serial rounds ({reason})", n])
    for name, c in sorted(counters.items()):
        prefix = "primitive.backend.fallback."
        if name.startswith(prefix) and name.endswith(".elements") and c.value:
            reason = name[len(prefix):-len(".elements")]
            rows.append([f"fallback ({reason})", c.value])
    round_wall = val("backend.round_wall_ns")
    if round_wall:
        rows.append(["round wall ms", f"{round_wall / 1e6:.2f}"])
        rows.append(["ipc ms", f"{val('backend.ipc_ns') / 1e6:.2f}"])
    imb_calls = val("backend.imbalance_milli", "calls")
    if imb_calls:
        mean_imb = val("backend.imbalance_milli") / imb_calls / 1000.0
        rows.append(["mean shard imbalance", f"{mean_imb:.2f}x"])
    depth_calls = val("backend.combine_depth", "calls")
    if depth_calls:
        rows.append(
            ["combine depth", val("backend.combine_depth") // depth_calls]
        )
    near = val("backend.timeout_near_miss")
    if near:
        rows.append(["timeout near-misses", near])
    report = render_table(title, ["figure", "value"], rows)
    workers = sorted(
        int(name.split(".")[3])
        for name in counters
        if name.startswith("primitive.backend.worker.")
        and name.endswith(".wall_ns.elements")
    )
    if workers:
        wrows = []
        for w in workers:
            p = f"backend.worker.{w}"
            wrows.append(
                [
                    w,
                    val(f"{p}.wall_ns", "calls"),
                    val(f"{p}.arcs"),
                    f"{val(f'{p}.wall_ns') / 1e6:.2f}",
                    f"{val(f'{p}.gather_ns') / 1e6:.2f}",
                    f"{val(f'{p}.segmin_ns') / 1e6:.2f}",
                    f"{val(f'{p}.serialize_ns') / 1e6:.2f}",
                ]
            )
        report += "\n" + render_table(
            "per-worker compute",
            ["worker", "rounds", "arcs", "wall ms", "gather", "segmin", "serialize"],
            wrows,
        )
    return report


def histogram_quantile(hist, q: float) -> float:
    """Approximate quantile ``q`` of a log₂-bucketed :class:`Histogram`.

    Walks the buckets in order until the cumulative count reaches
    ``q * count`` and returns that bucket's upper bound ``2^b``, clamped
    into ``[min, max]`` of the exact extrema the histogram tracks — so the
    answer is never tighter than a bucket but never outside the observed
    range.  Returns ``0.0`` on an empty histogram.
    """
    if hist.count == 0:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    need = q * hist.count
    seen = 0
    for bucket, n in sorted(hist.buckets.items()):
        seen += n
        if seen >= need:
            return float(min(max(2.0 ** bucket, hist.min), hist.max))
    return float(hist.max)  # pragma: no cover - q <= 1 always lands above


def serve_health_report(
    metrics: MetricsRegistry, title: str = "serving health"
) -> str:
    """Serving-layer health table from a registry's ``serve.*`` telemetry.

    Summarizes the request/batch traffic, tier hit rates (the exact-hit
    pair cache and the per-source oracle cache), latency quantiles from
    the ``serve.latency_us`` histogram (log₂-bucket approximations),
    structured error counts, and any ``serve.fallback.<kind>`` degradation
    events.  Returns ``""`` when the registry saw no serving traffic at
    all — callers can print the result unconditionally.
    """
    counters = metrics.counters

    def val(label: str, field: str = "elements") -> int:
        c = counters.get(f"primitive.{label}.{field}")
        return c.value if c is not None else 0

    if not any(k.startswith("primitive.serve.") for k in counters):
        return ""
    requests = val("serve.request")
    batches = val("serve.batch", "calls")
    rows = [["requests", requests], ["batches", batches]]
    if batches:
        rows.append(["mean batch size", f"{val('serve.batch') / batches:.2f}"])
    lat = metrics.histograms.get("serve.latency_us")
    if lat is not None and lat.count:
        rows.append(["latency p50 us", f"{histogram_quantile(lat, 0.50):.1f}"])
        rows.append(["latency p99 us", f"{histogram_quantile(lat, 0.99):.1f}"])
        rows.append(["latency mean us", f"{lat.mean:.1f}"])
    for tier, hit_label, miss_label in (
        ("pair cache", "serve.cache.pair.hit", "serve.cache.pair.miss"),
        ("source cache", "oracle.cache.hit", "oracle.cache.miss"),
    ):
        hits, misses = val(hit_label), val(miss_label)
        if hits or misses:
            rows.append(
                [f"{tier} hit rate", f"{100.0 * hits / (hits + misses):.1f}%"]
            )
    for name, c in sorted(counters.items()):
        for prefix, caption in (
            ("primitive.serve.error.", "errors"),
            ("primitive.serve.fallback.", "fallback"),
        ):
            if name.startswith(prefix) and name.endswith(".elements") and c.value:
                slug = name[len(prefix):-len(".elements")]
                rows.append([f"{caption} ({slug})", c.value])
    return render_table(title, ["figure", "value"], rows)


def _span_races(span: Span) -> int:
    """Race findings a shadow detector attributed to this span (self only)."""
    return sum(
        s.calls
        for label, s in span.ops.items()
        if label.startswith(RACE_TRAFFIC_PREFIX)
    )
