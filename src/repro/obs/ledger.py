"""A persistent, append-only perf ledger for the benchmark suite.

The ``BENCH_*.json`` files under ``benchmarks/`` are regenerated in place
by every run, so the perf *trajectory* across PRs is invisible and a
regression between two of them is undetectable.  This module fixes that:

* every benchmark experiment becomes one normalized **record** — bench id
  (``<file-stem>:<experiment>``), flattened scalar metrics, host
  fingerprint, git sha, timestamp — appended to ``BENCH_history.jsonl``
  (override the path with ``REPRO_LEDGER_PATH``);
* :func:`check` compares the latest on-disk ``BENCH_*.json`` values
  against each bench id's most recent history record (preferring the same
  host fingerprint) under per-metric **tolerance bands**, returning the
  regressions so ``repro perf check`` can exit nonzero.

Tolerance bands encode metric semantics, not a single global threshold:
wall-clock metrics are noisy (generous relative band plus an absolute
floor so micro-benchmarks don't flap), ``speedup`` metrics regress
*downward* and only matter once the baseline actually showed a speedup,
booleans (``bit_exact`` …) must never flip to ``False``, and everything
else — charged work/depth, sizes — is nearly deterministic and gets a
tight band.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DEFAULT_HISTORY",
    "Regression",
    "flatten_metrics",
    "host_fingerprint",
    "git_sha",
    "make_record",
    "scan_bench_dir",
    "append_records",
    "load_history",
    "baseline_for",
    "compare_metrics",
    "check",
    "history_path",
]

#: History file name, kept next to the BENCH_*.json files it records.
DEFAULT_HISTORY = "BENCH_history.jsonl"


def history_path(bench_dir: str | Path) -> Path:
    """The ledger path: ``REPRO_LEDGER_PATH`` or ``<bench_dir>/BENCH_history.jsonl``."""
    override = os.environ.get("REPRO_LEDGER_PATH", "").strip()
    if override:
        return Path(override)
    return Path(bench_dir) / DEFAULT_HISTORY


def flatten_metrics(obj, prefix: str = "") -> dict[str, float | bool]:
    """Flatten nested experiment dicts to dotted scalar metrics.

    Keeps numbers and booleans; strings and lists (notes, labels) are not
    comparable metrics and are dropped.
    """
    flat: dict[str, float | bool] = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(value, name))
    elif isinstance(obj, bool):
        flat[prefix] = obj
    elif isinstance(obj, (int, float)):
        flat[prefix] = float(obj)
    return flat


def host_fingerprint() -> str:
    """A short, stable id of the measuring host (machine + cores + python)."""
    return (
        f"{platform.machine()}-{os.cpu_count() or 1}c-"
        f"py{platform.python_version()}"
    )


def git_sha(repo_root: str | Path | None = None) -> str:
    """The current git commit sha, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def make_record(
    bench_id: str,
    metrics: dict[str, float | bool],
    *,
    host: str | None = None,
    sha: str | None = None,
    timestamp: float | None = None,
) -> dict:
    """One normalized ledger record for a bench run."""
    return {
        "bench": bench_id,
        "metrics": dict(metrics),
        "host": host if host is not None else host_fingerprint(),
        "sha": sha if sha is not None else git_sha(),
        "ts": timestamp if timestamp is not None else time.time(),
    }


def scan_bench_dir(bench_dir: str | Path) -> list[tuple[str, dict]]:
    """All ``(bench_id, flat_metrics)`` pairs from a directory's BENCH files.

    Reads every ``BENCH_*.json`` (the ``.jsonl`` history itself is skipped),
    one bench id per top-level experiment: ``<stem-without-BENCH_>:<key>``.
    """
    pairs: list[tuple[str, dict]] = []
    for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
        doc = json.loads(path.read_text())
        experiments = doc.get("experiments", {})
        suite = path.stem[len("BENCH_"):]
        for key in sorted(experiments):
            pairs.append((f"{suite}:{key}", flatten_metrics(experiments[key])))
    return pairs


def append_records(path: str | Path, records: list[dict]) -> int:
    """Append records to the JSONL ledger; returns how many were written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def load_history(path: str | Path) -> list[dict]:
    """All ledger records, oldest first; missing file means empty history."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def baseline_for(
    history: list[dict], bench_id: str, host: str | None = None
) -> dict | None:
    """The newest record for ``bench_id``, preferring the same host."""
    mine = [r for r in history if r.get("bench") == bench_id]
    if not mine:
        return None
    if host is not None:
        same_host = [r for r in mine if r.get("host") == host]
        if same_host:
            return same_host[-1]
    return mine[-1]


@dataclass
class Regression:
    """One metric outside its tolerance band vs the recorded baseline."""

    bench: str
    metric: str
    baseline: float | bool
    current: float | bool
    why: str

    def __str__(self) -> str:
        return (
            f"{self.bench} {self.metric}: {self.baseline} -> {self.current}"
            f" ({self.why})"
        )


def _wall_floor(metric: str) -> float | None:
    """Absolute noise floor for wall-clock metrics, else ``None``."""
    if metric.endswith("wall_ns") or metric.endswith("_ns"):
        return 2e7
    if metric.endswith("_ms"):
        return 20.0
    if "wall_s" in metric or metric.endswith("_s"):
        return 0.02
    return None


def compare_metrics(
    bench: str, current: dict, baseline: dict
) -> list[Regression]:
    """Regressions of ``current`` vs ``baseline`` under per-metric bands.

    * booleans: ``True -> False`` is a regression;
    * wall metrics: regression when current exceeds ``2.5x`` baseline *and*
      grows past the absolute noise floor;
    * ``speedup`` metrics: regression when current falls under half a
      baseline that was itself a real speedup (>= 1.5);
    * everything else: regression when current exceeds ``1.25x`` baseline
      (charged work/depth and sizes are nearly deterministic).

    Metrics present on only one side are ignored — benches evolve.
    """
    regressions: list[Regression] = []
    for metric in sorted(set(current) & set(baseline)):
        base, cur = baseline[metric], current[metric]
        if isinstance(base, bool) or isinstance(cur, bool):
            if bool(base) and not bool(cur):
                regressions.append(
                    Regression(bench, metric, base, cur, "flipped to False")
                )
            continue
        base = float(base)
        cur = float(cur)
        floor = _wall_floor(metric)
        if floor is not None:
            if cur > base * 2.5 and cur - base > floor:
                regressions.append(
                    Regression(bench, metric, base, cur, "wall > 2.5x baseline")
                )
            continue
        leaf = metric.rsplit(".", 1)[-1]
        if "speedup" in leaf:
            if base >= 1.5 and cur < base * 0.5:
                regressions.append(
                    Regression(bench, metric, base, cur, "speedup halved")
                )
            continue
        if abs(base) > 0 and cur > base * 1.25 or base == 0 and cur > 1:
            regressions.append(
                Regression(bench, metric, base, cur, "> 1.25x baseline")
            )
    return regressions


def check(
    bench_dir: str | Path, history: str | Path | None = None
) -> tuple[list[Regression], int, list[str]]:
    """Compare the on-disk BENCH files against their recorded baselines.

    Returns ``(regressions, benches_compared, benches_without_baseline)``.
    An empty history compares nothing — the first append seeds it.
    """
    ledger = history if history is not None else history_path(bench_dir)
    records = load_history(ledger)
    host = host_fingerprint()
    regressions: list[Regression] = []
    missing: list[str] = []
    compared = 0
    for bench_id, metrics in scan_bench_dir(bench_dir):
        baseline = baseline_for(records, bench_id, host)
        if baseline is None:
            missing.append(bench_id)
            continue
        compared += 1
        regressions.extend(
            compare_metrics(bench_id, metrics, baseline.get("metrics", {}))
        )
    return regressions, compared, missing
