"""Counter/gauge/histogram registry for per-primitive PRAM metrics.

A :class:`MetricsRegistry` subscribes to a
:class:`~repro.pram.cost.CostModel` and aggregates, per primitive label:

* ``primitive.<label>.calls``          — invocations,
* ``primitive.<label>.elements``       — items processed,
* ``primitive.<label>.cells_read``     — CREW shared-memory cells read,
* ``primitive.<label>.cells_written``  — cells written,
* ``primitive.<label>.work`` / ``.depth`` — charged resources,
* ``primitive.<label>.wall_ns``        — *measured* host nanoseconds,
  attributed by delta timing (each traffic event claims the time elapsed
  since the previous one; primitives report traffic once, at the end of
  their execution) — the one engineering figure next to the model ones,

plus run-level totals (``cost.work``, ``cost.depth``, ``cost.charges``,
``cost.phases``) and a log₂-bucketed size histogram per primitive
(``primitive.<label>.size``).  The traffic figures are *model-level*
(derived from each primitive's CREW charging convention, see
``docs/model.md``) — they describe the simulated machine, not CPython.

Metric names are plain dotted strings; :meth:`MetricsRegistry.snapshot`
returns one JSON-friendly dict for export next to a trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.pram.cost import CostHook, CostModel

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """Monotone counter."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Log₂-bucketed non-negative value distribution.

    Bucket ``b`` counts observations ``v`` with ``2^(b-1) < v <= 2^b``
    (bucket 0 holds v in {0, 1}).  Tracks count/sum/min/max exactly;
    quantiles can be approximated from the buckets.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name} takes non-negative values")
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        bucket = max(int(value) - 1, 0).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "log2_buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry(CostHook):
    """Named metrics, plus the CostModel subscription that feeds them."""

    def __init__(self, clock_ns: Callable[[], int] | None = None) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self._clock_ns = clock_ns if clock_ns is not None else time.perf_counter_ns
        self._last_ns = self._clock_ns()

    # -- registry ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def attach(cls, cost: CostModel, **kwargs) -> "MetricsRegistry":
        """Create a registry and subscribe it to ``cost`` in one step."""
        registry = cls(**kwargs)
        cost.subscribe(registry)
        return registry

    def detach(self, cost: CostModel) -> None:
        cost.unsubscribe(self)

    # -- CostHook callbacks --------------------------------------------------

    def on_charge(self, work: int, depth: int, label: str) -> None:
        self.counter("cost.charges").inc()
        self.counter("cost.work").inc(work)
        self.counter("cost.depth").inc(depth)
        if label:
            self.counter(f"primitive.{label}.work").inc(work)
            self.counter(f"primitive.{label}.depth").inc(depth)

    def on_traffic(
        self, label: str, calls: int, elements: int, reads: int, writes: int
    ) -> None:
        prefix = f"primitive.{label}"
        self.counter(f"{prefix}.calls").inc(calls)
        self.counter(f"{prefix}.elements").inc(elements)
        self.counter(f"{prefix}.cells_read").inc(reads)
        self.counter(f"{prefix}.cells_written").inc(writes)
        now_ns = self._clock_ns()
        self.counter(f"{prefix}.wall_ns").inc(max(now_ns - self._last_ns, 0))
        self._last_ns = now_ns
        self.histogram(f"{prefix}.size").observe(elements)

    def on_phase_enter(self, name: str) -> None:
        self.counter("cost.phases").inc()
        # Phase boundaries reset the delta clock (see module docstring):
        # setup time outside primitives is not pinned on the next op.
        self._last_ns = self._clock_ns()

    # -- export --------------------------------------------------------------

    def primitive_labels(self) -> list[str]:
        """All labels that reported traffic, sorted."""
        suffix = ".calls"
        return sorted(
            name[len("primitive."):-len(suffix)]
            for name in self.counters
            if name.startswith("primitive.") and name.endswith(suffix)
        )

    def snapshot(self) -> dict:
        """One JSON-friendly dict of every metric's current value."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: h.to_dict() for k, h in sorted(self.histograms.items())
            },
        }
