"""Per-scale, per-primitive wall-time attribution for hopset builds.

ROADMAP item 2 says hopset *construction* dominates wall-clock; this module
is the measurement instrument for that claim.  It consumes a finished
:class:`~repro.obs.tracer.Span` tree (whose names follow the repo's
``scale{k}/phase{i}/{detect,ruling,supercluster,interconnect}`` phase
convention) and produces:

* :func:`profile_report` — an inclusive per-scale table, an exclusive
  per-scale/per-phase-kind wall table, and a top-N hot-primitive table
  (exclusive attributed host nanoseconds, see ``OpStats.wall_ns``);
* :func:`write_folded_flame` — the semicolon-folded stack format consumed
  by ``flamegraph.pl`` and https://speedscope.app: one line per
  ``frame;frame;... value`` where values are attributed nanoseconds.
  Primitive labels appear as leaf frames under their span; span wall not
  claimed by any primitive or child span is emitted as the span's own
  residual line, so the flame's total matches the root's wall clock.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.analysis.tables import render_table
from repro.obs.tracer import Span, SpanTracer

__all__ = ["profile_report", "write_folded_flame"]

_SourceT = Union[Span, SpanTracer]

#: The single-scale builder's phase kinds, in pipeline order.
PHASE_KINDS = ("detect", "ruling", "supercluster", "interconnect")


def _root_of(source: _SourceT) -> Span:
    return source.root if isinstance(source, SpanTracer) else source


def _scale_of(name: str) -> str:
    """The ``scale{k}`` component owning a span, or ``(top)`` outside one."""
    head = name.split("/", 1)[0]
    return head if head.startswith("scale") else "(top)"


def _kind_of(name: str) -> str:
    """The phase kind of a span: its known pipeline stage, else its leaf."""
    parts = name.split("/")
    for part in parts:
        if part in PHASE_KINDS:
            return part
    return parts[-1]


def profile_report(source: _SourceT, top: int = 12) -> str:
    """Three attribution tables for a traced build/query run.

    1. **per-scale** — inclusive charged work and wall seconds of each
       ``scale{k}`` span, with its share of the root wall clock;
    2. **per-scale phase wall** — *exclusive* primitive wall nanoseconds
       grouped by (scale, phase kind), ranked;
    3. **hot primitives** — the ``top`` (scale, phase, primitive) cells by
       exclusive wall, the table that names what to optimize next.
    """
    root = _root_of(source)
    scale_spans: list[Span] = []
    per_kind: dict[tuple[str, str], int] = {}
    per_op: dict[tuple[str, str, str], list[int]] = {}
    for span in root.walk():
        if span.level == 1 and span.name.startswith("scale"):
            scale_spans.append(span)
        scale = _scale_of(span.name)
        kind = _kind_of(span.name)
        for label, s in span.ops.items():
            per_kind[scale, kind] = per_kind.get((scale, kind), 0) + s.wall_ns
            row = per_op.setdefault((scale, kind, label), [0, 0, 0])
            row[0] += s.calls
            row[1] += s.work
            row[2] += s.wall_ns

    sections = []
    root_wall = max(root.wall, 1e-12)
    if scale_spans:
        rows = [
            [
                sp.name,
                sp.work,
                sp.depth,
                f"{sp.wall * 1e3:.2f}",
                f"{100.0 * sp.wall / root_wall:.1f}%",
            ]
            for sp in scale_spans
        ]
        sections.append(
            render_table(
                "per-scale (inclusive)",
                ["scale", "work", "depth", "wall ms", "share"],
                rows,
            )
        )

    total_ns = max(sum(per_kind.values()), 1)
    if per_kind:
        rows = [
            [scale, kind, f"{ns / 1e6:.2f}", f"{100.0 * ns / total_ns:.1f}%"]
            for (scale, kind), ns in sorted(
                per_kind.items(), key=lambda kv: kv[1], reverse=True
            )
            if ns > 0
        ]
        sections.append(
            render_table(
                "per-scale phase wall (exclusive)",
                ["scale", "phase", "wall ms", "share"],
                rows,
            )
        )

    if per_op:
        ranked = sorted(per_op.items(), key=lambda kv: kv[1][2], reverse=True)[:top]
        rows = [
            [
                label,
                scale,
                kind,
                calls,
                work,
                f"{ns / 1e6:.2f}",
                f"{100.0 * ns / total_ns:.1f}%",
            ]
            for (scale, kind, label), (calls, work, ns) in ranked
        ]
        sections.append(
            render_table(
                f"hot primitives (top {top}, exclusive wall)",
                ["primitive", "scale", "phase", "calls", "work", "wall ms", "share"],
                rows,
            )
        )
    return "\n".join(sections) if sections else "(empty trace)"


def write_folded_flame(path: str | Path, source: _SourceT) -> Path:
    """Write the span tree as folded stacks (nanosecond values)."""
    root = _root_of(source)
    lines: list[str] = []

    def visit(span: Span, stack: list[str]) -> None:
        frames = stack + [span.name.rsplit("/", 1)[-1]]
        ops_ns = 0
        for label, s in sorted(span.ops.items()):
            if s.wall_ns:
                lines.append(";".join(frames + [label]) + f" {s.wall_ns}")
                ops_ns += s.wall_ns
        child_ns = sum(int(c.wall * 1e9) for c in span.children)
        residual = int(span.wall * 1e9) - child_ns - ops_ns
        if residual > 0:
            lines.append(";".join(frames) + f" {residual}")
        for child in span.children:
            visit(child, frames)

    visit(root, [])
    path = Path(path)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path
