"""Span-based tracing of PRAM executions.

A :class:`SpanTracer` subscribes to a :class:`~repro.pram.cost.CostModel`
and mirrors its phase stack as a tree of :class:`Span` objects.  Each span
records:

* the **inclusive** work/depth charged while it was open (from cost-model
  snapshots at open/close),
* the **self** (exclusive) work/depth charged while it was the *innermost*
  open span,
* wall-clock time (``time.perf_counter``), and
* per-label operation stats (calls, work, depth, elements, CREW cells
  read/written) fed by ``charge``/``traffic`` events.

The tracer replaces ad-hoc inspection of ``CostModel.phase_totals`` for
attribution questions: the span tree is structural (no name-prefix
heuristics), survives duplicate phase names, and carries enough data for
the Chrome-trace / flame-report exporters in :mod:`repro.obs.export`.

Usage::

    pram = PRAM()
    tracer = SpanTracer.attach(pram.cost)
    build_hopset(g, params, pram)
    root = tracer.finish()          # detaches; root spans the whole run
    print(root.work, root.self_work, [c.name for c in root.children])
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.pram.cost import CostHook, CostModel

__all__ = ["OpStats", "Span", "SpanTracer"]


@dataclass
class OpStats:
    """Aggregated per-label primitive statistics within one span.

    ``wall_ns`` is *measured* host time attributed to the label by delta
    timing: each traffic event claims the nanoseconds elapsed since the
    previous traffic event (primitives report traffic once, at the end of
    their execution, so the delta covers that primitive's compute plus the
    caller glue leading into it).  It is an engineering figure — where real
    time goes — not a model quantity like ``work``/``depth``.
    """

    calls: int = 0
    work: int = 0
    depth: int = 0
    elements: int = 0
    reads: int = 0
    writes: int = 0
    wall_ns: int = 0


@dataclass
class Span:
    """One node of the trace tree (a phase execution, or the root)."""

    name: str
    level: int
    work_start: int
    depth_start: int
    wall_start: float
    work_end: int = -1
    depth_end: int = -1
    wall_end: float = -1.0
    self_work: int = 0
    self_depth: int = 0
    charges: int = 0
    ops: dict[str, OpStats] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.work_end >= 0

    @property
    def work(self) -> int:
        """Inclusive work charged while the span was open."""
        return (self.work_end if self.closed else self.work_start) - self.work_start

    @property
    def depth(self) -> int:
        """Inclusive depth charged while the span was open."""
        return (self.depth_end if self.closed else self.depth_start) - self.depth_start

    @property
    def wall(self) -> float:
        """Wall-clock seconds the span was open."""
        return max(self.wall_end - self.wall_start, 0.0) if self.closed else 0.0

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of the subtree rooted at this span."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-friendly representation (used by the JSONL exporter)."""
        return {
            "name": self.name,
            "level": self.level,
            "work": self.work,
            "depth": self.depth,
            "self_work": self.self_work,
            "self_depth": self.self_depth,
            "wall_s": self.wall,
            "charges": self.charges,
            "ops": {
                label: {
                    "calls": s.calls,
                    "work": s.work,
                    "depth": s.depth,
                    "elements": s.elements,
                    "cells_read": s.reads,
                    "cells_written": s.writes,
                    "wall_ns": s.wall_ns,
                }
                for label, s in sorted(self.ops.items())
            },
            "children": [c.name for c in self.children],
        }


class SpanTracer(CostHook):
    """A cost-model subscriber that builds the span tree of a run.

    Attach with :meth:`attach` (or construct and ``cost.subscribe``
    manually), run the instrumented code, then call :meth:`finish` to close
    the root span and detach.  The tracer is reusable only for one run.
    """

    def __init__(
        self,
        cost: CostModel,
        clock: Callable[[], float] | None = None,
        root_name: str = "trace",
    ) -> None:
        self.cost = cost
        self.clock = clock if clock is not None else time.perf_counter
        self.root = Span(
            name=root_name,
            level=0,
            work_start=cost.work,
            depth_start=cost.depth,
            wall_start=self.clock(),
        )
        self._stack: list[Span] = [self.root]
        self._last_ns = int(self.root.wall_start * 1e9)
        self._finished = False

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def attach(cls, cost: CostModel, **kwargs) -> "SpanTracer":
        """Create a tracer and subscribe it to ``cost`` in one step."""
        tracer = cls(cost, **kwargs)
        cost.subscribe(tracer)
        return tracer

    def finish(self) -> Span:
        """Close all open spans (root last), detach, and return the root."""
        if not self._finished:
            while self._stack:
                self._close(self._stack.pop())
            self.cost.unsubscribe(self)
            self._finished = True
        return self.root

    def _close(self, span: Span) -> None:
        span.work_end = self.cost.work
        span.depth_end = self.cost.depth
        span.wall_end = self.clock()

    # -- CostHook callbacks --------------------------------------------------

    def on_charge(self, work: int, depth: int, label: str) -> None:
        span = self._stack[-1]
        span.self_work += work
        span.self_depth += depth
        span.charges += 1
        stats = span.ops.get(label)
        if stats is None:
            stats = span.ops[label] = OpStats()
        stats.calls += 1
        stats.work += work
        stats.depth += depth

    def on_traffic(
        self, label: str, calls: int, elements: int, reads: int, writes: int
    ) -> None:
        span = self._stack[-1]
        stats = span.ops.get(label)
        if stats is None:
            stats = span.ops[label] = OpStats()
        stats.elements += elements
        stats.reads += reads
        stats.writes += writes
        now_ns = int(self.clock() * 1e9)
        stats.wall_ns += max(now_ns - self._last_ns, 0)
        self._last_ns = now_ns

    def on_phase_enter(self, name: str) -> None:
        parent = self._stack[-1]
        span = Span(
            name=name,
            level=parent.level + 1,
            work_start=self.cost.work,
            depth_start=self.cost.depth,
            wall_start=self.clock(),
        )
        # Phase boundaries reset the delta clock: time spent outside any
        # primitive (graph loading, caller glue) is not pinned on the first
        # op that happens to report traffic inside the new phase.
        self._last_ns = int(span.wall_start * 1e9)
        parent.children.append(span)
        self._stack.append(span)

    def on_phase_exit(self, name: str) -> None:
        if len(self._stack) <= 1:
            return  # phase opened before the tracer attached; nothing to close
        self._close(self._stack.pop())

    # -- queries -------------------------------------------------------------

    def spans(self) -> list[Span]:
        """All spans, pre-order (root first)."""
        return list(self.root.walk())

    def coverage(self) -> float:
        """Fraction of the root's charged work inside *named* child spans.

        The acceptance metric for instrumentation completeness: work
        charged outside any phase is visible only as root ``self_work``,
        so ``coverage = 1 - root.self_work / root.work``.
        """
        total = self.root.work
        if total <= 0:
            return 1.0
        return 1.0 - self.root.self_work / total
