"""CREW PRAM simulation substrate: cost metering, memory, and primitives.

This package is the hardware substitution for the paper's abstract machine
(Section 1.5.1): algorithms execute vectorized on one CPU but are metered in
**work** (total operations) and **depth** (synchronous rounds), the two
quantities the paper's theorems bound.
"""

from repro.pram.cost import (
    RACE_TRAFFIC_PREFIX,
    WRITE_RULES,
    CostHook,
    CostModel,
    CostSnapshot,
    StepRecord,
)
from repro.pram.errors import (
    InvalidStepError,
    PRAMError,
    ProcessorBudgetError,
    ShadowRaceError,
    WriteConflictError,
)
from repro.pram.frontier import ENGINES, FrontierStats, frontier_relax
from repro.pram.machine import PRAM
from repro.pram.memory import CREWMemory
from repro.pram.schedule import SchedulePoint, makespan, speedup_curve
from repro.pram.workspace import Workspace, fused_default, poison_default

__all__ = [
    "PRAM",
    "ENGINES",
    "FrontierStats",
    "frontier_relax",
    "Workspace",
    "fused_default",
    "poison_default",
    "CostModel",
    "CostHook",
    "CostSnapshot",
    "StepRecord",
    "CREWMemory",
    "makespan",
    "speedup_curve",
    "SchedulePoint",
    "PRAMError",
    "WriteConflictError",
    "ShadowRaceError",
    "ProcessorBudgetError",
    "InvalidStepError",
    "RACE_TRAFFIC_PREFIX",
    "WRITE_RULES",
]
