"""Pluggable execution backends for the PRAM simulator (docs/backends.md).

``SerialBackend`` runs every kernel in-process (today's path, extracted
behind the :class:`ExecutionBackend` interface); ``ShardedBackend`` runs
dense relaxation rounds on a pool of shared-memory worker processes with
a deterministic fixed-shard-order tree min-combine.  Both are bit-exact
and charge-identical — only wall-clock differs.  Select per machine with
``PRAM(backend=...)`` or globally with ``REPRO_BACKEND=serial|sharded[:W]``.
"""

from repro.pram.backends.base import (
    ExecutionBackend,
    SerialBackend,
    backend_default,
    parse_backend_spec,
    resolve_backend,
    serial_gather_csr,
    serial_segmin,
)
from repro.pram.backends.sharded import ShardedBackend, shard_bounds, tree_min_combine

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ShardedBackend",
    "backend_default",
    "parse_backend_spec",
    "resolve_backend",
    "serial_gather_csr",
    "serial_segmin",
    "shard_bounds",
    "tree_min_combine",
]
