"""Execution backends: where the simulator's numeric kernels actually run.

The cost model charges *model* resources (work, depth, CREW traffic);
an :class:`ExecutionBackend` decides which host resources execute the
underlying NumPy kernels.  Two backends ship:

* :class:`SerialBackend` — today's path: every kernel runs in-process on
  one core.  This is the reference implementation the primitives in
  :mod:`repro.pram.primitives` delegate to.
* :class:`~repro.pram.backends.sharded.ShardedBackend` — a persistent
  pool of worker processes holding ``multiprocessing.shared_memory``
  views of the graph's relaxation plan; each dense relaxation round runs
  per-shard ``reduceat`` segment minima in the workers and a
  fixed-shard-order tree min-combine in the parent (``docs/backends.md``).

The backend contract is strict: **a backend may only change wall-clock.**
The charged cost stream (labels, work, depth, write footprints) is
emitted by the primitives themselves, identically for every backend, and
outputs must be bit-equal — min over float64 is exact and associative,
which is what makes the sharded combine legal.  The differential matrix
in ``tests/conformance/test_backend_diff.py`` pins this.

Backends are selected per :class:`~repro.pram.machine.PRAM` via its
``backend=`` argument, defaulting to the ``REPRO_BACKEND`` environment
variable (``serial`` | ``sharded`` | ``sharded:W``); named specs resolve
to process-wide singletons so every machine shares one worker pool.
"""

from __future__ import annotations

import os

import numpy as np

from repro.pram.errors import InvalidStepError

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "parse_backend_spec",
    "resolve_backend",
    "backend_default",
    "serial_gather_csr",
    "serial_segmin",
    "serial_segmin_batch",
    "serial_entry_segmin",
]

_INT64_MAX = np.iinfo(np.int64).max  # "no achieving tail" payload sentinel


def serial_gather_csr(
    indptr: np.ndarray, frontier: np.ndarray, deg_all: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Numeric core of :func:`repro.pram.primitives.pgather_csr`.

    Returns ``(slots, arcs)`` for the flattened out-arc list of the
    (validated, non-empty) ``frontier``; cost charging stays with the
    calling primitive.  ``deg_all`` is the optional cached per-vertex
    degree array (``Workspace.csr_degrees``) — supplying it replaces the
    second row-pointer gather + subtract with one degree gather.
    """
    starts = np.asarray(indptr[frontier], dtype=np.int64)
    if deg_all is not None:
        deg = np.asarray(deg_all[frontier], dtype=np.int64)
    else:
        deg = np.asarray(indptr[frontier + 1], dtype=np.int64) - starts
    total = int(deg.sum())
    slots = np.repeat(np.arange(frontier.size, dtype=np.int64), deg)
    run_start = np.concatenate(([0], np.cumsum(deg)[:-1]))
    offsets = np.arange(total, dtype=np.int64) - run_start[slots]
    arcs = starts[slots] + offsets
    return slots, arcs


def serial_segmin(
    dist: np.ndarray,
    tails_s: np.ndarray,
    weights_s: np.ndarray,
    seg_start: np.ndarray,
    seg_id: np.ndarray,
    take,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-head-segment (min candidate, min achieving tail) — in process.

    The numeric core of the fused dense relaxation: candidates
    ``dist[tails_s] + weights_s``, one ``minimum.reduceat`` per head
    segment for the winning value, and a second masked ``reduceat`` for
    the deterministic payload (the minimum tail among value-achieving
    arcs).  Scratch arrays come from ``take(name, size, dtype)``.
    Returns ``(cand, segmin, winpay, achieving)`` — the per-arc arrays are
    what the write-footprint declarations of ``prelax_arcs`` consume.
    """
    n = int(tails_s.size)
    k = int(seg_start.size)
    cand = take("relax.cand", n, np.float64)
    dist.take(tails_s, out=cand)
    cand += weights_s
    segmin = take("relax.segmin", k, np.float64)
    np.minimum.reduceat(cand, seg_start, out=segmin)
    minrep = take("relax.minrep", n, np.float64)
    segmin.take(seg_id, out=minrep)
    achieving = take("relax.achieving", n, bool)
    np.equal(cand, minrep, out=achieving)
    maskpay = take("relax.maskpay", n, np.int64)
    maskpay.fill(_INT64_MAX)
    np.copyto(maskpay, tails_s, where=achieving)
    winpay = take("relax.winpay", k, np.int64)
    np.minimum.reduceat(maskpay, seg_start, out=winpay)
    return cand, segmin, winpay, achieving


def serial_segmin_batch(
    dist_block: np.ndarray,
    tails_s: np.ndarray,
    weights_s: np.ndarray,
    seg_start: np.ndarray,
    seg_id: np.ndarray,
    take,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-batched :func:`serial_segmin`: S sources in one rectangular pass.

    ``dist_block`` is the (A, n) active-row slice of the S×V distance
    matrix; the candidate gather, both ``reduceat`` reductions, and the
    achieving-tail payload all run along ``axis=1`` so every active source
    advances in the same kernel launch.  Row ``r`` of the returned
    ``(segmin, winpay)`` pair is bit-identical to ``serial_segmin`` on
    ``dist_block[r]`` alone — same candidates, same ties, same minimum
    achieving tail — which is what lets the matrix engine replay the
    per-source charge stream unchanged.  Scratch comes from
    ``take(name, size, dtype)`` (flat pooled views, reshaped here).
    """
    rows = int(dist_block.shape[0])
    n = int(tails_s.size)
    k = int(seg_start.size)
    cand = take("relaxb.cand", rows * n, np.float64).reshape(rows, n)
    np.take(dist_block, tails_s, axis=1, out=cand)
    cand += weights_s
    segmin = take("relaxb.segmin", rows * k, np.float64).reshape(rows, k)
    np.minimum.reduceat(cand, seg_start, axis=1, out=segmin)
    minrep = take("relaxb.minrep", rows * n, np.float64).reshape(rows, n)
    segmin.take(seg_id, axis=1, out=minrep)
    achieving = take("relaxb.achieving", rows * n, bool).reshape(rows, n)
    np.equal(cand, minrep, out=achieving)
    maskpay = take("relaxb.maskpay", rows * n, np.int64).reshape(rows, n)
    maskpay.fill(_INT64_MAX)
    np.copyto(maskpay, tails_s, where=achieving)
    winpay = take("relaxb.winpay", rows * k, np.int64).reshape(rows, k)
    np.minimum.reduceat(maskpay, seg_start, axis=1, out=winpay)
    return segmin, winpay


def serial_entry_segmin(
    dist_s: np.ndarray,
    aux1_s: np.ndarray,
    aux2_s: np.ndarray | None,
    seg_start: np.ndarray,
    seg_id: np.ndarray,
    take,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Per-segment staged lexicographic minimum of entry rows — in process.

    The numeric core of the fused hopset-build prune/aggregate kernels:
    rows are grouped into contiguous segments (``seg_start`` offsets into
    the row arrays, ``seg_id`` the per-row segment index) and each segment
    reduces to the lexicographic minimum of its ``(dist, aux1[, aux2])``
    row tuples, computed by staged value minima — per segment the minimum
    ``dist``, then the minimum ``aux1`` among dist-achieving rows, then
    the minimum ``aux2`` among rows achieving both.  Staged minima equal
    the lexicographic minimum and are permutation-independent, which is
    what makes the fused kernels bit-equal to the sort-based unfused path
    and makes sharded execution legal (the combine is associative).

    Scratch comes from ``take(name, size, dtype)``; the returned arrays
    are pooled views valid until the pool's next round — callers copy out
    whatever survives.  ``aux2_s=None`` skips the third stage.
    """
    n = int(dist_s.size)
    k = int(seg_start.size)
    gmin_d = take("entry.gmin_d", k, np.float64)
    np.minimum.reduceat(dist_s, seg_start, out=gmin_d)
    rep = take("entry.rep", n, np.float64)
    gmin_d.take(seg_id, out=rep)
    achieving = take("entry.achieving", n, bool)
    np.equal(dist_s, rep, out=achieving)
    masked = take("entry.masked", n, np.int64)
    masked.fill(_INT64_MAX)
    np.copyto(masked, aux1_s, where=achieving)
    gmin_a1 = take("entry.gmin_a1", k, np.int64)
    np.minimum.reduceat(masked, seg_start, out=gmin_a1)
    if aux2_s is None:
        return gmin_d, gmin_a1, None
    irep = take("entry.irep", n, np.int64)
    gmin_a1.take(seg_id, out=irep)
    also = take("entry.also", n, bool)
    np.equal(aux1_s, irep, out=also)
    achieving &= also
    masked.fill(_INT64_MAX)
    np.copyto(masked, aux2_s, where=achieving)
    gmin_a2 = take("entry.gmin_a2", k, np.int64)
    np.minimum.reduceat(masked, seg_start, out=gmin_a2)
    return gmin_d, gmin_a1, gmin_a2


class ExecutionBackend:
    """Where the numeric kernels of the simulated machine execute.

    The base class *is* the serial semantics: subclasses may override
    :meth:`relax_segmin` / :meth:`gather_csr` with a faster execution of
    the same math, but must return bit-identical arrays.  Backends never
    charge the cost model — the ``cost`` handle they receive is for
    observability traffic only (worker wall times, shard sizes).
    """

    #: Human-readable backend kind (``"serial"`` / ``"sharded"``).
    name = "base"
    #: Host workers the backend executes on (1 for in-process).
    workers = 1

    def gather_csr(
        self, indptr: np.ndarray, frontier: np.ndarray, deg_all: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flattened CSR out-arc gather of a non-empty frontier."""
        return serial_gather_csr(indptr, frontier, deg_all)

    def relax_segmin(
        self, plan, dist: np.ndarray, take, cost=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-segment ``(segmin, winpay)`` of one dense relaxation round.

        ``plan`` is a :class:`~repro.pram.primitives.RelaxPlan`; the
        returned arrays have one entry per ``plan.cells`` segment.
        """
        _, segmin, winpay, _ = serial_segmin(
            dist, plan.tails_s, plan.weights_s, plan.seg_start, plan.seg_id, take
        )
        return segmin, winpay

    def relax_segmin_batch(
        self, plan, dist_block: np.ndarray, take, cost=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-batched :meth:`relax_segmin`: one round for A active sources.

        ``dist_block`` is the (A, n) active-row slice of the S×V distance
        matrix; returns ``(segmin, winpay)`` of shape (A, n_cells).  Row
        ``r`` must be bit-identical to ``relax_segmin`` on ``dist_block[r]``
        alone — the matrix engine relies on that to keep the per-source
        charge stream equal to A independent runs.
        """
        return serial_segmin_batch(
            dist_block, plan.tails_s, plan.weights_s, plan.seg_start, plan.seg_id, take
        )

    def entry_segmin(
        self,
        dist_s: np.ndarray,
        aux1_s: np.ndarray,
        aux2_s: np.ndarray | None,
        seg_start: np.ndarray,
        seg_id: np.ndarray,
        take,
        cost=None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Per-segment staged lexicographic min of grouped entry rows.

        The grouped-reduction core of the fused hopset-build prune and
        aggregate kernels (``pprune_entries`` / ``paggregate_entries``);
        see :func:`serial_entry_segmin` for the exact semantics.
        """
        return serial_entry_segmin(dist_s, aux1_s, aux2_s, seg_start, seg_id, take)

    def evict_plan(self, plan) -> bool:
        """Release any backend-held state derived from ``plan``.

        In-process backends hold none (plans alias the caller's arrays),
        so the base implementation is a no-op returning ``False``.  The
        sharded backend overrides this to tear down the shared-memory
        *copies* its workers registered for the plan — the dynamic
        subsystem calls it whenever a graph mutates structurally, paired
        with :meth:`~repro.pram.workspace.Workspace.drop_plan`.
        """
        return False

    def close(self) -> None:
        """Release any host resources (worker processes, shared memory)."""

    def describe(self) -> str:
        return self.name


class SerialBackend(ExecutionBackend):
    """The in-process NumPy path — today's execution, behind the interface."""

    name = "serial"


def parse_backend_spec(spec: str) -> tuple[str, int | None]:
    """Parse a ``REPRO_BACKEND`` value into ``(kind, workers)``.

    Accepted: ``serial`` (or empty), ``sharded``, ``sharded:W`` with
    ``W >= 1``.  Raises :class:`InvalidStepError` otherwise.
    """
    s = (spec or "").strip().lower()
    if s in ("", "serial"):
        return "serial", None
    if s == "sharded":
        return "sharded", None
    if s.startswith("sharded:"):
        raw = s.split(":", 1)[1]
        try:
            w = int(raw)
        except ValueError:
            raise InvalidStepError(f"invalid sharded worker count {raw!r}") from None
        if w < 1:
            raise InvalidStepError(f"sharded worker count must be >= 1, got {w}")
        return "sharded", w
    raise InvalidStepError(
        f"unknown backend spec {spec!r}; expected serial | sharded[:W]"
    )


_SINGLETONS: dict[str, ExecutionBackend] = {}


def resolve_backend(spec=None) -> ExecutionBackend:
    """Resolve a backend argument to a live :class:`ExecutionBackend`.

    ``spec`` may be an instance (returned as-is), a spec string, or
    ``None`` — which reads ``REPRO_BACKEND`` (default ``serial``).
    String specs resolve to process-wide singletons, so every ``PRAM()``
    under ``REPRO_BACKEND=sharded:4`` shares one worker pool.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = os.environ.get("REPRO_BACKEND", "serial")
    kind, w = parse_backend_spec(spec)
    key = kind if w is None else f"{kind}:{w}"
    hit = _SINGLETONS.get(key)
    if hit is not None:
        return hit
    if kind == "serial":
        backend: ExecutionBackend = SerialBackend()
    else:
        from repro.pram.backends.sharded import ShardedBackend

        backend = ShardedBackend(workers=w)
    _SINGLETONS[key] = backend
    return backend


def backend_default() -> ExecutionBackend:
    """The environment-selected backend (``REPRO_BACKEND``, default serial)."""
    return resolve_backend(None)
