"""Execution backends: where the simulator's numeric kernels actually run.

The cost model charges *model* resources (work, depth, CREW traffic);
an :class:`ExecutionBackend` decides which host resources execute the
underlying NumPy kernels.  Two backends ship:

* :class:`SerialBackend` — today's path: every kernel runs in-process on
  one core.  This is the reference implementation the primitives in
  :mod:`repro.pram.primitives` delegate to.
* :class:`~repro.pram.backends.sharded.ShardedBackend` — a persistent
  pool of worker processes holding ``multiprocessing.shared_memory``
  views of the graph's relaxation plan; each dense relaxation round runs
  per-shard ``reduceat`` segment minima in the workers and a
  fixed-shard-order tree min-combine in the parent (``docs/backends.md``).

The backend contract is strict: **a backend may only change wall-clock.**
The charged cost stream (labels, work, depth, write footprints) is
emitted by the primitives themselves, identically for every backend, and
outputs must be bit-equal — min over float64 is exact and associative,
which is what makes the sharded combine legal.  The differential matrix
in ``tests/conformance/test_backend_diff.py`` pins this.

Backends are selected per :class:`~repro.pram.machine.PRAM` via its
``backend=`` argument, defaulting to the ``REPRO_BACKEND`` environment
variable (``serial`` | ``sharded`` | ``sharded:W``); named specs resolve
to process-wide singletons so every machine shares one worker pool.
"""

from __future__ import annotations

import os

import numpy as np

from repro.pram.errors import InvalidStepError

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "parse_backend_spec",
    "resolve_backend",
    "backend_default",
    "serial_gather_csr",
    "serial_segmin",
]

_INT64_MAX = np.iinfo(np.int64).max  # "no achieving tail" payload sentinel


def serial_gather_csr(
    indptr: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Numeric core of :func:`repro.pram.primitives.pgather_csr`.

    Returns ``(slots, arcs)`` for the flattened out-arc list of the
    (validated, non-empty) ``frontier``; cost charging stays with the
    calling primitive.
    """
    starts = np.asarray(indptr[frontier], dtype=np.int64)
    deg = np.asarray(indptr[frontier + 1], dtype=np.int64) - starts
    total = int(deg.sum())
    slots = np.repeat(np.arange(frontier.size, dtype=np.int64), deg)
    run_start = np.concatenate(([0], np.cumsum(deg)[:-1]))
    offsets = np.arange(total, dtype=np.int64) - run_start[slots]
    arcs = starts[slots] + offsets
    return slots, arcs


def serial_segmin(
    dist: np.ndarray,
    tails_s: np.ndarray,
    weights_s: np.ndarray,
    seg_start: np.ndarray,
    seg_id: np.ndarray,
    take,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-head-segment (min candidate, min achieving tail) — in process.

    The numeric core of the fused dense relaxation: candidates
    ``dist[tails_s] + weights_s``, one ``minimum.reduceat`` per head
    segment for the winning value, and a second masked ``reduceat`` for
    the deterministic payload (the minimum tail among value-achieving
    arcs).  Scratch arrays come from ``take(name, size, dtype)``.
    Returns ``(cand, segmin, winpay, achieving)`` — the per-arc arrays are
    what the write-footprint declarations of ``prelax_arcs`` consume.
    """
    n = int(tails_s.size)
    k = int(seg_start.size)
    cand = take("relax.cand", n, np.float64)
    dist.take(tails_s, out=cand)
    cand += weights_s
    segmin = take("relax.segmin", k, np.float64)
    np.minimum.reduceat(cand, seg_start, out=segmin)
    minrep = take("relax.minrep", n, np.float64)
    segmin.take(seg_id, out=minrep)
    achieving = take("relax.achieving", n, bool)
    np.equal(cand, minrep, out=achieving)
    maskpay = take("relax.maskpay", n, np.int64)
    maskpay.fill(_INT64_MAX)
    np.copyto(maskpay, tails_s, where=achieving)
    winpay = take("relax.winpay", k, np.int64)
    np.minimum.reduceat(maskpay, seg_start, out=winpay)
    return cand, segmin, winpay, achieving


class ExecutionBackend:
    """Where the numeric kernels of the simulated machine execute.

    The base class *is* the serial semantics: subclasses may override
    :meth:`relax_segmin` / :meth:`gather_csr` with a faster execution of
    the same math, but must return bit-identical arrays.  Backends never
    charge the cost model — the ``cost`` handle they receive is for
    observability traffic only (worker wall times, shard sizes).
    """

    #: Human-readable backend kind (``"serial"`` / ``"sharded"``).
    name = "base"
    #: Host workers the backend executes on (1 for in-process).
    workers = 1

    def gather_csr(
        self, indptr: np.ndarray, frontier: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flattened CSR out-arc gather of a non-empty frontier."""
        return serial_gather_csr(indptr, frontier)

    def relax_segmin(
        self, plan, dist: np.ndarray, take, cost=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-segment ``(segmin, winpay)`` of one dense relaxation round.

        ``plan`` is a :class:`~repro.pram.primitives.RelaxPlan`; the
        returned arrays have one entry per ``plan.cells`` segment.
        """
        _, segmin, winpay, _ = serial_segmin(
            dist, plan.tails_s, plan.weights_s, plan.seg_start, plan.seg_id, take
        )
        return segmin, winpay

    def close(self) -> None:
        """Release any host resources (worker processes, shared memory)."""

    def describe(self) -> str:
        return self.name


class SerialBackend(ExecutionBackend):
    """The in-process NumPy path — today's execution, behind the interface."""

    name = "serial"


def parse_backend_spec(spec: str) -> tuple[str, int | None]:
    """Parse a ``REPRO_BACKEND`` value into ``(kind, workers)``.

    Accepted: ``serial`` (or empty), ``sharded``, ``sharded:W`` with
    ``W >= 1``.  Raises :class:`InvalidStepError` otherwise.
    """
    s = (spec or "").strip().lower()
    if s in ("", "serial"):
        return "serial", None
    if s == "sharded":
        return "sharded", None
    if s.startswith("sharded:"):
        raw = s.split(":", 1)[1]
        try:
            w = int(raw)
        except ValueError:
            raise InvalidStepError(f"invalid sharded worker count {raw!r}") from None
        if w < 1:
            raise InvalidStepError(f"sharded worker count must be >= 1, got {w}")
        return "sharded", w
    raise InvalidStepError(
        f"unknown backend spec {spec!r}; expected serial | sharded[:W]"
    )


_SINGLETONS: dict[str, ExecutionBackend] = {}


def resolve_backend(spec=None) -> ExecutionBackend:
    """Resolve a backend argument to a live :class:`ExecutionBackend`.

    ``spec`` may be an instance (returned as-is), a spec string, or
    ``None`` — which reads ``REPRO_BACKEND`` (default ``serial``).
    String specs resolve to process-wide singletons, so every ``PRAM()``
    under ``REPRO_BACKEND=sharded:4`` shares one worker pool.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = os.environ.get("REPRO_BACKEND", "serial")
    kind, w = parse_backend_spec(spec)
    key = kind if w is None else f"{kind}:{w}"
    hit = _SINGLETONS.get(key)
    if hit is not None:
        return hit
    if kind == "serial":
        backend: ExecutionBackend = SerialBackend()
    else:
        from repro.pram.backends.sharded import ShardedBackend

        backend = ShardedBackend(workers=w)
    _SINGLETONS[key] = backend
    return backend


def backend_default() -> ExecutionBackend:
    """The environment-selected backend (``REPRO_BACKEND``, default serial)."""
    return resolve_backend(None)
