"""Sharded multi-process execution backend.

The simulator's dense relaxation round — per head segment, the minimum
candidate ``dist[tail] + w`` and the minimum value-achieving tail — is a
flat ``reduceat`` over the arc array, which the GIL pins to one core.
This backend distributes it over a persistent pool of **worker
processes** in the partition-then-combine style of the distributed
SSSP lines of work (Cao–Fineman–Russell, Forster–Nanongkai):

* **Shared-memory plan registration.**  On first use of a
  :class:`~repro.pram.primitives.RelaxPlan`, the head-sorted arc arrays
  (``tails_s``, ``weights_s``) and a ``dist`` mirror are placed in
  ``multiprocessing.shared_memory`` blocks; the arc array is cut into
  ``W`` contiguous, arc-balanced shards, and each worker attaches the
  blocks once and keeps per-shard segment layout (local ``reduceat``
  offsets) for the plan's lifetime.  Per round, the parent only refreshes
  the shared ``dist`` mirror and posts one message per worker.

* **Per-shard segmin in the workers.**  Each worker runs the same two
  ``minimum.reduceat`` passes the serial kernel runs, over its arc range
  only, writing its partial ``(segmin, winpay)`` into its own slice of a
  shared output block (exclusive writes — the sharding is itself CREW).

* **Deterministic fixed-shard-order tree min-combine.**  A head segment
  that straddles a shard boundary has partial minima in two shards; the
  parent merges the shard results pairwise in fixed shard order (an
  all-reduce in miniature).  The combine rule per overlapping cell is
  ``(min value, min tail among value-achievers)`` — associative and
  exact over float64/int64, so the result is **bit-equal** to the serial
  kernel for any shard count.  See ``docs/backends.md`` for the argument.

The charged cost stream is untouched: `prelax_arcs` charges work/depth/
traffic/footprints identically for every backend — only wall-clock
changes.  When a race detector wants write footprints, the per-arc
arrays must be materialized centrally anyway, so shadowed rounds run the
in-process kernel (charged the same; see docs).

**Graceful degradation.**  Rounds smaller than ``min_arcs`` never leave
the process (IPC would dominate).  A worker death, round timeout, or
registration failure permanently trips the backend: the pool is torn
down, the event is logged and reported as ``backend.fallback`` traffic,
and every subsequent round runs the serial kernel — same answers,
serial wall-clock.  The fault-injection test kills a worker mid-run and
asserts the final distances are still bit-correct.

Observability: each sharded round reports ``backend.round`` (arcs),
``backend.shard`` (per-shard arc counts — the metrics registry's size
histogram records the shard balance), ``backend.worker_wall_ns``
(per-worker compute nanoseconds, measured inside the worker), and
``backend.combine`` (cells combined, bytes moved) traffic events.

**Cross-process worker telemetry** (``REPRO_WORKER_STATS``, default on):
each worker additionally writes a per-round stats row — shard arcs plus
its wall nanoseconds split into *gather* (candidate gather + add),
*segmin* (the value ``reduceat``), and *serialize* (payload masking +
writing results into the shared output block) — into a preallocated
``multiprocessing.shared_memory`` stats block, one row per worker, no
IPC beyond the existing round ack.  After every sharded round the parent
merges the rows **in fixed shard order** into whatever cost-model
subscribers are attached (``SpanTracer`` / ``MetricsRegistry``) as
``backend.worker.<i>.{wall_ns,gather_ns,segmin_ns,serialize_ns,arcs}``
traffic, plus derived health metrics:

* ``backend.round_wall_ns``    — parent-measured wall of the whole round
  (IPC included), so per-worker compute can be compared against it;
* ``backend.imbalance_milli``  — 1000 × max/mean worker wall (shard
  imbalance ratio; mean over rounds = elements / calls);
* ``backend.ipc_ns``           — round wall minus the slowest worker's
  compute (the IPC + combine overhead share);
* ``backend.combine_depth``    — ⌈log₂ shards⌉ of the combine tree;
* ``backend.timeout_near_miss`` — rounds that consumed more than 80 % of
  ``round_timeout`` without tripping it.

The parent also keeps a bounded :attr:`ShardedBackend.round_log` (one
entry per telemetered round, with the parent-clock start timestamp) that
the Chrome-trace exporter renders as one lane per worker — see
:func:`repro.obs.export.chrome_trace_events`.  Telemetry is only
collected while a subscriber is attached and never touches the numeric
path: outputs and charged costs are bit-identical with stats enabled or
disabled.  Serial degradations carry a structured reason:
``backend.fallback.<reason>`` with ``reason`` ∈ {``worker-death``,
``timeout``, ``registration``, ``pool-start``}, and per-round serial
routing reports ``backend.serial_round.<reason>`` with ``reason`` ∈
{``min-arcs``, ``fallback``}.
"""

from __future__ import annotations

import atexit
import logging
import os
import time

import numpy as np

from repro.pram.backends.base import ExecutionBackend, serial_segmin
from repro.pram.errors import InvalidStepError

__all__ = [
    "ShardedBackend",
    "shard_bounds",
    "tree_min_combine",
    "entry_tree_combine",
]

log = logging.getLogger("repro.backends")

_INT64_MAX = np.iinfo(np.int64).max

#: Rounds with fewer arcs than this run in-process (IPC would dominate).
DEFAULT_MIN_ARCS = 4096

#: Entry-segmin rounds with fewer rows than this run in-process.  Entry
#: rows are transient (fresh grouping every call, nothing to register in
#: shared memory once), so the whole row slice ships through the pipe —
#: the amortization threshold is accordingly much higher than for the
#: registered relaxation plans.
DEFAULT_MIN_ENTRY_ROWS = 65536

#: Seconds the parent waits for one worker's round before tripping fallback.
DEFAULT_ROUND_TIMEOUT = 30.0

#: Fields of one worker's shared-memory stats row (all int64):
#: round id, shard arcs, gather ns, segmin ns, serialize ns, total ns.
STATS_FIELDS = 6

#: Rounds recorded in :attr:`ShardedBackend.round_log` before dropping
#: (each entry is a small dict; the cap bounds memory on week-long runs).
ROUND_LOG_CAP = 16384

#: Fraction of ``round_timeout`` past which a round counts as a near-miss.
NEAR_MISS_FRACTION = 0.8


def worker_stats_enabled() -> bool:
    """Whether workers collect the per-round stats rows (``REPRO_WORKER_STATS``)."""
    return os.environ.get("REPRO_WORKER_STATS", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def shard_bounds(n_arcs: int, shards: int) -> list[tuple[int, int]]:
    """Cut ``[0, n_arcs)`` into up to ``shards`` non-empty balanced ranges."""
    if n_arcs <= 0:
        return []
    shards = max(1, min(int(shards), n_arcs))
    cuts = [round(i * n_arcs / shards) for i in range(shards + 1)]
    return [(cuts[i], cuts[i + 1]) for i in range(shards) if cuts[i] < cuts[i + 1]]


def _merge(a, b):
    """Combine two adjacent shard results (contiguous global segment runs).

    Each operand is ``(seg_lo, segmin, winpay)``; ``b`` starts either at
    ``a``'s end (disjoint) or one segment earlier (the boundary segment
    straddles the arc cut).  The straddling cell combines as
    ``(min value, min tail among achievers)`` — exact and associative.
    """
    a_lo, a_mn, a_py = a
    b_lo, b_mn, b_py = b
    a_hi = a_lo + a_mn.size
    if b_lo == a_hi:  # no straddling segment
        return a_lo, np.concatenate((a_mn, b_mn)), np.concatenate((a_py, b_py))
    if b_lo != a_hi - 1:
        raise InvalidStepError(
            f"non-adjacent shard results: [{a_lo},{a_hi}) then {b_lo}"
        )
    av = a_mn[-1]
    bv = b_mn[0]
    if bv < av:
        v, p = bv, b_py[0]
    elif av < bv:
        v, p = av, a_py[-1]
    else:
        v, p = av, min(int(a_py[-1]), int(b_py[0]))
    mn = np.concatenate((a_mn[:-1], np.array([v], dtype=a_mn.dtype), b_mn[1:]))
    py = np.concatenate((a_py[:-1], np.array([p], dtype=a_py.dtype), b_py[1:]))
    return a_lo, mn, py


def tree_min_combine(parts):
    """Fixed-shard-order binary-tree combine of per-shard partial results.

    ``parts`` is the ascending shard-order list of ``(seg_lo, segmin,
    winpay)`` partials; returns the combined ``(seg_lo, segmin, winpay)``
    covering the union.  The tree mirrors a ``ceil(log2 W)``-round
    all-reduce; because the per-cell rule is associative and exact, any
    combine order gives bit-identical output — the fixed order keeps the
    execution canonical anyway.
    """
    if not parts:
        raise InvalidStepError("tree_min_combine: no shard results")
    if len(parts) == 1:
        lo, mn, py = parts[0]
        return lo, mn.copy(), py.copy()  # never hand out shared-memory views
    level = list(parts)
    while len(level) > 1:
        nxt = [
            _merge(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _entry_lex_combine(a, b):
    """Lexicographic min of two staged ``(dist, aux1[, aux2])`` triples.

    Each operand is one shard's staged minimum for the same (straddling)
    segment — itself the lexicographic minimum of that shard's rows — so
    the combined triple is the segment's global lexicographic minimum.
    """
    a_d, a_1, a_2 = a
    b_d, b_1, b_2 = b
    if b_d < a_d:
        return b
    if a_d < b_d:
        return a
    if b_1 < a_1:
        return b
    if a_1 < b_1:
        return a
    if a_2 is None:
        return a
    return a if a_2 <= b_2 else b


def _entry_merge(a, b):
    """Combine two adjacent shard entry-partials (contiguous segment runs).

    Operands are ``(seg_lo, gmin_d, gmin_a1, gmin_a2_or_None)``; ``b``
    starts either at ``a``'s end (disjoint) or one segment earlier (the
    boundary segment's rows straddle the shard cut), in which case the
    straddling cell combines by staged-lexicographic minimum — exact and
    associative, see :func:`_entry_lex_combine`.
    """
    a_lo, a_d, a_1, a_2 = a
    b_lo, b_d, b_1, b_2 = b
    a_hi = a_lo + a_d.size
    has2 = a_2 is not None
    if b_lo == a_hi:  # no straddling segment
        return (
            a_lo,
            np.concatenate((a_d, b_d)),
            np.concatenate((a_1, b_1)),
            np.concatenate((a_2, b_2)) if has2 else None,
        )
    if b_lo != a_hi - 1:
        raise InvalidStepError(
            f"non-adjacent entry shard results: [{a_lo},{a_hi}) then {b_lo}"
        )
    va = (float(a_d[-1]), int(a_1[-1]), int(a_2[-1]) if has2 else None)
    vb = (float(b_d[0]), int(b_1[0]), int(b_2[0]) if has2 else None)
    d, a1, a2 = _entry_lex_combine(va, vb)
    mid_d = np.array([d], dtype=a_d.dtype)
    mid_1 = np.array([a1], dtype=a_1.dtype)
    return (
        a_lo,
        np.concatenate((a_d[:-1], mid_d, b_d[1:])),
        np.concatenate((a_1[:-1], mid_1, b_1[1:])),
        np.concatenate((a_2[:-1], np.array([a2], dtype=a_2.dtype), b_2[1:]))
        if has2
        else None,
    )


def entry_tree_combine(parts):
    """Fixed-shard-order tree combine of per-shard entry-segmin partials.

    ``parts`` is the ascending shard-order list of ``(seg_lo, gmin_d,
    gmin_a1, gmin_a2_or_None)`` partials; returns the combined quadruple
    covering the union.  Bit-equal to the serial staged reduction for any
    shard count because the per-cell rule is the associative staged
    lexicographic minimum.
    """
    if not parts:
        raise InvalidStepError("entry_tree_combine: no shard results")
    if len(parts) == 1:
        lo, gd, g1, g2 = parts[0]
        return lo, gd.copy(), g1.copy(), None if g2 is None else g2.copy()
    level = list(parts)
    while len(level) > 1:
        nxt = [
            _entry_merge(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _entry_partial(dist, aux1, aux2, local_starts):
    """One shard's staged entry minima (the worker-side compute).

    Mirrors :func:`repro.pram.backends.base.serial_entry_segmin` on a row
    slice: per local segment the min ``dist``, the min ``aux1`` among
    dist-achieving rows, and (when ``aux2`` rides along) the min ``aux2``
    among rows achieving both.  The achieving masks use the *local*
    minima, so each cell is the lexicographic min of the shard's rows —
    exactly what :func:`entry_tree_combine` needs.
    """
    seg_len = np.diff(np.concatenate((local_starts, [dist.size])))
    seg_id = np.repeat(np.arange(local_starts.size, dtype=np.int64), seg_len)
    gmin_d = np.minimum.reduceat(dist, local_starts)
    achieving = dist == gmin_d.take(seg_id)
    masked = np.where(achieving, aux1, _INT64_MAX)
    gmin_a1 = np.minimum.reduceat(masked, local_starts)
    if aux2 is None:
        return gmin_d, gmin_a1, None
    achieving &= aux1 == gmin_a1.take(seg_id)
    masked = np.where(achieving, aux2, _INT64_MAX)
    gmin_a2 = np.minimum.reduceat(masked, local_starts)
    return gmin_d, gmin_a1, gmin_a2


def _attach_shm(name: str):
    """Attach an existing shared-memory block created by the parent.

    Workers share the parent's resource-tracker process (the pool fork
    happens after :func:`ensure_running`), where registration is a set —
    the worker-side duplicate register is a no-op and the creating parent
    alone unregisters on unlink, so the tracker never double-frees.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


class _WorkerShard:
    """Worker-side state for one registered plan shard."""

    def __init__(self, spec: dict) -> None:
        self.shms = [_attach_shm(spec[k]) for k in ("tails", "weights", "dist")]
        tails = np.ndarray(spec["n_arcs"], dtype=np.int64, buffer=self.shms[0].buf)
        weights = np.ndarray(spec["n_arcs"], dtype=np.float64, buffer=self.shms[1].buf)
        self.dist = np.ndarray(spec["n_cells"], dtype=np.float64, buffer=self.shms[2].buf)
        lo, hi = spec["lo"], spec["hi"]
        self.tails = tails[lo:hi]
        self.weights = weights[lo:hi]
        self.local_starts = spec["local_starts"]
        seg_len = np.diff(np.concatenate((self.local_starts, [hi - lo])))
        self.local_seg_id = np.repeat(
            np.arange(self.local_starts.size, dtype=np.int64), seg_len
        )
        out_shm = _attach_shm(spec["segmin"])
        pay_shm = _attach_shm(spec["winpay"])
        self.shms += [out_shm, pay_shm]
        k = int(self.local_starts.size)
        off = spec["out_off"]
        self.segmin_out = np.ndarray(
            spec["out_total"], dtype=np.float64, buffer=out_shm.buf
        )[off:off + k]
        self.winpay_out = np.ndarray(
            spec["out_total"], dtype=np.int64, buffer=pay_shm.buf
        )[off:off + k]
        self.k = k
        self.out_off = int(off)
        self.out_total = int(spec["out_total"])
        self.n_cells = int(spec["n_cells"])
        self.b_shms: list = []
        self.b_dist = self.b_segmin = self.b_winpay = None

    def compute(self) -> tuple[int, int, int]:
        """One round; returns ``(gather_ns, segmin_ns, serialize_ns)``.

        The telemetry split: *gather* is the candidate gather + add,
        *segmin* the value ``reduceat``, *serialize* the payload masking
        pass that writes the results into the shared output block.
        """
        t0 = time.perf_counter_ns()
        cand = self.dist.take(self.tails)
        cand += self.weights
        t1 = time.perf_counter_ns()
        np.minimum.reduceat(cand, self.local_starts, out=self.segmin_out)
        t2 = time.perf_counter_ns()
        minrep = self.segmin_out.take(self.local_seg_id)
        maskpay = np.where(cand == minrep, self.tails, _INT64_MAX)
        np.minimum.reduceat(maskpay, self.local_starts, out=self.winpay_out)
        t3 = time.perf_counter_ns()
        return t1 - t0, t2 - t1, t3 - t2

    def battach(self, spec: dict) -> None:
        """Attach (or re-attach, after row-capacity growth) the batch block.

        The batched round's shared memory is one (rows_cap × n_cells) dist
        block plus (rows_cap × out_total) output blocks shared by every
        shard of the plan — each worker writes only its own column slice
        of each row, so the sharding stays exclusive-write per row.
        """
        self.bclose()
        shms = [_attach_shm(spec[k]) for k in ("dist", "segmin", "winpay")]
        rows_cap = int(spec["rows_cap"])
        self.b_shms = shms
        self.b_dist = np.ndarray(
            (rows_cap, self.n_cells), dtype=np.float64, buffer=shms[0].buf
        )
        self.b_segmin = np.ndarray(
            (rows_cap, self.out_total), dtype=np.float64, buffer=shms[1].buf
        )
        self.b_winpay = np.ndarray(
            (rows_cap, self.out_total), dtype=np.int64, buffer=shms[2].buf
        )

    def bcompute(self, rows: int) -> tuple[int, int, int]:
        """One batched round over ``rows`` active sources; telemetry split
        as in :meth:`compute`, measured over the whole row block."""
        off, k = self.out_off, self.k
        t0 = time.perf_counter_ns()
        cand = np.take(self.b_dist[:rows], self.tails, axis=1)
        cand += self.weights
        t1 = time.perf_counter_ns()
        segmin = self.b_segmin[:rows, off:off + k]
        np.minimum.reduceat(cand, self.local_starts, axis=1, out=segmin)
        t2 = time.perf_counter_ns()
        minrep = segmin.take(self.local_seg_id, axis=1)
        maskpay = np.where(cand == minrep, self.tails, _INT64_MAX)
        np.minimum.reduceat(
            maskpay, self.local_starts, axis=1,
            out=self.b_winpay[:rows, off:off + k],
        )
        t3 = time.perf_counter_ns()
        return t1 - t0, t2 - t1, t3 - t2

    def bclose(self) -> None:
        self.b_dist = self.b_segmin = self.b_winpay = None
        for shm in self.b_shms:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        self.b_shms = []

    def close(self) -> None:
        # drop array views before closing their backing shared memory
        self.bclose()
        self.tails = self.weights = self.dist = None
        self.segmin_out = self.winpay_out = None
        for shm in self.shms:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        self.shms = []


def _worker_main(conn, stats_spec=None) -> None:  # pragma: no cover - subprocess
    """Worker loop: attach registered plans, compute rounds on request.

    ``stats_spec`` (``{"name", "row", "workers"}`` or ``None``) names the
    parent's shared-memory stats block and this worker's row in it; when
    present, every round writes its telemetry row *before* sending the
    ack, so the parent reads a consistent row after the ack arrives.
    """
    shards: dict[int, _WorkerShard] = {}
    stats_shm = None
    stats_row = None
    try:
        if stats_spec is not None:
            stats_shm = _attach_shm(stats_spec["name"])
            stats_row = np.ndarray(
                (stats_spec["workers"], STATS_FIELDS),
                dtype=np.int64,
                buffer=stats_shm.buf,
            )[stats_spec["row"]]
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "exit":
                break
            if op == "register":
                spec = msg[1]
                shards[spec["key"]] = _WorkerShard(spec)
                conn.send(("ok", spec["key"]))
            elif op == "round":
                _, key, rid = msg
                shard = shards[key]
                t0 = time.perf_counter_ns()
                gather_ns, segmin_ns, serialize_ns = shard.compute()
                total_ns = time.perf_counter_ns() - t0
                if stats_row is not None:
                    stats_row[:] = (
                        rid, shard.tails.size,
                        gather_ns, segmin_ns, serialize_ns, total_ns,
                    )
                conn.send(("done", rid, total_ns))
            elif op == "battach":
                _, key, spec = msg
                shards[key].battach(spec)
                conn.send(("bok", key))
            elif op == "drop":
                _, key = msg
                shard = shards.pop(key, None)
                if shard is not None:
                    shard.close()
                conn.send(("dropped", key))
            elif op == "bround":
                _, key, rid, rows = msg
                shard = shards[key]
                t0 = time.perf_counter_ns()
                gather_ns, segmin_ns, serialize_ns = shard.bcompute(rows)
                total_ns = time.perf_counter_ns() - t0
                if stats_row is not None:
                    stats_row[:] = (
                        rid, shard.tails.size * rows,
                        gather_ns, segmin_ns, serialize_ns, total_ns,
                    )
                conn.send(("done", rid, total_ns))
            elif op == "entry":
                _, rid, payload = msg
                t0 = time.perf_counter_ns()
                part = _entry_partial(
                    payload["dist"],
                    payload["aux1"],
                    payload["aux2"],
                    payload["local_starts"],
                )
                total_ns = time.perf_counter_ns() - t0
                conn.send(("edone", rid, part, total_ns))
            else:
                conn.send(("err", f"unknown op {op!r}"))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        for shard in shards.values():
            shard.close()
        if stats_shm is not None:
            stats_row = None
            try:
                stats_shm.close()
            except Exception:
                pass
        try:
            conn.close()
        except Exception:
            pass


class _ShardMeta:
    """Parent-side layout of one shard of a registered plan."""

    __slots__ = ("worker", "lo", "hi", "seg_lo", "out_off", "out_len")

    def __init__(self, worker, lo, hi, seg_lo, out_off, out_len):
        self.worker = worker
        self.lo = lo
        self.hi = hi
        self.seg_lo = seg_lo
        self.out_off = out_off
        self.out_len = out_len


class _SharedPlan:
    """Parent-side shared-memory image of one registered RelaxPlan."""

    def __init__(self, key, plan, shms, dist_view, segmin_all, winpay_all, shards):
        self.key = key
        self.plan = plan  # keeps the plan (and its graph) alive
        self.shms = shms
        self.dist_view = dist_view
        self.segmin_all = segmin_all
        self.winpay_all = winpay_all
        self.shards = shards  # list[_ShardMeta], fixed shard order
        # lazily-created batched row-block (grown geometrically on demand)
        self.batch_shms: list = []
        self.b_dist = self.b_segmin = self.b_winpay = None
        self.rows_cap = 0

    def close_batch(self) -> None:
        self.b_dist = self.b_segmin = self.b_winpay = None
        self.rows_cap = 0
        for shm in self.batch_shms:
            for fn in (shm.close, shm.unlink):
                try:
                    fn()
                except Exception:  # pragma: no cover - teardown best-effort
                    pass
        self.batch_shms = []

    def close(self) -> None:
        self.close_batch()
        self.dist_view = self.segmin_all = self.winpay_all = None
        for shm in self.shms:
            for fn in (shm.close, shm.unlink):
                try:
                    fn()
                except Exception:  # pragma: no cover - teardown best-effort
                    pass
        self.shms = []


class ShardedBackend(ExecutionBackend):
    """Dense relaxation rounds on a pool of shared-memory worker processes.

    Parameters
    ----------
    workers:
        Worker process count ``W`` (default: ``min(4, cpu_count)``).
    min_arcs:
        Rounds with fewer arcs run in-process (IPC would dominate).
    round_timeout:
        Seconds to wait for a worker's round before degrading to serial.

    The backend is lazy — no process is spawned until the first eligible
    round — and fail-safe: any worker fault trips :attr:`failed`, tears
    the pool down, and routes every later round through the serial
    kernel (bit-identical results, serial wall-clock).
    """

    name = "sharded"

    def __init__(
        self,
        workers: int | None = None,
        min_arcs: int = DEFAULT_MIN_ARCS,
        round_timeout: float = DEFAULT_ROUND_TIMEOUT,
        min_entry_rows: int = DEFAULT_MIN_ENTRY_ROWS,
    ) -> None:
        if workers is not None and workers < 1:
            raise InvalidStepError(f"worker count must be >= 1, got {workers}")
        self.workers = workers if workers is not None else max(
            1, min(4, os.cpu_count() or 1)
        )
        self.min_arcs = int(min_arcs)
        self.round_timeout = float(round_timeout)
        self.min_entry_rows = int(min_entry_rows)
        self.failed = False
        self.failure_reason: str | None = None
        self.failure_kind: str | None = None
        #: Callables ``(kind, reason)`` invoked synchronously from
        #: :meth:`_fail`, i.e. mid-round, before the serial retry runs —
        #: layers above the cost stream (the serving layer) use this to
        #: report the degradation under their own traffic labels.
        self._failure_listeners: list = []
        self.sharded_rounds = 0
        self.serial_rounds = 0
        self.sharded_entry_rounds = 0
        self.serial_entry_rounds = 0
        #: Per-round telemetry entries (parent-clock ``t0`` + per-worker
        #: splits), capped at ROUND_LOG_CAP; the Chrome-trace exporter
        #: renders these as one lane per worker.
        self.round_log: list[dict] = []
        self.rounds_dropped = 0
        self.collect_stats = worker_stats_enabled()
        self._procs: list = []
        self._conns: list = []
        self._plans: dict[int, _SharedPlan] = {}
        self._stats_shm = None
        self._stats_view: np.ndarray | None = None
        self._next_key = 0
        self._round_id = 0
        self._atexit_registered = False

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self, cost=None) -> bool:
        if self._procs:
            return True
        import multiprocessing as mp
        from multiprocessing import resource_tracker, shared_memory

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        try:
            # Start the shared-memory resource tracker *before* forking so
            # every worker inherits the same tracker process; a worker that
            # lazily spawned its own would unlink our blocks when it exits.
            resource_tracker.ensure_running()
            if self.collect_stats and self._stats_shm is None:
                self._stats_shm = shared_memory.SharedMemory(
                    create=True, size=8 * self.workers * STATS_FIELDS
                )
                self._stats_view = np.ndarray(
                    (self.workers, STATS_FIELDS),
                    dtype=np.int64,
                    buffer=self._stats_shm.buf,
                )
                self._stats_view.fill(0)
            for widx in range(self.workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                stats_spec = (
                    {
                        "name": self._stats_shm.name,
                        "row": widx,
                        "workers": self.workers,
                    }
                    if self._stats_shm is not None
                    else None
                )
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn, stats_spec), daemon=True
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except Exception as exc:  # pragma: no cover - host-dependent
            self._fail(f"worker pool start failed: {exc!r}", cost=cost,
                       kind="pool-start")
            return False
        if not self._atexit_registered:
            atexit.register(self.close)
            self._atexit_registered = True
        return True

    def close(self) -> None:
        """Tear down workers and release every shared-memory block."""
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs = []
        self._conns = []
        for sp in self._plans.values():
            sp.close()
        self._plans = {}
        if self._stats_shm is not None:
            self._stats_view = None
            for fn in (self._stats_shm.close, self._stats_shm.unlink):
                try:
                    fn()
                except Exception:  # pragma: no cover - teardown best-effort
                    pass
            self._stats_shm = None

    def evict_plan(self, plan) -> bool:
        """Drop one registered plan: worker shards and shared memory.

        The dynamic subsystem's seam: when a graph mutates structurally
        its plan object dies, but the workers still hold shared-memory
        copies keyed by ``id(plan)`` — this sends each worker a ``drop``
        for the key and then releases the parent-side blocks.  Returns
        ``True`` when a registration was actually evicted.  Best-effort:
        a worker that fails to ack trips the usual serial fallback.
        """
        sp = self._plans.pop(id(plan), None)
        if sp is None:
            return False
        if not self.failed and self._conns:
            try:
                deadline = time.monotonic() + self.round_timeout
                for conn in self._conns:
                    conn.send(("drop", sp.key))
                for conn in self._conns:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not conn.poll(remaining):
                        raise TimeoutError("drop ack timeout")
                    kind, got = conn.recv()
                    if kind != "dropped" or got != sp.key:
                        raise RuntimeError(f"unexpected drop ack {kind!r}")
            except Exception as exc:  # pragma: no cover - worker trouble
                self._fail(f"plan eviction failed: {exc!r}")
        sp.close()
        return True

    def add_failure_listener(self, listener) -> None:
        """Subscribe ``listener(kind, reason)`` to serial-fallback trips.

        Listeners fire synchronously inside :meth:`_fail` — that is,
        *during* the round that degraded, before its serial retry — so a
        subscriber sees the event in causal order with the answers it
        serves.  A backend that already failed notifies the new listener
        immediately (late subscribers still learn the state).
        """
        self._failure_listeners.append(listener)
        if self.failed:
            listener(self.failure_kind, self.failure_reason)

    def _fail(self, reason: str, cost=None, kind: str = "worker-death") -> None:
        """Trip permanent serial fallback: log, tear down, remember why.

        ``kind`` is the structured reason slug reported as
        ``backend.fallback.<kind>`` traffic (``worker-death`` / ``timeout``
        / ``registration`` / ``pool-start``) so the degradation is visible
        in trace summaries and metrics, not only in logs.
        """
        self.failed = True
        self.failure_reason = reason
        self.failure_kind = kind
        log.warning("sharded backend degrading to serial (%s): %s", kind, reason)
        if cost is not None:
            cost.traffic("backend.fallback", elements=1)
            cost.traffic(f"backend.fallback.{kind}", elements=1)
        for listener in self._failure_listeners:
            try:
                listener(kind, reason)
            except Exception:  # pragma: no cover - observers must not kill math
                log.exception("backend failure listener raised")
        for proc in self._procs:
            try:
                proc.terminate()
            except Exception:
                pass
        self.close()

    # -- plan registration ---------------------------------------------------

    def _register(self, plan, cost=None):
        """Place ``plan`` into shared memory and hand shards to workers."""
        from multiprocessing import shared_memory

        n = int(plan.n_arcs)
        bounds = shard_bounds(n, self.workers)
        seg_start = plan.seg_start
        shard_specs = []
        out_off = 0
        for lo, hi in bounds:
            seg_lo = int(np.searchsorted(seg_start, lo, side="right")) - 1
            seg_hi = int(np.searchsorted(seg_start, hi, side="left"))
            local_starts = (
                np.maximum(seg_start[seg_lo:seg_hi], lo) - lo
            ).astype(np.int64)
            shard_specs.append((lo, hi, seg_lo, out_off, seg_hi - seg_lo, local_starts))
            out_off += seg_hi - seg_lo
        out_total = out_off

        shms = []

        def _create(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))
            shms.append(shm)
            return shm

        try:
            tails_shm = _create(8 * n)
            weights_shm = _create(8 * n)
            dist_shm = _create(8 * plan.n_cells)
            segmin_shm = _create(8 * out_total)
            winpay_shm = _create(8 * out_total)
            np.ndarray(n, dtype=np.int64, buffer=tails_shm.buf)[:] = plan.tails_s
            np.ndarray(n, dtype=np.float64, buffer=weights_shm.buf)[:] = plan.weights_s
            dist_view = np.ndarray(
                plan.n_cells, dtype=np.float64, buffer=dist_shm.buf
            )
            segmin_all = np.ndarray(out_total, dtype=np.float64, buffer=segmin_shm.buf)
            winpay_all = np.ndarray(out_total, dtype=np.int64, buffer=winpay_shm.buf)

            key = self._next_key
            self._next_key += 1
            metas = []
            deadline = time.monotonic() + self.round_timeout
            for widx, (lo, hi, seg_lo, off, out_len, local_starts) in enumerate(
                shard_specs
            ):
                self._conns[widx].send(
                    (
                        "register",
                        {
                            "key": key,
                            "tails": tails_shm.name,
                            "weights": weights_shm.name,
                            "dist": dist_shm.name,
                            "segmin": segmin_shm.name,
                            "winpay": winpay_shm.name,
                            "n_arcs": n,
                            "n_cells": int(plan.n_cells),
                            "lo": lo,
                            "hi": hi,
                            "local_starts": local_starts,
                            "out_off": off,
                            "out_total": out_total,
                        },
                    )
                )
                metas.append(_ShardMeta(widx, lo, hi, seg_lo, off, out_len))
            for widx in range(len(shard_specs)):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._conns[widx].poll(remaining):
                    raise TimeoutError(f"worker {widx} registration timed out")
                ack = self._conns[widx].recv()
                if ack != ("ok", key):
                    raise RuntimeError(f"worker {widx} registration failed: {ack!r}")
        except Exception as exc:
            for shm in shms:
                for fn in (shm.close, shm.unlink):
                    try:
                        fn()
                    except Exception:
                        pass
            self._fail(f"plan registration failed: {exc!r}", cost=cost,
                       kind="registration")
            return None
        sp = _SharedPlan(key, plan, shms, dist_view, segmin_all, winpay_all, metas)
        self._plans[id(plan)] = sp
        return sp

    # -- the round -----------------------------------------------------------

    def relax_segmin(self, plan, dist, take, cost=None):
        """One dense round's ``(segmin, winpay)`` — sharded when eligible."""
        out = None
        eligible = plan.n_arcs >= self.min_arcs
        if not self.failed and eligible and self._ensure_pool(cost):
            out = self._sharded_round(plan, dist, cost)
        if out is None:
            self.serial_rounds += 1
            if cost is not None:
                reason = "fallback" if self.failed else "min-arcs"
                cost.traffic(f"backend.serial_round.{reason}", elements=1)
            return super().relax_segmin(plan, dist, take, cost=cost)
        self.sharded_rounds += 1
        return out

    def relax_segmin_batch(self, plan, dist_block, take, cost=None):
        """One batched round's (A × n_cells) ``(segmin, winpay)`` matrices.

        Eligibility scales with the *total* candidate count — ``rows ×
        n_arcs`` against the same ``min_arcs`` floor — since the row block
        amortizes one IPC round over every active source.  The row block
        is broadcast to the shards once per round through a lazily-grown
        shared-memory block; each worker computes its arc shard for all
        rows in one rectangular pass, and the parent runs the established
        fixed-shard-order tree min-combine *per row* — bit-identical to
        the serial batch kernel, which is itself row-identical to the solo
        kernel.  Any fault degrades to the in-process batch kernel.
        """
        rows = int(dist_block.shape[0])
        out = None
        eligible = rows * int(plan.n_arcs) >= self.min_arcs
        if not self.failed and eligible and self._ensure_pool(cost):
            out = self._sharded_batch_round(plan, dist_block, cost)
        if out is None:
            self.serial_rounds += 1
            if cost is not None:
                reason = "fallback" if self.failed else "min-arcs"
                cost.traffic(f"backend.serial_round.{reason}", elements=1)
            return super().relax_segmin_batch(plan, dist_block, take, cost=cost)
        self.sharded_rounds += 1
        return out

    def entry_segmin(self, dist_s, aux1_s, aux2_s, seg_start, seg_id, take, cost=None):
        """Staged entry minima of one prune/aggregate round — sharded when big.

        Entry rows are transient, so eligible rounds ship their row slices
        through the worker pipes (no shared-memory registration); each
        worker returns its staged per-segment partials in the ack and the
        parent runs the fixed-shard-order lexicographic tree combine.
        Smaller rounds — and every round after a fault — run the serial
        kernel, reported as ``backend.serial_entry.{min-rows,fallback}``.
        """
        out = None
        eligible = int(dist_s.size) >= self.min_entry_rows and seg_start.size > 0
        if not self.failed and eligible and self._ensure_pool(cost):
            out = self._entry_round(dist_s, aux1_s, aux2_s, seg_start, cost)
        if out is None:
            self.serial_entry_rounds += 1
            if cost is not None:
                reason = "fallback" if self.failed else "min-rows"
                cost.traffic(f"backend.serial_entry.{reason}", elements=1)
            return super().entry_segmin(
                dist_s, aux1_s, aux2_s, seg_start, seg_id, take, cost=cost
            )
        self.sharded_entry_rounds += 1
        return out

    def _entry_round(self, dist_s, aux1_s, aux2_s, seg_start, cost):
        n = int(dist_s.size)
        bounds = shard_bounds(n, self.workers)
        self._round_id += 1
        rid = self._round_id
        shard_specs = []
        for lo, hi in bounds:
            seg_lo = int(np.searchsorted(seg_start, lo, side="right")) - 1
            seg_hi = int(np.searchsorted(seg_start, hi, side="left"))
            local_starts = (
                np.maximum(seg_start[seg_lo:seg_hi], lo) - lo
            ).astype(np.int64)
            shard_specs.append((lo, hi, seg_lo, local_starts))
        try:
            for widx, (lo, hi, _seg_lo, local_starts) in enumerate(shard_specs):
                self._conns[widx].send(
                    (
                        "entry",
                        rid,
                        {
                            "dist": dist_s[lo:hi],
                            "aux1": aux1_s[lo:hi],
                            "aux2": None if aux2_s is None else aux2_s[lo:hi],
                            "local_starts": local_starts,
                        },
                    )
                )
            parts = []
            deadline = time.monotonic() + self.round_timeout
            for widx, (lo, hi, seg_lo, _ls) in enumerate(shard_specs):
                conn = self._conns[widx]
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not conn.poll(max(remaining, 0.0)):
                    raise TimeoutError(f"worker {widx} entry round timed out")
                msg = conn.recv()
                if msg[0] != "edone" or msg[1] != rid:
                    raise RuntimeError(f"worker {widx} answered {msg!r}")
                gd, g1, g2 = msg[2]
                parts.append((seg_lo, gd, g1, g2))
        except TimeoutError as exc:
            self._fail(f"entry round {rid} failed: {exc!r}", cost=cost,
                       kind="timeout")
            return None
        except (EOFError, OSError, RuntimeError) as exc:
            self._fail(f"entry round {rid} failed: {exc!r}", cost=cost,
                       kind="worker-death")
            return None
        _, gmin_d, gmin_a1, gmin_a2 = entry_tree_combine(parts)
        if cost is not None:
            cost.traffic("backend.entry_round", elements=n)
            for lo, hi, _seg_lo, _ls in shard_specs:
                cost.traffic("backend.entry_shard", elements=hi - lo)
        return gmin_d, gmin_a1, gmin_a2

    def _sharded_round(self, plan, dist, cost):
        sp = self._plans.get(id(plan))
        if sp is None or sp.plan is not plan:
            sp = self._register(plan, cost=cost)
            if sp is None:
                return None
        np.copyto(sp.dist_view, dist)
        self._round_id += 1
        rid = self._round_id
        walls = []
        wall_t0 = time.perf_counter()  # parent clock, same as SpanTracer's
        t0_ns = time.perf_counter_ns()
        try:
            for meta in sp.shards:
                self._conns[meta.worker].send(("round", sp.key, rid))
            deadline = time.monotonic() + self.round_timeout
            for meta in sp.shards:
                conn = self._conns[meta.worker]
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not conn.poll(max(remaining, 0.0)):
                    raise TimeoutError(f"worker {meta.worker} round timed out")
                msg = conn.recv()
                if msg[0] != "done" or msg[1] != rid:
                    raise RuntimeError(f"worker {meta.worker} answered {msg!r}")
                walls.append(int(msg[2]))
        except TimeoutError as exc:
            self._fail(f"round {rid} failed: {exc!r}", cost=cost, kind="timeout")
            return None
        except (EOFError, OSError, RuntimeError) as exc:
            self._fail(f"round {rid} failed: {exc!r}", cost=cost,
                       kind="worker-death")
            return None
        parts = [
            (
                meta.seg_lo,
                sp.segmin_all[meta.out_off:meta.out_off + meta.out_len],
                sp.winpay_all[meta.out_off:meta.out_off + meta.out_len],
            )
            for meta in sp.shards
        ]
        _, segmin, winpay = tree_min_combine(parts)
        round_wall_ns = time.perf_counter_ns() - t0_ns
        if cost is not None:
            cost.traffic("backend.round", elements=int(plan.n_arcs))
            for meta, wall_ns in zip(sp.shards, walls):
                cost.traffic("backend.shard", elements=meta.hi - meta.lo)
                cost.traffic("backend.worker_wall_ns", elements=wall_ns)
            combined = sum(meta.out_len for meta in sp.shards)
            cost.traffic(
                "backend.combine",
                elements=int(segmin.size),
                reads=combined,
                writes=16 * combined,  # bytes moved through the combine tree
            )
            if cost.has_subscribers:
                self._merge_worker_stats(sp, rid, wall_t0, round_wall_ns, cost)
        return segmin, winpay

    def _ensure_batch(self, sp, rows: int, cost) -> bool:
        """Grow ``sp``'s batched row-block to hold ``rows`` sources.

        Creates fresh (rows_cap × n_cells) dist and (rows_cap × out_total)
        output blocks, re-attaches every shard's workers to them, then
        releases the outgrown blocks.  Registration faults trip the same
        permanent fallback as plan registration.
        """
        if sp.rows_cap >= rows and sp.b_dist is not None:
            return True
        from multiprocessing import shared_memory

        rows_cap = max(rows, 2 * sp.rows_cap, 4)
        n_cells = int(sp.dist_view.size)
        out_total = int(sp.segmin_all.size)
        shms = []

        def _create(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))
            shms.append(shm)
            return shm

        try:
            dist_shm = _create(8 * rows_cap * n_cells)
            segmin_shm = _create(8 * rows_cap * out_total)
            winpay_shm = _create(8 * rows_cap * out_total)
            spec = {
                "dist": dist_shm.name,
                "segmin": segmin_shm.name,
                "winpay": winpay_shm.name,
                "rows_cap": rows_cap,
            }
            deadline = time.monotonic() + self.round_timeout
            for meta in sp.shards:
                self._conns[meta.worker].send(("battach", sp.key, spec))
            for meta in sp.shards:
                conn = self._conns[meta.worker]
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not conn.poll(max(remaining, 0.0)):
                    raise TimeoutError(
                        f"worker {meta.worker} batch attach timed out"
                    )
                ack = conn.recv()
                if ack != ("bok", sp.key):
                    raise RuntimeError(f"worker {meta.worker} batch attach: {ack!r}")
        except Exception as exc:
            for shm in shms:
                for fn in (shm.close, shm.unlink):
                    try:
                        fn()
                    except Exception:
                        pass
            self._fail(f"batch block attach failed: {exc!r}", cost=cost,
                       kind="registration")
            return False
        sp.close_batch()  # workers have moved off the old block already
        sp.batch_shms = shms
        sp.b_dist = np.ndarray(
            (rows_cap, n_cells), dtype=np.float64, buffer=dist_shm.buf
        )
        sp.b_segmin = np.ndarray(
            (rows_cap, out_total), dtype=np.float64, buffer=segmin_shm.buf
        )
        sp.b_winpay = np.ndarray(
            (rows_cap, out_total), dtype=np.int64, buffer=winpay_shm.buf
        )
        sp.rows_cap = rows_cap
        return True

    def _sharded_batch_round(self, plan, dist_block, cost):
        sp = self._plans.get(id(plan))
        if sp is None or sp.plan is not plan:
            sp = self._register(plan, cost=cost)
            if sp is None:
                return None
        rows = int(dist_block.shape[0])
        if not self._ensure_batch(sp, rows, cost):
            return None
        np.copyto(sp.b_dist[:rows], dist_block)
        self._round_id += 1
        rid = self._round_id
        walls = []
        wall_t0 = time.perf_counter()
        t0_ns = time.perf_counter_ns()
        try:
            for meta in sp.shards:
                self._conns[meta.worker].send(("bround", sp.key, rid, rows))
            deadline = time.monotonic() + self.round_timeout
            for meta in sp.shards:
                conn = self._conns[meta.worker]
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not conn.poll(max(remaining, 0.0)):
                    raise TimeoutError(f"worker {meta.worker} batch round timed out")
                msg = conn.recv()
                if msg[0] != "done" or msg[1] != rid:
                    raise RuntimeError(f"worker {meta.worker} answered {msg!r}")
                walls.append(int(msg[2]))
        except TimeoutError as exc:
            self._fail(f"batch round {rid} failed: {exc!r}", cost=cost,
                       kind="timeout")
            return None
        except (EOFError, OSError, RuntimeError) as exc:
            self._fail(f"batch round {rid} failed: {exc!r}", cost=cost,
                       kind="worker-death")
            return None
        # the established fixed-shard-order tree combine, applied per row
        k0 = int(plan.cells.size)
        segmin = np.empty((rows, k0), dtype=np.float64)
        winpay = np.empty((rows, k0), dtype=np.int64)
        for i in range(rows):
            parts = [
                (
                    meta.seg_lo,
                    sp.b_segmin[i, meta.out_off:meta.out_off + meta.out_len],
                    sp.b_winpay[i, meta.out_off:meta.out_off + meta.out_len],
                )
                for meta in sp.shards
            ]
            _, mn, py = tree_min_combine(parts)
            segmin[i] = mn
            winpay[i] = py
        round_wall_ns = time.perf_counter_ns() - t0_ns
        if cost is not None:
            cost.traffic("backend.batch_round", elements=int(plan.n_arcs) * rows)
            cost.traffic("backend.batch_rows", elements=rows)
            for meta, wall_ns in zip(sp.shards, walls):
                cost.traffic("backend.shard", elements=(meta.hi - meta.lo) * rows)
                cost.traffic("backend.worker_wall_ns", elements=wall_ns)
            combined = sum(meta.out_len for meta in sp.shards) * rows
            cost.traffic(
                "backend.combine",
                elements=int(segmin.size),
                reads=combined,
                writes=16 * combined,
            )
            if cost.has_subscribers:
                self._merge_worker_stats(sp, rid, wall_t0, round_wall_ns, cost)
        return segmin, winpay

    def _merge_worker_stats(self, sp, rid, wall_t0, round_wall_ns, cost) -> None:
        """Fold this round's shared-memory stats rows into the cost hooks.

        Rows are read in fixed shard order (deterministic merge) after all
        acks arrived, so each participating worker's row is consistent and
        tagged with this round id.  Derived health figures (imbalance,
        IPC share, combine depth, near-misses) ride along, and one bounded
        :attr:`round_log` entry records the lane data for the exporter.
        """
        stats = self._stats_view
        if stats is None:
            return
        worker_entries = []
        totals = []
        for meta in sp.shards:
            row = stats[meta.worker]
            if int(row[0]) != rid:  # defensive: row not from this round
                continue
            arcs, gather, segmin_ns, serialize, total = (int(v) for v in row[1:])
            prefix = f"backend.worker.{meta.worker}"
            cost.traffic(f"{prefix}.wall_ns", elements=total)
            cost.traffic(f"{prefix}.gather_ns", elements=gather)
            cost.traffic(f"{prefix}.segmin_ns", elements=segmin_ns)
            cost.traffic(f"{prefix}.serialize_ns", elements=serialize)
            cost.traffic(f"{prefix}.arcs", elements=arcs)
            worker_entries.append(
                {
                    "worker": meta.worker,
                    "arcs": arcs,
                    "gather_ns": gather,
                    "segmin_ns": segmin_ns,
                    "serialize_ns": serialize,
                    "wall_ns": total,
                }
            )
            totals.append(total)
        cost.traffic("backend.round_wall_ns", elements=int(round_wall_ns))
        cost.traffic(
            "backend.combine_depth",
            elements=max(len(sp.shards) - 1, 0).bit_length(),
        )
        if totals:
            imbalance = max(totals) / (sum(totals) / len(totals) or 1)
            cost.traffic("backend.imbalance_milli", elements=int(1000 * imbalance))
            cost.traffic(
                "backend.ipc_ns", elements=max(int(round_wall_ns) - max(totals), 0)
            )
        if round_wall_ns > NEAR_MISS_FRACTION * self.round_timeout * 1e9:
            cost.traffic("backend.timeout_near_miss", elements=1)
        if len(self.round_log) < ROUND_LOG_CAP:
            self.round_log.append(
                {
                    "round": rid,
                    "t0": wall_t0,
                    "wall_ns": int(round_wall_ns),
                    "arcs": int(sp.plan.n_arcs),
                    "workers": worker_entries,
                }
            )
        else:
            self.rounds_dropped += 1

    def describe(self) -> str:
        state = f"failed: {self.failure_reason}" if self.failed else "ok"
        stats = "on" if self.collect_stats else "off"
        return (
            f"sharded(workers={self.workers}, min_arcs={self.min_arcs}, "
            f"min_entry_rows={self.min_entry_rows}, "
            f"worker_stats={stats}, {state})"
        )
