"""Work/depth cost accounting for the CREW PRAM simulator.

The paper's theorems bound two resources of a PRAM algorithm:

* **depth** (parallel time): the number of synchronous rounds, and
* **work**: the total number of elementary operations over all processors.

Because CPython cannot execute fine-grained synchronous PRAM rounds in real
parallel, every algorithm in this repository runs *sequentially but
vectorized*, and charges its cost to a :class:`CostModel`.  The charged
figures are the quantities compared against the paper's bounds in the
benchmark harness; Brent's scheduling theorem (``T_p <= W/p + D``) converts
them into a running-time estimate for any concrete processor count.

Charges may be grouped into named *phases* (nested), so that experiments can
attribute work to e.g. ``superclustering`` vs ``interconnection``.  Phase
accounting keeps two views per phase name:

* ``phase_totals`` — **inclusive**: a charge counts toward every enclosing
  phase, so a phase row reads as "everything that happened inside this
  block".  A re-entrant phase (the same name open twice on the stack)
  counts each charge **once**, not once per occurrence.  Summing inclusive
  rows of *nested* phases over-reports the total; sum only sibling leaves
  (``repro.analysis.breakdown`` does).
* ``phase_self_totals`` — **exclusive (self)**: a charge counts only toward
  the innermost open phase.  Exclusive rows partition the phased work, so
  they always sum to ≤ the total charged work.

Both views are computed from **phase-exit deltas**: :meth:`CostModel.charge`
itself only bumps the two integer totals (plus optional step recording and
hook dispatch), and the per-phase dictionaries are updated once per
``with cost.phase(...)`` block from the (work, depth) delta between enter
and exit.  This is the wall-clock fast path — a charge in the hot loop is a
bounds check and two integer adds, no per-charge dict churn — and it is
also what makes the once-per-distinct-name rule exact: only the outermost
open occurrence of a name folds its delta into ``phase_totals``.  The
dictionaries are therefore fully populated only once the phases have
exited (mid-phase readers should snapshot ``work``/``depth`` instead).

Observability subscribers (``repro.obs``) may attach via
:meth:`CostModel.subscribe`.  The hook dispatch is gated on a single list
truthiness check, so an un-instrumented run pays no allocation and no
indirect calls — the *zero-overhead-when-disabled* contract that the
hot-loop benchmarks (E10) guard.

Conformance subscribers (``repro.conformance``) additionally receive
**write-footprint** events: each primitive declares, per synchronous round,
the set of shared-memory cells it writes together with the values and the
CREW legality *rule* the writes claim (see :meth:`CostModel.footprint`).
Footprints can be expensive to materialize, so they are double-gated: a
hook must opt in with ``wants_footprints = True``, and primitives only
build the footprint arrays when :attr:`CostModel.wants_footprints` is
true.  A plain observability run (tracer/metrics) therefore never pays
for them.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.pram.errors import InvalidStepError

__all__ = [
    "StepRecord",
    "CostModel",
    "CostSnapshot",
    "CostHook",
    "RACE_TRAFFIC_PREFIX",
    "WRITE_RULES",
]

#: Traffic label prefix under which race detectors report findings, so that
#: existing observability sinks (metrics counters, span op stats) record
#: them without new plumbing: a finding against primitive ``L`` surfaces as
#: one ``traffic`` call labeled ``f"{RACE_TRAFFIC_PREFIX}{L}"``.
RACE_TRAFFIC_PREFIX = "crew_race:"

#: The CREW legality rules a write-footprint may claim (docs/conformance.md):
#:
#: * ``"exclusive"`` — raw CREW writes: at most one write per cell per round;
#:   equal-valued duplicates commit under the COMMON relaxation unless the
#:   checker runs in strict mode (mirrors ``CREWMemory``).
#: * ``"common"``    — a declared tie-set: duplicate writes carry equal
#:   values by construction (e.g. the min-achieving updates of a combining
#:   scatter); equal duplicates are legal even in strict mode, differing
#:   values are a conflict in every mode.
#: * ``"combine"``   — colliding updates are merged by a balanced combine
#:   tree (the primitive charged the tree's depth); any value multiset per
#:   cell is legal, but the charged depth must cover the tallest tree.
WRITE_RULES = ("exclusive", "common", "combine")


@dataclass(frozen=True)
class StepRecord:
    """One charged parallel step (or batch of identical steps).

    ``phases`` preserves the phase stack open at charge time (outermost
    first), so a labeled step recorded inside ``scale3/phase1/ruling``
    keeps both its own ``label`` and the phase context — traces can group
    steps by either.
    """

    label: str
    work: int
    depth: int
    phases: tuple[str, ...] = ()


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable (work, depth) pair, used for deltas between two points."""

    work: int
    depth: int

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(self.work - other.work, self.depth - other.depth)


class CostHook:
    """No-op base class for :class:`CostModel` subscribers.

    Subclasses (see :mod:`repro.obs`) override any subset of the callbacks.
    All callbacks must be cheap and must not mutate the cost model.

    Hooks that set the class attribute ``wants_footprints = True`` (see
    :class:`repro.conformance.ShadowCREW`) additionally receive the
    write-footprint stream (:meth:`on_footprint` / :meth:`on_round_commit`);
    their presence flips :attr:`CostModel.wants_footprints`, which is what
    primitives consult before materializing footprint arrays.
    """

    __slots__ = ()

    #: Opt-in flag for the write-footprint event stream.
    wants_footprints = False

    def on_charge(self, work: int, depth: int, label: str) -> None:
        """One :meth:`CostModel.charge` call (after totals were updated)."""

    def on_traffic(
        self, label: str, calls: int, elements: int, reads: int, writes: int
    ) -> None:
        """CREW memory-traffic report from one primitive invocation."""

    def on_footprint(self, label: str, space: str, cells, values, rule: str) -> None:
        """A primitive declared part of its per-round write-set.

        ``cells`` is an integer array of written cells in the named address
        ``space`` (one primitive may write several spaces, e.g. ``target``
        and ``payload``); ``values`` is a parallel array of written values,
        or ``None`` for opaque writes; ``rule`` is one of :data:`WRITE_RULES`.
        Only delivered to hooks with ``wants_footprints = True``.
        """

    def on_round_commit(self, label: str) -> None:
        """The declaring primitive ended one synchronous round.

        All footprints declared since the previous commit belong to the
        round being committed — the granularity at which CREW exclusivity
        is defined (and at which ``CREWMemory.end_round`` checks it).
        """

    def on_phase_enter(self, name: str) -> None:
        """A ``with cost.phase(name)`` block was entered."""

    def on_phase_exit(self, name: str) -> None:
        """The matching phase block was exited (also on exceptions)."""


class _PhaseFrame:
    """Bookkeeping for one open ``with cost.phase(...)`` block."""

    __slots__ = ("name", "work0", "depth0", "outermost", "child_work", "child_depth")

    def __init__(self, name: str, work0: int, depth0: int, outermost: bool) -> None:
        self.name = name
        self.work0 = work0
        self.depth0 = depth0
        #: True when no enclosing frame carries the same name — only the
        #: outermost occurrence folds its delta into the inclusive totals,
        #: so a re-entrant phase counts each charge exactly once.
        self.outermost = outermost
        self.child_work = 0
        self.child_depth = 0


@dataclass
class CostModel:
    """Accumulates the work and depth of a simulated PRAM execution.

    Attributes
    ----------
    work:
        Total operations charged so far.
    depth:
        Total synchronous rounds charged so far.
    phase_totals:
        Inclusive per-phase totals (a charge counts toward every enclosing
        phase, each distinct name once).  Updated on phase exit.
    phase_self_totals:
        Exclusive per-phase totals (a charge counts only toward the
        innermost open phase).  Updated on phase exit.
    """

    work: int = 0
    depth: int = 0
    record_steps: bool = False
    steps: list[StepRecord] = field(default_factory=list)
    phase_totals: dict[str, CostSnapshot] = field(default_factory=dict)
    phase_self_totals: dict[str, CostSnapshot] = field(default_factory=dict)
    _phase_stack: list[str] = field(default_factory=list, repr=False)
    _frames: list[_PhaseFrame] = field(default_factory=list, repr=False)
    _open_counts: dict[str, int] = field(default_factory=dict, repr=False)
    _subscribers: list[CostHook] = field(default_factory=list, repr=False)
    _footprint_hooks: list[CostHook] = field(default_factory=list, repr=False)

    def charge(self, work: int, depth: int = 1, label: str = "") -> None:
        """Charge ``work`` operations spread over ``depth`` rounds.

        ``depth`` may be 0 for pure bookkeeping work folded into an
        already-charged round; ``work`` may be 0 for synchronization-only
        rounds.  Negative charges are rejected.

        This is the simulator's hottest call: with no step recording and no
        subscribers it is two integer adds.  Phase attribution happens on
        phase *exit* (see :meth:`phase`), never here.
        """
        if work < 0 or depth < 0:
            raise InvalidStepError(
                f"negative cost charge (work={work}, depth={depth})"
            )
        self.work += int(work)
        self.depth += int(depth)
        if self.record_steps:
            stack = self._phase_stack
            self.steps.append(
                StepRecord(
                    label or (stack[-1] if stack else ""), work, depth, tuple(stack)
                )
            )
        if self._subscribers:
            for hook in self._subscribers:
                hook.on_charge(work, depth, label)

    def traffic(
        self,
        label: str,
        *,
        calls: int = 1,
        elements: int = 0,
        reads: int = 0,
        writes: int = 0,
    ) -> None:
        """Report model-level CREW memory traffic for one primitive call.

        ``reads``/``writes`` count shared-memory cells touched under the
        primitive's charging convention (see ``docs/model.md``).  This is a
        pure observability event: it never affects ``work``/``depth`` and
        is a no-op unless a subscriber is attached.
        """
        if not self._subscribers:
            return
        for hook in self._subscribers:
            hook.on_traffic(label, calls, elements, reads, writes)

    # -- write footprints (conformance) --------------------------------------

    @property
    def wants_footprints(self) -> bool:
        """True when a footprint-consuming hook (a race detector) is attached.

        Primitives gate the *construction* of footprint arrays on this flag,
        so un-shadowed runs never pay for them.
        """
        return bool(self._footprint_hooks)

    def footprint(
        self, label: str, space: str, cells, values=None, rule: str = "exclusive"
    ) -> None:
        """Declare part of the current round's write-set of one primitive.

        ``cells``/``values`` are parallel arrays of written cells in the
        address ``space`` and the values written there (``values=None`` for
        opaque writes that cannot be compared for the COMMON rule).  ``rule``
        is one of :data:`WRITE_RULES`.  A no-op without footprint hooks.
        """
        if not self._footprint_hooks:
            return
        if rule not in WRITE_RULES:
            raise InvalidStepError(f"unknown write rule {rule!r}")
        for hook in self._footprint_hooks:
            hook.on_footprint(label, space, cells, values, rule)

    def commit_round(self, label: str = "") -> None:
        """Close the declaring primitive's current round of footprints.

        Analogous to ``CREWMemory.end_round``: everything declared via
        :meth:`footprint` since the last commit is one synchronous round.
        A no-op without footprint hooks.
        """
        if not self._footprint_hooks:
            return
        for hook in self._footprint_hooks:
            hook.on_round_commit(label)

    # -- observability hooks -------------------------------------------------

    def subscribe(self, hook: CostHook) -> CostHook:
        """Attach an observability hook; returns it for chaining."""
        self._subscribers.append(hook)
        if getattr(hook, "wants_footprints", False):
            self._footprint_hooks.append(hook)
        return hook

    def unsubscribe(self, hook: CostHook) -> None:
        """Detach a hook previously attached with :meth:`subscribe`."""
        if hook in self._subscribers:
            self._subscribers.remove(hook)
        if hook in self._footprint_hooks:
            self._footprint_hooks.remove(hook)

    @property
    def has_subscribers(self) -> bool:
        return bool(self._subscribers)

    def snapshot(self) -> CostSnapshot:
        """Return the current (work, depth) totals as an immutable value."""
        return CostSnapshot(self.work, self.depth)

    def time_on(self, processors: int) -> int:
        """Brent's-theorem running-time bound with ``processors`` processors.

        ``T_p <= work / p + depth`` — the standard upper bound for greedy
        scheduling of a work/depth computation on ``p`` processors.
        """
        if processors <= 0:
            raise InvalidStepError(f"processor count must be positive, got {processors}")
        return int(math.ceil(self.work / processors)) + self.depth

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the ``with`` block to ``name``.

        Phases nest; a charge inside nested phases is attributed to each
        enclosing phase in ``phase_totals`` (inclusive, each distinct name
        once even when re-entered) and to the innermost phase only in
        ``phase_self_totals`` (exclusive).  Attribution is computed from
        the (work, depth) delta between enter and exit, so the charge hot
        path stays dictionary-free; a block that charged nothing leaves no
        totals entry.
        """
        frame = _PhaseFrame(
            name, self.work, self.depth, self._open_counts.get(name, 0) == 0
        )
        self._open_counts[name] = self._open_counts.get(name, 0) + 1
        self._phase_stack.append(name)
        self._frames.append(frame)
        if self._subscribers:
            for hook in self._subscribers:
                hook.on_phase_enter(name)
        try:
            yield
        finally:
            self._phase_stack.pop()
            self._frames.pop()
            left = self._open_counts[name] - 1
            if left:
                self._open_counts[name] = left
            else:
                del self._open_counts[name]
            dw = self.work - frame.work0
            dd = self.depth - frame.depth0
            if frame.outermost and (dw or dd):
                prev = self.phase_totals.get(name, _ZERO)
                self.phase_totals[name] = CostSnapshot(prev.work + dw, prev.depth + dd)
            sw = dw - frame.child_work
            sd = dd - frame.child_depth
            if sw or sd:
                prev = self.phase_self_totals.get(name, _ZERO)
                self.phase_self_totals[name] = CostSnapshot(
                    prev.work + sw, prev.depth + sd
                )
            if self._frames:
                parent = self._frames[-1]
                parent.child_work += dw
                parent.child_depth += dd
            if self._subscribers:
                for hook in self._subscribers:
                    hook.on_phase_exit(name)

    def subphase(self, name: str):
        """A phase named *under* the innermost open phase, path-style.

        ``with cost.phase("scale3/phase1/ruling"): with cost.subphase("bit4")``
        opens the phase ``scale3/phase1/ruling/bit4``.  Library code uses
        this to add finer spans without knowing its enclosing phase name,
        while keeping the ``a/b/c`` naming convention that
        :func:`repro.analysis.breakdown.cost_breakdown` relies on to
        identify leaves.
        """
        parent = self._phase_stack[-1] if self._phase_stack else ""
        return self.phase(f"{parent}/{name}" if parent else name)

    def current_phase_path(self) -> tuple[str, ...]:
        """The currently open phase stack, outermost first."""
        return tuple(self._phase_stack)

    def _current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else ""

    def reset(self) -> None:
        """Zero all counters and recorded steps (subscribers stay attached)."""
        self.work = 0
        self.depth = 0
        self.steps.clear()
        self.phase_totals.clear()
        self.phase_self_totals.clear()
        self._phase_stack.clear()
        self._frames.clear()
        self._open_counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostModel(work={self.work}, depth={self.depth})"


_ZERO = CostSnapshot(0, 0)
