"""Work/depth cost accounting for the CREW PRAM simulator.

The paper's theorems bound two resources of a PRAM algorithm:

* **depth** (parallel time): the number of synchronous rounds, and
* **work**: the total number of elementary operations over all processors.

Because CPython cannot execute fine-grained synchronous PRAM rounds in real
parallel, every algorithm in this repository runs *sequentially but
vectorized*, and charges its cost to a :class:`CostModel`.  The charged
figures are the quantities compared against the paper's bounds in the
benchmark harness; Brent's scheduling theorem (``T_p <= W/p + D``) converts
them into a running-time estimate for any concrete processor count.

Charges may be grouped into named *phases* (nested), so that experiments can
attribute work to e.g. ``superclustering`` vs ``interconnection``.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.pram.errors import InvalidStepError

__all__ = ["StepRecord", "CostModel", "CostSnapshot"]


@dataclass(frozen=True)
class StepRecord:
    """One charged parallel step (or batch of identical steps)."""

    label: str
    work: int
    depth: int


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable (work, depth) pair, used for deltas between two points."""

    work: int
    depth: int

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(self.work - other.work, self.depth - other.depth)


@dataclass
class CostModel:
    """Accumulates the work and depth of a simulated PRAM execution.

    Attributes
    ----------
    work:
        Total operations charged so far.
    depth:
        Total synchronous rounds charged so far.
    """

    work: int = 0
    depth: int = 0
    record_steps: bool = False
    steps: list[StepRecord] = field(default_factory=list)
    phase_totals: dict[str, CostSnapshot] = field(default_factory=dict)
    _phase_stack: list[str] = field(default_factory=list)

    def charge(self, work: int, depth: int = 1, label: str = "") -> None:
        """Charge ``work`` operations spread over ``depth`` rounds.

        ``depth`` may be 0 for pure bookkeeping work folded into an
        already-charged round; ``work`` may be 0 for synchronization-only
        rounds.  Negative charges are rejected.
        """
        if work < 0 or depth < 0:
            raise InvalidStepError(
                f"negative cost charge (work={work}, depth={depth})"
            )
        self.work += int(work)
        self.depth += int(depth)
        if self.record_steps:
            self.steps.append(StepRecord(label or self._current_phase(), work, depth))
        for phase in self._phase_stack:
            prev = self.phase_totals.get(phase, CostSnapshot(0, 0))
            self.phase_totals[phase] = CostSnapshot(prev.work + work, prev.depth + depth)

    def snapshot(self) -> CostSnapshot:
        """Return the current (work, depth) totals as an immutable value."""
        return CostSnapshot(self.work, self.depth)

    def time_on(self, processors: int) -> int:
        """Brent's-theorem running-time bound with ``processors`` processors.

        ``T_p <= work / p + depth`` — the standard upper bound for greedy
        scheduling of a work/depth computation on ``p`` processors.
        """
        if processors <= 0:
            raise InvalidStepError(f"processor count must be positive, got {processors}")
        return int(math.ceil(self.work / processors)) + self.depth

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the ``with`` block to ``name``.

        Phases nest; a charge inside nested phases is attributed to each
        enclosing phase (so phase totals are inclusive).
        """
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    def _current_phase(self) -> str:
        return self._phase_stack[-1] if self._phase_stack else ""

    def reset(self) -> None:
        """Zero all counters and recorded steps."""
        self.work = 0
        self.depth = 0
        self.steps.clear()
        self.phase_totals.clear()
        self._phase_stack.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostModel(work={self.work}, depth={self.depth})"
