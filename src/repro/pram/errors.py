"""Exception types for the PRAM simulation layer."""

from __future__ import annotations


class PRAMError(Exception):
    """Base class for all PRAM-simulator errors."""


class WriteConflictError(PRAMError):
    """Two processors wrote different values to one cell in a CREW round.

    The CREW (concurrent-read exclusive-write) model forbids concurrent
    writes to the same memory cell within a synchronous round.  The staged
    :class:`repro.pram.memory.CREWMemory` raises this error when the
    violation is detected at the end-of-round commit.
    """

    def __init__(self, cell: int, values: tuple) -> None:
        self.cell = cell
        self.values = values
        super().__init__(
            f"CREW violation: cell {cell} written concurrently with "
            f"conflicting values {values!r}"
        )


class ShadowRaceError(WriteConflictError):
    """The shadow race detector caught a CREW violation in a primitive.

    Raised (in ``raise`` mode) or recorded (in ``record`` mode) by
    :class:`repro.conformance.ShadowCREW` when a vectorized primitive's
    declared per-round write footprint would commit two conflicting writes
    to one cell — the shadow-execution counterpart of the literal
    :class:`~repro.pram.memory.CREWMemory` raising
    :class:`WriteConflictError` at ``end_round``.
    """

    def __init__(self, label: str, space: str, cell: int, values: tuple) -> None:
        self.label = label
        self.space = space
        self.cell = cell
        self.values = values
        Exception.__init__(
            self,
            f"CREW race in {label!r}: {space}[{cell}] written concurrently "
            f"with conflicting values {values!r}"
        )


class ProcessorBudgetError(PRAMError):
    """An algorithm requested more processors than the machine allows."""


class InvalidStepError(PRAMError):
    """A cost charge or memory operation was malformed (negative work, ...)."""
