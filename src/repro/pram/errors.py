"""Exception types for the PRAM simulation layer."""

from __future__ import annotations


class PRAMError(Exception):
    """Base class for all PRAM-simulator errors."""


class WriteConflictError(PRAMError):
    """Two processors wrote different values to one cell in a CREW round.

    The CREW (concurrent-read exclusive-write) model forbids concurrent
    writes to the same memory cell within a synchronous round.  The staged
    :class:`repro.pram.memory.CREWMemory` raises this error when the
    violation is detected at the end-of-round commit.
    """

    def __init__(self, cell: int, values: tuple) -> None:
        self.cell = cell
        self.values = values
        super().__init__(
            f"CREW violation: cell {cell} written concurrently with "
            f"conflicting values {values!r}"
        )


class ProcessorBudgetError(PRAMError):
    """An algorithm requested more processors than the machine allows."""


class InvalidStepError(PRAMError):
    """A cost charge or memory operation was malformed (negative work, ...)."""
