"""Sparse-frontier relaxation engine with Ligra-style direction switching.

The β-hop explorations of Theorem 3.8 relax every arc of G ∪ H each round
— the worst case the paper's O(|E|·β) work bound charges for.  In real
runs, after the first couple of rounds only a shrinking set of vertices
still improves, so relaxing all arcs wastes nearly all of the charged
work.  This module implements the standard frontier-driven alternative
(Ligra's direction optimization, also the engine inside the randomized
parallel SSSP lines of work): per round, gather the out-arcs of only the
vertices whose distance changed last round and relax that subset.

Three engines are offered:

``dense``
    The original schedule: every round relaxes all arcs with one
    :func:`~repro.pram.primitives.scatter_min_arg`.  With ``early_exit``
    the convergence test (an elementwise compare + OR-reduce) is now
    *charged* to the cost model — detection is work the machine does.

``sparse``
    Every round gathers the frontier's out-arcs with
    :func:`~repro.pram.primitives.pgather_csr`, relaxes only those, and
    rebuilds the frontier with a charged compare + select.  Rounds after
    the frontier empties are synchronization-only (work 0, depth 1 each)
    so a fixed ``hops`` budget still reports the same ``rounds``.

``auto`` (default)
    Ligra-style per-round switch: sparse when
    ``|frontier| + Σ out-deg(frontier) ≤ |arcs| / k`` (``k =``
    ``DEFAULT_THRESHOLD_K``), dense otherwise.  The degree sum that the
    decision needs is charged too (a map + sum-reduce over the frontier).

**Bit-exactness.**  All three engines produce identical ``dist``,
``parent``, and round counts.  The argument: an arc u→v whose tail u did
not change in the previous round offers the same candidate it already
offered, so ``cand ≥ dist[v]`` — it can neither strictly improve v nor
tie an *improving* fresh candidate (which satisfies ``cand < dist[v]``).
Hence dropping stale arcs changes neither the winning value nor the
winning payload of any cell, and the set of vertices that change per
round — the next frontier — is identical.  The differential matrix in
``tests/conformance`` pins this across engines, sources, budgets, and
adversarial families; see ``docs/frontier.md``.

Observability: each round reports the frontier size through the
``frontier.size`` traffic label (the metrics registry turns traffic
labels into counters + a size histogram automatically) and every
sparse↔dense transition emits a ``frontier.switch`` traffic event, so
mode switches are visible in Chrome traces and metric dumps.

**Fused fast path.**  By default every relaxation round runs through the
fused :func:`~repro.pram.primitives.prelax_arcs` kernel (gather + add +
combining min + changed mask in one pass, drawing its temporaries from
the machine's :class:`~repro.pram.workspace.Workspace` pool and — on
dense rounds — reusing a per-graph :class:`~repro.pram.primitives.RelaxPlan`
so nothing is re-sorted per round).  The fused path is charged
*identically* to the primitive sequence it replaces and produces
bit-equal ``dist``/``parent``/round counts — only wall-clock changes.
``fused=False`` (or ``REPRO_FUSED=0``) keeps the original
primitive-by-primitive execution, which the wall-clock benchmarks use as
the baseline; the strict-shadow differential matrix pins the two paths
against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.pram.errors import InvalidStepError
from repro.pram.machine import PRAM
from repro.pram.workspace import fused_default

__all__ = ["ENGINES", "DEFAULT_THRESHOLD_K", "FrontierStats", "frontier_relax"]

ENGINES = ("dense", "sparse", "auto")
"""Recognized values of the ``engine=`` knob."""

DEFAULT_THRESHOLD_K = 16
"""Ligra-style switch denominator: sparse while frontier arcs ≤ |arcs|/k."""


@dataclass
class FrontierStats:
    """Per-exploration accounting returned by :func:`frontier_relax`.

    ``rounds`` counts every budgeted round (relaxation + idle), matching
    the dense engine's ``rounds_used`` semantics bit-exactly; the
    remaining fields break down how those rounds executed.
    """

    engine: str
    rounds: int = 0
    sparse_rounds: int = 0
    dense_rounds: int = 0
    idle_rounds: int = 0
    mode_switches: int = 0
    peak_frontier: int = 0
    gathered_arcs: int = 0


def frontier_relax(
    pram: PRAM,
    graph: Graph,
    dist: np.ndarray,
    parent: np.ndarray,
    sources: np.ndarray,
    hops: int,
    *,
    engine: str = "auto",
    early_exit: bool = True,
    threshold_k: int = DEFAULT_THRESHOLD_K,
    label: str = "bf",
    fused: bool | None = None,
) -> FrontierStats:
    """Run ``hops`` relaxation rounds on ``dist``/``parent`` in place.

    ``dist``/``parent`` must already be initialized (0 / self at the
    sources, +inf / −1 elsewhere); ``sources`` seeds the first frontier.
    ``label`` prefixes every charged step (``{label}_relax``,
    ``{label}_gather``, …) so callers keep their established cost-step
    names.  ``fused`` selects the fused relaxation kernel (default: the
    ``REPRO_FUSED`` environment default, normally on) — bit-exact outputs
    and bit-identical charged cost either way, only wall-clock differs.
    Returns the :class:`FrontierStats` of the exploration.
    """
    if engine not in ENGINES:
        raise InvalidStepError(f"unknown engine {engine!r}, expected one of {ENGINES}")
    if threshold_k < 1:
        raise InvalidStepError(f"threshold_k must be >= 1, got {threshold_k}")
    use_fused = fused_default() if fused is None else bool(fused)
    ws = pram.workspace
    plan = None  # per-graph RelaxPlan, fetched on the first fused dense round
    stats = FrontierStats(engine=engine)
    if use_fused:
        tails = heads = w = None
        arcs_total = int(graph.indices.size)
    else:
        tails, heads, w = graph.arcs()
        arcs_total = int(tails.size)
    indptr = graph.indptr
    indices = graph.indices
    weights = graph.weights
    frontier = np.unique(np.asarray(sources, dtype=np.int64))
    mode_prev: str | None = None
    for _ in range(hops):
        if frontier.size == 0:
            # Converged: no arc can improve any cell (see module docstring).
            if early_exit:
                break
            # A fixed budget still synchronizes the remaining rounds.
            remaining = hops - stats.rounds
            pram.charge(work=0, depth=remaining, label=f"{label}_idle")
            stats.idle_rounds += remaining
            stats.rounds = hops
            break
        stats.peak_frontier = max(stats.peak_frontier, int(frontier.size))
        pram.cost.traffic("frontier.size", elements=int(frontier.size))

        mode = engine
        if engine == "auto":
            deg = pram.map(
                lambda hi, lo: hi - lo,
                indptr[frontier + 1],
                indptr[frontier],
                label=f"{label}_mode",
            )
            frontier_arcs = int(pram.reduce("sum", deg, label=f"{label}_mode"))
            dense_cut = arcs_total // threshold_k
            mode = "sparse" if frontier_arcs + int(frontier.size) <= dense_cut else "dense"
        if mode_prev is not None and mode != mode_prev:
            stats.mode_switches += 1
            pram.cost.traffic("frontier.switch", elements=int(frontier.size))
        mode_prev = mode

        if use_fused:
            if mode == "sparse":
                slots, arcs = pram.gather_csr(indptr, frontier, label=f"{label}_gather")
                a = int(arcs.size)
                f_tails = ws.take("frontier.tails", a, np.int64)
                np.take(frontier, slots, out=f_tails)
                f_heads = ws.take("frontier.heads", a, np.int64)
                np.take(indices, arcs, out=f_heads)
                f_w = ws.take("frontier.w", a, np.float64)
                np.take(weights, arcs, out=f_w)
                stats.sparse_rounds += 1
                stats.gathered_arcs += a
                stats.rounds += 1
                frontier = pram.relax_arcs(
                    dist, parent, f_tails, f_heads, f_w,
                    changed="frontier", label=f"{label}_relax",
                    changed_label=f"{label}_converged",
                    frontier_label=f"{label}_frontier",
                )
            else:
                if plan is None:
                    plan = ws.relax_plan(graph)
                stats.dense_rounds += 1
                stats.rounds += 1
                if engine == "dense":
                    out = pram.relax_arcs(
                        dist, parent, tails, heads, w, plan=plan,
                        changed="any" if early_exit else "skip",
                        label=f"{label}_relax",
                        changed_label=f"{label}_converged",
                    )
                    if early_exit and not out:
                        break
                else:
                    frontier = pram.relax_arcs(
                        dist, parent, tails, heads, w, plan=plan,
                        changed="frontier", label=f"{label}_relax",
                        changed_label=f"{label}_converged",
                        frontier_label=f"{label}_frontier",
                    )
            continue

        prev = dist.copy()
        if mode == "sparse":
            slots, arcs = pram.gather_csr(indptr, frontier, label=f"{label}_gather")
            f_tails = frontier[slots]
            f_heads = indices[arcs]
            cand = dist[f_tails] + weights[arcs]
            pram.scatter_min_arg(
                dist, parent, f_heads, cand, f_tails, label=f"{label}_relax"
            )
            stats.sparse_rounds += 1
            stats.gathered_arcs += int(arcs.size)
        else:
            cand = dist[tails] + w
            pram.scatter_min_arg(dist, parent, heads, cand, tails, label=f"{label}_relax")
            stats.dense_rounds += 1
        stats.rounds += 1

        if engine == "dense":
            # The dense engine never needs the frontier itself; it charges
            # the convergence detection (compare + OR-reduce) only when
            # early exit actually uses it.
            if early_exit:
                changed = pram.map(np.not_equal, prev, dist, label=f"{label}_converged")
                if not bool(pram.reduce("or", changed, label=f"{label}_converged")):
                    break
        else:
            changed = pram.map(np.not_equal, prev, dist, label=f"{label}_converged")
            frontier = pram.select(changed, label=f"{label}_frontier")
    return stats
