"""The CREW PRAM machine façade.

A :class:`PRAM` bundles a cost model with the vectorized primitives, so that
algorithm code reads like PRAM pseudocode::

    pram = PRAM()
    dist = pram.broadcast(np.inf, n)
    dist[s] = 0.0
    for _ in range(beta):
        pram.scatter_min(dist, heads, dist[tails] + w)

All resource metering flows into ``pram.cost``; ``pram.cost.time_on(p)``
yields the Brent-scheduled running time on ``p`` processors, the quantity
the paper's processor bounds (e.g. Theorem 3.7's O((|E| + n^{1+1/κ})·n^ρ))
speak about.
"""

from __future__ import annotations

import numpy as np

from repro.pram import pointer_jumping, primitives, scan, sort
from repro.pram.backends.base import ExecutionBackend, resolve_backend
from repro.pram.cost import CostModel, CostSnapshot
from repro.pram.workspace import Workspace

__all__ = ["PRAM"]


class PRAM:
    """A simulated CREW PRAM: vectorized execution + work/depth metering.

    ``workspace`` is the machine's scratch-buffer pool (see
    :mod:`repro.pram.workspace`): the fused fast-path kernels draw their
    per-round temporaries from it, so repeated rounds reallocate nothing.
    Pass a shared :class:`~repro.pram.workspace.Workspace` to let several
    machines (e.g. the per-source explorations of aMSSD) reuse one pool.

    ``backend`` selects where the numeric kernels execute (see
    :mod:`repro.pram.backends` and ``docs/backends.md``): an
    :class:`~repro.pram.backends.ExecutionBackend` instance, a spec
    string (``"serial"`` / ``"sharded"`` / ``"sharded:4"``), or ``None``
    to follow the ``REPRO_BACKEND`` environment default.  Backends are
    observationally invisible — bit-equal outputs, bit-identical charged
    costs — only wall-clock changes.
    """

    def __init__(
        self,
        cost: CostModel | None = None,
        workspace: Workspace | None = None,
        backend: ExecutionBackend | str | None = None,
    ) -> None:
        self.cost = cost if cost is not None else CostModel()
        self.workspace = workspace if workspace is not None else Workspace()
        self.backend = resolve_backend(backend)

    # -- bookkeeping --------------------------------------------------------

    def charge(self, work: int, depth: int = 1, label: str = "") -> None:
        """Charge raw work/depth (for costs not covered by a primitive)."""
        self.cost.charge(work=work, depth=depth, label=label)

    def snapshot(self) -> CostSnapshot:
        return self.cost.snapshot()

    def phase(self, name: str):
        return self.cost.phase(name)

    def subphase(self, name: str):
        """Phase nested path-style under the innermost open phase."""
        return self.cost.subphase(name)

    # -- primitives ---------------------------------------------------------

    def map(self, fn, *arrays: np.ndarray, label: str = "map") -> np.ndarray:
        return primitives.elementwise(self.cost, fn, *arrays, label=label)

    def reduce(self, op: str, arr: np.ndarray, label: str = "reduce"):
        return primitives.preduce(self.cost, op, arr, label=label)

    def broadcast(self, value, n: int, dtype=None, label: str = "broadcast") -> np.ndarray:
        return primitives.pbroadcast(self.cost, value, n, dtype=dtype, label=label)

    def scatter(self, target, idx, values, label: str = "scatter") -> np.ndarray:
        """Exclusive-write scatter (CREW-legal only for conflict-free idx)."""
        return primitives.pscatter(self.cost, target, idx, values, label=label)

    def scatter_min(self, target, idx, values, label: str = "scatter_min") -> np.ndarray:
        return primitives.scatter_min(self.cost, target, idx, values, label=label)

    def scatter_min_arg(
        self, target, payload, idx, values, value_payload, label: str = "scatter_min_arg"
    ):
        return primitives.scatter_min_arg(
            self.cost, target, payload, idx, values, value_payload, label=label
        )

    def gather_csr(
        self, indptr: np.ndarray, frontier: np.ndarray, label: str = "gather_csr"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gather the CSR out-arc ranges of the frontier vertices.

        Returns ``(slots, arcs)``: per gathered arc, its frontier slot and
        its index into the CSR ``indices``/``weights`` arrays.
        """
        return primitives.pgather_csr(
            self.cost, indptr, frontier, label=label, backend=self.backend
        )

    def gather_add(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        frontier: np.ndarray,
        base: np.ndarray,
        label: str = "gather_csr",
        add_label: str = "relax",
        deg_all: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused CSR gather + candidate add (see ``primitives.pgather_add``)."""
        return primitives.pgather_add(
            self.cost, indptr, indices, weights, frontier, base,
            workspace=self.workspace, label=label, add_label=add_label,
            backend=self.backend, deg_all=deg_all,
        )

    def prune_entries(
        self,
        vert: np.ndarray,
        src: np.ndarray,
        dist: np.ndarray,
        seed: np.ndarray,
        x: int,
        label: str = "algo3_sort",
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused Algorithm 3 entry prune (see ``primitives.pprune_entries``)."""
        return primitives.pprune_entries(
            self.cost, vert, src, dist, seed, x,
            workspace=self.workspace, backend=self.backend, label=label,
        )

    def aggregate_entries(
        self,
        cl: np.ndarray,
        src: np.ndarray,
        dist: np.ndarray,
        member: np.ndarray,
        seed: np.ndarray,
        x: int,
        label: str = "aggregate",
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused per-cluster aggregation (see ``primitives.paggregate_entries``)."""
        return primitives.paggregate_entries(
            self.cost, cl, src, dist, member, seed, x,
            workspace=self.workspace, backend=self.backend, label=label,
        )

    def relax_arcs(
        self,
        dist: np.ndarray,
        parent: np.ndarray,
        tails: np.ndarray,
        heads: np.ndarray,
        weights: np.ndarray,
        plan: primitives.RelaxPlan | None = None,
        changed: str = "frontier",
        label: str = "relax",
        changed_label: str = "converged",
        frontier_label: str = "frontier",
    ):
        """One fused relaxation round (see ``primitives.prelax_arcs``)."""
        return primitives.prelax_arcs(
            self.cost, dist, parent, tails, heads, weights,
            plan=plan, workspace=self.workspace, backend=self.backend,
            changed=changed, label=label,
            changed_label=changed_label, frontier_label=frontier_label,
        )

    def select(self, mask: np.ndarray, label: str = "select") -> np.ndarray:
        return primitives.pselect(self.cost, mask, label=label)

    def compact(self, arr: np.ndarray, mask: np.ndarray, label: str = "compact") -> np.ndarray:
        return primitives.pcompact(self.cost, arr, mask, label=label)

    def prefix_sum(self, arr: np.ndarray, inclusive: bool = True) -> np.ndarray:
        return scan.prefix_sum(self.cost, arr, inclusive=inclusive)

    def prefix_max(self, arr: np.ndarray) -> np.ndarray:
        return scan.prefix_max(self.cost, arr)

    def segmented_sum(self, values, segment_ids, num_segments: int) -> np.ndarray:
        return scan.segmented_sum(self.cost, values, segment_ids, num_segments)

    def sort(self, keys: np.ndarray, network: str = "aks", label: str = "sort") -> np.ndarray:
        return sort.parallel_sort(self.cost, keys, network=network, label=label)

    def lexsort(self, keys, network: str = "aks", label: str = "lexsort") -> np.ndarray:
        return sort.parallel_lexsort(self.cost, keys, network=network, label=label)

    def pointer_jump(self, parent, weight=None):
        return pointer_jumping.pointer_jump(self.cost, parent, weight)

    def list_rank(self, nxt):
        return pointer_jumping.list_rank(self.cost, nxt)
