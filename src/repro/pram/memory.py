"""A literal CREW shared memory with staged writes and conflict detection.

Section 1.5.1 of the paper defines the model: processors work in synchronous
rounds; concurrent *reads* of a cell are allowed, but at most one processor
may *write* a given cell per round ("vertices write on odd rounds and read on
even rounds").  :class:`CREWMemory` enforces exactly that discipline: writes
issued during a round are staged, and :meth:`end_round` commits them — after
checking that no cell received two *different* values.  (Identical concurrent
writes are tolerated, matching the COMMON-CRCW relaxation many PRAM texts
allow for ties; strict mode rejects any double write.)

This object is deliberately slow and explicit.  The production algorithms in
this repository use the vectorized primitives of :mod:`repro.pram.primitives`
for speed; ``CREWMemory`` exists to *validate the model semantics* — tests
run small reference algorithms on it and check that the vectorized versions
agree, and that genuinely conflicting programs are rejected.
"""

from __future__ import annotations

from typing import Any

from repro.pram.errors import InvalidStepError, WriteConflictError

__all__ = ["CREWMemory"]


class CREWMemory:
    """Word-addressed shared memory with per-round staged CREW writes.

    Parameters
    ----------
    size:
        Number of cells.  Cells hold arbitrary Python values, ``None``
        initially.
    strict:
        When ``True``, *any* two writes to one cell in a round conflict,
        even with equal values.  When ``False`` (default), equal-valued
        concurrent writes commit (COMMON rule); differing values raise.
    """

    def __init__(self, size: int, strict: bool = False) -> None:
        if size < 0:
            raise InvalidStepError(f"memory size must be non-negative, got {size}")
        self._cells: list[Any] = [None] * size
        self._staged: dict[int, Any] = {}
        self._staged_writers: dict[int, int] = {}
        self._strict = strict
        self.rounds: int = 0
        self.reads: int = 0
        self.writes: int = 0

    @classmethod
    def from_values(
        cls, values, extra_cells: int = 0, strict: bool = False
    ) -> "CREWMemory":
        """Memory pre-loaded with ``values`` (committed in one write round).

        ``extra_cells`` appends scratch cells after the loaded prefix — the
        reference programs use them for staging areas and outputs.
        """
        values = list(values)
        mem = cls(len(values) + extra_cells, strict=strict)
        for i, v in enumerate(values):
            mem.write(i, v)
        mem.end_round()
        return mem

    def __len__(self) -> int:
        return len(self._cells)

    def read(self, cell: int) -> Any:
        """Concurrent-read a cell (sees the value as of the last commit)."""
        self._check_cell(cell)
        self.reads += 1
        return self._cells[cell]

    def write(self, cell: int, value: Any) -> None:
        """Stage a write; visible to reads only after :meth:`end_round`."""
        self._check_cell(cell)
        self.writes += 1
        if cell in self._staged:
            if self._strict or self._staged[cell] != value:
                raise WriteConflictError(cell, (self._staged[cell], value))
            self._staged_writers[cell] += 1
            return
        self._staged[cell] = value
        self._staged_writers[cell] = 1

    def end_round(self) -> None:
        """Commit all staged writes and advance the round counter."""
        for cell, value in self._staged.items():
            self._cells[cell] = value
        self._staged.clear()
        self._staged_writers.clear()
        self.rounds += 1

    def snapshot(self) -> list[Any]:
        """Copy of the committed memory contents (for assertions)."""
        return list(self._cells)

    def _check_cell(self, cell: int) -> None:
        if not 0 <= cell < len(self._cells):
            raise InvalidStepError(
                f"cell index {cell} out of range for memory of size {len(self._cells)}"
            )
