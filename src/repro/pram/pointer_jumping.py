"""Pointer jumping (path doubling) — Section 4.2 of the paper, and [SV82].

Given a parent function ``p`` on n elements (a rooted forest, roots with
``p(r) = r``) and per-edge weights, ``log n`` doubling rounds compute for
every element its root and its weighted distance to the root:

    d'(v) = d'(v) + d'(q(v));   q(v) = q(q(v))

which is exactly the procedure of Lemma 4.3.  All rounds are executed as
vectorized gathers, charged at O(n) work / O(1) depth per round.
"""

from __future__ import annotations

import numpy as np

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.primitives import ceil_log2

__all__ = ["pointer_jump", "list_rank"]


def pointer_jump(
    cost: CostModel,
    parent: np.ndarray,
    weight: np.ndarray | None = None,
    label: str = "pointer_jump",
) -> tuple[np.ndarray, np.ndarray]:
    """Roots and weighted root-distances of a parent forest.

    Parameters
    ----------
    parent:
        ``parent[v]`` is the parent of v; roots satisfy ``parent[r] == r``.
    weight:
        ``weight[v]`` is the weight of the edge (parent[v], v); ignored (and
        treated as 0) at roots.  Defaults to all ones (hop counts).

    Returns
    -------
    (root, dist):
        ``root[v]`` is v's tree root, ``dist[v]`` the summed weight of the
        v -> root path.

    Raises
    ------
    InvalidStepError
        If the structure contains a cycle (pointers fail to converge after
        ``ceil(log2 n) + 1`` doubling rounds).
    """
    n = int(parent.size)
    if n == 0:
        return parent.copy(), np.zeros(0)
    q = parent.astype(np.int64).copy()
    if np.any((q < 0) | (q >= n)):
        raise InvalidStepError("parent pointers out of range")
    if weight is None:
        d = np.ones(n, dtype=np.float64)
    else:
        if weight.shape != parent.shape:
            raise InvalidStepError("pointer_jump: weight shape must match parent")
        d = weight.astype(np.float64).copy()
    d[q == np.arange(n)] = 0.0
    rounds = ceil_log2(n) + 1
    cells = np.arange(n)
    for _ in range(rounds):
        d = d + d[q]
        q = q[q]
        if cost.wants_footprints:
            # each element rewrites only its own q/d cells per doubling round
            cost.footprint(label, "q", cells, q, rule="exclusive")
            cost.footprint(label, "d", cells, d, rule="exclusive")
        cost.charge(work=2 * n, depth=2, label=label)
        # per element and round: read q(v), d(q(v)); write q'(v), d'(v)
        cost.traffic(label, elements=n, reads=4 * n, writes=2 * n)
        cost.commit_round(label)
        if np.array_equal(q, q[q]):
            break
    if not np.array_equal(q, q[q]):
        raise InvalidStepError("pointer_jump did not converge: parent forest has a cycle")
    # Every resolved pointer must land on a true root of the *input* forest;
    # otherwise the structure contained a cycle (e.g. a 2-cycle collapses to
    # self-pointers after one doubling without being a root).
    orig = parent.astype(np.int64)
    if np.any(orig[q] != q):
        raise InvalidStepError("parent structure contains a cycle")
    return q, d


def list_rank(cost: CostModel, nxt: np.ndarray, label: str = "list_rank") -> np.ndarray:
    """Distance (in links) from each node to the end of its linked list.

    ``nxt[v]`` is the successor of v; list tails have ``nxt[t] == t``.
    """
    root, dist = pointer_jump(cost, nxt, label=label)
    del root
    return dist.astype(np.int64)
