"""Core data-parallel primitives, executed vectorized and cost-metered.

Each primitive performs the operation with NumPy (so the simulation is fast
and bit-exact) and charges the :class:`~repro.pram.cost.CostModel` the work
and depth that the operation costs on a CREW PRAM:

==============================  ======================  =====================
primitive                       work                    depth
==============================  ======================  =====================
``elementwise`` over n items    O(n)                    O(1)
``preduce`` over n items        O(n)                    O(log n)   (tree)
``pbroadcast`` to n cells       O(n)                    O(1)       (CREW read)
``scatter_min`` of n updates    O(n)                    O(log n)   (combine)
``pselect`` / ``pwhere``        O(n)                    O(1)
==============================  ======================  =====================

``scatter_min`` deserves a note: on CREW, concurrent updates to one cell are
not allowed, so colliding updates are combined by a balanced min-tree per
cell — hence the O(log n) depth charge.  This is exactly how the paper's
Algorithm 2 merges exploration entries arriving at one vertex.

Besides charging work/depth, every primitive reports its model-level CREW
memory traffic (cells read/written under the charging convention above)
through :meth:`CostModel.traffic` — a no-op unless an observability
subscriber (``repro.obs``) is attached.

When a race detector is attached (:class:`repro.conformance.ShadowCREW`,
flagged by ``cost.wants_footprints``), every primitive additionally
*declares* its per-round write-set through :meth:`CostModel.footprint` and
closes each synchronous round with :meth:`CostModel.commit_round`.  The
declarations carry the CREW legality rule the writes claim (``exclusive``,
``common`` tie-set, or ``combine`` tree — see ``WRITE_RULES`` in
``pram/cost.py``), which is what the shadow checker enforces.  Footprint
construction is skipped entirely when no detector is attached.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.pram.backends.base import (
    serial_entry_segmin,
    serial_gather_csr,
    serial_segmin,
    serial_segmin_batch,
)
from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.workspace import INT_POISON

_INT64_MAX = np.iinfo(np.int64).max  # "no achieving tail" sentinel, hoisted

__all__ = [
    "ceil_log2",
    "elementwise",
    "preduce",
    "pbroadcast",
    "pscatter",
    "scatter_min",
    "scatter_min_arg",
    "pselect",
    "pcompact",
    "pgather_csr",
    "pgather_add",
    "RelaxPlan",
    "build_relax_plan",
    "build_relax_plan_from_csr",
    "prelax_arcs",
    "prelax_arcs_batch",
    "pprune_entries",
    "paggregate_entries",
]


def ceil_log2(n: int) -> int:
    """``ceil(log2(n))`` for n >= 1; 0 for n in {0, 1}."""
    if n <= 1:
        return 0
    return int(math.ceil(math.log2(n)))


def elementwise(
    cost: CostModel, fn: Callable[..., np.ndarray], *arrays: np.ndarray, label: str = "map"
) -> np.ndarray:
    """Apply a vectorized function elementwise; one round, linear work."""
    out = fn(*arrays)
    n = max((int(np.size(a)) for a in arrays), default=0)
    if cost.wants_footprints:
        flat = np.ravel(np.asarray(out))
        cost.footprint(label, "out", np.arange(flat.size), flat, rule="exclusive")
    cost.charge(work=n, depth=1, label=label)
    cost.traffic(label, elements=n, reads=n * max(len(arrays), 1), writes=n)
    cost.commit_round(label)
    return out


def preduce(
    cost: CostModel, op: str, arr: np.ndarray, label: str = "reduce"
) -> np.generic:
    """Tree-reduce an array with ``op`` in {'min','max','sum','or','and'}."""
    reducers: dict[str, Callable[[np.ndarray], np.generic]] = {
        "min": np.min,
        "max": np.max,
        "sum": np.sum,
        "or": np.any,
        "and": np.all,
    }
    if op not in reducers:
        raise InvalidStepError(f"unknown reduction op {op!r}")
    n = int(arr.size)
    if n == 0:
        raise InvalidStepError("cannot reduce an empty array")
    out = reducers[op](arr)
    if cost.wants_footprints:
        # the combine tree's internal writes collapse to one result cell;
        # the tree itself is covered by the "combine" depth charge below
        cost.footprint(label, "out", np.zeros(1, dtype=np.int64),
                       np.asarray([out]), rule="exclusive")
    cost.charge(work=n, depth=ceil_log2(n) + 1, label=label)
    # combine tree: 2(n-1) reads, n-1 internal writes, 1 result write
    cost.traffic(label, elements=n, reads=2 * max(n - 1, 0), writes=n)
    cost.commit_round(label)
    return out


def pbroadcast(cost: CostModel, value, n: int, dtype=None, label: str = "broadcast") -> np.ndarray:
    """Broadcast one value to ``n`` cells (one concurrent-read round)."""
    if n < 0:
        raise InvalidStepError(f"broadcast size must be non-negative, got {n}")
    out = np.full(n, value, dtype=dtype)
    if cost.wants_footprints:
        cost.footprint(label, "out", np.arange(n), out, rule="exclusive")
    cost.charge(work=n, depth=1, label=label)
    cost.traffic(label, elements=n, reads=n, writes=n)
    cost.commit_round(label)
    return out


def pscatter(
    cost: CostModel,
    target: np.ndarray,
    idx: np.ndarray,
    values: np.ndarray,
    label: str = "scatter",
) -> np.ndarray:
    """Exclusive-write scatter: ``target[idx[i]] = values[i]``, in place.

    One round, linear work — but CREW-legal **only** when no two updates
    address one cell with differing values (equal-valued duplicates follow
    the COMMON rule, like :class:`~repro.pram.memory.CREWMemory`).  The
    vectorized execution uses NumPy fancy assignment, whose behavior on
    duplicate indices is "last update wins" — i.e. a conflicting update set
    silently commits *some* value.  This function does not check for
    conflicts itself; attach :class:`repro.conformance.ShadowCREW` to catch
    them, or run the literal :func:`repro.pram.reference.crew_scatter`.
    """
    if idx.shape != values.shape:
        raise InvalidStepError("pscatter: idx and values must have equal shape")
    n = int(idx.size)
    if cost.wants_footprints:
        cost.footprint(label, "target", idx, values, rule="exclusive")
    target[idx] = values
    cost.charge(work=n, depth=1, label=label)
    cost.traffic(label, elements=n, reads=2 * n, writes=n)
    cost.commit_round(label)
    return target


def scatter_min(
    cost: CostModel,
    target: np.ndarray,
    idx: np.ndarray,
    values: np.ndarray,
    label: str = "scatter_min",
) -> np.ndarray:
    """``target[idx[i]] = min(target[idx[i]], values[i])`` for all i, in place.

    Colliding updates are combined with a per-cell min tree (depth
    ``O(log n)`` in the worst case of all updates colliding).
    """
    if idx.shape != values.shape:
        raise InvalidStepError("scatter_min: idx and values must have equal shape")
    n = int(idx.size)
    if cost.wants_footprints:
        # raw colliding updates, declared legal via the charged combine tree
        cost.footprint(label, "target", idx, values, rule="combine")
    np.minimum.at(target, idx, values)
    cost.charge(work=n, depth=ceil_log2(max(n, 1)) + 1, label=label)
    cost.traffic(label, elements=n, reads=2 * n, writes=n)
    cost.commit_round(label)
    return target


def scatter_min_arg(
    cost: CostModel,
    target: np.ndarray,
    payload: np.ndarray,
    idx: np.ndarray,
    values: np.ndarray,
    value_payload: np.ndarray,
    label: str = "scatter_min_arg",
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter-min that also tracks *which* update won each cell.

    Like :func:`scatter_min`, but additionally writes ``value_payload[i]``
    into ``payload[idx[i]]`` whenever ``values[i]`` strictly improves the
    cell.

    **Tie-breaking (deterministic, lowest index wins).**  Among concurrent
    updates to one cell that tie at the minimum value, the one with the
    smallest ``value_payload`` wins the payload write — payloads are vertex
    indices everywhere this is used, so "lowest index wins".  An incumbent
    value already in ``target`` is kept unless strictly improved (its
    payload is *not* rewritten on an equal-value update).  Both rules are
    order-independent, so repeated runs produce bit-identical results (a
    requirement for the determinism experiments, E5), and the race detector
    (:class:`repro.conformance.ShadowCREW`) treats the equal-valued tie-set
    as COMMON-rule writes rather than conflicts.
    """
    if not (idx.shape == values.shape == value_payload.shape):
        raise InvalidStepError("scatter_min_arg: inputs must have equal shape")
    n = int(idx.size)
    if n == 0:
        cost.charge(work=0, depth=1, label=label)
        cost.traffic(label)
        cost.commit_round(label)
        return target, payload
    # Sort updates by (cell, value, payload); the first update per cell is
    # the deterministic winner.  Charged as one parallel sort round below.
    order = np.lexsort((value_payload, values, idx))
    idx_s = idx[order]
    first = np.ones(n, dtype=bool)
    first[1:] = idx_s[1:] != idx_s[:-1]
    win_cells = idx_s[first]
    win_vals = values[order][first]
    win_pay = value_payload[order][first]
    improve = win_vals < target[win_cells]
    if cost.wants_footprints:
        # target: all min-achieving updates per cell — an equal-valued
        # tie-set, serialized by the combine stage (COMMON-legal even in
        # strict mode).  payload: exactly one tie-broken winner per
        # improved cell — a raw exclusive write (any duplicate here would
        # mean the tie-breaking is broken, and the shadow flags it).
        vals_s = values[order]
        run_min = win_vals[np.cumsum(first) - 1]
        achieving = vals_s == run_min
        cost.footprint(label, "target", idx_s[achieving], vals_s[achieving],
                       rule="common")
        cost.footprint(label, "payload", win_cells[improve], win_pay[improve],
                       rule="exclusive")
    target[win_cells[improve]] = win_vals[improve]
    payload[win_cells[improve]] = win_pay[improve]
    cost.charge(work=n * max(1, ceil_log2(n)), depth=ceil_log2(n) + 2, label=label)
    # sort-network traffic plus the winner read-compare-write per cell
    cost.traffic(
        label, elements=n, reads=n * max(1, ceil_log2(n)) + 2 * n, writes=2 * n
    )
    cost.commit_round(label)
    return target, payload


def pgather_csr(
    cost: CostModel,
    indptr: np.ndarray,
    frontier: np.ndarray,
    label: str = "gather_csr",
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the CSR arc ranges of the ``frontier`` vertices.

    Given a CSR row-pointer array ``indptr`` (length ``n + 1``) and a set of
    ``f`` frontier vertices, produce the flattened list of their out-arcs:

    * ``slots[j]`` — which frontier *slot* (position in ``frontier``) arc
      ``j`` belongs to, so callers recover tails as ``frontier[slots]``;
    * ``arcs[j]`` — the arc's index into the CSR ``indices``/``weights``
      arrays, so heads are ``indices[arcs]`` and weights ``weights[arcs]``.

    The PRAM schedule is: read the two row pointers of every frontier vertex
    (one concurrent-read round), exclusive-prefix-sum the degrees to assign
    each vertex a contiguous output run (the ``O(log f)`` depth term), then
    have one processor per output arc compute its ``(slot, arc)`` pair and
    write it to its own distinct cell — an EXCLUSIVE-rule round, since the
    prefix sum hands every arc a unique output slot.  Work is
    ``O(f + Σ deg)``, depth ``O(log f)``.

    The literal CREW program for this schedule is
    :func:`repro.pram.reference.crew_frontier_gather`; the differential
    executor pins this vectorized version against it bit-exactly.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    n = int(indptr.size) - 1
    f = int(frontier.size)
    if f and (frontier.min() < 0 or frontier.max() >= n):
        raise InvalidStepError("pgather_csr: frontier vertex out of range")
    if f == 0:
        slots = np.zeros(0, dtype=np.int64)
        arcs = np.zeros(0, dtype=np.int64)
        if cost.wants_footprints:
            cost.footprint(label, "slots", slots, slots, rule="exclusive")
            cost.footprint(label, "arcs", arcs, arcs, rule="exclusive")
        cost.charge(work=0, depth=1, label=label)
        cost.traffic(label)
        cost.commit_round(label)
        return slots, arcs
    if backend is not None:
        slots, arcs = backend.gather_csr(indptr, frontier)
    else:
        slots, arcs = serial_gather_csr(indptr, frontier)
    total = int(arcs.size)
    if cost.wants_footprints:
        out_slots = np.arange(total, dtype=np.int64)
        cost.footprint(label, "slots", out_slots, slots, rule="exclusive")
        cost.footprint(label, "arcs", out_slots, arcs, rule="exclusive")
    cost.charge(work=f + total, depth=ceil_log2(f) + 1, label=label)
    # 2 row-pointer reads per frontier vertex, then each output arc reads its
    # run start + offset and writes its (slot, arc) pair
    cost.traffic(label, elements=total, reads=2 * f + 2 * total, writes=2 * total)
    cost.commit_round(label)
    return slots, arcs


def pgather_add(
    cost: CostModel,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    frontier: np.ndarray,
    base: np.ndarray,
    workspace=None,
    label: str = "gather_csr",
    add_label: str = "relax",
    backend=None,
    deg_all: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused CSR frontier gather + per-arc candidate add.

    Performs :func:`pgather_csr` and immediately computes, for every
    gathered arc ``j``, the head vertex ``heads[j] = indices[arcs[j]]`` and
    the candidate value ``cand[j] = base[slots[j]] + weights[arcs[j]]``
    (``base`` is indexed by frontier *slot* — e.g. the per-entry distances
    of a hopset exploration table).  Charged exactly like the unfused
    sequence it replaces: the :func:`pgather_csr` charge under ``label``
    plus one ``(work=total, depth=1)`` charge under ``add_label`` for the
    adds (skipped when no arcs were gathered, matching callers that break
    before charging).  Returns ``(slots, heads, cand)``; when a
    :class:`~repro.pram.workspace.Workspace` is supplied, ``heads`` and
    ``cand`` are pooled scratch views valid until its next round.
    ``deg_all`` is the optional per-graph cached degree array
    (``Workspace.csr_degrees``) the gather core may consult — a pure
    wall-clock shortcut, bit-identical output and identical charges.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    n = int(indptr.size) - 1
    f = int(frontier.size)
    if f and (frontier.min() < 0 or frontier.max() >= n):
        raise InvalidStepError("pgather_add: frontier vertex out of range")
    if f == 0:
        empty = np.zeros(0, dtype=np.int64)
        if cost.wants_footprints:
            cost.footprint(label, "slots", empty, empty, rule="exclusive")
            cost.footprint(label, "arcs", empty, empty, rule="exclusive")
        cost.charge(work=0, depth=1, label=label)
        cost.traffic(label)
        cost.commit_round(label)
        return empty, empty, np.zeros(0)
    if backend is not None:
        slots, arcs = backend.gather_csr(indptr, frontier, deg_all)
    else:
        slots, arcs = serial_gather_csr(indptr, frontier, deg_all)
    total = int(arcs.size)
    if cost.wants_footprints:
        out_slots = np.arange(total, dtype=np.int64)
        cost.footprint(label, "slots", out_slots, slots, rule="exclusive")
        cost.footprint(label, "arcs", out_slots, arcs, rule="exclusive")
    cost.charge(work=f + total, depth=ceil_log2(f) + 1, label=label)
    cost.traffic(label, elements=total, reads=2 * f + 2 * total, writes=2 * total)
    cost.commit_round(label)
    if total == 0:
        return slots, np.zeros(0, dtype=np.int64), np.zeros(0)
    if workspace is not None:
        heads = workspace.take("gather.heads", total, np.int64)
        cand = workspace.take("gather.cand", total, np.float64)
        wbuf = workspace.take("gather.w", total, np.float64)
    else:
        heads = np.empty(total, dtype=np.int64)
        cand = np.empty(total)
        wbuf = np.empty(total)
    indices.take(arcs, out=heads)
    base.take(slots, out=cand)
    weights.take(arcs, out=wbuf)
    cand += wbuf
    cost.charge(work=total, depth=1, label=add_label)
    return slots, heads, cand


class RelaxPlan:
    """Precomputed arcs-sorted-by-head layout for :func:`prelax_arcs`.

    Built once per graph (see ``Workspace.relax_plan``); lets the fused
    dense relaxation skip the per-round sort entirely — per round it is
    one gather, one add, and two ``minimum.reduceat`` passes.  The plan
    also carries its round-scratch bundle (``scratch``, sizes are fixed by
    the arc layout), so a pooled round performs zero allocations and a
    single attribute load instead of one pool lookup per temporary.
    """

    __slots__ = (
        "n_arcs", "n_cells", "tails_s", "weights_s", "heads_s",
        "cells", "seg_start", "seg_id", "scratch",
    )

    def __init__(self, n_arcs, n_cells, tails_s, weights_s, heads_s,
                 cells, seg_start, seg_id) -> None:
        self.n_arcs = n_arcs
        self.n_cells = n_cells
        self.tails_s = tails_s
        self.weights_s = weights_s
        self.heads_s = heads_s
        self.cells = cells
        self.seg_start = seg_start
        self.seg_id = seg_id
        self.scratch: dict[str, np.ndarray] | None = None


def build_relax_plan(
    tails: np.ndarray, heads: np.ndarray, weights: np.ndarray, n_cells: int
) -> RelaxPlan:
    """Sort an arc list by head once and precompute its segment layout."""
    n = int(heads.size)
    order = np.argsort(heads, kind="stable")
    heads_s = heads[order]
    first = np.ones(n, dtype=bool)
    if n:
        first[1:] = heads_s[1:] != heads_s[:-1]
    seg_start = np.flatnonzero(first)
    return RelaxPlan(
        n_arcs=n,
        n_cells=int(n_cells),
        tails_s=tails[order],
        weights_s=weights[order],
        heads_s=heads_s,
        cells=heads_s[seg_start],
        seg_start=seg_start,
        seg_id=np.cumsum(first) - 1,
    )


def prelax_arcs(
    cost: CostModel,
    dist: np.ndarray,
    parent: np.ndarray,
    tails: np.ndarray,
    heads: np.ndarray,
    weights: np.ndarray,
    *,
    plan: RelaxPlan | None = None,
    workspace=None,
    backend=None,
    changed: str = "frontier",
    label: str = "relax",
    changed_label: str = "converged",
    frontier_label: str = "frontier",
):
    """One fused Bellman–Ford relaxation round: gather + add + combining
    min + changed mask in a single pass.

    Semantically identical to the unfused sequence it replaces::

        cand = dist[tails] + weights                      # gather + add
        scatter_min_arg(dist, parent, heads, cand, tails) # combining min
        changed = map(!=, prev, dist); select(changed)    # changed mask

    and **charged identically** to it: one :func:`scatter_min_arg`-rate
    charge under ``label``, then (``changed="frontier"``) one map charge
    under ``changed_label`` plus one select charge under
    ``frontier_label``, or (``changed="any"``) one map + one OR-reduce
    charge both under ``changed_label``, or (``changed="skip"``) nothing —
    the exact traffic and write-footprint streams included, so shadow
    detectors and metrics see the same machine.  The payload written to
    ``parent`` is the winning arc's tail (the only payload the call sites
    use), with the same deterministic tie rule as ``scatter_min_arg``:
    per cell the minimum ``(value, tail)`` pair wins, and an incumbent is
    only replaced on strict improvement.

    Execution differs only in wall-clock: arcs are processed sorted by
    head (``np.minimum.reduceat`` per contiguous head segment), either
    re-sorted per call or via a precomputed :class:`RelaxPlan`
    (``plan=``, which also carries pre-permuted tails/weights — then
    ``tails``/``heads``/``weights`` are ignored).  Scratch arrays come
    from the optional ``workspace`` pool.  With a ``backend``
    (:mod:`repro.pram.backends`) the planned round's segment-min kernel
    runs on that backend — e.g. sharded across worker processes — still
    bit-equal and charged identically; rounds that must declare write
    footprints (an attached race detector) always run in process.

    Float min is order-independent, so the per-cell winning value is
    bit-equal to the lexsort-based :func:`scatter_min_arg`; the winning
    payload is the minimum tail among value-achieving updates — the same
    winner the ``(value, payload)`` lexicographic rule picks.

    Returns the changed-cell array (``changed="frontier"``: sorted unique
    vertex ids, bit-equal to ``select(prev != dist)``), a bool
    (``changed="any"``), or the changed cells uncharged (``"skip"``).
    """
    if changed not in ("frontier", "any", "skip"):
        raise InvalidStepError(f"prelax_arcs: unknown changed mode {changed!r}")
    n = int(plan.n_arcs if plan is not None else tails.size)
    n_cells = int(dist.size)
    ws = workspace

    def take(name, size, dtype):
        if ws is not None:
            return ws.take(name, size, dtype)
        return np.empty(size, dtype=dtype)

    if n == 0:
        improved_cells = np.zeros(0, dtype=np.int64)
        cost.charge(work=0, depth=1, label=label)
        cost.traffic(label)
        cost.commit_round(label)
    else:
        if plan is not None:
            tails_s = plan.tails_s
            weights_s = plan.weights_s
            heads_s = plan.heads_s
            cells = plan.cells
            seg_start = plan.seg_start
            seg_id = plan.seg_id
            if ws is not None:
                # fixed-size scratch bundle cached on the plan: zero pool
                # lookups per round (poisoned wholesale in debug mode)
                sc = plan.scratch
                if sc is None:
                    k0 = int(cells.size)
                    sc = plan.scratch = {
                        "relax.cand": np.empty(n),
                        "relax.segmin": np.empty(k0),
                        "relax.incumbent": np.empty(k0),
                        "relax.improve": np.empty(k0, dtype=bool),
                        "relax.minrep": np.empty(n),
                        "relax.achieving": np.empty(n, dtype=bool),
                        "relax.maskpay": np.empty(n, dtype=np.int64),
                        "relax.winpay": np.empty(k0, dtype=np.int64),
                        "relax.changed": np.empty(n_cells, dtype=bool),
                    }
                if ws.poison:
                    for buf in sc.values():
                        buf.fill(True if buf.dtype.kind == "b" else (
                            np.nan if buf.dtype.kind == "f" else INT_POISON))
                take = lambda name, size, dtype: sc[name]  # noqa: E731
        else:
            order = np.argsort(heads, kind="stable")
            tails_s = take("relax.tails_s", n, np.int64)
            tails.take(order, out=tails_s)
            weights_s = take("relax.weights_s", n, np.float64)
            weights.take(order, out=weights_s)
            heads_s = take("relax.heads_s", n, np.int64)
            heads.take(order, out=heads_s)
            first = take("relax.first", n, bool)
            first[0] = True
            np.not_equal(heads_s[1:], heads_s[:-1], out=first[1:])
            seg_start = np.flatnonzero(first)
            cells = heads_s[seg_start]
            seg_id = take("relax.seg_id", n, np.int64)
            np.cumsum(first, out=seg_id)
            seg_id -= 1
        k = int(cells.size)
        # The numeric kernel runs on the machine's execution backend (see
        # repro.pram.backends): the serial path computes the per-segment
        # (segmin, winpay) in process, the sharded path on worker shards
        # with a fixed-order tree min-combine — bit-equal either way.
        # Shadowed rounds need the per-arc cand/achieving arrays for their
        # footprint declarations, so they always run the in-process kernel.
        cand = achieving = None
        if backend is not None and plan is not None and not cost.wants_footprints:
            segmin, winpay = backend.relax_segmin(plan, dist, take, cost=cost)
        else:
            cand, segmin, winpay, achieving = serial_segmin(
                dist, tails_s, weights_s, seg_start, seg_id, take
            )
        incumbent = take("relax.incumbent", k, np.float64)
        dist.take(cells, out=incumbent)
        improve = take("relax.improve", k, bool)
        np.less(segmin, incumbent, out=improve)
        improved_cells = cells[improve]
        win_vals = segmin[improve]
        # payload = min tail among the value-achieving updates of each cell
        win_pays = winpay[improve]
        if cost.wants_footprints:
            cost.footprint(label, "target", heads_s[achieving], cand[achieving],
                           rule="common")
            cost.footprint(label, "payload", improved_cells, win_pays,
                           rule="exclusive")
        dist[improved_cells] = win_vals
        parent[improved_cells] = win_pays
        cost.charge(work=n * max(1, ceil_log2(n)), depth=ceil_log2(n) + 2, label=label)
        cost.traffic(
            label, elements=n, reads=n * max(1, ceil_log2(n)) + 2 * n, writes=2 * n
        )
        cost.commit_round(label)

    if changed == "skip":
        return improved_cells
    # the changed mask: map(!=, prev, dist) — improved_cells IS that mask
    if cost.wants_footprints:
        changed_arr = take("relax.changed", n_cells, bool)
        changed_arr.fill(False)
        changed_arr[improved_cells] = True
        cost.footprint(changed_label, "out", np.arange(n_cells), changed_arr,
                       rule="exclusive")
    cost.charge(work=n_cells, depth=1, label=changed_label)
    cost.traffic(changed_label, elements=n_cells, reads=2 * n_cells, writes=n_cells)
    cost.commit_round(changed_label)
    if changed == "any":
        any_changed = bool(improved_cells.size)
        if cost.wants_footprints:
            cost.footprint(changed_label, "out", np.zeros(1, dtype=np.int64),
                           np.asarray([any_changed]), rule="exclusive")
        cost.charge(work=n_cells, depth=ceil_log2(n_cells) + 1, label=changed_label)
        cost.traffic(
            changed_label, elements=n_cells,
            reads=2 * max(n_cells - 1, 0), writes=n_cells,
        )
        cost.commit_round(changed_label)
        return any_changed
    if cost.wants_footprints:
        cost.footprint(frontier_label, "out",
                       np.arange(improved_cells.size), improved_cells,
                       rule="exclusive")
    cost.charge(
        work=n_cells, depth=ceil_log2(max(n_cells, 1)) + 1, label=frontier_label
    )
    cost.traffic(
        frontier_label, elements=n_cells, reads=n_cells,
        writes=int(improved_cells.size),
    )
    cost.commit_round(frontier_label)
    return improved_cells


def build_relax_plan_from_csr(graph) -> RelaxPlan:
    """A :class:`RelaxPlan` for a symmetric CSR graph, without re-sorting.

    An undirected :class:`~repro.graphs.csr.Graph` stores both arc
    directions sorted by ``(row, neighbor)``, so the arc list sorted
    stably by head — what :func:`build_relax_plan` computes with an
    O(m log m) argsort — is just the CSR read with tail/head roles
    swapped: row ``v``'s slots are exactly the in-arcs ``(u → v)`` in
    ascending-tail order, with bit-identical weights (both directions of
    an edge share one weight entry).  The plan equals
    ``build_relax_plan(*graph.arcs(), n_cells=graph.n)`` array-for-array,
    at O(n + m) cost — which is what lets the workspace hand out a fresh
    plan per hopset scale without re-deriving the CSR layout.
    """
    indptr = graph.indptr
    deg = np.diff(indptr)
    cells = np.flatnonzero(deg)
    return RelaxPlan(
        n_arcs=int(indptr[-1]),
        n_cells=int(graph.n),
        tails_s=graph.indices,
        weights_s=graph.weights,
        heads_s=np.repeat(np.arange(int(graph.n), dtype=np.int64), deg),
        cells=cells,
        seg_start=np.asarray(indptr[cells], dtype=np.int64),
        seg_id=np.repeat(np.arange(cells.size, dtype=np.int64), deg[cells]),
    )


#: Backend observability sink used when a batched round has no ``obs_cost``
#: (traffic no-ops without subscribers; backends never *charge* any cost).
_NULL_COST = CostModel()


def prelax_arcs_batch(
    costs,
    dist: np.ndarray,
    parent: np.ndarray,
    *,
    plan: RelaxPlan,
    active: np.ndarray | None = None,
    workspace=None,
    backend=None,
    obs_cost: CostModel | None = None,
    label: str = "relax",
    changed_label: str = "converged",
) -> np.ndarray:
    """One ``changed="any"`` relaxation round for S sources at once.

    ``dist``/``parent`` are the (S × V) distance/parent matrices of the
    batched multi-source engine and ``costs`` the per-source cost models;
    row ``r`` advances exactly as ``prelax_arcs(costs[r], dist[r],
    parent[r], ..., plan=plan, changed="any")`` would — bit-identical
    distances, parents, *and charge stream* (same labels, work, depth,
    traffic, committed rounds).  Execution differs only in wall-clock:
    the candidate gather, both segment ``reduceat`` reductions, and the
    payload min run once over the whole active row block
    (:func:`~repro.pram.backends.base.serial_segmin_batch`, or the
    backend's :meth:`~repro.pram.backends.base.ExecutionBackend.relax_segmin_batch`
    when one is attached), instead of once per source.

    ``active`` masks the rows still advancing — converged rows are
    skipped entirely and charge nothing, which is the matrix engine's
    per-source early exit.  Rows whose cost model wants write footprints
    (an attached race detector) always run the per-row in-process kernel,
    exactly like shadowed rounds of :func:`prelax_arcs`.

    ``obs_cost`` is where backend observability traffic (shard sizes,
    worker wall times) is reported; per-row cost models only ever see the
    model-level charge stream, so batched and looped runs stay
    charge-identical.  Returns a length-S bool array: per row, whether
    any cell improved (``False`` for inactive rows).
    """
    n_rows = int(dist.shape[0])
    n_cells = int(dist.shape[1])
    n = int(plan.n_arcs)
    ws = workspace
    obs = obs_cost if obs_cost is not None else _NULL_COST
    if active is None:
        active = np.ones(n_rows, dtype=bool)
    changed_out = np.zeros(n_rows, dtype=bool)

    def take(name, size, dtype):
        if ws is not None:
            return ws.take(name, size, dtype)
        return np.empty(size, dtype=dtype)

    # Shadowed rows declare per-round write footprints, which need the
    # per-arc candidate arrays — route them through the literal per-row
    # kernel (same rule as prelax_arcs: footprint rounds run in process).
    batch_rows = []
    for r in range(n_rows):
        if not active[r]:
            continue
        if costs[r].wants_footprints or n == 0:
            changed_out[r] = prelax_arcs(
                costs[r], dist[r], parent[r], None, None, None,
                plan=plan, workspace=ws, backend=backend, changed="any",
                label=label, changed_label=changed_label,
            )
        else:
            batch_rows.append(r)
    if not batch_rows:
        return changed_out

    rows = np.asarray(batch_rows, dtype=np.int64)
    a = int(rows.size)
    dist_block = take("relaxb.dist", a * n_cells, np.float64).reshape(a, n_cells)
    np.take(dist, rows, axis=0, out=dist_block)
    if backend is not None:
        segmin, winpay = backend.relax_segmin_batch(plan, dist_block, take, cost=obs)
    else:
        segmin, winpay = serial_segmin_batch(
            dist_block, plan.tails_s, plan.weights_s, plan.seg_start, plan.seg_id,
            take,
        )
    cells = plan.cells
    k = int(cells.size)
    incumbent = take("relaxb.incumbent", a * k, np.float64).reshape(a, k)
    np.take(dist_block, cells, axis=1, out=incumbent)
    improve = take("relaxb.improve", a * k, bool).reshape(a, k)
    np.less(segmin, incumbent, out=improve)
    relax_work = n * max(1, ceil_log2(n))
    relax_depth = ceil_log2(n) + 2
    relax_reads = n * max(1, ceil_log2(n)) + 2 * n
    any_depth = ceil_log2(n_cells) + 1
    any_reads = 2 * max(n_cells - 1, 0)
    for i in range(a):
        r = int(rows[i])
        imp = improve[i]
        improved_cells = cells[imp]
        dist[r, improved_cells] = segmin[i][imp]
        parent[r, improved_cells] = winpay[i][imp]
        changed_out[r] = bool(improved_cells.size)
        # replay the exact per-source charge stream of prelax_arcs
        cost = costs[r]
        cost.charge(work=relax_work, depth=relax_depth, label=label)
        cost.traffic(label, elements=n, reads=relax_reads, writes=2 * n)
        cost.commit_round(label)
        cost.charge(work=n_cells, depth=1, label=changed_label)
        cost.traffic(
            changed_label, elements=n_cells, reads=2 * n_cells, writes=n_cells
        )
        cost.commit_round(changed_label)
        cost.charge(work=n_cells, depth=any_depth, label=changed_label)
        cost.traffic(
            changed_label, elements=n_cells, reads=any_reads, writes=n_cells
        )
        cost.commit_round(changed_label)
    return changed_out


def _entry_groups(key1: np.ndarray, key2: np.ndarray | None, take):
    """Sort entry rows into contiguous ``(key1[, key2])`` groups.

    Returns ``(order, k1_s, k2_s, seg_start, seg_id)``.  The sort is a
    plain (unstable) argsort on a composite integer key when the key
    range permits — legal because every consumer reduces groups by
    *value* (staged minima), never by position — with a stable two-key
    ``lexsort`` fallback for exotic key ranges.  Scratch arrays come from
    ``take``; the returned ``k1_s``/``k2_s``/``seg_id`` are pooled views.
    """
    n = int(key1.size)
    if key2 is None:
        order = np.argsort(key1)
    else:
        k1max = int(key1.max())
        k1min = int(key1.min())
        k2max = int(key2.max())
        k2min = int(key2.min())
        if k1min >= 0 and k2min >= 0 and (k1max + 1) * (k2max + 1) < 2**62:
            key = take("entrygrp.key", n, np.int64)
            np.multiply(key1, k2max + 1, out=key)
            key += key2
            order = np.argsort(key)
        else:  # pragma: no cover - exotic key ranges
            order = np.lexsort((key2, key1))
    k1_s = take("entrygrp.k1", n, np.int64)
    key1.take(order, out=k1_s)
    first = take("entrygrp.first", n, bool)
    first[0] = True
    np.not_equal(k1_s[1:], k1_s[:-1], out=first[1:])
    k2_s = None
    if key2 is not None:
        k2_s = take("entrygrp.k2", n, np.int64)
        key2.take(order, out=k2_s)
        first[1:] |= k2_s[1:] != k2_s[:-1]
    seg_start = np.flatnonzero(first)
    seg_id = take("entrygrp.seg_id", n, np.int64)
    np.cumsum(first, out=seg_id)
    seg_id -= 1
    return order, k1_s, k2_s, seg_start, seg_id


def _keep_x_per_group(group: np.ndarray, dist: np.ndarray, x: int) -> np.ndarray:
    """Rank rows ``(group, dist, tiebreak)``-lexicographically, keep x per group.

    Precondition: rows already arrive grouped by ``group`` (contiguous
    ascending runs) and sorted by the tiebreak key within each run — the
    dedup stage's output order.  Under that precondition a stable
    ``lexsort((dist, group))`` is bit-identical to the unfused path's
    three-key ``lexsort((tiebreak, dist, group))``: rows tied on
    ``(group, dist)`` keep their input order, which *is* tiebreak order,
    and ``(group, tiebreak)`` pairs are unique after dedup.  Returns the
    row indices of the ``rank < x`` survivors in that sorted order — the
    exact selection the unfused Algorithm 3 second sort performs.

    Execution is sort-free: rank ``r``'s survivor in each run is the
    first remaining row achieving the run minimum (first occurrence =
    lowest tiebreak, matching the stable sort's tie order), extracted by
    ``x`` masked ``reduceat`` rounds.  Extracted rows are masked with
    NaN, which ``fmin.reduceat`` ignores and ``==`` never matches, so
    exhausted runs (all-NaN, minimum NaN) select nothing while runs of
    genuine ``inf`` rows still do.  Survivors land in a ``(run, rank)``
    slot matrix whose row-major order is exactly the sorted order.
    """
    n = int(group.size)
    new_g = np.ones(n, dtype=bool)
    new_g[1:] = group[1:] != group[:-1]
    group_start = np.flatnonzero(new_g)
    group_id = np.cumsum(new_g) - 1
    run_len = np.diff(np.append(group_start, n))
    rounds = min(int(x), int(run_len.max()))
    hit = np.flatnonzero(dist == np.minimum.reduceat(dist, group_start)[group_id])
    gid = group_id[hit]
    first = np.ones(hit.size, dtype=bool)
    first[1:] = gid[1:] != gid[:-1]
    if rounds == 1:
        return hit[first]
    masked = dist.astype(np.float64)  # copies: dist stays intact
    slots = np.full((group_start.size, rounds), -1, dtype=np.int64)
    gmin = np.empty(n, dtype=np.float64)
    for r in range(rounds):
        win = hit[first]
        slots[gid[first], r] = win
        if r + 1 == rounds:
            break
        masked[win] = np.nan
        np.fmin.reduceat(masked, group_start).take(group_id, out=gmin)
        hit = np.flatnonzero(masked == gmin)
        if hit.size == 0:
            break
        gid = group_id[hit]
        first = np.ones(hit.size, dtype=bool)
        first[1:] = gid[1:] != gid[:-1]
    out = slots.ravel()
    return out[out >= 0]


def pprune_entries(
    cost: CostModel,
    vert: np.ndarray,
    src: np.ndarray,
    dist: np.ndarray,
    seed: np.ndarray,
    x: int,
    *,
    workspace=None,
    backend=None,
    label: str = "algo3_sort",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fused Algorithm 3 entry prune: dedup + keep-x in one grouped pass.

    Semantically identical to the unfused hopset ``_dedup_and_prune``:
    dedup entry rows per ``(vert, src)`` keeping the minimum
    ``(dist, seed)``, then keep the ``x`` closest sources per vertex
    (ties by source id); with ``x == 1`` the per-vertex prune subsumes
    the dedup and keeps the minimum ``(dist, src, seed)`` row per vertex.
    Returns fresh ``(vert, src, dist, seed)`` arrays, bit-equal to the
    sort-based path — including row order — and **charged identically**
    to it: one AKS-rate ``(n·⌈log n⌉, ⌈log n⌉+1)`` charge under ``label``
    for ``x == 1``, the doubled two-sort rate otherwise (the unfused path
    declares no traffic or footprints for these sorts, so the replayed
    stream is exactly that one charge).

    Execution differs only in wall-clock: instead of a 4-key lexsort the
    rows are grouped by a single-key argsort and each group reduces by
    staged value minima (``minimum.reduceat``) — the per-group staged
    minimum *is* the lexicographic minimum, computed without a stable
    sort.  The grouped reduction runs on the machine's execution
    ``backend`` (sharded across worker processes when eligible, bit-equal
    either way); scratch comes from the optional ``workspace`` pool.
    """
    n = int(vert.size)
    empty_i = np.zeros(0, dtype=np.int64)
    if n == 0:
        return empty_i, empty_i.copy(), np.zeros(0), empty_i.copy()
    ws = workspace

    def take(name, size, dtype):
        if ws is not None:
            return ws.take(name, size, dtype)
        return np.empty(size, dtype=dtype)

    if x == 1:
        # per-vertex lexicographic min of (dist, src, seed)
        order, v_s, _, seg_start, seg_id = _entry_groups(vert, None, take)
        dist_s = take("prune.dist_s", n, np.float64)
        dist.take(order, out=dist_s)
        src_s = take("prune.src_s", n, np.int64)
        src.take(order, out=src_s)
        seed_s = take("prune.seed_s", n, np.int64)
        seed.take(order, out=seed_s)
        if backend is not None:
            g_d, g_s, g_z = backend.entry_segmin(
                dist_s, src_s, seed_s, seg_start, seg_id, take, cost=cost
            )
        else:
            g_d, g_s, g_z = serial_entry_segmin(
                dist_s, src_s, seed_s, seg_start, seg_id, take
            )
        out = (v_s[seg_start], np.array(g_s), np.array(g_d), np.array(g_z))
        cost.charge(
            work=n * max(1, ceil_log2(n)),
            depth=ceil_log2(max(n, 2)) + 1,
            label=label,
        )
        return out
    # dedup per (vert, src) keeping the minimum (dist, seed)
    order, v_s, s_s, seg_start, seg_id = _entry_groups(vert, src, take)
    dist_s = take("prune.dist_s", n, np.float64)
    dist.take(order, out=dist_s)
    seed_s = take("prune.seed_s", n, np.int64)
    seed.take(order, out=seed_s)
    if backend is not None:
        g_d, g_z, _ = backend.entry_segmin(
            dist_s, seed_s, None, seg_start, seg_id, take, cost=cost
        )
    else:
        g_d, g_z, _ = serial_entry_segmin(dist_s, seed_s, None, seg_start, seg_id, take)
    vert_g = v_s[seg_start]
    src_g = s_s[seg_start]
    dist_g = np.array(g_d)
    seed_g = np.array(g_z)
    # keep the x closest sources per vertex (ties by src id: the group
    # rows arrive (vert, src)-sorted, so first-occurrence extraction
    # resolves dist ties in src order, like the stable sort it replaces)
    idx = _keep_x_per_group(vert_g, dist_g, x)
    cost.charge(
        work=2 * n * max(1, ceil_log2(n)),
        depth=2 * (ceil_log2(max(n, 2)) + 1),
        label=label,
    )
    return vert_g[idx], src_g[idx], dist_g[idx], seed_g[idx]


def paggregate_entries(
    cost: CostModel,
    cl: np.ndarray,
    src: np.ndarray,
    dist: np.ndarray,
    member: np.ndarray,
    seed: np.ndarray,
    x: int,
    *,
    workspace=None,
    backend=None,
    label: str = "aggregate",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fused per-cluster aggregation: dedup + keep-x of member entries.

    Semantically identical to the unfused hopset ``_aggregate`` core:
    dedup rows per ``(cluster, src)`` keeping the minimum
    ``(dist, member, seed)``, then keep the ``x`` closest sources per
    cluster (ties by source id), rows ordered ``(cluster, dist, src)``.
    Returns fresh ``(cl, src, dist, member, seed)`` arrays, bit-equal to
    the 5-key-lexsort path, and charged identically to it — one doubled
    AKS-rate charge under ``label`` (no traffic/footprints, matching the
    unfused stream).  Same grouped staged-minimum execution as
    :func:`pprune_entries`, with the second tie key ``member`` between
    ``dist`` and ``seed``.
    """
    n = int(cl.size)
    empty_i = np.zeros(0, dtype=np.int64)
    if n == 0:
        return empty_i, empty_i.copy(), np.zeros(0), empty_i.copy(), empty_i.copy()
    ws = workspace

    def take(name, size, dtype):
        if ws is not None:
            return ws.take(name, size, dtype)
        return np.empty(size, dtype=dtype)

    order, c_s, s_s, seg_start, seg_id = _entry_groups(cl, src, take)
    dist_s = take("prune.dist_s", n, np.float64)
    dist.take(order, out=dist_s)
    member_s = take("prune.member_s", n, np.int64)
    member.take(order, out=member_s)
    seed_s = take("prune.seed_s", n, np.int64)
    seed.take(order, out=seed_s)
    if backend is not None:
        g_d, g_m, g_z = backend.entry_segmin(
            dist_s, member_s, seed_s, seg_start, seg_id, take, cost=cost
        )
    else:
        g_d, g_m, g_z = serial_entry_segmin(
            dist_s, member_s, seed_s, seg_start, seg_id, take
        )
    cl_g = c_s[seg_start]
    src_g = s_s[seg_start]
    dist_g = np.array(g_d)
    member_g = np.array(g_m)
    seed_g = np.array(g_z)
    # keep the x closest sources per cluster (ties by src id: the group
    # rows arrive (cl, src)-sorted, so first-occurrence extraction
    # resolves dist ties in src order, like the stable sort it replaces)
    idx = _keep_x_per_group(cl_g, dist_g, x)
    cost.charge(
        work=2 * n * max(1, ceil_log2(n)),
        depth=2 * (ceil_log2(max(n, 2)) + 1),
        label=label,
    )
    return cl_g[idx], src_g[idx], dist_g[idx], member_g[idx], seed_g[idx]


def pselect(cost: CostModel, mask: np.ndarray, label: str = "select") -> np.ndarray:
    """Indices where ``mask`` holds (compaction via prefix sums)."""
    out = np.flatnonzero(mask)
    n = int(mask.size)
    if cost.wants_footprints:
        # the prefix sum assigns each survivor a distinct output slot
        cost.footprint(label, "out", np.arange(out.size), out, rule="exclusive")
    cost.charge(work=n, depth=ceil_log2(max(n, 1)) + 1, label=label)
    cost.traffic(label, elements=n, reads=n, writes=int(out.size))
    cost.commit_round(label)
    return out


def pcompact(
    cost: CostModel, arr: np.ndarray, mask: np.ndarray, label: str = "compact"
) -> np.ndarray:
    """Keep the elements of ``arr`` where ``mask`` holds, preserving order."""
    if arr.shape[0] != mask.shape[0]:
        raise InvalidStepError("pcompact: arr and mask must have equal length")
    out = arr[mask]
    n = int(mask.size)
    if cost.wants_footprints:
        # rows of a 2-D arr are opaque writes (values=None): distinct slots
        # still get exclusivity-checked, values are not COMMON-comparable
        vals = out if out.ndim == 1 else None
        cost.footprint(label, "out", np.arange(out.shape[0]), vals, rule="exclusive")
    cost.charge(work=n, depth=ceil_log2(max(n, 1)) + 1, label=label)
    cost.traffic(label, elements=n, reads=2 * n, writes=int(out.shape[0]))
    cost.commit_round(label)
    return out
