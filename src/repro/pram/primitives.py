"""Core data-parallel primitives, executed vectorized and cost-metered.

Each primitive performs the operation with NumPy (so the simulation is fast
and bit-exact) and charges the :class:`~repro.pram.cost.CostModel` the work
and depth that the operation costs on a CREW PRAM:

==============================  ======================  =====================
primitive                       work                    depth
==============================  ======================  =====================
``elementwise`` over n items    O(n)                    O(1)
``preduce`` over n items        O(n)                    O(log n)   (tree)
``pbroadcast`` to n cells       O(n)                    O(1)       (CREW read)
``scatter_min`` of n updates    O(n)                    O(log n)   (combine)
``pselect`` / ``pwhere``        O(n)                    O(1)
==============================  ======================  =====================

``scatter_min`` deserves a note: on CREW, concurrent updates to one cell are
not allowed, so colliding updates are combined by a balanced min-tree per
cell — hence the O(log n) depth charge.  This is exactly how the paper's
Algorithm 2 merges exploration entries arriving at one vertex.

Besides charging work/depth, every primitive reports its model-level CREW
memory traffic (cells read/written under the charging convention above)
through :meth:`CostModel.traffic` — a no-op unless an observability
subscriber (``repro.obs``) is attached.

When a race detector is attached (:class:`repro.conformance.ShadowCREW`,
flagged by ``cost.wants_footprints``), every primitive additionally
*declares* its per-round write-set through :meth:`CostModel.footprint` and
closes each synchronous round with :meth:`CostModel.commit_round`.  The
declarations carry the CREW legality rule the writes claim (``exclusive``,
``common`` tie-set, or ``combine`` tree — see ``WRITE_RULES`` in
``pram/cost.py``), which is what the shadow checker enforces.  Footprint
construction is skipped entirely when no detector is attached.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError

__all__ = [
    "ceil_log2",
    "elementwise",
    "preduce",
    "pbroadcast",
    "pscatter",
    "scatter_min",
    "scatter_min_arg",
    "pselect",
    "pcompact",
    "pgather_csr",
]


def ceil_log2(n: int) -> int:
    """``ceil(log2(n))`` for n >= 1; 0 for n in {0, 1}."""
    if n <= 1:
        return 0
    return int(math.ceil(math.log2(n)))


def elementwise(
    cost: CostModel, fn: Callable[..., np.ndarray], *arrays: np.ndarray, label: str = "map"
) -> np.ndarray:
    """Apply a vectorized function elementwise; one round, linear work."""
    out = fn(*arrays)
    n = max((int(np.size(a)) for a in arrays), default=0)
    if cost.wants_footprints:
        flat = np.ravel(np.asarray(out))
        cost.footprint(label, "out", np.arange(flat.size), flat, rule="exclusive")
    cost.charge(work=n, depth=1, label=label)
    cost.traffic(label, elements=n, reads=n * max(len(arrays), 1), writes=n)
    cost.commit_round(label)
    return out


def preduce(
    cost: CostModel, op: str, arr: np.ndarray, label: str = "reduce"
) -> np.generic:
    """Tree-reduce an array with ``op`` in {'min','max','sum','or','and'}."""
    reducers: dict[str, Callable[[np.ndarray], np.generic]] = {
        "min": np.min,
        "max": np.max,
        "sum": np.sum,
        "or": np.any,
        "and": np.all,
    }
    if op not in reducers:
        raise InvalidStepError(f"unknown reduction op {op!r}")
    n = int(arr.size)
    if n == 0:
        raise InvalidStepError("cannot reduce an empty array")
    out = reducers[op](arr)
    if cost.wants_footprints:
        # the combine tree's internal writes collapse to one result cell;
        # the tree itself is covered by the "combine" depth charge below
        cost.footprint(label, "out", np.zeros(1, dtype=np.int64),
                       np.asarray([out]), rule="exclusive")
    cost.charge(work=n, depth=ceil_log2(n) + 1, label=label)
    # combine tree: 2(n-1) reads, n-1 internal writes, 1 result write
    cost.traffic(label, elements=n, reads=2 * max(n - 1, 0), writes=n)
    cost.commit_round(label)
    return out


def pbroadcast(cost: CostModel, value, n: int, dtype=None, label: str = "broadcast") -> np.ndarray:
    """Broadcast one value to ``n`` cells (one concurrent-read round)."""
    if n < 0:
        raise InvalidStepError(f"broadcast size must be non-negative, got {n}")
    out = np.full(n, value, dtype=dtype)
    if cost.wants_footprints:
        cost.footprint(label, "out", np.arange(n), out, rule="exclusive")
    cost.charge(work=n, depth=1, label=label)
    cost.traffic(label, elements=n, reads=n, writes=n)
    cost.commit_round(label)
    return out


def pscatter(
    cost: CostModel,
    target: np.ndarray,
    idx: np.ndarray,
    values: np.ndarray,
    label: str = "scatter",
) -> np.ndarray:
    """Exclusive-write scatter: ``target[idx[i]] = values[i]``, in place.

    One round, linear work — but CREW-legal **only** when no two updates
    address one cell with differing values (equal-valued duplicates follow
    the COMMON rule, like :class:`~repro.pram.memory.CREWMemory`).  The
    vectorized execution uses NumPy fancy assignment, whose behavior on
    duplicate indices is "last update wins" — i.e. a conflicting update set
    silently commits *some* value.  This function does not check for
    conflicts itself; attach :class:`repro.conformance.ShadowCREW` to catch
    them, or run the literal :func:`repro.pram.reference.crew_scatter`.
    """
    if idx.shape != values.shape:
        raise InvalidStepError("pscatter: idx and values must have equal shape")
    n = int(idx.size)
    if cost.wants_footprints:
        cost.footprint(label, "target", idx, values, rule="exclusive")
    target[idx] = values
    cost.charge(work=n, depth=1, label=label)
    cost.traffic(label, elements=n, reads=2 * n, writes=n)
    cost.commit_round(label)
    return target


def scatter_min(
    cost: CostModel,
    target: np.ndarray,
    idx: np.ndarray,
    values: np.ndarray,
    label: str = "scatter_min",
) -> np.ndarray:
    """``target[idx[i]] = min(target[idx[i]], values[i])`` for all i, in place.

    Colliding updates are combined with a per-cell min tree (depth
    ``O(log n)`` in the worst case of all updates colliding).
    """
    if idx.shape != values.shape:
        raise InvalidStepError("scatter_min: idx and values must have equal shape")
    n = int(idx.size)
    if cost.wants_footprints:
        # raw colliding updates, declared legal via the charged combine tree
        cost.footprint(label, "target", idx, values, rule="combine")
    np.minimum.at(target, idx, values)
    cost.charge(work=n, depth=ceil_log2(max(n, 1)) + 1, label=label)
    cost.traffic(label, elements=n, reads=2 * n, writes=n)
    cost.commit_round(label)
    return target


def scatter_min_arg(
    cost: CostModel,
    target: np.ndarray,
    payload: np.ndarray,
    idx: np.ndarray,
    values: np.ndarray,
    value_payload: np.ndarray,
    label: str = "scatter_min_arg",
) -> tuple[np.ndarray, np.ndarray]:
    """Scatter-min that also tracks *which* update won each cell.

    Like :func:`scatter_min`, but additionally writes ``value_payload[i]``
    into ``payload[idx[i]]`` whenever ``values[i]`` strictly improves the
    cell.

    **Tie-breaking (deterministic, lowest index wins).**  Among concurrent
    updates to one cell that tie at the minimum value, the one with the
    smallest ``value_payload`` wins the payload write — payloads are vertex
    indices everywhere this is used, so "lowest index wins".  An incumbent
    value already in ``target`` is kept unless strictly improved (its
    payload is *not* rewritten on an equal-value update).  Both rules are
    order-independent, so repeated runs produce bit-identical results (a
    requirement for the determinism experiments, E5), and the race detector
    (:class:`repro.conformance.ShadowCREW`) treats the equal-valued tie-set
    as COMMON-rule writes rather than conflicts.
    """
    if not (idx.shape == values.shape == value_payload.shape):
        raise InvalidStepError("scatter_min_arg: inputs must have equal shape")
    n = int(idx.size)
    if n == 0:
        cost.charge(work=0, depth=1, label=label)
        cost.traffic(label)
        cost.commit_round(label)
        return target, payload
    # Sort updates by (cell, value, payload); the first update per cell is
    # the deterministic winner.  Charged as one parallel sort round below.
    order = np.lexsort((value_payload, values, idx))
    idx_s = idx[order]
    first = np.ones(n, dtype=bool)
    first[1:] = idx_s[1:] != idx_s[:-1]
    win_cells = idx_s[first]
    win_vals = values[order][first]
    win_pay = value_payload[order][first]
    improve = win_vals < target[win_cells]
    if cost.wants_footprints:
        # target: all min-achieving updates per cell — an equal-valued
        # tie-set, serialized by the combine stage (COMMON-legal even in
        # strict mode).  payload: exactly one tie-broken winner per
        # improved cell — a raw exclusive write (any duplicate here would
        # mean the tie-breaking is broken, and the shadow flags it).
        vals_s = values[order]
        run_min = win_vals[np.cumsum(first) - 1]
        achieving = vals_s == run_min
        cost.footprint(label, "target", idx_s[achieving], vals_s[achieving],
                       rule="common")
        cost.footprint(label, "payload", win_cells[improve], win_pay[improve],
                       rule="exclusive")
    target[win_cells[improve]] = win_vals[improve]
    payload[win_cells[improve]] = win_pay[improve]
    cost.charge(work=n * max(1, ceil_log2(n)), depth=ceil_log2(n) + 2, label=label)
    # sort-network traffic plus the winner read-compare-write per cell
    cost.traffic(
        label, elements=n, reads=n * max(1, ceil_log2(n)) + 2 * n, writes=2 * n
    )
    cost.commit_round(label)
    return target, payload


def pgather_csr(
    cost: CostModel,
    indptr: np.ndarray,
    frontier: np.ndarray,
    label: str = "gather_csr",
) -> tuple[np.ndarray, np.ndarray]:
    """Gather the CSR arc ranges of the ``frontier`` vertices.

    Given a CSR row-pointer array ``indptr`` (length ``n + 1``) and a set of
    ``f`` frontier vertices, produce the flattened list of their out-arcs:

    * ``slots[j]`` — which frontier *slot* (position in ``frontier``) arc
      ``j`` belongs to, so callers recover tails as ``frontier[slots]``;
    * ``arcs[j]`` — the arc's index into the CSR ``indices``/``weights``
      arrays, so heads are ``indices[arcs]`` and weights ``weights[arcs]``.

    The PRAM schedule is: read the two row pointers of every frontier vertex
    (one concurrent-read round), exclusive-prefix-sum the degrees to assign
    each vertex a contiguous output run (the ``O(log f)`` depth term), then
    have one processor per output arc compute its ``(slot, arc)`` pair and
    write it to its own distinct cell — an EXCLUSIVE-rule round, since the
    prefix sum hands every arc a unique output slot.  Work is
    ``O(f + Σ deg)``, depth ``O(log f)``.

    The literal CREW program for this schedule is
    :func:`repro.pram.reference.crew_frontier_gather`; the differential
    executor pins this vectorized version against it bit-exactly.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    n = int(indptr.size) - 1
    f = int(frontier.size)
    if f and (frontier.min() < 0 or frontier.max() >= n):
        raise InvalidStepError("pgather_csr: frontier vertex out of range")
    if f == 0:
        slots = np.zeros(0, dtype=np.int64)
        arcs = np.zeros(0, dtype=np.int64)
        if cost.wants_footprints:
            cost.footprint(label, "slots", slots, slots, rule="exclusive")
            cost.footprint(label, "arcs", arcs, arcs, rule="exclusive")
        cost.charge(work=0, depth=1, label=label)
        cost.traffic(label)
        cost.commit_round(label)
        return slots, arcs
    starts = np.asarray(indptr[frontier], dtype=np.int64)
    deg = np.asarray(indptr[frontier + 1], dtype=np.int64) - starts
    total = int(deg.sum())
    slots = np.repeat(np.arange(f, dtype=np.int64), deg)
    run_start = np.concatenate(([0], np.cumsum(deg)[:-1]))
    offsets = np.arange(total, dtype=np.int64) - run_start[slots]
    arcs = starts[slots] + offsets
    if cost.wants_footprints:
        out_slots = np.arange(total, dtype=np.int64)
        cost.footprint(label, "slots", out_slots, slots, rule="exclusive")
        cost.footprint(label, "arcs", out_slots, arcs, rule="exclusive")
    cost.charge(work=f + total, depth=ceil_log2(f) + 1, label=label)
    # 2 row-pointer reads per frontier vertex, then each output arc reads its
    # run start + offset and writes its (slot, arc) pair
    cost.traffic(label, elements=total, reads=2 * f + 2 * total, writes=2 * total)
    cost.commit_round(label)
    return slots, arcs


def pselect(cost: CostModel, mask: np.ndarray, label: str = "select") -> np.ndarray:
    """Indices where ``mask`` holds (compaction via prefix sums)."""
    out = np.flatnonzero(mask)
    n = int(mask.size)
    if cost.wants_footprints:
        # the prefix sum assigns each survivor a distinct output slot
        cost.footprint(label, "out", np.arange(out.size), out, rule="exclusive")
    cost.charge(work=n, depth=ceil_log2(max(n, 1)) + 1, label=label)
    cost.traffic(label, elements=n, reads=n, writes=int(out.size))
    cost.commit_round(label)
    return out


def pcompact(
    cost: CostModel, arr: np.ndarray, mask: np.ndarray, label: str = "compact"
) -> np.ndarray:
    """Keep the elements of ``arr`` where ``mask`` holds, preserving order."""
    if arr.shape[0] != mask.shape[0]:
        raise InvalidStepError("pcompact: arr and mask must have equal length")
    out = arr[mask]
    n = int(mask.size)
    if cost.wants_footprints:
        # rows of a 2-D arr are opaque writes (values=None): distinct slots
        # still get exclusivity-checked, values are not COMMON-comparable
        vals = out if out.ndim == 1 else None
        cost.footprint(label, "out", np.arange(out.shape[0]), vals, rule="exclusive")
    cost.charge(work=n, depth=ceil_log2(max(n, 1)) + 1, label=label)
    cost.traffic(label, elements=n, reads=2 * n, writes=int(out.shape[0]))
    cost.commit_round(label)
    return out
