"""Literal CREW reference programs, executed on :class:`CREWMemory`.

These run the paper's model *for real*: every read/write goes through the
staged shared memory with write-conflict detection, and the round counter
is the actual depth.  They exist to validate the vectorized, cost-charged
implementations — the differential harness (:mod:`repro.conformance.diff`)
runs both sides on the same inputs and asserts identical results and
consistent round counts.  They are small and slow by design.

Every public primitive of :class:`~repro.pram.machine.PRAM` has a literal
counterpart here.  Conventions shared by all of them:

* each returns ``(result, rounds)`` where ``rounds`` is the CREW memory's
  committed round count, *including* the initial load round(s) — the
  differential harness knows each primitive's load overhead;
* "processor-local" state (loop indices, a processor's own input flag, the
  grouping of update slots by cell) lives in Python variables, exactly as
  a PRAM processor holds registers; everything shared goes through the
  memory with staged writes and conflict detection;
* combining primitives (``crew_scatter_min``, ``crew_segmented_sum``, …)
  run a literal balanced combine tree over staging cells, so their round
  counts certify the ``ceil(log2(max collision multiplicity))`` depth the
  vectorized versions charge;
* the literal sort is an **odd–even transposition network** (O(n) rounds)
  rather than AKS — same output permutation as any correct stable sort,
  different (practical) network; the harness checks each side against its
  own documented round envelope.
"""

from __future__ import annotations

from typing import Callable

from repro.graphs.csr import Graph
from repro.pram.errors import InvalidStepError
from repro.pram.memory import CREWMemory
from repro.pram.primitives import ceil_log2

__all__ = [
    "crew_map",
    "crew_broadcast",
    "crew_reduce",
    "crew_scatter",
    "crew_scatter_min",
    "crew_scatter_min_arg",
    "crew_select",
    "crew_compact",
    "crew_prefix_sum",
    "crew_prefix_max",
    "crew_segmented_sum",
    "crew_sort",
    "crew_lexsort",
    "crew_prune_entries",
    "crew_aggregate_entries",
    "crew_pointer_jump",
    "crew_list_rank",
    "crew_frontier_gather",
    "crew_relax_arcs",
    "crew_relax_arcs_batch",
    "crew_bellman_ford",
    "crew_sssp",
]


def crew_map(values: list, fn: Callable) -> tuple[list, int]:
    """Elementwise map: each processor reads its own cell, rewrites it."""
    mem = CREWMemory.from_values(values)
    n = len(mem)
    updates = {i: fn(mem.read(i)) for i in range(n)}
    for i, v in updates.items():
        mem.write(i, v)
    mem.end_round()
    return [mem.read(i) for i in range(n)], mem.rounds


def crew_broadcast(value, n: int) -> tuple[list, int]:
    """One writer publishes a cell; n processors concurrently read it."""
    mem = CREWMemory(n + 1)
    mem.write(n, value)
    mem.end_round()
    for i in range(n):
        mem.write(i, mem.read(n))
    mem.end_round()
    return [mem.read(i) for i in range(n)], mem.rounds


_REDUCERS: dict[str, Callable] = {
    "min": min,
    "max": max,
    "sum": lambda a, b: a + b,
    "or": lambda a, b: bool(a) or bool(b),
    "and": lambda a, b: bool(a) and bool(b),
}


def crew_reduce(op: str, values: list) -> tuple[object, int]:
    """Balanced combine tree: round j halves the live prefix."""
    if op not in _REDUCERS:
        raise InvalidStepError(f"unknown reduction op {op!r}")
    if not values:
        raise InvalidStepError("cannot reduce an empty array")
    combine = _REDUCERS[op]
    mem = CREWMemory.from_values(values)
    width = len(mem)
    while width > 1:
        half = (width + 1) // 2
        updates = {}
        for i in range(half):
            j = i + half
            if j < width:
                updates[i] = combine(mem.read(i), mem.read(j))
        for i, v in updates.items():
            mem.write(i, v)
        mem.end_round()
        width = half
    return mem.read(0), mem.rounds


def crew_scatter(
    target: list, idx: list[int], values: list, strict: bool = False
) -> tuple[list, int]:
    """Raw exclusive-write scatter — the literal counterpart of ``pscatter``.

    All updates are staged in **one** round, so ``CREWMemory`` itself
    raises :class:`~repro.pram.errors.WriteConflictError` when two updates
    address one cell with differing values (or, in strict mode, at all) —
    this is the reference behavior the shadow detector mirrors for the
    vectorized machine.
    """
    mem = CREWMemory.from_values(target, strict=strict)
    for j, c in enumerate(idx):
        mem.write(int(c), values[j])
    mem.end_round()
    return [mem.read(i) for i in range(len(target))], mem.rounds


def _crew_scatter_combine(
    target: list, idx: list[int], slot_values: list, combine: Callable
) -> tuple[CREWMemory, int]:
    """Shared skeleton of the combining scatters: a literal combine tree.

    Loads ``target`` and one staging slot per update, then repeatedly
    pairs up each cell's surviving slots (one combine round per level —
    ``ceil(log2(max multiplicity))`` rounds total) and finally merges each
    cell's single survivor into the target with one exclusive write round.
    Returns the memory (target prefix updated) and its round count.
    """
    n, m = len(target), len(idx)
    mem = CREWMemory.from_values(target, extra_cells=m)
    for j in range(m):
        mem.write(n + j, slot_values[j])
    mem.end_round()
    groups: dict[int, list[int]] = {}
    for j, c in enumerate(idx):
        groups.setdefault(int(c), []).append(n + j)
    while any(len(slots) > 1 for slots in groups.values()):
        updates = {}
        for c, slots in groups.items():
            if len(slots) == 1:
                continue
            survivors = []
            for a, b in zip(slots[0::2], slots[1::2]):
                updates[a] = combine(mem.read(a), mem.read(b))
                survivors.append(a)
            if len(slots) % 2:
                survivors.append(slots[-1])
            groups[c] = survivors
        for cell, v in updates.items():
            mem.write(cell, v)
        mem.end_round()
    updates = {
        c: combine(mem.read(c), mem.read(slots[0])) for c, slots in groups.items()
    }
    for c, v in updates.items():
        mem.write(c, v)
    mem.end_round()
    return mem, mem.rounds


def crew_scatter_min(
    target: list, idx: list[int], values: list
) -> tuple[list, int]:
    """Literal combining scatter-min (per-cell balanced min tree)."""
    mem, rounds = _crew_scatter_combine(list(target), idx, list(values), min)
    return [mem.read(i) for i in range(len(target))], rounds


def crew_scatter_min_arg(
    target: list, payload: list, idx: list[int], values: list, value_payload: list
) -> tuple[list, list, int]:
    """Literal scatter-min-arg with the documented deterministic tie rule.

    Slots hold ``(value, payload)`` pairs combined by lexicographic min, so
    among updates tying at the minimum value the **lowest payload index
    wins** — and the incumbent ``(target, payload)`` pair is rewritten only
    on strict value improvement, exactly like the vectorized
    :func:`repro.pram.primitives.scatter_min_arg`.
    """
    n, m = len(target), len(idx)
    pairs = [(values[j], value_payload[j]) for j in range(m)]
    mem = CREWMemory.from_values(
        [(target[i], payload[i]) for i in range(n)], extra_cells=m
    )
    for j in range(m):
        mem.write(n + j, pairs[j])
    mem.end_round()
    groups: dict[int, list[int]] = {}
    for j, c in enumerate(idx):
        groups.setdefault(int(c), []).append(n + j)
    while any(len(slots) > 1 for slots in groups.values()):
        updates = {}
        for c, slots in groups.items():
            if len(slots) == 1:
                continue
            survivors = []
            for a, b in zip(slots[0::2], slots[1::2]):
                updates[a] = min(mem.read(a), mem.read(b))
                survivors.append(a)
            if len(slots) % 2:
                survivors.append(slots[-1])
            groups[c] = survivors
        for cell, v in updates.items():
            mem.write(cell, v)
        mem.end_round()
    updates = {}
    for c, slots in groups.items():
        win_val, win_pay = mem.read(slots[0])
        cur_val, cur_pay = mem.read(c)
        if win_val < cur_val:  # strict improvement only — incumbent keeps ties
            updates[c] = (win_val, win_pay)
    for c, v in updates.items():
        mem.write(c, v)
    mem.end_round()
    out = [mem.read(i) for i in range(n)]
    return [v for v, _ in out], [p for _, p in out], mem.rounds


def _crew_scan(mem: CREWMemory, n: int, combine: Callable) -> None:
    """In-place Hillis–Steele scan over cells ``0..n-1`` of ``mem``."""
    stride = 1
    while stride < n:
        updates = {
            i: combine(mem.read(i - stride), mem.read(i)) for i in range(stride, n)
        }
        for i, val in updates.items():
            mem.write(i, val)
        mem.end_round()
        stride *= 2


def crew_prefix_sum(
    values: list[float], inclusive: bool = True
) -> tuple[list[float], int]:
    """Hillis–Steele scan on a CREW memory.

    One processor per cell; in round j, cell i reads cell i − 2^j (a
    concurrent-read) and adds.  Exclusive scans append one shift round.
    Returns (prefix sums, rounds used).
    """
    n = len(values)
    mem = CREWMemory.from_values(list(values))
    _crew_scan(mem, n, lambda a, b: a + b)
    if not inclusive:
        zero = values[0] * 0 if n else 0
        updates = {i: (mem.read(i - 1) if i else zero) for i in range(n)}
        for i, val in updates.items():
            mem.write(i, val)
        mem.end_round()
    return [mem.read(i) for i in range(n)], mem.rounds


def crew_prefix_max(values: list[float]) -> tuple[list[float], int]:
    """Inclusive prefix maxima via the same scan network."""
    n = len(values)
    mem = CREWMemory.from_values(list(values))
    _crew_scan(mem, n, max)
    return [mem.read(i) for i in range(n)], mem.rounds


def crew_select(mask: list) -> tuple[list[int], int]:
    """Indices where ``mask`` holds: scan the flags, scatter the survivors.

    The prefix sum assigns each flagged processor a distinct output slot,
    so the final scatter round is exclusive by construction.
    """
    n = len(mask)
    mem = CREWMemory.from_values([1 if m else 0 for m in mask], extra_cells=n)
    _crew_scan(mem, n, lambda a, b: a + b)
    count = mem.read(n - 1) if n else 0
    for i in range(n):
        if mask[i]:
            mem.write(n + mem.read(i) - 1, i)
    if n:
        mem.end_round()
    return [mem.read(n + j) for j in range(count)], mem.rounds


def crew_compact(values: list, mask: list) -> tuple[list, int]:
    """Order-preserving compaction of ``values`` by ``mask``."""
    if len(values) != len(mask):
        raise InvalidStepError("crew_compact: values and mask must have equal length")
    kept, rounds = crew_select(mask)
    return [values[i] for i in kept], rounds


def crew_segmented_sum(
    values: list, segment_ids: list[int], num_segments: int
) -> tuple[list, int]:
    """Per-segment sums via a literal combining scatter-add tree."""
    if len(values) != len(segment_ids):
        raise InvalidStepError("crew_segmented_sum: values and segment_ids must match")
    zero = values[0] * 0 if values else 0
    mem, rounds = _crew_scatter_combine(
        [zero] * num_segments, segment_ids, list(values), lambda a, b: a + b
    )
    return [mem.read(i) for i in range(num_segments)], rounds


def _odd_even_sort(keys: list) -> tuple[list[int], int]:
    """Stable argsort via an odd–even transposition network (O(n) rounds)."""
    n = len(keys)
    if n == 0:
        return [], 0
    mem = CREWMemory.from_values([(keys[i], i) for i in range(n)])
    for rnd in range(n):
        updates = {}
        for i in range(rnd % 2, n - 1, 2):
            a, b = mem.read(i), mem.read(i + 1)
            if b < a:
                updates[i], updates[i + 1] = b, a
        for c, v in updates.items():
            mem.write(c, v)
        mem.end_round()
    return [mem.read(i)[1] for i in range(n)], mem.rounds


def crew_sort(keys: list) -> tuple[list[int], int]:
    """Stable argsort of ``keys``; pairing with the index makes the
    comparison network's output the unique stable permutation."""
    return _odd_even_sort(list(keys))


def crew_lexsort(keys: tuple) -> tuple[list[int], int]:
    """Stable lexicographic argsort; last key primary (NumPy convention)."""
    if not keys:
        raise InvalidStepError("crew_lexsort needs at least one key array")
    n = len(keys[0])
    for k in keys:
        if len(k) != n:
            raise InvalidStepError("crew_lexsort: key arrays must have equal length")
    composite = [tuple(keys[j][i] for j in reversed(range(len(keys)))) for i in range(n)]
    return _odd_even_sort(composite)


def _crew_first_flags(rows: list, same: Callable) -> tuple[list[int], int]:
    """First-of-group flags on a CREW memory (rows pre-sorted by group).

    Each row processor reads its own cell and its left neighbor's (the
    concurrent read is CREW-legal — the right neighbor reads the same
    cell) and writes its flag into its own output cell; one load round,
    one flag round.
    """
    n = len(rows)
    mem = CREWMemory.from_values(rows, extra_cells=n)
    updates = {}
    for i in range(n):
        updates[n + i] = 1 if i == 0 or not same(mem.read(i - 1), mem.read(i)) else 0
    for c, v in updates.items():
        mem.write(c, v)
    mem.end_round()
    return [mem.read(n + i) for i in range(n)], mem.rounds


def _crew_rank_select(group_flags: list[int], x: int) -> tuple[list[int], int]:
    """Indices whose within-group rank is below ``x``, literally.

    ``group_flags`` marks each group's first row (rows pre-sorted by
    group).  An inclusive scan turns the flags into 1-based group ids;
    each row processor then derives its rank from its own scan cell and
    its group's start position (processor-local bookkeeping, as the
    module conventions allow) and the scan-based :func:`crew_select`
    compacts the survivors.
    """
    gids, r1 = crew_prefix_sum(group_flags)
    start: dict[int, int] = {}
    for i, g in enumerate(gids):
        start.setdefault(int(g), i)
    keep = [1 if i - start[int(g)] < x else 0 for i, g in enumerate(gids)]
    kept, r2 = crew_select(keep)
    return kept, r1 + r2


def crew_prune_entries(
    vert: list[int], src: list[int], dist: list[float], seed: list[int], x: int
) -> tuple[tuple[list, list, list, list], int]:
    """Literal Algorithm-3 entry prune — counterpart of ``pprune_entries``.

    Runs the *unfused* sort semantics on the literal machine: for
    ``x == 1`` one network sort by ``(vert, dist, src, seed)`` and a
    first-per-vertex compaction; for ``x > 1`` a dedup sort by
    ``(vert, src, dist, seed)``, a first-per-(vertex, source) compaction,
    a second network sort by ``(vert, dist, src)`` and the scan-based
    rank-below-``x`` selection.  The sorts are odd–even transposition
    networks, so the round count carries their O(n) envelope.  Returns
    ``((vert, src, dist, seed), rounds)`` — the same rows, in the same
    order, as both vectorized paths.
    """
    n = len(vert)
    if n == 0:
        return ([], [], [], []), 0
    if x == 1:
        order, r1 = crew_lexsort((seed, src, dist, vert))
        rows = [(vert[i], src[i], dist[i], seed[i]) for i in order]
        flags, r2 = _crew_first_flags(rows, lambda a, b: a[0] == b[0])
        kept, r3 = crew_select(flags)
        out = [rows[i] for i in kept]
        v, s, d, z = (list(col) for col in zip(*out))
        return (v, s, d, z), r1 + r2 + r3
    order, r1 = crew_lexsort((seed, dist, src, vert))
    rows = [(vert[i], src[i], dist[i], seed[i]) for i in order]
    flags, r2 = _crew_first_flags(
        rows, lambda a, b: a[0] == b[0] and a[1] == b[1]
    )
    kept, r3 = crew_select(flags)
    rows = [rows[i] for i in kept]
    order2, r4 = crew_lexsort(
        ([r[1] for r in rows], [r[2] for r in rows], [r[0] for r in rows])
    )
    rows = [rows[i] for i in order2]
    flags2, r5 = _crew_first_flags(rows, lambda a, b: a[0] == b[0])
    kept2, r6 = _crew_rank_select(flags2, x)
    out = [rows[i] for i in kept2]
    v, s, d, z = (list(col) for col in zip(*out))
    return (v, s, d, z), r1 + r2 + r3 + r4 + r5 + r6


def crew_aggregate_entries(
    cl: list[int],
    src: list[int],
    dist: list[float],
    member: list[int],
    seed: list[int],
    x: int,
) -> tuple[tuple[list, list, list, list, list], int]:
    """Literal per-cluster aggregation — counterpart of ``paggregate_entries``.

    The unfused semantics on the literal machine: a dedup network sort by
    ``(cl, src, dist, member, seed)``, a first-per-(cluster, source)
    compaction, a second network sort by ``(cl, dist, src)`` and the
    scan-based rank-below-``x`` selection.  Returns
    ``((cl, src, dist, member, seed), rounds)``.
    """
    n = len(cl)
    if n == 0:
        return ([], [], [], [], []), 0
    order, r1 = crew_lexsort((seed, member, dist, src, cl))
    rows = [(cl[i], src[i], dist[i], member[i], seed[i]) for i in order]
    flags, r2 = _crew_first_flags(
        rows, lambda a, b: a[0] == b[0] and a[1] == b[1]
    )
    kept, r3 = crew_select(flags)
    rows = [rows[i] for i in kept]
    order2, r4 = crew_lexsort(
        ([r[1] for r in rows], [r[2] for r in rows], [r[0] for r in rows])
    )
    rows = [rows[i] for i in order2]
    flags2, r5 = _crew_first_flags(rows, lambda a, b: a[0] == b[0])
    kept2, r6 = _crew_rank_select(flags2, x)
    out = [rows[i] for i in kept2]
    c, s, d, m, z = (list(col) for col in zip(*out))
    return (c, s, d, m, z), r1 + r2 + r3 + r4 + r5 + r6


def crew_pointer_jump(parent: list[int], weight: list[float]) -> tuple[list[int], list[float], int]:
    """Section 4.2's pointer jumping, literally on a CREW memory.

    Cells 0..n-1 hold q(v); cells n..2n-1 hold d'(v).  Each round every
    processor concurrently reads its target's cells (legal on CREW) and
    rewrites its own (exclusive).  Returns (roots, distances, rounds).
    """
    n = len(parent)
    mem = CREWMemory(2 * n)
    for v in range(n):
        mem.write(v, int(parent[v]))
        mem.write(n + v, 0.0 if parent[v] == v else float(weight[v]))
    mem.end_round()
    for _ in range(ceil_log2(max(n, 2)) + 1):
        updates = {}
        for v in range(n):
            q = mem.read(v)
            updates[v] = (mem.read(q), mem.read(n + v) + mem.read(n + q))
        for v, (q2, d2) in updates.items():
            mem.write(v, q2)
        mem.end_round()
        for v, (q2, d2) in updates.items():
            mem.write(n + v, d2)
        mem.end_round()
    roots = [mem.read(v) for v in range(n)]
    dists = [mem.read(n + v) for v in range(n)]
    return roots, dists, mem.rounds


def crew_list_rank(nxt: list[int]) -> tuple[list[int], int]:
    """Link-distance to each list's tail, via literal pointer jumping."""
    _, dists, rounds = crew_pointer_jump(list(nxt), [1.0] * len(nxt))
    return [int(d) for d in dists], rounds


def crew_frontier_gather(
    indptr: list[int], frontier: list[int]
) -> tuple[tuple[list[int], list[int]], int]:
    """Literal CSR frontier gather — the counterpart of ``pgather_csr``.

    Round schedule: one load round commits the frontier degrees (each slot
    processor reads its vertex's two row pointers from the read-only CSR
    input, exactly like the relaxation programs read the graph directly);
    a Hillis–Steele scan assigns every slot a contiguous output run; then
    one processor per output arc reads its run start (a concurrent read of
    the scan cell) and exclusively writes its ``(slot, arc)`` pair into its
    own two output cells.  The per-arc slot assignment is processor-local
    bookkeeping, as the module conventions allow.  Returns
    ``((slots, arcs), rounds)``.
    """
    f = len(frontier)
    n = len(indptr) - 1
    for v in frontier:
        if not 0 <= v < n:
            raise InvalidStepError("crew_frontier_gather: frontier vertex out of range")
    deg = [int(indptr[v + 1]) - int(indptr[v]) for v in frontier]
    total = sum(deg)
    mem = CREWMemory.from_values(deg, extra_cells=2 * total)
    if f == 0:
        return ([], []), mem.rounds
    _crew_scan(mem, f, lambda a, b: a + b)
    updates = {}
    j = 0
    for s in range(f):
        run_start = mem.read(s - 1) if s else 0
        assert run_start == j  # the scan's slot assignment is exactly j
        for off in range(deg[s]):
            updates[f + 2 * j] = s
            updates[f + 2 * j + 1] = int(indptr[frontier[s]]) + off
            j += 1
    for c, v in updates.items():
        mem.write(c, v)
    mem.end_round()
    slots = [mem.read(f + 2 * k) for k in range(total)]
    arcs = [mem.read(f + 2 * k + 1) for k in range(total)]
    return (slots, arcs), mem.rounds


def crew_relax_arcs(
    dist: list[float],
    parent: list[int],
    tails: list[int],
    heads: list[int],
    weights: list[float],
) -> tuple[list[float], list[int], list[int], int]:
    """Literal fused relaxation round — the counterpart of ``prelax_arcs``.

    Round schedule: one **load** round where each arc processor reads its
    tail's distance (concurrent reads of popular tails are CREW-legal) and
    writes ``(dist[tail] + w, tail)`` into its own staging slot; a literal
    balanced **combine tree** per head cell over the staged pairs under
    lexicographic min (so equal-value ties resolve to the lowest tail,
    exactly the vectorized tie rule); one **merge** round writing each
    cell's surviving pair on strict improvement only; one **flag** round
    where each vertex processor compares its cell against the value it
    remembered before the merge (a processor-local register, as the module
    conventions allow) and writes its changed flag — the load round of the
    second memory, on which the literal scan-based :func:`crew_select`
    compacts the flags into the changed-vertex list.  Returns
    ``(dist', parent', changed, rounds)`` with ``rounds`` summed over both
    memories.
    """
    n, m = len(dist), len(tails)
    mem = CREWMemory.from_values(
        [(dist[i], parent[i]) for i in range(n)], extra_cells=m
    )
    old = [mem.read(v)[0] for v in range(n)]  # per-processor registers
    if m:
        updates = {}
        for j in range(m):
            d, _ = mem.read(int(tails[j]))
            updates[n + j] = (d + float(weights[j]), int(tails[j]))
        for c, v in updates.items():
            mem.write(c, v)
        mem.end_round()
        groups: dict[int, list[int]] = {}
        for j, c in enumerate(heads):
            groups.setdefault(int(c), []).append(n + j)
        while any(len(slots) > 1 for slots in groups.values()):
            updates = {}
            for c, slots in groups.items():
                if len(slots) == 1:
                    continue
                survivors = []
                for a, b in zip(slots[0::2], slots[1::2]):
                    updates[a] = min(mem.read(a), mem.read(b))
                    survivors.append(a)
                if len(slots) % 2:
                    survivors.append(slots[-1])
                groups[c] = survivors
            for cell, v in updates.items():
                mem.write(cell, v)
            mem.end_round()
        updates = {}
        for c, slots in groups.items():
            win_val, win_pay = mem.read(slots[0])
            cur_val, _ = mem.read(c)
            if win_val < cur_val:  # strict improvement only
                updates[c] = (win_val, win_pay)
        for c, v in updates.items():
            mem.write(c, v)
        mem.end_round()
    flags = []
    for v in range(n):
        flags.append(1 if mem.read(v)[0] != old[v] else 0)
    changed, sel_rounds = crew_select(flags)
    out = [mem.read(v) for v in range(n)]
    return (
        [d for d, _ in out],
        [p for _, p in out],
        changed,
        mem.rounds + sel_rounds,
    )


def crew_relax_arcs_batch(
    dist_rows: list[list[float]],
    parent_rows: list[list[int]],
    tails: list[int],
    heads: list[int],
    weights: list[float],
) -> tuple[list[list[float]], list[list[int]], list[bool], int]:
    """Literal batched relaxation round — counterpart of ``prelax_arcs_batch``.

    The S×V matrix round is, on the model, S independent copies of the
    :func:`crew_relax_arcs` program running side by side on disjoint
    memories (one per source row) against the shared read-only arc list —
    no cell is ever shared between rows, so the parallel composition is
    trivially CREW-legal and its round count is the *maximum* over rows
    (all row machines advance in lockstep; each row's schedule is
    identical, so the max is also every row's own count).  Returns
    ``(dist_rows', parent_rows', changed_any, rounds)`` where
    ``changed_any[r]`` is row r's OR-reduced changed flag — the
    ``changed="any"`` result the batched kernel reports per source.
    """
    out_dist: list[list[float]] = []
    out_parent: list[list[int]] = []
    changed_any: list[bool] = []
    rounds = 0
    for dist, parent in zip(dist_rows, parent_rows):
        d, p, changed, r = crew_relax_arcs(dist, parent, tails, heads, weights)
        out_dist.append(d)
        out_parent.append(p)
        changed_any.append(bool(changed))
        rounds = max(rounds, r)
    return out_dist, out_parent, changed_any, rounds


def crew_bellman_ford(graph: Graph, source: int, hops: int) -> tuple[list[float], int]:
    """Hop-limited Bellman–Ford with explicit CREW round discipline.

    Per relaxation round, each vertex processor serially reads its
    neighbors' distances (concurrent reads of popular cells are fine) and
    exclusively rewrites its own cell — the paper's read-on-even /
    write-on-odd pattern.  Returns (distances, rounds used).
    """
    inf = float("inf")
    n = graph.n
    mem = CREWMemory(n)
    for v in range(n):
        mem.write(v, 0.0 if v == source else inf)
    mem.end_round()
    for _ in range(hops):
        updates = {}
        for v in range(n):
            best = mem.read(v)
            nbrs, ws = graph.neighbors(v)
            for t, w in zip(nbrs, ws):
                cand = mem.read(int(t)) + float(w)
                if cand < best:
                    best = cand
            updates[v] = best
        changed = False
        for v, val in updates.items():
            if val != mem.read(v):
                mem.write(v, val)
                changed = True
        mem.end_round()
        if not changed:
            break
    return [mem.read(v) for v in range(n)], mem.rounds


def crew_sssp(graph: Graph, source: int) -> tuple[list[float], int]:
    """Exact reference SSSP on the literal CREW machine — no Dijkstra.

    ``n − 1`` rounds of Bellman–Ford relaxation (with early exit) suffice
    for exact distances on non-negative weights, so this needs nothing
    beyond the round-disciplined relaxation above.  It is the ground truth
    the differential harness compares the vectorized hopset-free
    exploration against.
    """
    return crew_bellman_ford(graph, source, max(graph.n - 1, 1))
