"""Literal CREW reference programs, executed on :class:`CREWMemory`.

These run the paper's model *for real*: every read/write goes through the
staged shared memory with write-conflict detection, and the round counter
is the actual depth.  They exist to validate the vectorized, cost-charged
implementations — the test-suite runs both and asserts identical results
and consistent round counts.  They are small and slow by design.
"""

from __future__ import annotations

from repro.graphs.csr import Graph
from repro.pram.memory import CREWMemory
from repro.pram.primitives import ceil_log2

__all__ = ["crew_prefix_sum", "crew_pointer_jump", "crew_bellman_ford"]


def crew_prefix_sum(values: list[float]) -> tuple[list[float], int]:
    """Hillis–Steele inclusive scan on a CREW memory.

    One processor per cell; in round j, cell i reads cell i − 2^j (a
    concurrent-read) and adds.  Returns (prefix sums, rounds used).
    """
    n = len(values)
    mem = CREWMemory(n)
    for i, x in enumerate(values):
        mem.write(i, float(x))
    mem.end_round()
    stride = 1
    while stride < n:
        updates = {}
        for i in range(n):
            if i >= stride:
                updates[i] = mem.read(i) + mem.read(i - stride)
        for i, val in updates.items():
            mem.write(i, val)
        mem.end_round()
        stride *= 2
    return [mem.read(i) for i in range(n)], mem.rounds


def crew_pointer_jump(parent: list[int], weight: list[float]) -> tuple[list[int], list[float], int]:
    """Section 4.2's pointer jumping, literally on a CREW memory.

    Cells 0..n-1 hold q(v); cells n..2n-1 hold d'(v).  Each round every
    processor concurrently reads its target's cells (legal on CREW) and
    rewrites its own (exclusive).  Returns (roots, distances, rounds).
    """
    n = len(parent)
    mem = CREWMemory(2 * n)
    for v in range(n):
        mem.write(v, int(parent[v]))
        mem.write(n + v, 0.0 if parent[v] == v else float(weight[v]))
    mem.end_round()
    for _ in range(ceil_log2(max(n, 2)) + 1):
        updates = {}
        for v in range(n):
            q = mem.read(v)
            updates[v] = (mem.read(q), mem.read(n + v) + mem.read(n + q))
        for v, (q2, d2) in updates.items():
            mem.write(v, q2)
        mem.end_round()
        for v, (q2, d2) in updates.items():
            mem.write(n + v, d2)
        mem.end_round()
    roots = [mem.read(v) for v in range(n)]
    dists = [mem.read(n + v) for v in range(n)]
    return roots, dists, mem.rounds


def crew_bellman_ford(graph: Graph, source: int, hops: int) -> tuple[list[float], int]:
    """Hop-limited Bellman–Ford with explicit CREW round discipline.

    Per relaxation round, each vertex processor serially reads its
    neighbors' distances (concurrent reads of popular cells are fine) and
    exclusively rewrites its own cell — the paper's read-on-even /
    write-on-odd pattern.  Returns (distances, rounds used).
    """
    inf = float("inf")
    n = graph.n
    mem = CREWMemory(n)
    for v in range(n):
        mem.write(v, 0.0 if v == source else inf)
    mem.end_round()
    for _ in range(hops):
        updates = {}
        for v in range(n):
            best = mem.read(v)
            nbrs, ws = graph.neighbors(v)
            for t, w in zip(nbrs, ws):
                cand = mem.read(int(t)) + float(w)
                if cand < best:
                    best = cand
            updates[v] = best
        changed = False
        for v, val in updates.items():
            if val != mem.read(v):
                mem.write(v, val)
                changed = True
        mem.end_round()
        if not changed:
            break
    return [mem.read(v) for v in range(n)], mem.rounds
