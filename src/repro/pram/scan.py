"""Parallel prefix sums (scans) and segmented scans.

The work-efficient two-sweep algorithm of Blelloch runs in ``O(n)`` work and
``O(log n)`` depth; we execute the scan with NumPy's ``cumsum``/``ufunc``
accumulations and charge those costs.  Segmented scans (restarting at segment
boundaries) are the standard building block for per-cluster aggregation in
the hopset construction's aggregation part (Algorithm 2).
"""

from __future__ import annotations

import numpy as np

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.primitives import ceil_log2

__all__ = ["prefix_sum", "prefix_max", "segmented_sum", "segment_offsets"]


def _charge_scan(cost: CostModel, n: int, label: str) -> None:
    # Blelloch up-sweep + down-sweep: 2n work, 2*ceil(log n) rounds.
    cost.charge(work=2 * n, depth=2 * ceil_log2(max(n, 1)) + 1, label=label)
    # both sweeps read two children / write one parent per tree node
    cost.traffic(label, elements=n, reads=4 * max(n - 1, 0), writes=2 * n)


def prefix_sum(
    cost: CostModel, arr: np.ndarray, inclusive: bool = True, label: str = "scan"
) -> np.ndarray:
    """Prefix sums of ``arr``; exclusive scans start at 0."""
    n = int(arr.size)
    if inclusive:
        out = np.cumsum(arr)
    else:
        out = np.zeros_like(arr)
        if n > 1:
            np.cumsum(arr[:-1], out=out[1:])
    if cost.wants_footprints:
        # Blelloch tree: every output cell is written by exactly one node
        cost.footprint(label, "out", np.arange(n), out, rule="exclusive")
    _charge_scan(cost, n, label)
    cost.commit_round(label)
    return out


def prefix_max(cost: CostModel, arr: np.ndarray, label: str = "scan_max") -> np.ndarray:
    """Inclusive prefix maxima of ``arr``."""
    out = np.maximum.accumulate(arr)
    if cost.wants_footprints:
        cost.footprint(label, "out", np.arange(out.size), out, rule="exclusive")
    _charge_scan(cost, int(arr.size), label)
    cost.commit_round(label)
    return out


def segment_offsets(cost: CostModel, segment_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Start offsets and lengths of runs in a sorted ``segment_ids`` array.

    ``segment_ids`` must be non-decreasing (i.e. the data is already grouped
    by segment).  Returns ``(unique_ids, counts)``.
    """
    n = int(segment_ids.size)
    if n == 0:
        cost.charge(work=0, depth=1, label="segments")
        cost.traffic("segments")
        return segment_ids[:0], np.zeros(0, dtype=np.int64)
    if np.any(segment_ids[1:] < segment_ids[:-1]):
        raise InvalidStepError("segment_offsets requires sorted segment ids")
    uniq, counts = np.unique(segment_ids, return_counts=True)
    if cost.wants_footprints:
        slots = np.arange(uniq.size)
        cost.footprint("segments", "out_ids", slots, uniq, rule="exclusive")
        cost.footprint("segments", "out_counts", slots, counts, rule="exclusive")
    _charge_scan(cost, n, "segments")
    cost.commit_round("segments")
    return uniq, counts


def segmented_sum(
    cost: CostModel, values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sum of ``values`` within each segment id in ``[0, num_segments)``.

    Segments need not be contiguous; this is a scatter-add combined with a
    per-segment reduction tree (``O(n)`` work, ``O(log n)`` depth).
    """
    if values.shape != segment_ids.shape:
        raise InvalidStepError("segmented_sum: values and segment_ids must match")
    out = np.zeros(num_segments, dtype=values.dtype)
    np.add.at(out, segment_ids, values)
    n = int(values.size)
    if cost.wants_footprints:
        # colliding per-segment adds, legal via the charged combine tree
        cost.footprint("segmented_sum", "out", segment_ids, values, rule="combine")
    cost.charge(work=n, depth=ceil_log2(max(n, 1)) + 1, label="segmented_sum")
    cost.traffic("segmented_sum", elements=n, reads=2 * n, writes=num_segments)
    cost.commit_round("segmented_sum")
    return out
