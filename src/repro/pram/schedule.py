"""Processor-limited scheduling of a recorded PRAM execution.

``CostModel.time_on(p)`` applies Brent's bound to the *totals*; this module
applies it per recorded step (requires ``record_steps=True``), which is the
tight version: steps are sequential (each depends on the previous round),
so the makespan with p processors is

    T_p  =  Σ_steps  ( depth_i + ⌈work_i / p⌉ − 1 )

clipped below by the step's depth (a step can never beat its critical
path).  The speedup/efficiency curves this produces are what the E3/E10
scaling tables describe qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError

__all__ = ["SchedulePoint", "makespan", "speedup_curve"]


@dataclass(frozen=True)
class SchedulePoint:
    processors: int
    time: int
    speedup: float
    efficiency: float


def makespan(cost: CostModel, processors: int) -> int:
    """Per-step Brent makespan on ``processors`` processors."""
    if processors < 1:
        raise InvalidStepError(f"processor count must be positive, got {processors}")
    if not cost.steps:
        raise InvalidStepError(
            "makespan needs recorded steps; build the CostModel with record_steps=True"
        )
    total = 0
    for step in cost.steps:
        if step.work:
            extra = max(0, -(-step.work // processors) - 1)  # ceil(work/p) − 1
            total += step.depth + extra
        else:
            total += step.depth
    return total


def speedup_curve(cost: CostModel, processor_counts: list[int]) -> list[SchedulePoint]:
    """Speedup/efficiency against the 1-processor makespan."""
    base = makespan(cost, 1)
    out = []
    for p in processor_counts:
        t = makespan(cost, p)
        s = base / t if t else float("inf")
        out.append(SchedulePoint(processors=p, time=t, speedup=s, efficiency=s / p))
    return out
