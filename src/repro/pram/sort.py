"""Parallel sorting, cost-charged at AKS-network rates.

The paper sorts its message arrays with the AKS sorting network [AKS83]:
``O(log N)`` depth and ``O(N log N)`` work for N items.  AKS enters the
theorems only through that cost, so we execute the sort with NumPy's stable
sort (bit-identical output to any correct sort) and charge AKS cost.  A
``bitonic`` mode charges the practically-relevant ``O(log^2 N)`` depth
instead, for experiments that want to see the difference.
"""

from __future__ import annotations

import numpy as np

from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.primitives import ceil_log2

__all__ = ["parallel_sort", "parallel_lexsort"]


def _charge_sort(cost: CostModel, n: int, network: str, label: str) -> None:
    lg = ceil_log2(max(n, 2))
    if network == "aks":
        cost.charge(work=n * lg, depth=lg + 1, label=label)
    elif network == "bitonic":
        cost.charge(work=n * lg * lg, depth=lg * lg + 1, label=label)
    else:
        raise InvalidStepError(f"unknown sorting network {network!r}")
    # each comparator reads two cells and writes two cells
    comparators = n * (lg if network == "aks" else lg * lg)
    cost.traffic(label, elements=n, reads=2 * comparators, writes=2 * comparators)


def parallel_sort(
    cost: CostModel,
    keys: np.ndarray,
    network: str = "aks",
    label: str = "sort",
) -> np.ndarray:
    """Stable argsort of ``keys``; returns the permutation."""
    order = np.argsort(keys, kind="stable")
    if cost.wants_footprints:
        # the network routes each input to a distinct output position
        cost.footprint(label, "out", np.arange(order.size), order, rule="exclusive")
    _charge_sort(cost, int(keys.size), network, label)
    cost.commit_round(label)
    return order


def parallel_lexsort(
    cost: CostModel,
    keys: tuple[np.ndarray, ...],
    network: str = "aks",
    label: str = "lexsort",
) -> np.ndarray:
    """Stable lexicographic argsort; last key in ``keys`` is primary.

    Matches :func:`numpy.lexsort` semantics.  Charged as one sort of the
    packed composite key.
    """
    if not keys:
        raise InvalidStepError("parallel_lexsort needs at least one key array")
    n = int(keys[0].size)
    for k in keys:
        if int(k.size) != n:
            raise InvalidStepError("parallel_lexsort: key arrays must have equal length")
    order = np.lexsort(keys)
    if cost.wants_footprints:
        cost.footprint(label, "out", np.arange(order.size), order, rule="exclusive")
    _charge_sort(cost, n, network, label)
    cost.commit_round(label)
    return order
