"""Reusable per-round scratch buffers for the simulator's hot loops.

Every relaxation round of a β-hop exploration needs the same handful of
temporaries — candidate distances, segment minima, changed masks.  NumPy
allocates each of them fresh per round, which on the hot path costs more
than the arithmetic.  A :class:`Workspace` is a named buffer pool: callers
ask for ``take(name, size, dtype)`` and get a view into a retained buffer
that is reused (and grown geometrically when needed) across rounds.

Pooling is *observationally invisible*: a correctly written kernel fully
overwrites every cell of a buffer before reading it, so values from the
previous round can never leak into results.  Because that property is easy
to break silently, the pool supports **poisoning**: in debug mode every
``take`` first fills the returned view with a sentinel (NaN for floats, a
large negative for ints, ``True`` for bools), so a stale read produces
loudly wrong output instead of a plausible one.  Enable it per workspace
(``Workspace(poison=True)``) or globally with the ``REPRO_POOL_POISON=1``
environment variable; the strict-shadow conformance tests run the full
differential matrix with poisoning on.

The workspace also caches per-graph :class:`~repro.pram.primitives.RelaxPlan`
objects (the arcs-sorted-by-head layout the fused dense relaxation kernel
uses), keyed by graph identity — the plan holds a reference to the graph,
so an id can never be recycled while its cache entry is alive.

Fused-path toggles live here too: :func:`fused_default` resolves the
``REPRO_FUSED`` environment variable (default on), which
``frontier_relax`` / ``bellman_ford`` / hopset ``_propagate`` consult when
their ``fused=`` argument is ``None`` — a one-stop switch for A/B
benchmarking the fused kernels against the primitive-by-primitive path.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["Workspace", "fused_default", "fused_build_default", "poison_default"]

#: Poison sentinel written into integer buffers (floats get NaN, bools True).
INT_POISON = np.iinfo(np.int64).min + 1


def fused_default() -> bool:
    """Resolve the process-wide fused-kernel default (``REPRO_FUSED``).

    ``REPRO_FUSED=0`` forces every ``fused=None`` call site onto the
    unfused primitive-by-primitive path (the benchmark baseline);
    anything else — including unset — means fused.
    """
    return os.environ.get("REPRO_FUSED", "1") != "0"


def fused_build_default() -> bool:
    """Resolve the fused hopset-*build* default (``REPRO_FUSED_BUILD``).

    ``REPRO_FUSED_BUILD=0`` forces the build-phase prune/aggregate
    kernels onto the unfused lexsort path (the benchmark baseline and
    the reference side of the build-conformance differential matrix);
    anything else — including unset — means fused.  Independent from
    ``REPRO_FUSED`` so construction and queries can be A/B'd separately.
    """
    return os.environ.get("REPRO_FUSED_BUILD", "1") != "0"


def poison_default() -> bool:
    """Resolve the debug pool-poisoning default (``REPRO_POOL_POISON``)."""
    return os.environ.get("REPRO_POOL_POISON", "0") != "0"


class Workspace:
    """A named pool of reusable scratch arrays (plus per-graph plan cache).

    ``take`` returns a *view* of length ``size`` into a pooled buffer; the
    buffer is reused by the next ``take`` of the same name, so callers must
    fully write the view before reading it and must never let a view
    outlive the round that took it (copy out anything that survives —
    fancy indexing does this naturally).  Distinct names never alias.
    """

    __slots__ = ("poison", "_buffers", "_plans", "_degrees")

    def __init__(self, poison: bool | None = None) -> None:
        self.poison = poison_default() if poison is None else bool(poison)
        self._buffers: dict[str, np.ndarray] = {}
        self._plans: dict[int, tuple[object, object]] = {}
        self._degrees: dict[int, tuple[object, np.ndarray]] = {}

    def take(self, name: str, size: int, dtype) -> np.ndarray:
        """A length-``size`` scratch view named ``name`` (contents undefined)."""
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.size < size or buf.dtype != dtype:
            capacity = max(size, 2 * (buf.size if buf is not None else 0), 16)
            buf = self._buffers[name] = np.empty(capacity, dtype=dtype)
        view = buf[:size]
        if self.poison:
            if dtype.kind == "f":
                view.fill(np.nan)
            elif dtype.kind == "b":
                view.fill(True)
            else:
                view.fill(INT_POISON)
        return view

    def relax_plan(self, graph):
        """The cached :class:`~repro.pram.primitives.RelaxPlan` of ``graph``.

        Built on first use; subsequent rounds and subsequent explorations
        of the same graph reuse it.  Symmetric CSR graphs get the O(n+m)
        sort-free derivation (:func:`~repro.pram.primitives.build_relax_plan_from_csr`
        — the arc list sorted by head is the CSR with tail/head roles
        swapped), so each hopset scale's cluster graph costs no argsort;
        other arc layouts fall back to the stable-argsort builder.  The
        cache keeps the graph alive, which is what makes ``id(graph)`` a
        sound key.
        """
        key = id(graph)
        hit = self._plans.get(key)
        if hit is not None and hit[0] is graph:
            return hit[1]
        from repro.pram.primitives import build_relax_plan, build_relax_plan_from_csr

        if hasattr(graph, "indptr") and hasattr(graph, "indices"):
            plan = build_relax_plan_from_csr(graph)
        else:  # pragma: no cover - no such caller today
            tails, heads, weights = graph.arcs()
            plan = build_relax_plan(tails, heads, weights, n_cells=graph.n)
        self._plans[key] = (graph, plan)
        return plan

    def csr_degrees(self, graph) -> np.ndarray:
        """The cached out-degree array of ``graph`` (``np.diff(indptr)``).

        The per-scale gather plan of the hopset build: every build-phase
        relaxation round gathers the frontier's CSR ranges, and with the
        degree array cached the per-round derivation drops one row-pointer
        gather + subtract.  Keyed by graph identity like :meth:`relax_plan`
        (the cache keeps the graph alive).
        """
        key = id(graph)
        hit = self._degrees.get(key)
        if hit is not None and hit[0] is graph:
            return hit[1]
        deg = np.diff(graph.indptr)
        self._degrees[key] = (graph, deg)
        return deg

    def drop_plan(self, graph):
        """Evict ``graph``'s cached plan and degree array; returns the plan.

        The mutation seam of the dynamic subsystem: a cached
        :class:`~repro.pram.primitives.RelaxPlan` aliases the graph's CSR
        arrays, so an *in-place* weight update keeps it fresh — but a
        structural change (a :class:`~repro.dynamic.graph.DynamicGraph`
        recompaction swaps the arrays under the same object identity)
        silently stales both caches.  Callers drop here, then hand the
        returned plan to the execution backend's ``evict_plan`` so
        sharded workers release their shared-memory *copies* too.
        Returns ``None`` when nothing was cached.
        """
        key = id(graph)
        hit = self._plans.pop(key, None)
        self._degrees.pop(key, None)
        return hit[1] if hit is not None else None

    def clear(self) -> None:
        """Drop every pooled buffer and cached plan."""
        self._buffers.clear()
        self._plans.clear()
        self._degrees.clear()
