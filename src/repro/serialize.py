"""Persistence: save/load graphs and hopsets as ``.npz`` archives.

Hopsets are expensive to build and meant to be reused across many queries
(Theorem 3.8's whole point); this module lets a downstream user build once
and ship the artifact.  Memory paths (path-reporting hopsets) are stored as
one flat vertex array plus offsets, so archives stay compact.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graphs.csr import Graph
from repro.hopsets.errors import HopsetError
from repro.hopsets.hopset import Hopset, HopsetEdge

__all__ = ["save_graph", "load_graph", "save_hopset", "load_hopset"]

_FORMAT_VERSION = 1


def save_graph(path: str | Path, graph: Graph) -> None:
    """Write a graph to ``path`` (.npz)."""
    np.savez_compressed(
        Path(path),
        format=np.array([_FORMAT_VERSION]),
        kind=np.array(["graph"]),
        n=np.array([graph.n]),
        edge_u=graph.edge_u,
        edge_v=graph.edge_v,
        edge_w=graph.edge_w,
    )


def load_graph(path: str | Path) -> Graph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check(data, "graph")
        return Graph(int(data["n"][0]), data["edge_u"], data["edge_v"], data["edge_w"])


def save_hopset(path: str | Path, hopset: Hopset) -> None:
    """Write a hopset (records, provenance, and memory paths) to ``path``."""
    edges = hopset.edges
    kinds = sorted({e.kind for e in edges})
    kind_code = {k: i for i, k in enumerate(kinds)}
    has_paths = bool(edges) and all(e.path is not None for e in edges)
    if edges and not has_paths and any(e.path is not None for e in edges):
        raise HopsetError("cannot serialize a hopset with partially recorded paths")
    flat: list[int] = []
    offsets = [0]
    if has_paths:
        for e in edges:
            flat.extend(e.path)  # type: ignore[arg-type]
            offsets.append(len(flat))
    np.savez_compressed(
        Path(path),
        format=np.array([_FORMAT_VERSION]),
        kind=np.array(["hopset"]),
        n=np.array([hopset.n]),
        beta=np.array([hopset.beta]),
        epsilon=np.array([hopset.epsilon]),
        meta=np.array([json.dumps(hopset.meta, default=str)]),
        kinds=np.array(kinds),
        edge_u=np.array([e.u for e in edges], dtype=np.int64),
        edge_v=np.array([e.v for e in edges], dtype=np.int64),
        edge_w=np.array([e.weight for e in edges], dtype=np.float64),
        edge_scale=np.array([e.scale for e in edges], dtype=np.int64),
        edge_phase=np.array([e.phase for e in edges], dtype=np.int64),
        edge_kind=np.array([kind_code[e.kind] for e in edges], dtype=np.int64),
        has_paths=np.array([has_paths]),
        path_flat=np.array(flat, dtype=np.int64),
        path_offsets=np.array(offsets, dtype=np.int64),
    )


def load_hopset(path: str | Path) -> Hopset:
    """Read a hopset written by :func:`save_hopset`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check(data, "hopset")
        kinds = [str(k) for k in data["kinds"]]
        has_paths = bool(data["has_paths"][0])
        flat = data["path_flat"]
        offsets = data["path_offsets"]
        # hoist every member out of the archive once: NpzFile re-inflates
        # the whole array on each __getitem__, so indexing members inside
        # the loop would decompress the arrays O(records) times over
        edge_u = data["edge_u"]
        edge_v = data["edge_v"]
        edge_w = data["edge_w"]
        edge_scale = data["edge_scale"]
        edge_phase = data["edge_phase"]
        edge_kind = data["edge_kind"]
        edges = []
        for i in range(edge_u.size):
            path = None
            if has_paths:
                path = tuple(int(x) for x in flat[offsets[i]:offsets[i + 1]])
            edges.append(
                HopsetEdge(
                    u=int(edge_u[i]),
                    v=int(edge_v[i]),
                    weight=float(edge_w[i]),
                    scale=int(edge_scale[i]),
                    phase=int(edge_phase[i]),
                    kind=kinds[int(edge_kind[i])],
                    path=path,
                )
            )
        hopset = Hopset(
            n=int(data["n"][0]),
            edges=edges,
            beta=int(data["beta"][0]),
            epsilon=float(data["epsilon"][0]),
            meta=json.loads(str(data["meta"][0])),
        )
        return hopset


def _check(data, expected_kind: str) -> None:
    if "kind" not in data or str(data["kind"][0]) != expected_kind:
        raise HopsetError(f"archive is not a serialized {expected_kind}")
    if int(data["format"][0]) > _FORMAT_VERSION:
        raise HopsetError("archive written by a newer format version")
