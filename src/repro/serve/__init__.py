"""Persistent (1+ε)-approximate distance-query serving (``repro serve``).

The paper's economics — one polylog-depth, near-linear-work hopset build
amortized over arbitrarily many cheap queries (Theorem 1.1, §1.2) — only
pay off behind a long-running service.  This package turns the PR 5
one-shot ``repro oracle`` CLI into that service:

* :mod:`repro.serve.protocol` — the line protocol (``dist U V`` /
  ``path U V`` / ``stats``) with structured error replies;
* :mod:`repro.serve.cache`    — the tier-0 exact-hit pair LRU;
* :mod:`repro.serve.batcher`  — the micro-batcher that collapses
  concurrent queries into one ordered multi-source evaluation;
* :mod:`repro.serve.server`   — :class:`~repro.serve.server.OracleServer`
  (the in-process API the tests and benchmarks drive) plus the
  threaded TCP front end.

The serving semantics, cache tiers, determinism contract, and fallback
behaviour are documented in ``docs/serving.md``.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.cache import PairCache
from repro.serve.protocol import ProtocolError, Request, parse_line
from repro.serve.server import OracleServer, OracleTCPServer, serve_tcp

__all__ = [
    "MicroBatcher",
    "OracleServer",
    "OracleTCPServer",
    "PairCache",
    "ProtocolError",
    "Request",
    "parse_line",
    "serve_tcp",
]
