"""The micro-batcher: concurrent queries → one ordered batch evaluation.

Transport threads (one per TCP connection) call :meth:`MicroBatcher.submit`
and wait on the returned future; a single collector thread gathers whatever
arrives within a short window (or until ``max_batch``) and hands the batch
— in strict arrival order — to the ``evaluate`` callable in one go.  The
Elkin–Neiman shape (arXiv:2004.07572): S concurrent queries against one
hopset collapse into a multi-source evaluation, so distinct sources in the
batch cost one β-hop exploration each and repeated sources cost none.

Batching is a *wall-clock* optimization only.  Because the server's answer
for each request is a pure function of the request (``docs/serving.md``),
any permutation of arrivals and any partition into batches yields
bit-identical per-query answers and identical per-source charged cost —
the Hypothesis property in ``tests/property/test_prop_serve.py`` pins
exactly that, and the evaluate callable never sees out-of-order items.

Evaluation runs on the collector thread alone, so the numeric tiers (NumPy
kernels, the shared workspace, the sharded backend's pipes) are accessed
single-threaded — no locks in the hot path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, Sequence

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Collect submissions into ordered batches for one evaluate callable.

    Parameters
    ----------
    evaluate:
        ``evaluate(items) -> results`` with ``len(results) == len(items)``,
        called with arrival-ordered batches on the collector thread.  A
        raised exception fails every future of that batch (and only that
        batch — the collector keeps serving).
    max_batch:
        Evaluate as soon as this many requests are pending.
    window_s:
        After the first request of a batch arrives, wait at most this long
        for company before evaluating; ``0`` evaluates immediately with
        whatever is queued.
    """

    def __init__(
        self,
        evaluate: Callable[[Sequence], Sequence],
        max_batch: int = 64,
        window_s: float = 0.001,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self._evaluate = evaluate
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self._cv = threading.Condition()
        self._pending: deque[tuple[object, Future]] = deque()
        self._closed = False
        self._thread: threading.Thread | None = None
        self.batches = 0
        self.submitted = 0

    # -- client side ---------------------------------------------------------

    def submit(self, item) -> Future:
        """Enqueue one request; the future resolves to its evaluate result."""
        fut: Future = Future()
        with self._cv:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._pending.append((item, fut))
            self.submitted += 1
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="serve-batcher", daemon=True
                )
                self._thread.start()
            self._cv.notify()
        return fut

    def close(self) -> None:
        """Stop the collector after draining whatever is already queued."""
        with self._cv:
            self._closed = True
            self._cv.notify()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- collector thread ----------------------------------------------------

    def _take_batch(self) -> list[tuple[object, Future]] | None:
        """Block until a batch is ready (or ``None`` at close-and-drained)."""
        with self._cv:
            while not self._pending:
                if self._closed:
                    return None
                self._cv.wait()
            if self.window_s > 0:
                # first arrival opens the window; gather company until the
                # window closes or the batch fills
                deadline = time.monotonic() + self.window_s
                while len(self._pending) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cv.wait(timeout=remaining)
            batch = []
            while self._pending and len(batch) < self.max_batch:
                batch.append(self._pending.popleft())
            return batch

    def _loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            items = [item for item, _ in batch]
            try:
                results = self._evaluate(items)
                if len(results) != len(items):
                    raise RuntimeError(
                        f"evaluate returned {len(results)} results "
                        f"for {len(items)} items"
                    )
            except BaseException as exc:  # noqa: BLE001 - forwarded per-future
                for _, fut in batch:
                    if not fut.cancelled():
                        fut.set_exception(exc)
                continue
            self.batches += 1
            for (_, fut), res in zip(batch, results):
                if not fut.cancelled():
                    fut.set_result(res)
