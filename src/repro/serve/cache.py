"""Tier-0 of the serving cache: an exact-hit LRU over *directed* pairs.

The serving layer answers ``dist U V`` from source U's vector, always
(``docs/serving.md``: the determinism contract).  That makes the answer a
pure function of ``(graph, hopset, hop_budget, U, V)``, so memoizing it
under the **ordered** key ``(U, V)`` is semantically transparent: a hit
returns the identical bit pattern the lower tiers would recompute, no
matter what tier-1 has since evicted.

The key is deliberately *not* symmetrized: ``dist U V`` and ``dist V U``
are both (1+ε)-certified but may differ in the last ulp (the β-hop
accumulation runs the opposite way), and an unordered key would make the
served value depend on which direction happened to arrive first — exactly
the history-dependence the contract rules out.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["PairCache"]


class PairCache:
    """Bounded LRU from directed vertex pairs to served distances.

    ``capacity=0`` disables the tier (every lookup misses, nothing is
    stored) — the CLI's ``--pair-cache 0``.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ValueError(f"pair-cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._store: OrderedDict[tuple[int, int], float] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def contains(self, u: int, v: int) -> bool:
        """Whether ``dist u v`` is memoized — no counters, no LRU touch.

        The serving layer's batch pre-scan uses this to decide which
        sources a micro-batch will actually explore; the authoritative
        (counted) lookup still happens when the request is served.
        """
        return (u, v) in self._store

    def get(self, u: int, v: int) -> float | None:
        """The memoized ``dist u v`` answer, or ``None`` (counts the outcome)."""
        hit = self._store.get((u, v))
        if hit is None:
            self.misses += 1
            return None
        self.hits += 1
        self._store.move_to_end((u, v))
        return hit

    def put(self, u: int, v: int, value: float) -> None:
        if self.capacity == 0:
            return
        self._store[(u, v)] = value
        self._store.move_to_end((u, v))
        if len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def clear(self) -> None:
        self._store.clear()

    def evict_source(self, u: int) -> int:
        """Drop every entry answered from source ``u``'s vector.

        Tier-0 entries are memoized reads ``(u, v) -> dist_u[v]``; when
        the dynamic serving path invalidates ``u``'s tier-1 vector the
        reads become unverifiable and must go with it.  Entries
        ``(v, u)`` read *other* sources' still-certified vectors and
        stay.  Returns the number of entries dropped.
        """
        stale = [key for key in self._store if key[0] == u]
        for key in stale:
            del self._store[key]
        return len(stale)

    def info(self) -> dict[str, int]:
        return {
            "capacity": self.capacity,
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
        }
