"""The ``repro serve`` line protocol.

One request per line, one reply line per request, in order.  Requests::

    dist U V      (1+ε)-approximate distance from U to V
    path U V      the vertex sequence realizing that estimate
    stats         one-line JSON of the server's counters
    quit          close the connection (handled by the transport)

Replies::

    ok dist U V <value>            value is repr(float): round-trips bitwise
    ok path U V <v0> <v1> ... <vk>
    ok path U V unreachable
    ok stats <json>
    err <code> <message>

Error codes are structured and stable — ``bad-request`` (unparsable line,
wrong arity, non-integer vertex) and ``out-of-range`` (vertex outside
``[0, n)``) — and a malformed line never takes down the connection, let
alone the server; the reply is the diagnostic.

Distances are serialized with :func:`repr`, the shortest string that
round-trips the exact float64 bit pattern, so a client parsing the reply
with ``float()`` recovers the served value bit-exactly — the property the
serve-vs-offline differential suite (``tests/serve/``) leans on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ProtocolError",
    "Request",
    "format_dist",
    "format_error",
    "format_path",
    "format_stats",
    "parse_line",
]

#: Request kinds that take two vertex operands.
_PAIR_KINDS = ("dist", "path")
#: Request kinds with no operands.
_NULLARY_KINDS = ("stats", "quit")


class ProtocolError(ValueError):
    """A malformed or out-of-range request; carries a structured code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """One parsed protocol line."""

    kind: str      # "dist" | "path" | "stats" | "quit"
    u: int = -1
    v: int = -1

    def line(self) -> str:
        """The canonical request line (what the query log records)."""
        if self.kind in _PAIR_KINDS:
            return f"{self.kind} {self.u} {self.v}"
        return self.kind


def parse_line(line: str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` when malformed."""
    parts = line.split()
    if not parts:
        raise ProtocolError("bad-request", "empty request")
    kind = parts[0]
    if kind in _NULLARY_KINDS:
        if len(parts) != 1:
            raise ProtocolError("bad-request", f"{kind} takes no operands")
        return Request(kind)
    if kind not in _PAIR_KINDS:
        raise ProtocolError(
            "bad-request",
            f"unknown request {kind!r} (try: dist U V | path U V | stats | quit)",
        )
    if len(parts) != 3:
        raise ProtocolError("bad-request", f"{kind} takes exactly two vertices")
    try:
        u, v = int(parts[1]), int(parts[2])
    except ValueError:
        raise ProtocolError(
            "bad-request", f"non-integer vertex in {line.strip()!r}"
        ) from None
    return Request(kind, u, v)


def format_dist(u: int, v: int, value: float) -> str:
    """The ``dist`` reply; ``repr(value)`` round-trips the float64 bitwise."""
    return f"ok dist {u} {v} {value!r}"


def format_path(u: int, v: int, path: list[int] | None) -> str:
    """The ``path`` reply; ``None`` renders as ``unreachable``."""
    if path is None:
        return f"ok path {u} {v} unreachable"
    return f"ok path {u} {v} " + " ".join(str(p) for p in path)


def format_stats(payload: str) -> str:
    """The ``stats`` reply wrapping an already-serialized JSON payload."""
    return f"ok stats {payload}"


def format_error(code: str, message: str) -> str:
    """The ``err`` reply; whitespace-squashed so it can never span lines."""
    return f"err {code} {' '.join(str(message).split())}"
