"""The ``repro serve`` line protocol.

One request per line, one reply line per request, in order.  Requests::

    dist U V      (1+ε)-approximate distance from U to V
    path U V      the vertex sequence realizing that estimate
    update U V W  set edge (U, V) to weight W, inserting it when absent
    delete U V    remove edge (U, V)
    stats         one-line JSON of the server's counters
    quit          close the connection (handled by the transport)

Replies::

    ok dist U V <value>            value is repr(float): round-trips bitwise
    ok path U V <v0> <v1> ... <vk>
    ok path U V unreachable
    ok update U V <value>
    ok delete U V
    ok stats <json>
    err <code> <message>

Error codes are structured and stable — ``bad-request`` (unparsable line,
wrong arity, non-integer vertex, non-positive or non-finite weight),
``out-of-range`` (vertex outside ``[0, n)``), and ``unsupported`` (a
mutation verb sent to a server running without ``--dynamic``) — and a
malformed line never takes down the connection, let alone the server;
the reply is the diagnostic.

Distances are serialized with :func:`repr`, the shortest string that
round-trips the exact float64 bit pattern, so a client parsing the reply
with ``float()`` recovers the served value bit-exactly — the property the
serve-vs-offline differential suite (``tests/serve/``) leans on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ProtocolError",
    "Request",
    "format_delete",
    "format_dist",
    "format_error",
    "format_path",
    "format_stats",
    "format_update",
    "parse_line",
]

#: Request kinds that take two vertex operands.
_PAIR_KINDS = ("dist", "path", "delete")
#: Request kinds with no operands.
_NULLARY_KINDS = ("stats", "quit")
#: Request kinds that mutate the served graph (dynamic servers only).
MUTATION_KINDS = ("update", "delete")


class ProtocolError(ValueError):
    """A malformed or out-of-range request; carries a structured code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """One parsed protocol line."""

    kind: str      # "dist" | "path" | "update" | "delete" | "stats" | "quit"
    u: int = -1
    v: int = -1
    w: float = float("nan")  # only meaningful for kind == "update"

    def line(self) -> str:
        """The canonical request line (what the query log records)."""
        if self.kind == "update":
            return f"update {self.u} {self.v} {self.w!r}"
        if self.kind in _PAIR_KINDS:
            return f"{self.kind} {self.u} {self.v}"
        return self.kind


def _parse_vertices(parts: list[str], line: str) -> tuple[int, int]:
    try:
        return int(parts[1]), int(parts[2])
    except ValueError:
        raise ProtocolError(
            "bad-request", f"non-integer vertex in {line.strip()!r}"
        ) from None


def parse_line(line: str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` when malformed."""
    parts = line.split()
    if not parts:
        raise ProtocolError("bad-request", "empty request")
    kind = parts[0]
    if kind in _NULLARY_KINDS:
        if len(parts) != 1:
            raise ProtocolError("bad-request", f"{kind} takes no operands")
        return Request(kind)
    if kind == "update":
        if len(parts) != 4:
            raise ProtocolError(
                "bad-request", "update takes two vertices and a weight"
            )
        u, v = _parse_vertices(parts, line)
        try:
            w = float(parts[3])
        except ValueError:
            raise ProtocolError(
                "bad-request", f"non-numeric weight in {line.strip()!r}"
            ) from None
        if not (w > 0.0) or w != w or w == float("inf"):
            raise ProtocolError(
                "bad-request", f"weight must be positive and finite, got {w!r}"
            )
        return Request(kind, u, v, w)
    if kind not in _PAIR_KINDS:
        raise ProtocolError(
            "bad-request",
            "unknown request "
            f"{kind!r} (try: dist U V | path U V | update U V W | "
            "delete U V | stats | quit)",
        )
    if len(parts) != 3:
        raise ProtocolError("bad-request", f"{kind} takes exactly two vertices")
    u, v = _parse_vertices(parts, line)
    return Request(kind, u, v)


def format_dist(u: int, v: int, value: float) -> str:
    """The ``dist`` reply; ``repr(value)`` round-trips the float64 bitwise."""
    return f"ok dist {u} {v} {value!r}"


def format_path(u: int, v: int, path: list[int] | None) -> str:
    """The ``path`` reply; ``None`` renders as ``unreachable``."""
    if path is None:
        return f"ok path {u} {v} unreachable"
    return f"ok path {u} {v} " + " ".join(str(p) for p in path)


def format_stats(payload: str) -> str:
    """The ``stats`` reply wrapping an already-serialized JSON payload."""
    return f"ok stats {payload}"


def format_update(u: int, v: int, value: float) -> str:
    """The ``update`` reply echoing the applied weight, bit-exact."""
    return f"ok update {u} {v} {value!r}"


def format_delete(u: int, v: int) -> str:
    """The ``delete`` reply acknowledging the removal."""
    return f"ok delete {u} {v}"


def format_error(code: str, message: str) -> str:
    """The ``err`` reply; whitespace-squashed so it can never span lines."""
    return f"err {code} {' '.join(str(message).split())}"
