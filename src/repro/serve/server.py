"""The oracle serving layer: tiered-cache answering behind a micro-batcher.

:class:`OracleServer` is the in-process engine (tests and benchmarks drive
it directly); :func:`serve_tcp` wraps it in a threaded TCP front end that
speaks the line protocol of :mod:`repro.serve.protocol` — together they
are ``repro serve``.

**Answer tiers** (``docs/serving.md``):

0. *Exact-hit pair LRU* (:class:`~repro.serve.cache.PairCache`) —
   memoized ``dist U V`` floats under the directed key ``(U, V)``.
1. *Per-source vectors* — the
   :class:`~repro.sssp.oracle.HopsetDistanceOracle` LRU of ``(dist,
   parent)`` vectors, shared by every query naming that source.
2. *Hopset-limited Bellman–Ford* — a β-hop exploration of G ∪ H on the
   server's one :class:`~repro.pram.machine.PRAM`; every exploration
   reuses the same cached :class:`~repro.pram.primitives.RelaxPlan`, and
   under a sharded backend that plan lives in
   ``multiprocessing.shared_memory`` once, with W workers computing
   per-shard segment minima — W serving workers, one copy of the data.

**Determinism contract.**  ``dist U V`` is answered from source U's
vector, always — never from V's even when V happens to be cached (the
offline oracle's opportunistic swap).  Every served answer is therefore a
pure function of ``(graph, hopset, hop_budget, U, V)``: independent of
arrival order, batch partitioning, cache state, worker count, and
degradation events — which is what makes the pair cache transparent, a
recorded query log exactly replayable, and the serve-vs-offline
differential (``tests/serve/test_serve_diff.py``) a bitwise assertion
against ``HopsetDistanceOracle.distances_from(U)[V]``.

**Degradation.**  Under a sharded backend a worker death / round timeout
trips the backend's permanent serial fallback (docs/backends.md); the
server subscribes a failure listener and reports the event as
``serve.fallback.<kind>`` traffic, then keeps serving in-process —
bit-identical answers, serial wall-clock.  Malformed or out-of-range
request lines get structured ``err <code> ...`` replies and never
interrupt the batch, the connection, or the server.

Observability: ``serve.request`` / ``serve.batch`` / ``serve.cache.pair.*``
/ ``serve.error.<code>`` / ``serve.fallback.<kind>`` cost-model traffic
(the oracle tier adds ``oracle.cache.{hit,miss}``), a ``serve.latency_us``
histogram of per-request service time, and the
:func:`repro.obs.export.serve_health_report` table over all of it.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
from pathlib import Path

import numpy as np

from repro.dynamic import DynamicOracle, pair_codes
from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError
from repro.hopsets.hopset import Hopset
from repro.obs.metrics import MetricsRegistry
from repro.pram.machine import PRAM
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import PairCache
from repro.serve.protocol import (
    MUTATION_KINDS,
    ProtocolError,
    Request,
    format_delete,
    format_dist,
    format_error,
    format_path,
    format_stats,
    format_update,
    parse_line,
)
from repro.sssp.oracle import HopsetDistanceOracle, tree_path

__all__ = ["OracleServer", "OracleTCPServer", "serve_tcp", "read_query_log"]


def read_query_log(path) -> list[str]:
    """The recorded request lines of a query log, in served order."""
    return [
        line for line in Path(path).read_text().splitlines() if line.strip()
    ]


class OracleServer:
    """Micro-batched, tiered-cache distance/path serving over one hopset.

    Parameters
    ----------
    graph, hopset:
        The base graph and its prebuilt hopset (one immutable copy serves
        every query).
    hop_budget, cache_size:
        Forwarded to the tier-1 :class:`HopsetDistanceOracle`.
    pair_cache:
        Tier-0 capacity (directed exact-hit entries); ``0`` disables.
    backend:
        Execution backend for the explorations — an instance, a spec
        string (``"sharded:2"``), or ``None`` for the ``REPRO_BACKEND``
        default.  The server never closes a backend it did not create
        (specs resolve to process-wide singletons).
    max_batch, batch_window:
        Micro-batcher knobs (:class:`~repro.serve.batcher.MicroBatcher`);
        ``batch_window`` is in seconds.
    log_path:
        When given, every served ``dist``/``path`` request line is
        appended there in served order — a deterministic replay input
        (``stats`` lines are excluded: their replies are counters, not
        pure functions of the request).
    metrics:
        Optional externally-attached registry; by default the server
        attaches (and on :meth:`close` detaches) its own.
    mssp_block:
        Row-block width of the S×V matrix engine used when a
        micro-batch groups several uncached sources (``--mssp-block`` /
        ``REPRO_MSSP``); answers and charges are block-invariant.
    dynamic:
        When True the server accepts the mutation verbs ``update U V W``
        and ``delete U V``: a :class:`~repro.dynamic.engine.DynamicOracle`
        owns mutable G / H / G ∪ H, explorations run over its union, and
        each mutation invalidates exactly the cache entries it can have
        stained — everything on an improvement (cached vectors are stale
        upper bounds everywhere), only tree-touching or non-converged
        vectors on a worsening.  ``hopset`` may then be ``None`` (one is
        built path-reporting from ``params``); a prebuilt hopset must
        carry paths.  Without the flag, mutation verbs get
        ``err unsupported``.
    params, refresh_below, rebuild_below:
        Dynamic-mode knobs, forwarded to the
        :class:`~repro.dynamic.engine.DynamicOracle` (hopset build
        parameters and the lazy-maintenance thresholds).
    """

    def __init__(
        self,
        graph: Graph,
        hopset: Hopset | None,
        hop_budget: int | None = None,
        cache_size: int = 128,
        pair_cache: int = 4096,
        backend=None,
        max_batch: int = 64,
        batch_window: float = 0.001,
        log_path=None,
        metrics: MetricsRegistry | None = None,
        mssp_block: int | None = None,
        dynamic: bool = False,
        params=None,
        refresh_below: float = 0.5,
        rebuild_below: float = 0.2,
    ) -> None:
        self.pram = PRAM(backend=backend)
        self._own_registry = metrics is None
        self.registry = (
            metrics if metrics is not None else MetricsRegistry.attach(self.pram.cost)
        )
        if dynamic:
            self.dynamic: DynamicOracle | None = DynamicOracle(
                graph,
                hopset,
                params,
                pram=self.pram,
                refresh_below=refresh_below,
                rebuild_below=rebuild_below,
            )
            oracle_hopset = self.dynamic.hopset
            union = self.dynamic.union
        else:
            if hopset is None:
                raise InvalidGraphError(
                    "a static server needs a prebuilt hopset"
                )
            self.dynamic = None
            oracle_hopset = hopset
            union = None
        self.oracle = HopsetDistanceOracle(
            graph,
            oracle_hopset,
            hop_budget=hop_budget,
            cache_size=cache_size,
            pram=self.pram,
            metrics=self.registry,
            mssp_block=mssp_block,
            union=union,
        )
        self.pairs = PairCache(pair_cache)
        self.batcher = MicroBatcher(
            self.serve_batch, max_batch=max_batch, window_s=batch_window
        )
        #: cumulative charged work attributed to each explored source
        self.source_charges: dict[int, int] = {}
        self.requests = 0
        self.errors = 0
        self.degraded: str | None = None
        self._lock = threading.RLock()
        self._log_fh = open(log_path, "a") if log_path else None
        self._limit_cb = None
        self._limit = None
        listen = getattr(self.pram.backend, "add_failure_listener", None)
        if listen is not None:
            listen(self._on_backend_failure)

    # -- degradation ---------------------------------------------------------

    def _on_backend_failure(self, kind: str, reason: str) -> None:
        """Backend tripped serial fallback mid-exploration: surface it."""
        self.degraded = kind
        self.pram.cost.traffic(f"serve.fallback.{kind}", elements=1)

    # -- answering (callers hold the lock) -----------------------------------

    def _check(self, w: int) -> None:
        if not 0 <= w < self.oracle.graph.n:
            raise ProtocolError(
                "out-of-range", f"vertex {w} outside [0, {self.oracle.graph.n})"
            )

    def _explore(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        """Tier-1/2 lookup with per-source charged-work attribution."""
        before = self.pram.cost.work
        vectors = self.oracle.vectors_from(source)
        delta = self.pram.cost.work - before
        if delta:
            self.source_charges[source] = (
                self.source_charges.get(source, 0) + delta
            )
        return vectors

    def _answer_dist(self, u: int, v: int) -> float:
        self._check(u)
        self._check(v)
        if u == v:
            return 0.0
        hit = self.pairs.get(u, v)
        if hit is not None:
            self.pram.cost.traffic("serve.cache.pair.hit", elements=1)
            return hit
        self.pram.cost.traffic("serve.cache.pair.miss", elements=1)
        value = float(self._explore(u)[0][v])
        self.pairs.put(u, v, value)
        return value

    def _answer_path(self, u: int, v: int) -> list[int] | None:
        self._check(u)
        self._check(v)
        if u == v:
            return [u]
        dist, parent = self._explore(u)
        if not np.isfinite(dist[v]):
            return None
        return tree_path(parent, u, v, self.oracle.graph.n)

    # -- mutation (dynamic mode) ---------------------------------------------

    def _answer_mutation(self, req: Request) -> None:
        """Apply one ``update``/``delete`` and invalidate what it stained."""
        if self.dynamic is None:
            raise ProtocolError(
                "unsupported",
                f"{req.kind} needs a server running with --dynamic",
            )
        self._check(req.u)
        self._check(req.v)
        if req.u == req.v:
            raise ProtocolError("bad-request", "self-loops are not edges")
        try:
            if req.kind == "delete":
                result = self.dynamic.apply("delete", req.u, req.v)
            else:
                result = self.dynamic.apply("update", req.u, req.v, req.w)
        except InvalidGraphError as exc:
            raise ProtocolError("bad-request", str(exc)) from None
        self.pram.cost.traffic(f"serve.update.{req.kind}", elements=1)
        if result["improved"]:
            # every cached vector is a stale upper bound somewhere
            evicted = self.oracle.invalidate_all()
            dropped = len(self.pairs)
            self.pairs.clear()
        else:
            # worsening: only vectors whose tree crosses an affected pair
            # (or that never provably converged) can have changed
            codes = pair_codes(result["pairs"], self.oracle.graph.n)
            evicted = self.oracle.invalidate_touching(codes)
            dropped = sum(self.pairs.evict_source(s) for s in evicted)
        if evicted:
            self.pram.cost.traffic(
                "serve.update.evicted_vectors", elements=len(evicted)
            )
        if dropped:
            self.pram.cost.traffic(
                "serve.update.evicted_pairs", elements=dropped
            )
        report = self.dynamic.maintain()
        if report.action != "none":
            # maintenance swapped the union object: re-point, restart cold
            self.oracle.union = self.dynamic.union
            self.oracle.invalidate_all()
            self.pairs.clear()
            self.pram.cost.traffic("serve.update.refresh", elements=1)

    def _serve_one(self, item) -> str:
        t0 = time.perf_counter_ns()
        try:
            req = parse_line(item) if isinstance(item, str) else item
            if req.kind == "dist":
                reply = format_dist(req.u, req.v, self._answer_dist(req.u, req.v))
            elif req.kind == "path":
                reply = format_path(req.u, req.v, self._answer_path(req.u, req.v))
            elif req.kind == "update":
                self._answer_mutation(req)
                reply = format_update(req.u, req.v, req.w)
            elif req.kind == "delete":
                self._answer_mutation(req)
                reply = format_delete(req.u, req.v)
            elif req.kind == "stats":
                reply = format_stats(json.dumps(self.stats(), sort_keys=True))
            elif req.kind == "quit":
                reply = "ok bye"
            else:  # unreachable behind parse_line, defensive for Request users
                raise ProtocolError("bad-request", f"unknown kind {req.kind!r}")
            if self._log_fh is not None and req.kind in (
                "dist", "path", "update", "delete",
            ):
                self._log_fh.write(req.line() + "\n")
        except ProtocolError as exc:
            self.errors += 1
            self.pram.cost.traffic(f"serve.error.{exc.code}", elements=1)
            reply = format_error(exc.code, exc.message)
        self.requests += 1
        self.pram.cost.traffic("serve.request", elements=1)
        self.registry.histogram("serve.latency_us").observe(
            (time.perf_counter_ns() - t0) / 1e3
        )
        return reply

    # -- the batch entry points ----------------------------------------------

    def _pre_explore(self, items) -> None:
        """Advance the batch's distinct uncached sources as one S×V pass.

        The matrix-engine grouping (docs/mssp.md): instead of one β-hop
        exploration per first-naming request, every source the batch
        will need — named by a ``dist``/``path`` request, not already
        answered by tier 0 or resident in tier 1 — joins one
        :meth:`HopsetDistanceOracle.explore_many` matrix sweep.  Counters
        and per-source charges are booked exactly as the per-request
        flow would have booked them (the oracle's fresh-claim protocol),
        so any batch partitioning of a request stream is observationally
        identical; only wall-clock changes.
        """
        n = self.oracle.graph.n
        wanted: list[int] = []
        seen: set[int] = set()
        for item in items:
            try:
                req = parse_line(item) if isinstance(item, str) else item
            except ProtocolError:
                continue  # booked when the malformed line is served
            if req.kind not in ("dist", "path"):
                continue
            u, v = req.u, req.v
            if not (0 <= u < n and 0 <= v < n) or u == v or u in seen:
                continue
            if req.kind == "dist" and self.pairs.contains(u, v):
                continue  # tier 0 answers; the solo flow explores nothing
            seen.add(u)
            wanted.append(u)
        if not wanted:
            return
        charges = self.oracle.explore_many(wanted)
        if charges:
            self.pram.cost.traffic("serve.matrix.group", elements=len(charges))
        for s, delta in charges.items():
            if delta:
                self.source_charges[s] = self.source_charges.get(s, 0) + delta

    @staticmethod
    def _mutates(item) -> bool:
        """Whether a raw line / :class:`Request` is a mutation verb."""
        if isinstance(item, Request):
            return item.kind in MUTATION_KINDS
        parts = item.split(None, 1)
        return bool(parts) and parts[0] in MUTATION_KINDS

    def serve_batch(self, items) -> list[str]:
        """Answer one arrival-ordered batch; one reply line per item.

        ``items`` are raw request lines or parsed :class:`Request`\\ s.
        This is the micro-batcher's evaluate callable and the direct
        entry point for in-process callers (benchmarks, ``--probe``);
        the lock keeps direct calls and the collector thread serialized.
        Each segment's distinct uncached sources are explored up front
        as one S×V matrix pass (:meth:`_pre_explore`); the per-request
        answering then runs entirely against warm tiers.

        Mutation verbs (``update``/``delete``) are segment boundaries:
        the queries before one are answered as their own sub-batch, the
        mutation is applied solo, and batching resumes after — so every
        query observes exactly the graph state of its arrival position
        and no pre-explored vector leaks across an invalidation.  A
        mutation-free batch takes the single-segment path, byte- and
        counter-identical to a server without ``--dynamic``.
        """
        with self._lock:
            self.pram.cost.traffic("serve.batch", elements=len(items))
            replies: list[str] = []
            segment: list = []

            def flush() -> None:
                if not segment:
                    return
                self._pre_explore(segment)
                try:
                    replies.extend(self._serve_one(item) for item in segment)
                finally:
                    self.oracle.finish_batch()
                segment.clear()

            for item in items:
                if self._mutates(item):
                    flush()
                    replies.append(self._serve_one(item))
                else:
                    segment.append(item)
            flush()
            if self._log_fh is not None:
                self._log_fh.flush()
        if self._limit_cb is not None and self.requests >= (self._limit or 0):
            cb, self._limit_cb = self._limit_cb, None
            cb()
        return replies

    def submit_line(self, line: str):
        """Enqueue one request line with the micro-batcher; returns a future."""
        return self.batcher.submit(line)

    def handle_line(self, line: str) -> str:
        """Serve one request line immediately (a batch of one)."""
        return self.serve_batch([line])[0]

    def replay(self, lines) -> list[str]:
        """Re-serve a recorded query log; replies pin bitwise (the contract)."""
        return [self.handle_line(line) for line in lines]

    # -- convenience API ------------------------------------------------------

    def query(self, u: int, v: int) -> float:
        """The served ``dist u v`` value (tier-0/1/2, canonical source u)."""
        with self._lock:
            return self._answer_dist(u, v)

    def path(self, u: int, v: int) -> list[int] | None:
        """The served ``path u v`` vertex sequence (canonical source u)."""
        with self._lock:
            return self._answer_path(u, v)

    def on_request_limit(self, limit: int, callback) -> None:
        """Invoke ``callback`` once after ``limit`` requests were served."""
        self._limit = int(limit)
        self._limit_cb = callback

    def stats(self) -> dict:
        """One JSON-friendly dict of serving counters (the ``stats`` reply)."""
        info = self.oracle.cache_info()
        return {
            "requests": self.requests,
            "errors": self.errors,
            "batches": self.batcher.batches,
            "pair_cache": self.pairs.info(),
            "source_cache": info,
            "sources_charged": len(self.source_charges),
            "backend": self.pram.backend.describe(),
            "degraded": self.degraded,
            "dynamic": self.dynamic.stats() if self.dynamic else None,
        }

    def close(self) -> None:
        """Drain the batcher and release what the server owns.

        The execution backend is deliberately *not* closed: spec-resolved
        backends are process-wide singletons and instances belong to the
        caller.
        """
        self.batcher.close()
        if self._own_registry:
            self.registry.detach(self.pram.cost)
        if self._log_fh is not None:
            self._log_fh.close()
            self._log_fh = None


class _LineHandler(socketserver.StreamRequestHandler):
    """One thread per connection: read lines, batch-submit, reply in order."""

    def handle(self) -> None:  # pragma: no cover - exercised via socket tests
        server: OracleServer = self.server.oracle_server  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            try:
                reply = server.submit_line(line).result()
            except RuntimeError as exc:  # batcher closed under us
                reply = format_error("shutdown", str(exc))
            try:
                self.wfile.write((reply + "\n").encode("utf-8"))
                self.wfile.flush()
            except OSError:
                return  # client went away mid-reply
            if line.split()[:1] == ["quit"]:
                return


class OracleTCPServer(socketserver.ThreadingTCPServer):
    """Threaded TCP transport for one :class:`OracleServer`."""

    allow_reuse_address = True
    daemon_threads = True
    oracle_server: OracleServer

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve_tcp(
    server: OracleServer, host: str = "127.0.0.1", port: int = 0
) -> OracleTCPServer:
    """Bind the line-protocol TCP front end (``port=0`` picks a free port).

    The caller runs ``serve_forever()`` (or hands it to a thread) and later
    ``shutdown()`` + ``server_close()``; the :class:`OracleServer` itself
    is closed separately.
    """
    tcp = OracleTCPServer((host, port), _LineHandler)
    tcp.oracle_server = server
    return tcp
