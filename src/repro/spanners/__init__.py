"""Near-additive spanners — the derandomized [EM19] companion (§1.2/§1.4)."""

from repro.spanners.construction import SpannerReport, build_spanner
from repro.spanners.verification import SpannerCertification, certify_spanner

__all__ = [
    "build_spanner",
    "SpannerReport",
    "certify_spanner",
    "SpannerCertification",
]
