"""Near-additive spanners from derandomized superclustering ([EM19], §1.4).

The paper's technique is a derandomization of the
superclustering-and-interconnection framework; the same framework (with the
same ruling sets) built *near-additive spanners* for unweighted graphs in
[EM19] and [EP01], and §1.2 points out that derandomized spanners are the
missing ingredient for a fully deterministic [EGN19].  This module runs the
identical phase machinery on an unweighted graph, but instead of inserting
weighted shortcut *edges* into a hopset it inserts the underlying *paths*
into a subgraph — producing a (1+ε, β)-spanner:

    d_S(u, v) ≤ (1+ε)·d_G(u, v) + β       with |S| = O(n^{1+1/κ}) edges.

Unweighted distances make the machinery simpler than the hopset case: a
δ-bounded exploration needs exactly δ hops, so there is no β parameter in
the exploration itself and no multi-scale loop — one pass over the phase
schedule suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.build import from_edge_arrays
from repro.graphs.csr import Graph
from repro.hopsets.cluster_graph import bfs_from_clusters, neighbor_tables
from repro.hopsets.clusters import ClusterMemory, Partition
from repro.hopsets.errors import CertificationError
from repro.hopsets.params import HopsetParams
from repro.hopsets.ruling_sets import ruling_set
from repro.hopsets.single_scale import compose_supercluster_path, interconnect_path
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2

__all__ = ["SpannerReport", "build_spanner"]


@dataclass
class SpannerReport:
    """Phase accounting for the spanner construction."""

    phases: int = 0
    clusters_per_phase: list[int] = field(default_factory=list)
    ruling_sizes: list[int] = field(default_factory=list)
    work: int = 0
    depth: int = 0


def _unit_graph(graph: Graph) -> Graph:
    """Strip weights: the spanner machinery is for unweighted graphs."""
    return Graph(graph.n, graph.edge_u, graph.edge_v, np.ones(graph.num_edges))


def build_spanner(
    graph: Graph,
    params: HopsetParams | None = None,
    pram: PRAM | None = None,
) -> tuple[Graph, SpannerReport]:
    """Deterministic (1+ε, β)-spanner of an (unweighted) graph.

    Input weights are ignored (distances are hop counts).  Returns the
    spanner as a subgraph (unit weights) plus a report.  Determinism,
    subgraph-ness, and the size/stretch shape are covered by tests and E15.
    """
    params = params if params is not None else HopsetParams()
    pram = pram if pram is not None else PRAM()
    n = graph.n
    report = SpannerReport()
    if graph.num_edges == 0 or n < 2:
        return _unit_graph(graph), report

    g = _unit_graph(graph)
    partition = Partition.singletons(n)
    memory = ClusterMemory(n, record_paths=True)
    eps = params.epsilon
    ell = params.ell
    spanner_pairs: set[tuple[int, int]] = set()
    start = pram.snapshot()

    def add_path(path: tuple[int, ...]) -> None:
        for a, b in zip(path, path[1:]):
            spanner_pairs.add((min(a, b), max(a, b)))

    for i in range(ell + 1):
        if partition.num_clusters <= 1:
            break
        report.phases += 1
        report.clusters_per_phase.append(partition.num_clusters)
        members = partition.members_by_cluster()
        centers = partition.centers
        # unit weights: a δ-bounded exploration needs exactly δ = (1/ε)^i hops
        delta = max(1, int(round((1.0 / eps) ** i)))
        deg = params.degree_threshold(n, i)
        last_phase = i == ell
        x = partition.num_clusters if last_phase else deg + 1

        with pram.phase(f"spanner/phase{i}/detect"):
            tables = neighbor_tables(
                pram, g, partition, threshold=float(delta), hops=delta, x=x,
                record_paths=True, members_by_cluster=members,
            )
        counts = tables.counts()
        popular = (
            np.zeros(partition.num_clusters, dtype=bool)
            if last_phase
            else counts >= (deg + 1)
        )

        q_mask = np.zeros(partition.num_clusters, dtype=bool)
        detected = np.zeros(partition.num_clusters, dtype=bool)
        bfs = None
        if popular.any():
            with pram.phase(f"spanner/phase{i}/ruling"):
                q_mask = ruling_set(
                    pram, g, partition, popular, float(delta), delta,
                    members_by_cluster=members,
                )
            with pram.phase(f"spanner/phase{i}/supercluster"):
                bfs = bfs_from_clusters(
                    pram, g, partition, q_mask, float(delta), delta,
                    max_pulses=2 * ceil_log2(max(n, 2)),
                    memory=memory, record_paths=True,
                    members_by_cluster=members,
                )
            detected = bfs.detected()
            if np.any(popular & ~detected):
                raise CertificationError("popular cluster missed by the ruling BFS")
        report.ruling_sizes.append(int(q_mask.sum()))

        super_paths: dict[int, tuple[int, ...]] = {}
        if bfs is not None:
            for c in np.flatnonzero(detected & ~q_mask):
                path = compose_supercluster_path(bfs, int(c), memory, centers)
                super_paths[int(c)] = path
                add_path(path)

        in_u = ~detected
        with pram.phase(f"spanner/phase{i}/interconnect"):
            for row in range(tables.cluster.size):
                c = int(tables.cluster[row])
                s = int(tables.src[row])
                if c == s or not (in_u[c] and in_u[s]) or centers[c] > centers[s]:
                    continue
                seg = tables.paths[row] if tables.paths is not None else None
                if seg is None:
                    raise CertificationError("interconnection row lacks a path")
                add_path(
                    interconnect_path(
                        memory, int(tables.seed[row]), int(tables.member[row]), seg
                    )
                )
            pram.charge(work=int(tables.cluster.size), depth=1, label="interconnect")

        if not popular.any():
            break

        assert bfs is not None
        for c in np.flatnonzero(detected & ~q_mask):
            memory.absorb(
                members[int(c)], float(bfs.acc_weight[c]), super_paths[int(c)][::-1]
            )
        q_idx = np.flatnonzero(q_mask)
        new_of_origin = np.full(partition.num_clusters, -1, dtype=np.int64)
        new_of_origin[q_idx] = np.arange(q_idx.size, dtype=np.int64)
        new_cluster_of = np.full(n, -1, dtype=np.int64)
        for c in np.flatnonzero(detected):
            new_cluster_of[members[int(c)]] = new_of_origin[int(bfs.origin[c])]
        partition = Partition(cluster_of=new_cluster_of, centers=centers[q_idx].copy())
        pram.charge(work=n, depth=1, label="reform_partition")

    delta_cost = pram.snapshot() - start
    report.work, report.depth = delta_cost.work, delta_cost.depth
    if spanner_pairs:
        u = np.array([p[0] for p in sorted(spanner_pairs)], dtype=np.int64)
        v = np.array([p[1] for p in sorted(spanner_pairs)], dtype=np.int64)
        spanner = from_edge_arrays(n, u, v, np.ones(u.size))
    else:
        spanner = from_edge_arrays(n, np.zeros(0), np.zeros(0), np.zeros(0))
    return spanner, report
