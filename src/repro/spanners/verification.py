"""Spanner certification: subgraph-ness and the (1+ε, β) stretch shape."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.distances import dijkstra
from repro.hopsets.errors import CertificationError

__all__ = ["SpannerCertification", "certify_spanner"]


@dataclass(frozen=True)
class SpannerCertification:
    """Measured spanner quality against a (1+ε, β) target."""

    edges: int
    size_bound: float
    multiplicative: float   # max d_S/d_G (the pure multiplicative view)
    additive_at_eps: float  # max (d_S − (1+ε)·d_G): β needed at this ε
    pairs: int
    is_subgraph: bool

    def holds(self, beta: float) -> bool:
        return self.is_subgraph and self.additive_at_eps <= beta + 1e-9


def certify_spanner(
    graph: Graph, spanner: Graph, epsilon: float, kappa: int
) -> SpannerCertification:
    """Exact all-pairs certification of an unweighted spanner.

    ``additive_at_eps`` is the smallest β for which the spanner satisfies
    ``d_S ≤ (1+ε)·d_G + β`` — the quantity compared to the [EM19] bound.
    Raises if the spanner is not a subgraph of ``graph``.
    """
    if spanner.n != graph.n:
        raise CertificationError("spanner vertex count differs from the graph's")
    gpairs = set(zip(graph.edge_u.tolist(), graph.edge_v.tolist()))
    is_subgraph = all(
        (int(u), int(v)) in gpairs
        for u, v in zip(spanner.edge_u, spanner.edge_v)
    )
    if not is_subgraph:
        raise CertificationError("spanner contains a non-graph edge")
    # unweighted distances on both
    from repro.graphs.csr import Graph as _G

    unit = _G(graph.n, graph.edge_u, graph.edge_v, np.ones(graph.num_edges))
    mult = 1.0
    additive = 0.0
    pairs = 0
    for s in range(graph.n):
        dg = dijkstra(unit, s)
        ds = dijkstra(spanner, s) if spanner.num_edges else np.full(graph.n, np.inf)
        ds[s] = 0.0
        for t in range(s + 1, graph.n):
            if not np.isfinite(dg[t]) or dg[t] == 0:
                continue
            pairs += 1
            if not np.isfinite(ds[t]):
                additive = float("inf")
                mult = float("inf")
                continue
            mult = max(mult, float(ds[t] / dg[t]))
            additive = max(additive, float(ds[t] - (1 + epsilon) * dg[t]))
    return SpannerCertification(
        edges=spanner.num_edges,
        size_bound=graph.n ** (1 + 1 / kappa),
        multiplicative=mult,
        additive_at_eps=max(additive, 0.0),
        pairs=pairs,
        is_subgraph=is_subgraph,
    )
