"""Applications: (1+ε)-approximate SSSP / multi-source / SPT extraction."""

from repro.sssp.bellman_ford import BellmanFordResult, bellman_ford
from repro.sssp.dynamic import DecrementalSSSP
from repro.sssp.oracle import HopsetDistanceOracle
from repro.sssp.multi_source import MultiSourceResult, approximate_mssd
from repro.sssp.spt import SPTResult, approximate_spt
from repro.sssp.sssp import SSSPResult, approximate_sssp, approximate_sssp_with_hopset

__all__ = [
    "bellman_ford",
    "DecrementalSSSP",
    "HopsetDistanceOracle",
    "BellmanFordResult",
    "approximate_sssp",
    "approximate_sssp_with_hopset",
    "SSSPResult",
    "approximate_mssd",
    "MultiSourceResult",
    "approximate_spt",
    "SPTResult",
]
