"""Hop-limited Bellman–Ford on the PRAM machine.

The application side of the paper: once a (1+ε, β)-hopset H exists, a
β-round Bellman–Ford in G ∪ H from the source computes (1+ε)-approximate
distances (Theorem 3.8).  One round relaxes every arc once — O(|E|+|H|)
work, O(log n) depth (the concurrent minimum per vertex is a combine tree)
— so the full exploration is O(β·log n) depth, exactly the paper's bound.

Parent pointers are tracked (deterministic tie-breaking), which the SPT
extraction of §4 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import VertexError
from repro.pram.machine import PRAM

__all__ = ["BellmanFordResult", "bellman_ford"]


@dataclass
class BellmanFordResult:
    """Distances, parents, and the number of rounds actually executed."""

    dist: np.ndarray
    parent: np.ndarray  # parent[source] == source; -1 where unreached
    rounds_used: int
    hop_budget: int

    @property
    def reached(self) -> np.ndarray:
        return np.isfinite(self.dist)


def bellman_ford(
    pram: PRAM,
    graph: Graph,
    sources: int | np.ndarray,
    hops: int,
    early_exit: bool = True,
) -> BellmanFordResult:
    """``hops`` rounds of parallel edge relaxation from ``sources``.

    ``sources`` may be one vertex or an array (the multi-source variant
    runs one exploration whose distance is to the *nearest* source —
    used by the weight-reduction star assembly; Theorem 3.8's aMSSD runs
    one independent instance per source instead).

    With ``early_exit`` the loop stops once a round changes nothing; the
    cost model is charged only for executed rounds (the paper's bounds are
    worst-case, so measured depth ≤ bound — E4 reports both).
    """
    if hops < 0:
        raise VertexError(f"hop budget must be non-negative, got {hops}")
    src = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if src.size == 0:
        raise VertexError("at least one source is required")
    if src.min() < 0 or src.max() >= graph.n:
        raise VertexError("source vertex out of range")

    with pram.subphase("bellman_ford"):
        dist = pram.broadcast(np.inf, graph.n, dtype=np.float64, label="bf_init")
        parent = pram.broadcast(-1, graph.n, dtype=np.int64, label="bf_init")
        dist[src] = 0.0
        parent[src] = src
        tails, heads, w = graph.arcs()
        rounds = 0
        for _ in range(hops):
            cand = dist[tails] + w
            prev = dist.copy()
            pram.scatter_min_arg(dist, parent, heads, cand, tails, label="bf_relax")
            rounds += 1
            if early_exit and np.array_equal(prev, dist):
                break
    return BellmanFordResult(dist=dist, parent=parent, rounds_used=rounds, hop_budget=hops)
