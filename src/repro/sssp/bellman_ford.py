"""Hop-limited Bellman–Ford on the PRAM machine.

The application side of the paper: once a (1+ε, β)-hopset H exists, a
β-round Bellman–Ford in G ∪ H from the source computes (1+ε)-approximate
distances (Theorem 3.8).  One dense round relaxes every arc once —
O(|E|+|H|) work, O(log n) depth (the concurrent minimum per vertex is a
combine tree) — so the full exploration is O(β·log n) depth, exactly the
paper's bound.  The relaxation loop itself is delegated to
:func:`repro.pram.frontier.frontier_relax`, which by default switches
per round between that dense schedule and a sparse frontier-driven one
(gather the out-arcs of only the vertices that changed) — bit-exact
``dist``/``parent``/``rounds_used`` either way, usually far less charged
work.  Pass ``engine="dense"`` to force the textbook schedule.

Parent pointers are tracked (deterministic tie-breaking), which the SPT
extraction of §4 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import VertexError
from repro.pram.frontier import ENGINES, FrontierStats, frontier_relax
from repro.pram.machine import PRAM

__all__ = ["BellmanFordResult", "bellman_ford"]


@dataclass
class BellmanFordResult:
    """Distances, parents, and the number of rounds actually executed."""

    dist: np.ndarray
    parent: np.ndarray  # parent[source] == source; -1 where unreached
    rounds_used: int
    hop_budget: int
    frontier_stats: FrontierStats | None = None

    @property
    def reached(self) -> np.ndarray:
        return np.isfinite(self.dist)


def bellman_ford(
    pram: PRAM,
    graph: Graph,
    sources: int | np.ndarray,
    hops: int,
    early_exit: bool = True,
    engine: str = "auto",
    fused: bool | None = None,
) -> BellmanFordResult:
    """``hops`` rounds of parallel edge relaxation from ``sources``.

    ``sources`` may be one vertex or an array (the multi-source variant
    runs one exploration whose distance is to the *nearest* source —
    used by the weight-reduction star assembly; Theorem 3.8's aMSSD runs
    one independent instance per source instead).

    With ``early_exit`` the loop stops once a round changes nothing; the
    cost model is charged only for executed rounds (the paper's bounds are
    worst-case, so measured depth ≤ bound — E4 reports both), and the
    no-change detection itself (compare + OR-reduce, or the frontier
    rebuild that subsumes it) is charged in every engine.

    ``engine`` selects the relaxation schedule — ``"dense"`` (all arcs
    every round), ``"sparse"`` (frontier-driven), or ``"auto"`` (per-round
    Ligra-style switch, the default); see :mod:`repro.pram.frontier`.
    ``fused`` toggles the fused relaxation kernel (default: the
    ``REPRO_FUSED`` environment default) — same outputs and charged cost,
    different wall-clock.  Dense relaxation rounds execute on ``pram``'s
    execution backend (:mod:`repro.pram.backends`): under
    ``REPRO_BACKEND=sharded[:W]`` the segmented minimum runs on a pool of
    shared-memory workers, again bit-exact and charge-identical.
    """
    if hops < 0:
        raise VertexError(f"hop budget must be non-negative, got {hops}")
    if engine not in ENGINES:
        raise VertexError(f"unknown engine {engine!r}, expected one of {ENGINES}")
    src = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if src.size == 0:
        raise VertexError("at least one source is required")
    if src.min() < 0 or src.max() >= graph.n:
        raise VertexError("source vertex out of range")

    with pram.subphase("bellman_ford"):
        dist = pram.broadcast(np.inf, graph.n, dtype=np.float64, label="bf_init")
        parent = pram.broadcast(-1, graph.n, dtype=np.int64, label="bf_init")
        dist[src] = 0.0
        parent[src] = src
        stats = frontier_relax(
            pram,
            graph,
            dist,
            parent,
            src,
            hops,
            engine=engine,
            early_exit=early_exit,
            label="bf",
            fused=fused,
        )
    return BellmanFordResult(
        dist=dist,
        parent=parent,
        rounds_used=stats.rounds,
        hop_budget=hops,
        frontier_stats=stats,
    )
