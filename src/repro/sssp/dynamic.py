"""Decremental approximate SSSP — the §1.4 future-work direction, realized.

The paper closes by conjecturing its techniques will be useful for dynamic
shortest paths [Ber09, BR11, HKN16].  The path-reporting mechanism (§4)
makes a *decremental* oracle straightforwardly sound:

* every hopset edge's weight equals the weight of its recorded memory
  path;
* under decremental updates (weight increases / deletions) a hopset edge
  stays a **safe upper bound** exactly as long as its memory path is
  intact — the path is still there, at the same cost;
* so on each update we invalidate precisely the hopset edges whose memory
  paths (transitively, through lower-scale hopset edges) touch a modified
  edge, and rebuild only when too few survive.

Queries run β-hop Bellman–Ford over the graph plus the *live* hopset
edges: answers never under-estimate; accuracy degrades gracefully as edges
invalidate and is restored by the (counted) rebuilds.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.build import from_edge_arrays, union_with_edges
from repro.graphs.csr import Graph
from repro.graphs.errors import InvalidGraphError, VertexError
from repro.hopsets.hopset import Hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.path_reporting import build_path_reporting_hopset
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

__all__ = ["DecrementalSSSP"]


def _key(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


class DecrementalSSSP:
    """A decremental (weight-increase / edge-deletion) distance oracle.

    Parameters
    ----------
    graph:
        The initial graph.
    params:
        Hopset parameters (the hopset is built path-reporting).
    rebuild_below:
        When the live fraction of hopset edges drops below this, the
        hopset is rebuilt from the current graph (counted in
        ``rebuilds``).
    """

    def __init__(
        self,
        graph: Graph,
        params: HopsetParams | None = None,
        rebuild_below: float = 0.5,
        pram: PRAM | None = None,
    ) -> None:
        if not 0.0 <= rebuild_below <= 1.0:
            raise InvalidGraphError("rebuild_below must lie in [0, 1]")
        self.params = params if params is not None else HopsetParams()
        self.rebuild_below = rebuild_below
        self.pram = pram if pram is not None else PRAM()
        self.graph = graph
        self.rebuilds = 0
        self.updates = 0
        self._build()

    # -- construction & indexing -------------------------------------------

    def _build(self) -> None:
        self.hopset, _ = build_path_reporting_hopset(self.graph, self.params, self.pram)
        self._alive = np.ones(len(self.hopset.edges), dtype=bool)
        # records as parallel arrays: _live_union is one mask away
        self._rec_u = np.array([e.u for e in self.hopset.edges], dtype=np.int64)
        self._rec_v = np.array([e.v for e in self.hopset.edges], dtype=np.int64)
        self._rec_w = np.array([e.weight for e in self.hopset.edges], dtype=np.float64)
        # pair → indices of hopset records on that pair
        self._records_on_pair: dict[tuple[int, int], list[int]] = {}
        # pair → indices of hopset records whose memory path *uses* the pair
        self._dependents: dict[tuple[int, int], list[int]] = {}
        for idx, e in enumerate(self.hopset.edges):
            self._records_on_pair.setdefault(_key(e.u, e.v), []).append(idx)
            assert e.path is not None
            for a, b in zip(e.path, e.path[1:]):
                self._dependents.setdefault(_key(int(a), int(b)), []).append(idx)
        self._index_edges()

    def _index_edges(self) -> None:
        """The pair → position map into the graph's canonical edge arrays.

        Edge positions are stable under weight-only updates (the canonical
        order sorts by the endpoint pair alone), so the map is rebuilt only
        here — at construction, after a rebuild, and after a deletion
        changes the edge count.
        """
        eu, ev, _ = self.graph.edges()
        self._edge_index = {
            (int(a), int(b)): i for i, (a, b) in enumerate(zip(eu, ev))
        }

    @property
    def live_fraction(self) -> float:
        """Fraction of hopset records still valid."""
        if self._alive.size == 0:
            return 1.0
        return float(self._alive.sum()) / self._alive.size

    def live_records(self) -> int:
        return int(self._alive.sum())

    # -- updates -------------------------------------------------------------

    def increase_weight(self, u: int, v: int, new_weight: float) -> None:
        """Raise the weight of edge (u, v); decremental-only is enforced."""
        old = self.graph.edge_weight(u, v)
        if not np.isfinite(old):
            raise InvalidGraphError(f"({u},{v}) is not an edge")
        if new_weight < old:
            raise InvalidGraphError(
                f"decremental oracle: weight of ({u},{v}) may only increase "
                f"({old} -> {new_weight})"
            )
        if new_weight == old:
            return
        self._apply_edge_change(u, v, new_weight)

    def delete_edge(self, u: int, v: int) -> None:
        """Remove edge (u, v) entirely."""
        if not self.graph.has_edge(u, v):
            raise InvalidGraphError(f"({u},{v}) is not an edge")
        self._apply_edge_change(u, v, None)

    def _apply_edge_change(self, u: int, v: int, new_weight: float | None) -> None:
        self.updates += 1
        eu, ev, ew = self.graph.edges()
        idx = self._edge_index[_key(u, v)]
        if new_weight is None:
            keep = np.ones(eu.size, dtype=bool)
            keep[idx] = False
            self.graph = from_edge_arrays(self.graph.n, eu[keep], ev[keep], ew[keep])
            self._index_edges()  # positions after idx shifted down by one
        else:
            ew = ew.copy()
            ew[idx] = new_weight
            self.graph = from_edge_arrays(self.graph.n, eu, ev, ew)
        self._invalidate(_key(u, v))
        if self.live_fraction < self.rebuild_below:
            self.rebuilds += 1
            self._build()

    def _invalidate(self, pair: tuple[int, int]) -> None:
        """Worklist propagation: kill every record depending on ``pair``.

        A record dies when its memory path contains a compromised pair —
        one whose graph edge was modified or whose covering records died —
        and a dead record compromises its own pair in turn (a lower-scale
        record's death can break a higher-scale path even if a graph edge
        still spans the pair, because the path's cost bound may have relied
        on the cheaper record; see the module docstring).
        """
        stack = [pair]
        seen: set[tuple[int, int]] = set()
        while stack:
            p = stack.pop()
            if p in seen:
                continue
            seen.add(p)
            for idx in self._dependents.get(p, ()):  # records using this pair
                if self._alive[idx]:
                    self._alive[idx] = False
                    e = self.hopset.edges[idx]
                    stack.append(_key(e.u, e.v))

    # -- queries ---------------------------------------------------------------

    def _live_union(self) -> Graph:
        mask = self._alive
        return union_with_edges(
            self.graph, self._rec_u[mask], self._rec_v[mask], self._rec_w[mask]
        )

    def distances(self, source: int, hop_budget: int | None = None) -> np.ndarray:
        """Distances from ``source``; never under the true distances.

        The default budget is n−1 with early exit: exact answers, with the
        live hopset edges only accelerating convergence.  A small explicit
        budget (e.g. 2β+1) trades accuracy for rounds as usual.
        """
        if not 0 <= source < self.graph.n:
            raise VertexError(f"source {source} out of range")
        budget = hop_budget if hop_budget is not None else max(self.graph.n - 1, 1)
        res = bellman_ford(self.pram, self._live_union(), source, budget)
        return res.dist
