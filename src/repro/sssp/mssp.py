"""The batched multi-source (S × V) matrix relaxation engine.

Elkin–Neiman's parallel MSSP observation (PAPERS.md, arXiv:2004.07572):
once the hopset exists, S hop-bounded explorations are one *rectangular
matrix* computation — an (S × V) distance/parent matrix advanced by one
vectorized relaxation pass per round — rather than S independent scans
of the same arc arrays.  :func:`explore_batch` is that engine: every
round it runs :func:`repro.pram.primitives.prelax_arcs_batch` (one
`RelaxPlan`-driven gather + combining-min over all still-active rows)
and masks converged rows out of later rounds.

**The determinism/accounting contract** (enforced by
``tests/sssp/test_mssp.py``): row r of the result — ``dist[r]``,
``parent[r]``, ``rounds_used[r]``, and the charge stream of ``costs[r]``
— is bit-identical to an independent single-source
:func:`~repro.sssp.bellman_ford.bellman_ford` run with
``engine="dense"`` (the fused schedule), at every batch width and on
every execution backend.  Each row carries its own
:class:`~repro.pram.cost.CostModel`, and the batch kernel replays the
solo per-row charge stream exactly — batching changes wall-clock only,
never what any row is charged.  A row whose cost model carries a
footprint hook (a shadow race detector) is transparently delegated to
the solo kernel so its write-footprints stream out unchanged.

The per-row schedule replayed here is ``bellman_ford``'s dense fused
path: a ``bellman_ford`` subphase wrapping two ``bf_init`` broadcasts,
then per executed round one ``frontier.size`` traffic event and one
``bf_relax``/``bf_converged`` relaxation; a row's final no-change round
*is* charged (that is how convergence is detected), after which the row
stops charging entirely.

``REPRO_MSSP`` / ``--mssp-block`` select the row-block width S used by
the call sites (:func:`repro.sssp.multi_source.approximate_mssd`, the
oracle, the serving layer): ``0``/``off``/``loop`` disables batching,
an integer sets the block, unset means :data:`DEFAULT_MSSP_BLOCK`.
"""

from __future__ import annotations

import os
from contextlib import ExitStack
from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import VertexError
from repro.pram.cost import CostModel
from repro.pram.errors import InvalidStepError
from repro.pram.primitives import pbroadcast, prelax_arcs_batch
from repro.pram.workspace import Workspace

__all__ = [
    "DEFAULT_MSSP_BLOCK",
    "BatchExploreResult",
    "explore_batch",
    "mssp_block_default",
]

#: Default row-block width of the matrix engine (sources per S×V pass).
#: Past the loop-vs-batch crossover (BENCH_mssp.json measures it; see
#: docs/mssp.md) yet small enough that the (S × V) round buffers stay
#: cache-friendly on the smoke graphs.
DEFAULT_MSSP_BLOCK = 32


def mssp_block_default() -> int:
    """The ``REPRO_MSSP`` environment default for the matrix block width.

    ``0`` / ``off`` / ``loop`` disable batching (callers fall back to one
    exploration per source); a positive integer is the block width; unset
    or ``on``/``matrix`` mean :data:`DEFAULT_MSSP_BLOCK`.
    """
    raw = os.environ.get("REPRO_MSSP", "").strip().lower()
    if raw in ("", "on", "matrix", "batch"):
        return DEFAULT_MSSP_BLOCK
    if raw in ("off", "loop", "none"):
        return 0
    try:
        block = int(raw)
    except ValueError:
        raise InvalidStepError(
            f"unknown REPRO_MSSP value {raw!r} "
            "(expected an integer block width, 'off', or 'on')"
        ) from None
    if block < 0:
        raise InvalidStepError(f"REPRO_MSSP block must be >= 0, got {block}")
    return block


@dataclass
class BatchExploreResult:
    """The S×V matrices plus per-row rounds and per-row charged cost."""

    sources: np.ndarray      # (S,) one source vertex per row
    dist: np.ndarray         # (S, n)
    parent: np.ndarray       # (S, n)
    rounds_used: np.ndarray  # (S,) rounds each row executed before converging
    costs: list[CostModel]   # per-row charge stream, index-aligned with rows
    hop_budget: int


def explore_batch(
    graph: Graph,
    sources: np.ndarray,
    hops: int,
    costs: list[CostModel] | None = None,
    workspace: Workspace | None = None,
    backend=None,
    obs_cost: CostModel | None = None,
    out: tuple[np.ndarray, np.ndarray] | None = None,
) -> BatchExploreResult:
    """Run S single-source β-hop explorations as one (S × V) matrix sweep.

    Row r computes the hop-``hops`` exploration from ``sources[r]`` on
    ``graph``; outputs and the charge stream of ``costs[r]`` are
    bit-identical to ``bellman_ford(PRAM(costs[r], ...), graph,
    sources[r], hops, engine="dense")`` — the module-docstring contract.

    Parameters
    ----------
    costs:
        One :class:`CostModel` per row (fresh ones by default).  Rows
        whose model wants footprints are delegated to the solo kernel.
    workspace:
        Scratch pool for the row-block round buffers (``relaxb.*``) and
        the cached :class:`~repro.pram.primitives.RelaxPlan`.
    backend:
        Execution backend for the per-round segmented minimum
        (:meth:`~repro.pram.backends.base.ExecutionBackend.relax_segmin_batch`);
        ``None`` computes in-process.
    obs_cost:
        Optional cost model that receives backend *telemetry* traffic
        (``backend.batch_round`` …) — observability only, never charges.
    out:
        Optional ``(dist, parent)`` matrices of shape (S, n) to fill in
        place (e.g. slices of a caller-owned result matrix).
    """
    if hops < 0:
        raise VertexError(f"hop budget must be non-negative, got {hops}")
    src = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if src.ndim != 1 or src.size == 0:
        raise VertexError("at least one source is required")
    if src.min() < 0 or src.max() >= graph.n:
        raise VertexError("source vertex out of range")
    n = graph.n
    n_rows = int(src.size)
    ws = workspace if workspace is not None else Workspace()
    if costs is None:
        costs = [CostModel() for _ in range(n_rows)]
    elif len(costs) != n_rows:
        raise VertexError(
            f"need one CostModel per row: {len(costs)} models, {n_rows} sources"
        )
    if out is not None:
        dist, parent = out
    else:
        dist = np.empty((n_rows, n), dtype=np.float64)
        parent = np.empty((n_rows, n), dtype=np.int64)
    rounds = np.zeros(n_rows, dtype=np.int64)
    plan = ws.relax_plan(graph)
    with ExitStack() as stack:
        # Every row's charges sit under its own "bellman_ford" subphase,
        # exactly like the solo runs they replay.
        for c in costs:
            stack.enter_context(c.subphase("bellman_ford"))
        for r in range(n_rows):
            # The solo init: two bf_init broadcasts + uncharged source seed.
            dist[r] = pbroadcast(costs[r], np.inf, n, dtype=np.float64, label="bf_init")
            parent[r] = pbroadcast(costs[r], -1, n, dtype=np.int64, label="bf_init")
            dist[r, src[r]] = 0.0
            parent[r, src[r]] = src[r]
        active = np.ones(n_rows, dtype=bool)
        for _ in range(hops):
            if not active.any():
                break
            for r in np.flatnonzero(active):
                # Solo dense rounds report the (singleton) frontier size.
                costs[int(r)].traffic("frontier.size", elements=1)
            rounds[active] += 1
            changed = prelax_arcs_batch(
                costs,
                dist,
                parent,
                plan=plan,
                active=active,
                workspace=ws,
                backend=backend,
                obs_cost=obs_cost,
                label="bf_relax",
                changed_label="bf_converged",
            )
            # A no-change round is charged (it is the convergence check);
            # the row then leaves the active set and stops charging.
            active &= changed
    return BatchExploreResult(
        sources=src,
        dist=dist,
        parent=parent,
        rounds_used=rounds,
        costs=costs,
        hop_budget=hops,
    )
