"""(1+ε)-approximate multi-source shortest distances (aMSSD, Theorem 3.8).

One hopset serves every source: |S| independent β-hop Bellman–Ford
explorations run *in parallel* on the PRAM (each gets its own processor
slice), so the depth stays one exploration's depth while the work scales
with |S| — the E11 experiment measures exactly this separation.

Because the simulator executes sequentially, the parallel composition is
accounted explicitly: depth = max over explorations, work = sum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import VertexError
from repro.hopsets.hopset import Hopset
from repro.pram.cost import CostModel, CostSnapshot
from repro.pram.machine import PRAM
from repro.pram.workspace import Workspace, fused_default
from repro.sssp.bellman_ford import bellman_ford
from repro.sssp.mssp import explore_batch, mssp_block_default

__all__ = ["MultiSourceResult", "approximate_mssd"]


@dataclass
class MultiSourceResult:
    """|S| × n distance matrix plus the parallel-composition cost."""

    sources: np.ndarray
    dist: np.ndarray    # shape (|S|, n)
    parent: np.ndarray  # shape (|S|, n)
    work: int           # total over explorations
    depth: int          # max over explorations (they run side by side)

    def cost(self) -> CostSnapshot:
        return CostSnapshot(self.work, self.depth)


def approximate_mssd(
    graph: Graph,
    hopset: Hopset,
    sources: np.ndarray,
    pram: PRAM | None = None,
    hop_budget: int | None = None,
    engine: str = "auto",
    fused: bool | None = None,
    block: int | None = None,
) -> MultiSourceResult:
    """Run one β-hop exploration per source over G ∪ H.

    The outer ``pram`` (if given) is charged with the composed cost:
    sum-of-work, max-of-depth.  ``engine`` selects the per-exploration
    relaxation schedule (see :mod:`repro.pram.frontier`); the result is
    bit-exact regardless.  All explorations share one scratch
    :class:`~repro.pram.workspace.Workspace` (the outer machine's, if
    given), so the fused fast path allocates its round buffers once for
    the whole sweep; they also share the outer machine's execution
    backend (:mod:`repro.pram.backends`).  If an exploration raises, the
    shared pool's buffers acquired by the sweep are released before the
    error propagates.

    ``block`` selects the S×V *matrix engine* width
    (:func:`repro.sssp.mssp.explore_batch`): source blocks of that size
    advance as one (block × n) matrix per relaxation round — same
    distances/parents, one vectorized pass instead of ``block`` scans.
    ``None`` follows the ``REPRO_MSSP`` environment default
    (``--mssp-block`` on the CLI); ``0`` forces the per-source loop.
    The matrix engine replays the fused *dense* schedule per row, so it
    engages only when that is what was asked for (``engine`` of
    ``"auto"``/``"dense"`` with the fused kernels enabled); explicit
    ``"sparse"`` scheduling or ``fused=False`` fall back to the loop.
    """
    src = np.asarray(sources, dtype=np.int64)
    if src.ndim != 1 or src.size == 0:
        raise VertexError("sources must be a non-empty 1-D array")
    union = hopset.union_graph(graph)
    budget = hop_budget if hop_budget is not None else min(2 * hopset.beta + 1, max(graph.n - 1, 1))
    dists = np.empty((src.size, graph.n))
    parents = np.empty((src.size, graph.n), dtype=np.int64)
    total_work = 0
    max_depth = 0
    shared_ws = pram.workspace if pram is not None else Workspace()
    backend = pram.backend if pram is not None else None
    nblock = mssp_block_default() if block is None else int(block)
    use_fused = fused_default() if fused is None else bool(fused)
    use_matrix = nblock >= 1 and use_fused and engine in ("auto", "dense")
    ok = False
    try:
        if use_matrix:
            for lo in range(0, int(src.size), nblock):
                chunk = src[lo : lo + nblock]
                hi = lo + int(chunk.size)
                res = explore_batch(
                    union, chunk, budget,
                    workspace=shared_ws, backend=backend,
                    obs_cost=pram.cost if pram is not None else None,
                    out=(dists[lo:hi], parents[lo:hi]),
                )
                total_work += sum(c.work for c in res.costs)
                max_depth = max(max_depth, max(c.depth for c in res.costs))
        else:
            for row, s in enumerate(src):
                local = PRAM(CostModel(), workspace=shared_ws, backend=backend)
                bf = bellman_ford(local, union, int(s), budget, engine=engine, fused=fused)
                dists[row] = bf.dist
                parents[row] = bf.parent
                total_work += local.cost.work
                max_depth = max(max_depth, local.cost.depth)
        ok = True
    finally:
        if not ok:
            # A failed exploration must not leave the sweep's pooled round
            # buffers (and the cached plan of the abandoned union graph)
            # pinned in the shared workspace — release them so the caller's
            # pool shrinks back to its pre-sweep footprint.
            shared_ws.clear()
    if pram is not None:
        with pram.phase("mssd"):
            pram.charge(work=total_work, depth=max_depth, label="mssd")
    return MultiSourceResult(
        sources=src, dist=dists, parent=parents, work=total_work, depth=max_depth
    )
