"""A (1+ε)-approximate distance oracle backed by one hopset.

The S×V application of §1.2 ([EN20]): once the hopset exists, every source
costs one β-hop Bellman–Ford.  The oracle materializes G ∪ H once, caches
per-source distance *and parent* vectors (LRU), and answers:

* ``query(u, v)`` — a (1+ε)-approximate u–v distance,
* ``path(u, v)`` — the vertex sequence realizing that estimate,
* ``distances_from(s)`` / ``parents_from(s)`` — full vectors for one source,
* ``batch(sources)`` — the S × V matrix of Theorem 3.8's aMSSD.

Pair queries are answered from whichever endpoint is already cached, so a
locality-heavy query stream touches few explorations.  The serving layer
(:mod:`repro.serve`) stacks a micro-batcher and an exact-hit pair cache on
top of this tier; it pins its answers to the *first-named* endpoint instead
of the opportunistic swap so that served values are cache-state independent
(see ``docs/serving.md``).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.graphs.csr import Graph
from repro.graphs.errors import VertexError
from repro.hopsets.hopset import Hopset
from repro.pram.machine import PRAM
from repro.sssp.mssp import explore_batch, mssp_block_default

__all__ = ["HopsetDistanceOracle", "tree_path"]


def tree_path(parent: np.ndarray, s: int, t: int, n: int) -> list[int] | None:
    """The s→t vertex sequence through an exploration tree rooted at ``s``.

    Follows ``parent`` pointers from ``t`` back to ``s`` and reverses;
    returns ``None`` when the walk leaves the tree (no parent) or exceeds
    ``n`` steps — callers check reachability via the distance first.
    """
    walk = [t]
    while walk[-1] != s:
        nxt = int(parent[walk[-1]])
        if nxt < 0 or len(walk) > n:
            return None
        walk.append(nxt)
    walk.reverse()
    return walk


class HopsetDistanceOracle:
    """Build once, query many — the intended usage pattern of a hopset.

    Parameters
    ----------
    graph, hopset:
        The base graph and a prebuilt hopset for it.
    hop_budget:
        Rounds per exploration; defaults to 2β+1 (Lemma 2.1's splice).
    cache_size:
        Number of source vectors kept (LRU).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when given,
        cache outcomes increment ``oracle.cache.{hit,miss}`` counters there.
        Outcomes are also reported as cost-model traffic under the same
        labels, so any attached hook (tracer, registry) sees them in trace
        summaries without the oracle knowing about it.
    mssp_block:
        Row-block width of the S×V matrix engine
        (:func:`repro.sssp.mssp.explore_batch`) used for tier-2
        explorations; ``None`` follows ``REPRO_MSSP``.  Per-source
        outputs and charges are block-invariant (the matrix contract),
        only wall-clock changes.
    union:
        An already-materialized G ∪ H to explore instead of building
        one from ``hopset.union_graph(graph)`` — the dynamic serving
        path hands the :class:`~repro.dynamic.engine.DynamicOracle`'s
        mutable union here (and re-points the attribute after a
        maintenance pass swaps it).  Any object exposing the CSR quartet
        (``indptr``/``indices``/``weights``/``n``) works.

    **Counters.**  ``misses`` counts tier-1 vector-cache misses (a
    source was requested and its vectors were not resident);
    ``explorations`` counts tier-2 β-hop explorations actually run.
    They are distinct tiers: :meth:`explore_many` (the serving layer's
    grouped pre-explore) runs the exploration and books the miss at
    grouping time, and vectors pre-installed that way are handed to the
    *first* subsequent :meth:`vectors_from` without re-counting — so
    any partitioning of a request stream into batches yields the same
    counter values as serving it one request at a time.
    """

    def __init__(
        self,
        graph: Graph,
        hopset: Hopset,
        hop_budget: int | None = None,
        cache_size: int = 32,
        pram: PRAM | None = None,
        metrics=None,
        mssp_block: int | None = None,
        union=None,
    ) -> None:
        if hopset.n != graph.n:
            raise VertexError("hopset and graph disagree on the vertex count")
        if cache_size < 1:
            raise VertexError("cache_size must be at least 1")
        self.graph = graph
        self.hopset = hopset
        self.union = union if union is not None else hopset.union_graph(graph)
        self.hop_budget = (
            hop_budget
            if hop_budget is not None
            else min(2 * hopset.beta + 1, max(graph.n - 1, 1))
        )
        self.pram = pram if pram is not None else PRAM()
        #: source -> (dist, parent), most-recently-used last
        self._cache: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._cache_size = cache_size
        self.metrics = metrics
        block = mssp_block_default() if mssp_block is None else int(mssp_block)
        #: sources per S×V matrix pass (0/1: one row at a time)
        self.mssp_block = max(block, 1)
        #: tier-2 explorations actually run (rows of matrix passes)
        self.explorations = 0
        #: S×V matrix passes run (each explores >= 1 rows)
        self.matrix_passes = 0
        self.hits = 0
        #: tier-1 vector-cache misses (requested source not resident)
        self.misses = 0
        #: sources pre-explored by :meth:`explore_many` whose (already
        #: booked) miss has not yet been claimed by a ``vectors_from``
        self._fresh: set[int] = set()
        #: rounds each cached source's exploration ran before converging
        #: (== hop_budget means possibly truncated, not provably settled)
        self._rounds: dict[int, int] = {}

    def _note(self, event: str) -> None:
        """Record one cache outcome (``hit`` | ``miss``) with every sink."""
        self.pram.cost.traffic(f"oracle.cache.{event}", elements=1)
        if self.metrics is not None:
            self.metrics.counter(f"oracle.cache.{event}").inc()

    def is_cached(self, source: int) -> bool:
        """Whether ``source``'s vectors are resident (no LRU touch)."""
        return source in self._cache

    def vectors_from(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        """The cached ``(dist, parent)`` pair of ``source``, exploring on miss."""
        if not 0 <= source < self.graph.n:
            raise VertexError(f"source {source} out of range")
        if source in self._cache:
            if source in self._fresh:
                # Pre-explored by explore_many, which already booked the
                # miss this lookup would have been — claim it silently.
                self._fresh.discard(source)
            else:
                self.hits += 1
                self._note("hit")
            self._cache.move_to_end(source)
            return self._cache[source]
        self.explore_many([source])
        self._fresh.discard(source)
        self._cache.move_to_end(source)
        return self._cache[source]

    def explore_many(self, sources) -> dict[int, int]:
        """Explore every not-yet-cached source in S×V matrix passes.

        The serving layer's grouped tier-2 entry point: the distinct
        uncached sources of one micro-batch advance together, one
        (S × n) matrix pass per ``mssp_block`` rows
        (:func:`repro.sssp.mssp.explore_batch`).  Each explored source
        books one tier-1 miss and one tier-2 exploration here — the
        first later :meth:`vectors_from` lookup claims the pre-counted
        miss instead of booking a hit, so counters and charges match
        one-at-a-time serving exactly.

        Returns ``{source: charged work}`` of the explored sources (the
        serving layer's per-source attribution); already-cached sources
        are skipped and absent from the result.
        """
        todo: list[int] = []
        seen: set[int] = set()
        for s in sources:
            s = int(s)
            if not 0 <= s < self.graph.n:
                raise VertexError(f"source {s} out of range")
            if s not in self._cache and s not in seen:
                seen.add(s)
                todo.append(s)
        charges: dict[int, int] = {}
        for lo in range(0, len(todo), self.mssp_block):
            chunk = np.asarray(todo[lo : lo + self.mssp_block], dtype=np.int64)
            res = explore_batch(
                self.union, chunk, self.hop_budget,
                workspace=self.pram.workspace, backend=self.pram.backend,
                obs_cost=self.pram.cost,
            )
            self.matrix_passes += 1
            # Fold the per-row charge streams into the oracle's machine
            # under the same subphase the rows charged themselves —
            # the aggregate equals |chunk| sequential solo explorations,
            # so charges are independent of how requests were batched.
            with self.pram.cost.subphase("bellman_ford"):
                for i, s in enumerate(map(int, chunk)):
                    row_cost = res.costs[i]
                    self.pram.cost.charge(
                        work=row_cost.work, depth=row_cost.depth, label="bf_matrix"
                    )
                    charges[s] = row_cost.work
                    self.explorations += 1
                    self.misses += 1
                    self._note("miss")
                    self._fresh.add(s)
                    self._cache[s] = (res.dist[i], res.parent[i])
                    self._rounds[s] = int(res.rounds_used[i])
                    if len(self._cache) > self._cache_size:
                        evicted, _ = self._cache.popitem(last=False)
                        self._fresh.discard(evicted)
                        self._rounds.pop(evicted, None)
        return charges

    def invalidate_all(self) -> list[int]:
        """Evict every cached source vector; returns the evicted sources.

        The dynamic serving path's response to an *improvement*
        (weight decrease / edge insert): cached vectors are stale upper
        bounds everywhere, so nothing survives.  Counters are untouched
        — invalidation is not a miss, the next lookup is.
        """
        evicted = list(self._cache)
        self._cache.clear()
        self._fresh.clear()
        self._rounds.clear()
        return evicted

    def invalidate_touching(self, codes: np.ndarray) -> list[int]:
        """Evict cached sources a *worsening* of the coded pairs can reach.

        ``codes`` encodes the worsened pairs
        (:func:`repro.dynamic.engine.pair_codes`).  A cached vector
        survives exactly when its exploration tree avoids every coded
        pair **and** the exploration provably converged within the hop
        budget — a converged tree that never crosses a worsened pair
        re-derives the identical vector on recompute (docs/dynamic.md),
        which is the serving determinism contract's bar for keeping it.
        Returns the evicted sources (the serving layer evicts their
        tier-0 entries alongside).
        """
        from repro.dynamic.engine import tree_touches

        evicted = []
        for s in list(self._cache):
            converged = self._rounds.get(s, self.hop_budget) < self.hop_budget
            if converged and not tree_touches(
                self._cache[s][1], codes, self.graph.n
            ):
                continue
            del self._cache[s]
            self._fresh.discard(s)
            self._rounds.pop(s, None)
            evicted.append(s)
        return evicted

    def finish_batch(self) -> None:
        """Drop unclaimed pre-counted misses at the end of a served batch.

        A source pre-explored for a batch is normally claimed by that
        batch's first ``vectors_from`` lookup; if the claiming request
        errored after grouping, the leftover marker must not silently
        swallow a *future* hit.
        """
        self._fresh.clear()

    def distances_from(self, source: int) -> np.ndarray:
        """The cached (1+ε)-approximate distance vector of ``source``."""
        return self.vectors_from(source)[0]

    def parents_from(self, source: int) -> np.ndarray:
        """The parent vector of ``source``'s exploration tree."""
        return self.vectors_from(source)[1]

    def query(self, u: int, v: int) -> float:
        """A (1+ε)-approximate u–v distance (symmetric)."""
        if not 0 <= v < self.graph.n:
            raise VertexError(f"vertex {v} out of range")
        if u == v:
            return 0.0
        if v in self._cache and u not in self._cache:
            u, v = v, u
        return float(self.distances_from(u)[v])

    def path(self, u: int, v: int) -> list[int] | None:
        """The u→v vertex sequence behind :meth:`query`'s estimate.

        Reconstructed from the exploration tree of whichever endpoint is
        (or becomes) cached, following the same endpoint-swap rule as
        :meth:`query`; returns ``None`` when ``v`` is unreached within the
        hop budget.  Tree edges may be hopset shortcuts, so consecutive
        vertices are adjacent in G ∪ H, not necessarily in G.
        """
        if not 0 <= v < self.graph.n:
            raise VertexError(f"vertex {v} out of range")
        if not 0 <= u < self.graph.n:
            raise VertexError(f"vertex {u} out of range")
        if u == v:
            return [u]
        swapped = v in self._cache and u not in self._cache
        s, t = (v, u) if swapped else (u, v)
        dist, parent = self.vectors_from(s)
        if not np.isfinite(dist[t]):
            return None
        walk = tree_path(parent, s, t, self.graph.n)
        if walk is None:
            return None  # broken tree (cannot happen on a finite dist)
        # ``walk`` runs s -> t; when the endpoints were swapped (s = v),
        # the u -> v path is its reverse.
        return walk[::-1] if swapped else walk

    def batch(self, sources: np.ndarray) -> np.ndarray:
        """The |S| × n matrix of Theorem 3.8's aMSSD."""
        src = np.asarray(sources, dtype=np.int64)
        return np.stack([self.distances_from(int(s)) for s in src])

    def cache_info(self) -> dict[str, int]:
        """Cache and exploration counters, tier by tier.

        ``misses`` counts **tier-1** vector-cache misses (requested
        source not resident) and ``explorations`` counts **tier-2**
        β-hop explorations actually run; the historical aliases are kept
        alongside the explicitly-tiered names (``tier1_vector_misses``,
        ``tier2_explorations``) plus ``matrix_passes``, the number of
        S×V matrix sweeps those explorations were grouped into.
        """
        return {
            "cached_sources": len(self._cache),
            "explorations": self.explorations,
            "hits": self.hits,
            "misses": self.misses,
            "tier1_vector_misses": self.misses,
            "tier2_explorations": self.explorations,
            "matrix_passes": self.matrix_passes,
            "mssp_block": self.mssp_block,
        }
