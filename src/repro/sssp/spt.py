"""(1+ε)-approximate shortest-path *trees* — Section 4 / Theorem 4.6.

Distances alone do not give paths.  Given a path-reporting hopset, the
peeling procedure (Algorithm 1) converts the β-hop Bellman–Ford tree in
G ∪ H — which contains hopset edges — into a genuine spanning tree of G:

  iteration k = λ, λ−1, …, k0:  every tree edge from H_k is replaced by its
  memory path (a path in ``E ∪ H_{k−1}``); interior path vertices receive
  candidate (distance, parent) proposals through the global array M, sorted
  and resolved exactly as §4.1 describes; Lemma 4.1's invariant
  (d(p(v)) < d(v)) keeps the structure acyclic after every iteration.

After the last iteration every parent edge lies in E; the §4.2 pointer-
jumping pass (Lemma 4.3) computes exact distances in the resulting tree T,
which satisfies d_T(s, v) ≤ stretch·d_G(s, v).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.csr import Graph
from repro.hopsets.errors import PathReportingError
from repro.hopsets.hopset import Hopset, HopsetEdge
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

__all__ = ["SPTResult", "approximate_spt"]

_TOL = 1e-9


@dataclass
class SPTResult:
    """A spanning tree of G (parent array + exact tree distances)."""

    source: int
    parent: np.ndarray        # parent[source] == source; -1 where unreached
    dist: np.ndarray          # exact distances *in the tree* (inf unreached)
    replacements: dict[int, int] = field(default_factory=dict)  # scale → #edges peeled
    rounds_used: int = 0

    def tree_edges(self) -> list[tuple[int, int]]:
        out = []
        for v in range(self.parent.size):
            p = int(self.parent[v])
            if p >= 0 and p != v:
                out.append((p, v))
        return out


def _edge_key(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


def _best_records(hopset: Hopset) -> dict[tuple[int, int], HopsetEdge]:
    """Per vertex pair, the lightest hopset record (ties → lower scale)."""
    best: dict[tuple[int, int], HopsetEdge] = {}
    for e in hopset.edges:
        key = _edge_key(e.u, e.v)
        cur = best.get(key)
        if cur is None or (e.weight, e.scale) < (cur.weight, cur.scale):
            best[key] = e
    return best


def approximate_spt(
    graph: Graph,
    hopset: Hopset,
    source: int,
    pram: PRAM | None = None,
    hop_budget: int | None = None,
) -> SPTResult:
    """Extract a (1+ε)-SPT rooted at ``source`` (Algorithm 1).

    ``hopset`` must be path-reporting (every edge carries a memory path);
    otherwise :class:`PathReportingError` is raised.

    ``hop_budget`` defaults to n−1 rounds: a *tree* should span every
    reachable vertex even when the hopset is too weak to certify (1+ε) at
    2β+1 hops, and the Bellman–Ford early exit makes the generous default
    free whenever the hopset is adequate (it converges within ~2β+1 rounds
    anyway).  Pass an explicit budget to study truncated-budget behaviour
    (vertices beyond it stay at parent −1 / distance ∞).
    """
    pram = pram if pram is not None else PRAM()
    n = graph.n
    for e in hopset.edges:
        if e.path is None:
            raise PathReportingError(
                "SPT extraction needs a path-reporting hopset "
                "(use build_path_reporting_hopset)"
            )

    union = hopset.union_graph(graph)
    budget = hop_budget if hop_budget is not None else max(n - 1, 1)
    with pram.phase("spt_explore"):
        bf = bellman_ford(pram, union, source, budget)
    parent = bf.parent.copy()
    dist = bf.dist.copy()

    graph_w: dict[tuple[int, int], float] = {
        _edge_key(int(u), int(v)): float(w) for u, v, w in zip(*graph.edges())
    }
    records = _best_records(hopset)

    def is_graph_edge(u: int, v: int) -> bool:
        key = _edge_key(u, v)
        gw = graph_w.get(key)
        if gw is None:
            return False
        rec = records.get(key)
        return rec is None or gw <= rec.weight + _TOL

    def path_weights(path: tuple[int, ...]) -> np.ndarray:
        """Per-edge weights along a memory path (edges from E ∪ H_{<k})."""
        out = np.empty(len(path) - 1)
        for j, (a, b) in enumerate(zip(path, path[1:])):
            key = _edge_key(int(a), int(b))
            gw = graph_w.get(key, np.inf)
            rec = records.get(key)
            rw = rec.weight if rec is not None else np.inf
            w = min(gw, rw)
            if not np.isfinite(w):
                raise PathReportingError(
                    f"memory path step ({a},{b}) is not an edge of E ∪ H"
                )
            out[j] = w
        return out

    def peel_scale(k: int) -> int:
        """One iteration of Algorithm 1 for scale k; returns #edges peeled."""
        proposals: list[tuple[int, float, int]] = []  # (vertex, dist, parent)
        forced: list[tuple[int, int]] = []            # (vertex v, new parent)
        peeled = 0
        for v in range(n):
            p = int(parent[v])
            if p < 0 or p == v:
                continue
            if is_graph_edge(p, v):
                continue
            rec = records.get(_edge_key(p, v))
            if rec is None:
                raise PathReportingError(
                    f"tree edge ({p},{v}) is neither a graph edge nor a hopset record"
                )
            if rec.scale != k:
                continue  # handled in its own scale's iteration
            path = rec.path if rec.u == p else rec.path[::-1]
            ws = path_weights(path)
            prefix = np.concatenate([[0.0], np.cumsum(ws)])
            base = float(dist[p])
            for j in range(1, len(path) - 1):
                proposals.append((int(path[j]), base + float(prefix[j]), int(path[j - 1])))
            forced.append((v, int(path[-2])))
            peeled += 1
        # the global array M: sort, and let each vertex take its best entry
        for v, new_p in forced:
            parent[v] = new_p
        if proposals:
            arr_v = np.array([p[0] for p in proposals], dtype=np.int64)
            arr_d = np.array([p[1] for p in proposals])
            arr_p = np.array([p[2] for p in proposals], dtype=np.int64)
            order = pram.lexsort((arr_p, arr_d, arr_v), label="peel_sort")
            arr_v, arr_d, arr_p = arr_v[order], arr_d[order], arr_p[order]
            first = np.ones(arr_v.size, dtype=bool)
            first[1:] = arr_v[1:] != arr_v[:-1]
            for i in np.flatnonzero(first):
                v = int(arr_v[i])
                if arr_d[i] < dist[v] - _TOL:
                    dist[v] = float(arr_d[i])
                    parent[v] = int(arr_p[i])
        pram.charge(work=n + len(proposals), depth=2, label="peel_commit")
        return peeled

    def has_hopset_tree_edge() -> bool:
        for v in range(n):
            p = int(parent[v])
            if p >= 0 and p != v and not is_graph_edge(p, v):
                return True
        return False

    # Iterate the descending-scale sweep to a fixpoint.  A single sweep can
    # strand an edge: a memory-path step may be realized by a record whose
    # *best* (lightest) twin lives at an already-processed higher scale.
    # Re-sweeping handles it; the (weight, scale) of every stranded edge
    # strictly lexicographically decreases, so the loop terminates well
    # within #scales + 2 passes.
    replacements: dict[int, int] = {}
    scale_order = sorted(hopset.scales(), reverse=True)
    for _ in range(len(scale_order) + 2):
        for k in scale_order:
            with pram.phase(f"spt_peel/scale{k}"):
                peeled = peel_scale(k)
            if peeled:
                replacements[k] = replacements.get(k, 0) + peeled
        if not has_hopset_tree_edge():
            break
    else:
        raise PathReportingError("peeling did not converge to graph-only tree edges")

    # every remaining tree edge must be a graph edge
    edge_w = np.zeros(n)
    for v in range(n):
        p = int(parent[v])
        if p < 0 or p == v:
            continue
        key = _edge_key(p, v)
        if key not in graph_w:
            raise PathReportingError(f"peeling left a non-graph tree edge ({p},{v})")
        edge_w[v] = graph_w[key]

    # §4.2 pointer jumping for exact tree distances
    q = parent.copy()
    unreached = q < 0
    q[unreached] = np.flatnonzero(unreached)
    with pram.phase("spt_rank"):
        root, tree_dist = pram.pointer_jump(q, edge_w)
    del root
    tree_dist[unreached] = np.inf
    return SPTResult(
        source=source,
        parent=parent,
        dist=tree_dist,
        replacements=replacements,
        rounds_used=bf.rounds_used,
    )
