"""(1+ε)-approximate single-source shortest distances — Theorem 3.8.

Pipeline: build the deterministic hopset (Theorem 3.7), materialize G ∪ H,
and run a β-hop Bellman–Ford from the source.  The hopset build dominates
both work and depth; the exploration adds O(β log n) depth and O(|E|+|H|)
work per round, exactly as the theorem's accounting says.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.csr import Graph
from repro.hopsets.hopset import Hopset
from repro.hopsets.multi_scale import BuildReport, build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.cost import CostSnapshot
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import BellmanFordResult, bellman_ford

__all__ = ["SSSPResult", "approximate_sssp", "approximate_sssp_with_hopset"]


@dataclass
class SSSPResult:
    """Distances plus the full resource/provenance record."""

    source: int
    dist: np.ndarray
    parent: np.ndarray
    hopset: Hopset
    build_report: BuildReport | None
    query_cost: CostSnapshot
    rounds_used: int


def approximate_sssp(
    graph: Graph,
    source: int,
    params: HopsetParams | None = None,
    pram: PRAM | None = None,
    engine: str = "auto",
    fused: bool | None = None,
) -> SSSPResult:
    """End-to-end (1+ε)-SSSD: hopset construction + β-hop exploration."""
    pram = pram if pram is not None else PRAM()
    params = params if params is not None else HopsetParams()
    hopset, report = build_hopset(graph, params, pram)
    result = approximate_sssp_with_hopset(
        graph, hopset, source, pram, engine=engine, fused=fused
    )
    return SSSPResult(
        source=source,
        dist=result.dist,
        parent=result.parent,
        hopset=hopset,
        build_report=report,
        query_cost=result.query_cost,
        rounds_used=result.rounds_used,
    )


def approximate_sssp_with_hopset(
    graph: Graph,
    hopset: Hopset,
    source: int,
    pram: PRAM | None = None,
    hop_budget: int | None = None,
    engine: str = "auto",
    fused: bool | None = None,
) -> SSSPResult:
    """β-hop Bellman–Ford in G ∪ H from a prebuilt hopset.

    ``hop_budget`` defaults to the hopset's β times a small spare factor
    (the splice of Lemma 2.1 uses 2β+1 hops), capped at n−1 where
    hop-limited equals exact.  ``engine`` selects the relaxation schedule
    (see :mod:`repro.pram.frontier`); results are bit-exact either way,
    as is ``fused`` (wall-clock fast path, default ``REPRO_FUSED``).
    """
    pram = pram if pram is not None else PRAM()
    union = hopset.union_graph(graph)
    budget = hop_budget if hop_budget is not None else min(2 * hopset.beta + 1, max(graph.n - 1, 1))
    before = pram.snapshot()
    with pram.phase("sssp_query"):
        bf: BellmanFordResult = bellman_ford(
            pram, union, source, budget, engine=engine, fused=fused
        )
    cost = pram.snapshot() - before
    return SSSPResult(
        source=source,
        dist=bf.dist,
        parent=bf.parent,
        hopset=hopset,
        build_report=None,
        query_cost=cost,
        rounds_used=bf.rounds_used,
    )
