"""Cost-attribution reports."""

from repro.analysis.breakdown import breakdown_table, cost_breakdown, step_kind_breakdown
from repro.graphs.generators import erdos_renyi
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.cost import CostModel
from repro.pram.machine import PRAM


def test_breakdown_simple_phases():
    c = CostModel()
    with c.phase("a"):
        c.charge(work=10, depth=1)
    with c.phase("b"):
        c.charge(work=30, depth=2)
    out = cost_breakdown(c)
    assert [pc.phase for pc in out] == ["b", "a"]  # sorted by work desc
    assert out[0].work == 30 and out[0].work_share == 0.75


def test_breakdown_keeps_leaves_only():
    c = CostModel()
    with c.phase("outer"):
        with c.phase("outer/inner"):
            c.charge(work=5, depth=1)
    names = {pc.phase for pc in cost_breakdown(c)}
    assert "outer/inner" in names
    assert "outer" not in names  # ancestor would double-count


def test_breakdown_of_real_build_sums_sensibly():
    g = erdos_renyi(32, 0.15, seed=501)
    pram = PRAM()
    build_hopset(g, HopsetParams(beta=6), pram)
    out = cost_breakdown(pram.cost)
    assert out, "a real build must have phases"
    assert all(pc.work >= 0 for pc in out)
    # leaves partition most of the charged work (some charges are unphased)
    assert sum(pc.work for pc in out) <= pram.cost.work
    # detection and interconnection phases exist
    names = " ".join(pc.phase for pc in out)
    assert "detect" in names and "interconnect" in names


def test_breakdown_table_renders():
    c = CostModel()
    with c.phase("x"):
        c.charge(work=7, depth=1)
    table = breakdown_table(c, title="T")
    assert "T" in table and "x" in table and "100.0%" in table


def test_step_kind_breakdown():
    c = CostModel(record_steps=True)
    c.charge(work=4, depth=1, label="relax")
    c.charge(work=6, depth=2, label="relax")
    c.charge(work=5, depth=1, label="sort")
    kinds = step_kind_breakdown(c)
    assert kinds["relax"] == (10, 3)
    assert kinds["sort"] == (5, 1)
