"""Registry ↔ bench files ↔ docs consistency."""

from pathlib import Path

import pytest

from repro.analysis.experiments import EXPERIMENTS, bench_module_name, experiment

REPO = Path(__file__).resolve().parents[2]


def test_ids_unique_and_sequential():
    ids = [e.exp_id for e in EXPERIMENTS]
    assert ids == [f"E{i}" for i in range(1, len(ids) + 1)]


def test_every_experiment_has_a_bench_file():
    for e in EXPERIMENTS:
        path = REPO / "benchmarks" / f"{e.bench_module}.py"
        assert path.exists(), f"{e.exp_id} bench missing: {path}"


def test_every_bench_file_is_registered():
    registered = {e.bench_module for e in EXPERIMENTS}
    on_disk = {
        p.stem
        for p in (REPO / "benchmarks").glob("test_e*.py")
    }
    assert on_disk == registered


def test_experiments_documented():
    design = (REPO / "DESIGN.md").read_text()
    experiments_md = (REPO / "EXPERIMENTS.md").read_text()
    for e in EXPERIMENTS:
        assert f"| {e.exp_id} " in design, f"{e.exp_id} missing from DESIGN.md §4"
        assert f"## {e.exp_id} " in experiments_md, f"{e.exp_id} missing from EXPERIMENTS.md"


def test_lookup_helpers():
    assert experiment("E4").paper_ref.startswith("Thm 3.8")
    assert bench_module_name("E12") == "test_e12_reduction_paths"
    with pytest.raises(KeyError):
        experiment("E99")
