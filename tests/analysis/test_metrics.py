"""Measurement helpers."""

import numpy as np
import pytest

from repro.analysis.metrics import hop_limited_stretch, loglog_slope, stretch_stats
from repro.graphs.generators import path_graph


def test_stretch_stats_basic():
    exact = np.array([1.0, 2.0, 4.0])
    approx = np.array([1.0, 3.0, 4.0])
    s = stretch_stats(exact, approx)
    assert s.max == 1.5
    assert s.pairs == 3
    assert not s.diverged


def test_stretch_stats_ignores_zero_and_inf_exact():
    exact = np.array([0.0, np.inf, 2.0])
    approx = np.array([0.0, np.inf, 2.0])
    s = stretch_stats(exact, approx)
    assert s.pairs == 1 and s.max == 1.0


def test_stretch_stats_detects_divergence():
    exact = np.array([1.0, 2.0])
    approx = np.array([1.0, np.inf])
    s = stretch_stats(exact, approx)
    assert s.diverged and s.max == np.inf and s.unreached == 1


def test_stretch_stats_shape_mismatch():
    with pytest.raises(ValueError):
        stretch_stats(np.ones(2), np.ones(3))


def test_stretch_stats_matrix_input():
    exact = np.ones((2, 3))
    approx = np.full((2, 3), 1.2)
    assert stretch_stats(exact, approx).max == pytest.approx(1.2)


def test_hop_limited_stretch_on_path():
    g = path_graph(10, weight=1.0)
    full = hop_limited_stretch(g, hops=9, sources=[0])
    assert full.max == 1.0
    short = hop_limited_stretch(g, hops=3, sources=[0])
    assert short.diverged


def test_loglog_slope_linear_and_quadratic():
    xs = [10.0, 100.0, 1000.0]
    assert loglog_slope(xs, [2 * x for x in xs]) == pytest.approx(1.0)
    assert loglog_slope(xs, [x * x for x in xs]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        loglog_slope([1.0], [1.0])
