"""Table rendering."""

from repro.analysis.tables import format_value, render_table


def test_format_value_variants():
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(3) == "3"
    assert format_value(1.5) == "1.5"
    assert format_value(float("inf")) == "inf"
    assert format_value(float("nan")) == "-"
    assert "e" in format_value(1.23e9)
    assert "e" in format_value(1.23e-7)


def test_render_table_alignment():
    out = render_table("T", ["a", "long_header"], [[1, 2.0], [333, 4]])
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1] == "="
    header = lines[2]
    assert "a" in header and "long_header" in header
    # all rows share a width
    widths = {len(line) for line in lines[2:]}
    assert len(widths) <= 2  # header/rows may differ only by trailing spaces


def test_render_table_empty_rows():
    out = render_table("Empty", ["x"], [])
    assert "Empty" in out and "x" in out
