"""Δ-stepping baseline."""

import numpy as np
import pytest

from repro.baselines.delta_stepping import delta_stepping
from repro.graphs.distances import dijkstra
from repro.graphs.errors import VertexError
from repro.graphs.generators import erdos_renyi, layered_hop_graph, path_graph
from repro.pram.machine import PRAM


def test_exact_on_random_graphs():
    for seed in (1, 2, 3):
        g = erdos_renyi(40, 0.12, seed=seed, w_range=(1.0, 5.0))
        res = delta_stepping(PRAM(), g, 0)
        assert np.allclose(res.dist, dijkstra(g, 0))


def test_exact_across_delta_choices():
    g = erdos_renyi(30, 0.15, seed=4, w_range=(1.0, 4.0))
    exact = dijkstra(g, 0)
    for d in (0.5, 1.0, 4.0, 100.0):
        res = delta_stepping(PRAM(), g, 0, delta=d)
        assert np.allclose(res.dist, exact), f"delta={d}"


def test_disconnected():
    from repro.graphs.build import from_edges

    g = from_edges(4, [(0, 1, 1.0)])
    res = delta_stepping(PRAM(), g, 0)
    assert res.dist[2] == np.inf


def test_small_delta_many_buckets_large_delta_few():
    g = path_graph(30, w_range=(1.0, 2.0), seed=5)
    small = delta_stepping(PRAM(), g, 0, delta=0.5)
    large = delta_stepping(PRAM(), g, 0, delta=100.0)
    assert small.buckets_processed > large.buckets_processed
    assert np.allclose(small.dist, large.dist)


def test_depth_scales_with_weighted_depth():
    """On a long unit path, Δ-stepping needs Θ(n) phases (the E16 story)."""
    g = path_graph(64, weight=1.0)
    pram = PRAM()
    res = delta_stepping(pram, g, 0, delta=1.0)
    assert res.phases >= 30  # cannot shortcut the chain


def test_validation():
    g = path_graph(5)
    with pytest.raises(VertexError):
        delta_stepping(PRAM(), g, 9)
    with pytest.raises(VertexError):
        delta_stepping(PRAM(), g, 0, delta=0.0)


def test_empty_graph():
    from repro.graphs.build import from_edges

    g = from_edges(3, [])
    res = delta_stepping(PRAM(), g, 1)
    assert res.dist[1] == 0.0 and np.all(~np.isfinite(np.delete(res.dist, 1)))


def test_layered_graph_exactness():
    g = layered_hop_graph(12, 3, seed=6)
    res = delta_stepping(PRAM(), g, 0)
    assert np.allclose(res.dist, dijkstra(g, 0))
