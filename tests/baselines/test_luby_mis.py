"""Luby's randomized MIS (the [Lub86] symmetry-breaking root)."""

import numpy as np

from repro.baselines.luby_mis import is_maximal_independent_set, luby_mis
from repro.graphs.generators import complete_graph, erdos_renyi, path_graph, star_graph
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2


def test_mis_valid_on_random_graphs():
    for seed in range(4):
        g = erdos_renyi(50, 0.1, seed=seed)
        mask, rounds = luby_mis(PRAM(), g, seed=seed)
        assert is_maximal_independent_set(g, mask)


def test_mis_on_complete_graph_is_singleton():
    g = complete_graph(12, seed=1)
    mask, _ = luby_mis(PRAM(), g, seed=2)
    assert mask.sum() == 1
    assert is_maximal_independent_set(g, mask)


def test_mis_on_star_center_or_all_leaves():
    g = star_graph(10)
    mask, _ = luby_mis(PRAM(), g, seed=3)
    assert is_maximal_independent_set(g, mask)
    assert (mask[0] and mask.sum() == 1) or (not mask[0] and mask[1:].all())


def test_mis_on_edgeless_graph_is_everything():
    from repro.graphs.build import from_edges

    g = from_edges(5, [])
    mask, rounds = luby_mis(PRAM(), g, seed=4)
    assert mask.all()


def test_rounds_logarithmic_in_practice():
    g = erdos_renyi(200, 0.05, seed=5)
    _, rounds = luby_mis(PRAM(), g, seed=6)
    assert rounds <= 4 * (ceil_log2(200) + 1)


def test_mis_varies_with_seed_but_reproducible():
    g = erdos_renyi(60, 0.1, seed=7)
    a, _ = luby_mis(PRAM(), g, seed=1)
    b, _ = luby_mis(PRAM(), g, seed=1)
    assert np.array_equal(a, b)
    results = {tuple(luby_mis(PRAM(), g, seed=s)[0].tolist()) for s in range(6)}
    assert len(results) > 1


def test_mis_is_a_2_1_ruling_set():
    """An MIS rules at distance 1 and is 2-separated — the ruling-set root."""
    g = path_graph(20)
    mask, _ = luby_mis(PRAM(), g, seed=8)
    sel = np.flatnonzero(mask)
    for a, b in zip(sel, sel[1:]):
        assert b - a >= 2  # 2-separation on a path
    assert is_maximal_independent_set(g, mask)


def test_independence_checker_rejects_bad_sets():
    g = path_graph(4)
    assert not is_maximal_independent_set(g, np.array([True, True, False, False]))
    assert not is_maximal_independent_set(g, np.array([True, False, False, False]))
    assert is_maximal_independent_set(g, np.array([True, False, True, False]))
