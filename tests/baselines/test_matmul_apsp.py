"""Min-plus squaring APSP strawman."""

import numpy as np

from repro.baselines.matmul_apsp import minplus_apsp
from repro.graphs.distances import all_pairs_dijkstra
from repro.graphs.generators import erdos_renyi, path_graph
from repro.pram.machine import PRAM


def test_matches_dijkstra():
    g = erdos_renyi(20, 0.15, seed=95, w_range=(1.0, 3.0))
    got = minplus_apsp(PRAM(), g)
    assert np.allclose(got, all_pairs_dijkstra(g))


def test_disconnected_infinities():
    from repro.graphs.build import from_edges

    g = from_edges(4, [(0, 1, 1.0), (2, 3, 2.0)])
    d = minplus_apsp(PRAM(), g)
    assert d[0, 3] == np.inf and d[0, 1] == 1.0


def test_cubic_work_charged():
    pram = PRAM()
    g = path_graph(32, weight=1.0)
    minplus_apsp(pram, g)
    # log2(32)=5 squarings needed for a 31-hop path → ~5·n³ work
    assert pram.cost.work >= 32**3
    assert pram.cost.depth <= 100  # polylog depth


def test_work_dwarfs_hopset_pipeline():
    """E9's claim in miniature: n³ ≫ hopset work on sparse graphs."""
    from repro.hopsets.multi_scale import build_hopset
    from repro.hopsets.params import HopsetParams

    g = path_graph(128, weight=1.0)
    p_mat, p_hop = PRAM(), PRAM()
    minplus_apsp(p_mat, g)
    build_hopset(g, HopsetParams(beta=6), p_hop)
    # the crossover lands well below n=128 on sparse graphs
    assert p_mat.cost.work > p_hop.cost.work
