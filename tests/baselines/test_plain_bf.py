"""Hopset-less Bellman–Ford baseline."""

import numpy as np

from repro.baselines.plain_bellman_ford import plain_sssp, plain_sssp_budgeted
from repro.graphs.distances import dijkstra
from repro.graphs.generators import layered_hop_graph, path_graph
from repro.graphs.properties import hop_diameter
from repro.pram.machine import PRAM


def test_plain_sssp_exact():
    g = layered_hop_graph(8, 3, seed=81)
    res = plain_sssp(PRAM(), g, 0)
    assert np.allclose(res.dist, dijkstra(g, 0))


def test_budgeted_diverges_below_hop_diameter():
    g = path_graph(30, weight=1.0)
    res = plain_sssp_budgeted(PRAM(), g, 0, hops=5)
    assert np.isfinite(res.dist[5])
    assert not np.isfinite(res.dist[20])  # beyond the budget


def test_plain_depth_scales_with_hop_diameter():
    shallow = layered_hop_graph(4, 8, seed=82)
    deep = layered_hop_graph(32, 1, seed=82)
    p1, p2 = PRAM(), PRAM()
    r1 = plain_sssp(p1, shallow, 0)
    r2 = plain_sssp(p2, deep, 0)
    assert hop_diameter(deep) > hop_diameter(shallow)
    assert r2.rounds_used > r1.rounds_used


def test_budgeted_does_not_early_exit():
    g = path_graph(5, weight=1.0)
    res = plain_sssp_budgeted(PRAM(), g, 0, hops=50)
    assert res.rounds_used == 50
