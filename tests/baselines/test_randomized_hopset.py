"""The sampling-based randomized baseline (E5's comparison subject)."""

import numpy as np

from repro.baselines.randomized_hopset import build_randomized_hopset
from repro.graphs.distances import dijkstra
from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.hopsets.verification import certify


def test_randomized_hopset_is_safe():
    g = erdos_renyi(30, 0.12, seed=91, w_range=(1.0, 3.0))
    for seed in (0, 1, 2):
        H = build_randomized_hopset(g, HopsetParams(beta=6), seed=seed)
        cert = certify(g, H, beta=g.n - 1, epsilon=100.0)
        assert cert.safe


def test_randomized_output_varies_across_seeds():
    g = erdos_renyi(40, 0.12, seed=92)
    params = HopsetParams(beta=6)
    keysets = set()
    for seed in range(5):
        H = build_randomized_hopset(g, params, seed=seed)
        keysets.add(tuple(sorted((e.u, e.v, round(e.weight, 6)) for e in H.edges)))
    assert len(keysets) > 1, "sampling should produce different hopsets"


def test_deterministic_construction_does_not_vary():
    g = erdos_renyi(40, 0.12, seed=92)
    params = HopsetParams(beta=6)
    keysets = set()
    for _ in range(3):
        H, _ = build_hopset(g, params)
        keysets.add(tuple(sorted((e.u, e.v, round(e.weight, 6)) for e in H.edges)))
    assert len(keysets) == 1


def test_same_seed_reproducible():
    g = erdos_renyi(30, 0.15, seed=93)
    a = build_randomized_hopset(g, HopsetParams(beta=6), seed=7)
    b = build_randomized_hopset(g, HopsetParams(beta=6), seed=7)
    ka = [(e.u, e.v, e.weight) for e in a.edges]
    kb = [(e.u, e.v, e.weight) for e in b.edges]
    assert ka == kb


def test_randomized_stretch_comparable_shape():
    """The deterministic hopset should match the randomized one's quality."""
    g = path_graph(40, w_range=(1.0, 2.0), seed=94)
    params = HopsetParams(epsilon=0.25, beta=8)
    det, _ = build_hopset(g, params)
    det_cert = certify(g, det, beta=17, epsilon=0.25)
    rand_best = min(
        certify(g, build_randomized_hopset(g, params, seed=s), beta=17, epsilon=0.25).max_stretch
        for s in range(3)
    )
    assert det_cert.max_stretch <= rand_best * 1.5 + 1e-9


def test_empty_graph():
    from repro.graphs.build import from_edges

    H = build_randomized_hopset(from_edges(3, []), HopsetParams(beta=4), seed=0)
    assert H.num_records == 0
