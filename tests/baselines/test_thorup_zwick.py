"""Thorup–Zwick hierarchy hopset baseline."""

import numpy as np
import pytest

from repro.baselines.thorup_zwick import build_tz_hopset
from repro.graphs.distances import dijkstra
from repro.graphs.errors import InvalidGraphError
from repro.graphs.generators import erdos_renyi, path_graph
from repro.hopsets.verification import certify


def test_tz_hopset_is_safe():
    g = erdos_renyi(30, 0.12, seed=901, w_range=(1.0, 3.0))
    for k in (2, 3):
        H = build_tz_hopset(g, k=k, seed=1)
        cert = certify(g, H, beta=g.n - 1, epsilon=1e6)
        assert cert.safe


def test_tz_weights_are_exact_distances():
    g = erdos_renyi(20, 0.2, seed=902)
    H = build_tz_hopset(g, k=2, seed=2)
    exact = {s: dijkstra(g, s) for s in range(g.n)}
    for e in H.edges:
        assert e.weight == pytest.approx(exact[e.u][e.v])


def test_tz_k1_is_complete_distance_graph():
    """k=1: A_1 = ∅, so every vertex bunches with everything — clique."""
    g = path_graph(8, weight=1.0)
    H = build_tz_hopset(g, k=1, seed=3)
    assert H.size() == 8 * 7 // 2
    cert = certify(g, H, beta=1, epsilon=0.0)
    assert cert.holds


def test_tz_size_shrinks_with_k():
    g = erdos_renyi(40, 0.15, seed=903)
    sizes = [build_tz_hopset(g, k=k, seed=4).size() for k in (1, 2, 3)]
    assert sizes[0] >= sizes[1] >= sizes[2] * 0.8  # stochastic but monotone-ish
    assert sizes[0] == 40 * 39 // 2


def test_tz_varies_with_seed_deterministic_per_seed():
    g = erdos_renyi(30, 0.15, seed=904)
    a = build_tz_hopset(g, k=2, seed=5)
    b = build_tz_hopset(g, k=2, seed=5)
    c = build_tz_hopset(g, k=2, seed=6)
    ka = [(e.u, e.v, e.weight) for e in a.edges]
    kb = [(e.u, e.v, e.weight) for e in b.edges]
    kc = [(e.u, e.v, e.weight) for e in c.edges]
    assert ka == kb
    assert ka != kc


def test_tz_small_hopbound_on_deep_graph():
    """Bunch edges shortcut the path graph to a few hops."""
    from repro.hopsets.verification import achieved_hopbound

    g = path_graph(24, weight=1.0)
    H = build_tz_hopset(g, k=2, seed=7)
    hb = achieved_hopbound(g, H, epsilon=0.5, max_hops=23)
    assert hb < 23


def test_tz_validation_and_trivial():
    from repro.graphs.build import from_edges

    with pytest.raises(InvalidGraphError):
        build_tz_hopset(path_graph(4), k=0)
    H = build_tz_hopset(from_edges(3, []), k=2)
    assert H.num_records == 0
