"""Differential matrix: sharded backend vs serial vs fused, bit-for-bit.

The execution-backend contract (docs/backends.md) is that a backend may
change **only wall-clock**: distances, parents, round counts, and the
entire charged cost stream must be bit-identical to the serial path.
This matrix pins that over the conformance smoke families × single/multi
sources × early-exit, for worker counts W ∈ {1, 2, 4} (W=1 exercises the
IPC plumbing with no combine; W>1 exercises straddling-segment combines).
``min_arcs=1`` forces every dense round through the pool — the smoke
graphs are far below the production threshold.

A second block checks the shadowed path: when write footprints are
wanted (a race detector is attached), rounds run in-process by design,
still bit-exactly and with zero findings.
"""

import numpy as np
import pytest

from repro.conformance.diff import SMOKE_FAMILIES
from repro.conformance.shadow import ShadowCREW
from repro.pram.backends import SerialBackend, ShardedBackend
from repro.pram.cost import CostModel
from repro.pram.machine import PRAM
from repro.pram.workspace import Workspace
from repro.sssp.bellman_ford import bellman_ford

_N = 24
_SEED = 7
_BETA = 8
_WIDTHS = (1, 2, 4)


@pytest.fixture(scope="module")
def pools():
    """One pool per width for the whole module — spawn cost paid once."""
    backends = {w: ShardedBackend(workers=w, min_arcs=1) for w in _WIDTHS}
    yield backends
    for be in backends.values():
        be.close()


def _run(graph, sources, hops, early_exit, engine, backend, fused=None):
    pram = PRAM(CostModel(), workspace=Workspace(), backend=backend)
    res = bellman_ford(
        pram, graph, sources, hops,
        early_exit=early_exit, engine=engine, fused=fused,
    )
    return res, pram.cost


@pytest.mark.parametrize("engine", ["dense", "auto"])
@pytest.mark.parametrize(
    "early_exit", [True, False], ids=["early-exit", "fixed-budget"]
)
@pytest.mark.parametrize(
    "multi", [False, True], ids=["single-source", "multi-source"]
)
@pytest.mark.parametrize("family", sorted(SMOKE_FAMILIES))
def test_sharded_matches_serial_bit_exactly(pools, family, multi, early_exit, engine):
    g = SMOKE_FAMILIES[family](_N, _SEED)
    sources = np.array([0, g.n // 2, g.n - 1], dtype=np.int64) if multi else 0
    base, base_cost = _run(g, sources, _BETA, early_exit, engine, SerialBackend())
    fused, fused_cost = _run(g, sources, _BETA, early_exit, engine, SerialBackend(), fused=True)
    for w in _WIDTHS:
        be = pools[w]
        res, cost = _run(g, sources, _BETA, early_exit, engine, be)
        assert not be.failed, be.failure_reason
        for other in (base, fused):
            assert np.array_equal(other.dist, res.dist), w
            assert np.array_equal(other.parent, res.parent), w
            assert other.rounds_used == res.rounds_used, w
        # the charged stream is backend-invariant, bit-equal not just close
        assert (cost.work, cost.depth) == (base_cost.work, base_cost.depth), w
        assert (cost.work, cost.depth) == (fused_cost.work, fused_cost.depth), w
        assert dict(cost.phase_totals) == dict(base_cost.phase_totals), w


@pytest.mark.parametrize("family", sorted(SMOKE_FAMILIES))
def test_sharded_under_shadow_runs_clean(pools, family):
    """Footprint-wanting rounds run in-process — same bits, zero findings."""
    g = SMOKE_FAMILIES[family](_N, _SEED)
    base, base_cost = _run(g, 0, _BETA, True, "auto", SerialBackend())
    be = pools[2]
    before = be.sharded_rounds
    pram = PRAM(CostModel(), workspace=Workspace(), backend=be)
    shadow = ShadowCREW.attach(pram.cost, strict=True, mode="record")
    res = bellman_ford(pram, g, 0, _BETA, engine="auto")
    shadow.detach(pram.cost)
    assert be.sharded_rounds == before  # shadowed rounds stayed in-process
    assert np.array_equal(base.dist, res.dist)
    assert np.array_equal(base.parent, res.parent)
    assert (pram.cost.work, pram.cost.depth) == (base_cost.work, base_cost.depth)
    assert shadow.clean, [f.kind for f in shadow.findings]


def test_sharded_full_query_pipeline_matches(pools):
    """Hopset build + SSSP with a sharded machine: bit-equal end to end."""
    from repro.hopsets.params import HopsetParams
    from repro.sssp.sssp import approximate_sssp

    g = SMOKE_FAMILIES["layered"](_N, _SEED)
    params = HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8)
    outs = {}
    for label, backend in (("serial", SerialBackend()), ("sharded", pools[2])):
        pram = PRAM(backend=backend)
        r = approximate_sssp(g, 0, params, pram)
        outs[label] = (r.dist, r.parent, r.rounds_used, pram.cost.work, pram.cost.depth)
    assert np.array_equal(outs["serial"][0], outs["sharded"][0])
    assert np.array_equal(outs["serial"][1], outs["sharded"][1])
    assert outs["serial"][2:] == outs["sharded"][2:]
