"""Build-conformance differential matrix: fused hopset construction.

The fused build kernels (``pprune_entries`` / ``paggregate_entries``, the
grouped staged-minimum replacements for Algorithm 3's multi-key lexsorts)
and the build-phase backend seam (``ExecutionBackend.entry_segmin``)
promise to be *observationally identical* to the unfused sort path —
bit-identical hopset edge sets, bit-identical charged work/depth/phase
totals — differing only in wall-clock.  This matrix pins that promise
over fused × unfused × backend (serial, sharded W ∈ {1, 2}) × graph
families × parameter points, with the same hostile twists as the SSSP
fused matrix:

* the fused side runs with a **poisoned** buffer pool, so a kernel that
  reads a pooled cell before writing it produces loudly wrong output;
* both sides run under a **strict** :class:`ShadowCREW`, so every round
  of the build must stay CREW-legal while the kernels are swapped;
* the sharded backends run with ``min_arcs=1`` / ``min_entry_rows=1``,
  forcing every relaxation and every entry reduction through the worker
  pool and its fixed-shard-order combines.
"""

import numpy as np
import pytest

from repro.conformance.diff import SMOKE_FAMILIES
from repro.conformance.shadow import ShadowCREW
from repro.hopsets.multi_scale import build_hopset
from repro.hopsets.params import HopsetParams
from repro.pram.backends.sharded import ShardedBackend
from repro.pram.machine import PRAM
from repro.pram.primitives import build_relax_plan, build_relax_plan_from_csr
from repro.pram.workspace import Workspace

_N = 24
_SEED = 7

#: Parameter points: kappa=2 drives the x == 1 prune path, kappa=3 the
#: x > 1 rank-selection path (and the aggregation keeps x sources).
_POINTS = {
    "k2": HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8),
    "k3": HopsetParams(epsilon=0.25, kappa=3, rho=0.45, beta=8),
}

_FAMILIES = sorted(SMOKE_FAMILIES)


def _edge_key(e):
    return (e.u, e.v, e.weight, e.scale, e.phase, e.kind, e.path)


def _build(graph, params, fused, monkeypatch, backend=None):
    monkeypatch.setenv("REPRO_FUSED_BUILD", "1" if fused else "0")
    pram = PRAM(workspace=Workspace(poison=fused), backend=backend)
    shadow = ShadowCREW.attach(pram.cost, strict=True, mode="record")
    try:
        hopset, report = build_hopset(graph, params, pram=pram)
    finally:
        shadow.detach(pram.cost)
    return hopset, report, pram.cost, shadow


@pytest.fixture(scope="module")
def sharded_pools():
    """Worker pools shared by the whole matrix (spawning one per case
    would dominate the runtime); every round is forced through them."""
    pools = {
        w: ShardedBackend(workers=w, min_arcs=1, min_entry_rows=1)
        for w in (1, 2)
    }
    yield pools
    for be in pools.values():
        be.close()


_BASELINES: dict = {}


def _baseline(family, point, monkeypatch):
    key = (family, point)
    if key not in _BASELINES:
        g = SMOKE_FAMILIES[family](_N, _SEED)
        _BASELINES[key] = (g, _build(g, _POINTS[point], False, monkeypatch))
    return _BASELINES[key]


@pytest.mark.parametrize("backend_spec", ["serial", "sharded:1", "sharded:2"])
@pytest.mark.parametrize("point", sorted(_POINTS))
@pytest.mark.parametrize("family", _FAMILIES)
def test_build_fused_matches_unfused_bit_exactly(
    family, point, backend_spec, sharded_pools, monkeypatch
):
    g, (h0, r0, c0, s0) = _baseline(family, point, monkeypatch)
    backend = (
        None
        if backend_spec == "serial"
        else sharded_pools[int(backend_spec.split(":")[1])]
    )
    h1, r1, c1, s1 = _build(g, _POINTS[point], True, monkeypatch, backend=backend)
    assert sorted(map(_edge_key, h1.edges)) == sorted(map(_edge_key, h0.edges))
    assert (c1.work, c1.depth) == (c0.work, c0.depth)
    assert dict(c1.phase_totals) == dict(c0.phase_totals)
    assert (r1.scales, r1.per_scale_edges) == (r0.scales, r0.per_scale_edges)
    assert s0.clean, [f.kind for f in s0.findings]
    assert s1.clean, [f.kind for f in s1.findings]
    if backend is not None:
        assert not backend.failed, backend.failure_reason


def test_sharded_entry_rounds_actually_engage(sharded_pools, monkeypatch):
    """The forced-engagement pools must route entry reductions through
    the workers — otherwise the matrix silently tests serial twice."""
    be = sharded_pools[2]
    before = be.sharded_entry_rounds
    g = SMOKE_FAMILIES["er"](_N, _SEED)
    _build(g, _POINTS["k3"], True, monkeypatch, backend=be)
    assert be.sharded_entry_rounds > before
    assert not be.failed


def test_build_toggle_is_independent_from_query_toggle(monkeypatch):
    """All four (REPRO_FUSED, REPRO_FUSED_BUILD) combinations agree."""
    g = SMOKE_FAMILIES["layered"](_N, _SEED)
    outs = {}
    for q in ("1", "0"):
        for b in ("1", "0"):
            monkeypatch.setenv("REPRO_FUSED", q)
            monkeypatch.setenv("REPRO_FUSED_BUILD", b)
            pram = PRAM()
            h, _ = build_hopset(g, _POINTS["k3"], pram=pram)
            outs[(q, b)] = (
                sorted(map(_edge_key, h.edges)), pram.cost.work, pram.cost.depth
            )
    base = outs[("1", "1")]
    assert all(v == base for v in outs.values())


def test_path_recording_build_keeps_sort_path(monkeypatch):
    """Path-recording tables must bypass the fused kernels (path tuples
    are selected by sorted row position) — and stay bit-identical under
    both toggle settings."""
    from repro.hopsets.path_reporting import build_path_reporting_hopset

    g = SMOKE_FAMILIES["grid"](_N, _SEED)
    results = []
    for flag in ("1", "0"):
        monkeypatch.setenv("REPRO_FUSED_BUILD", flag)
        pram = PRAM()
        h, _ = build_path_reporting_hopset(g, _POINTS["k3"], pram)
        results.append((sorted(map(_edge_key, h.edges)), pram.cost.work))
    assert results[0] == results[1]
    paths = [e.path for e in h.edges]
    assert paths and all(p is not None for p in paths)


@pytest.mark.parametrize("family", _FAMILIES)
def test_csr_plan_matches_argsort_plan(family):
    """The sort-free CSR plan derivation is array-for-array equal to the
    stable-argsort builder (the per-scale plan cache relies on it)."""
    g = SMOKE_FAMILIES[family](_N, _SEED)
    tails, heads, weights = g.arcs()
    p0 = build_relax_plan(tails, heads, weights, n_cells=g.n)
    p1 = build_relax_plan_from_csr(g)
    assert (p0.n_arcs, p0.n_cells) == (p1.n_arcs, p1.n_cells)
    for name in ("tails_s", "heads_s", "weights_s", "cells", "seg_start", "seg_id"):
        assert np.array_equal(getattr(p0, name), getattr(p1, name)), name


def test_workspace_degree_cache_is_identity_keyed():
    g1 = SMOKE_FAMILIES["er"](_N, _SEED)
    g2 = SMOKE_FAMILIES["er"](_N, _SEED + 1)
    ws = Workspace()
    d1 = ws.csr_degrees(g1)
    assert ws.csr_degrees(g1) is d1  # cached
    assert np.array_equal(d1, np.diff(g1.indptr))
    assert not np.array_equal(ws.csr_degrees(g2), d1) or g1.num_edges == g2.num_edges
    ws.clear()
    assert ws.csr_degrees(g1) is not d1
