"""End-to-end CLI: ``python -m repro conformance`` sweeps and reports."""

import json

from repro.cli import main


def test_conformance_cli_passes_strict(tmp_path, capsys):
    trace = tmp_path / "conf.json"
    rc = main([
        "conformance", "--strict", "--seed", "7", "--n", "16",
        "--families", "er,path", "--trace-out", str(trace),
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "PASS" in out
    assert "primitive differential" in out
    assert "smoke graphs" in out
    payload = json.loads(trace.read_text())
    conf = payload["otherData"]["conformance"]
    assert conf["clean"] is True
    assert conf["primitives"]["passed"] == conf["primitives"]["cases"]
    assert {g["family"] for g in conf["graphs"]} == {"er", "path"}
    assert conf["shadow"]["strict"] is True


def test_conformance_cli_default_common_mode(capsys):
    rc = main(["conformance", "--n", "12", "--families", "er"])
    assert rc == 0
    assert "(common)" in capsys.readouterr().out


def test_conformance_cli_unknown_family(capsys):
    assert main(["conformance", "--families", "nope"]) == 2
