"""Every public primitive × every adversarial input case, vectorized vs
literal CREW, bit-exact, under the strict shadow detector."""

import numpy as np
import pytest

from repro.conformance.diff import (
    PRIMITIVE_CASES,
    PRIMITIVE_DIFFS,
    DiffOutcome,
    diff_sssp,
    run_primitive_diffs,
)
from repro.pram.machine import PRAM
from repro.pram.reference import crew_sssp

_MATRIX = [
    (name, case) for name in PRIMITIVE_DIFFS for case in PRIMITIVE_CASES
]


@pytest.mark.parametrize("name,case", _MATRIX)
def test_primitive_case_strict(name, case):
    out = PRIMITIVE_DIFFS[name](case, 11, True)
    assert isinstance(out, DiffOutcome)
    assert out.outputs_equal, f"{name}/{case}: outputs differ ({out.detail})"
    assert out.rounds_ok, (
        f"{name}/{case}: round envelope violated "
        f"(vec depth {out.vec_depth}, lit rounds {out.lit_rounds})"
    )
    assert out.races == 0, f"{name}/{case}: {out.races} race findings"
    assert out.ok


@pytest.mark.parametrize("name,case", _MATRIX)
def test_primitive_case_common(name, case):
    assert PRIMITIVE_DIFFS[name](case, 23, False).ok


def test_run_primitive_diffs_covers_full_matrix():
    outs = run_primitive_diffs(seed=5, strict=True)
    assert len(outs) == len(PRIMITIVE_DIFFS) * len(PRIMITIVE_CASES)
    assert all(o.ok for o in outs)
    covered = {(o.primitive, o.case) for o in outs}
    # scatter's strict all-ties case reports under its own primitive name
    assert len(covered) == len(outs)


def test_sssp_diff_is_bit_exact(small_er):
    pram = PRAM()
    dist_equal, rounds_ok, vec_rounds, lit_rounds = diff_sssp(small_er, 0, pram)
    assert dist_equal and rounds_ok
    assert lit_rounds == vec_rounds + 1  # the literal side pays one load round


def test_sssp_diff_disconnected_inf_agreement():
    # a graph the sweep's geometric family can produce: unreachable vertices
    from repro.graphs.build import from_edges

    g = from_edges(6, [(0, 1, 2.0), (1, 2, 1.0), (4, 5, 3.0)])
    pram = PRAM()
    dist_equal, rounds_ok, _, _ = diff_sssp(g, 0, pram)
    assert dist_equal and rounds_ok
    lit, _ = crew_sssp(g, 0)
    assert np.isinf(lit[3]) and np.isinf(lit[4])
