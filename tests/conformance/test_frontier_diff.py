"""Differential matrix: sparse-frontier vs dense Bellman–Ford.

The frontier engine (``repro.pram.frontier``) promises bit-exact
``dist``/``parent``/``rounds_used`` agreement with the dense schedule on
every input — this matrix pins that promise over the adversarial graph
families of the conformance harness, crossed with single/multi sources,
early-exit on/off, and hop budgets 0/1/β.  The sparse and auto runs
execute under a strict :class:`ShadowCREW`, so any CREW-illegal write of
the gather/select/relax pipeline fails the matrix too; the forced-sparse
engine must additionally never charge more work than dense.
"""

import numpy as np
import pytest

from repro.conformance.diff import SMOKE_FAMILIES
from repro.conformance.shadow import ShadowCREW
from repro.pram.machine import PRAM
from repro.sssp.bellman_ford import bellman_ford

_N = 24
_SEED = 7
_BETA = 8  # the smoke-params hop budget (HopsetParams(beta=8))


def _run(graph, sources, hops, early_exit, engine, strict=False):
    pram = PRAM()
    shadow = ShadowCREW.attach(pram.cost, strict=strict, mode="record")
    res = bellman_ford(
        pram, graph, sources, hops, early_exit=early_exit, engine=engine
    )
    shadow.detach(pram.cost)
    return res, pram.cost, shadow


@pytest.mark.parametrize("hops", [0, 1, _BETA], ids=lambda h: f"hops{h}")
@pytest.mark.parametrize(
    "early_exit", [True, False], ids=["early-exit", "fixed-budget"]
)
@pytest.mark.parametrize(
    "multi", [False, True], ids=["single-source", "multi-source"]
)
@pytest.mark.parametrize("family", sorted(SMOKE_FAMILIES))
def test_sparse_matches_dense_bit_exactly(family, multi, early_exit, hops):
    g = SMOKE_FAMILIES[family](_N, _SEED)
    sources = np.array([0, g.n // 2, g.n - 1], dtype=np.int64) if multi else 0
    dense, dense_cost, _ = _run(g, sources, hops, early_exit, "dense")
    for engine in ("sparse", "auto"):
        res, cost, shadow = _run(g, sources, hops, early_exit, engine, strict=True)
        assert np.array_equal(dense.dist, res.dist), engine
        assert np.array_equal(dense.parent, res.parent), engine
        assert dense.rounds_used == res.rounds_used, engine
        assert shadow.clean, (engine, [f.kind for f in shadow.findings])
        if engine == "sparse":
            assert cost.work <= dense_cost.work


@pytest.mark.parametrize("family", sorted(SMOKE_FAMILIES))
def test_full_budget_sparse_saves_work(family):
    """With the full n−1 budget and no early exit, the savings are large."""
    g = SMOKE_FAMILIES[family](_N, _SEED)
    dense, dense_cost, _ = _run(g, 0, g.n - 1, False, "dense")
    res, cost, _ = _run(g, 0, g.n - 1, False, "sparse")
    assert np.array_equal(dense.dist, res.dist)
    assert dense.rounds_used == res.rounds_used == g.n - 1
    assert 2 * cost.work <= dense_cost.work
