"""Differential matrix: fused fast path vs the unfused primitive sequence.

The fused kernels (``prelax_arcs`` / ``pgather_add``) promise to be
*observationally identical* to the primitive sequences they replace —
bit-exact ``dist``/``parent``/``rounds_used``, bit-identical charged work
and depth — differing only in wall-clock.  This matrix pins that promise
over the same adversarial surface as the frontier matrix (graph families ×
single/multi sources × early-exit × hop budgets × engines), with two
hostile twists:

* the fused side runs with a **poisoned** buffer pool (every ``take``
  pre-fills its view with NaN / INT_POISON / True), so any kernel that
  reads a pooled cell before writing it produces loudly wrong output
  instead of silently reusing last round's value;
* the fused side runs under a **strict** :class:`ShadowCREW` with write
  footprints on, so its declared write-sets must be CREW-legal under the
  same rules the unfused primitives obey.

A second block does the same for a whole hopset build + SSSP query via the
``REPRO_FUSED`` environment toggle.
"""

import numpy as np
import pytest

from repro.conformance.diff import SMOKE_FAMILIES
from repro.conformance.shadow import ShadowCREW
from repro.pram.cost import CostModel
from repro.pram.machine import PRAM
from repro.pram.workspace import Workspace
from repro.sssp.bellman_ford import bellman_ford

_N = 24
_SEED = 7
_BETA = 8


def _run(graph, sources, hops, early_exit, engine, fused, strict=False):
    pram = PRAM(CostModel(), workspace=Workspace(poison=fused))
    shadow = ShadowCREW.attach(pram.cost, strict=strict, mode="record")
    res = bellman_ford(
        pram, graph, sources, hops,
        early_exit=early_exit, engine=engine, fused=fused,
    )
    shadow.detach(pram.cost)
    return res, pram.cost, shadow


@pytest.mark.parametrize("engine", ["dense", "sparse", "auto"])
@pytest.mark.parametrize("hops", [0, 1, _BETA], ids=lambda h: f"hops{h}")
@pytest.mark.parametrize(
    "early_exit", [True, False], ids=["early-exit", "fixed-budget"]
)
@pytest.mark.parametrize(
    "multi", [False, True], ids=["single-source", "multi-source"]
)
@pytest.mark.parametrize("family", sorted(SMOKE_FAMILIES))
def test_fused_matches_unfused_bit_exactly(family, multi, early_exit, hops, engine):
    g = SMOKE_FAMILIES[family](_N, _SEED)
    sources = np.array([0, g.n // 2, g.n - 1], dtype=np.int64) if multi else 0
    base, base_cost, _ = _run(g, sources, hops, early_exit, engine, fused=False)
    res, cost, shadow = _run(
        g, sources, hops, early_exit, engine, fused=True, strict=True
    )
    assert np.array_equal(base.dist, res.dist)
    assert np.array_equal(base.parent, res.parent)
    assert base.rounds_used == res.rounds_used
    # charged totals must be bit-equal, not just close
    assert (cost.work, cost.depth) == (base_cost.work, base_cost.depth)
    assert dict(cost.phase_totals) == dict(base_cost.phase_totals)
    assert shadow.clean, [f.kind for f in shadow.findings]


@pytest.mark.parametrize("family", sorted(SMOKE_FAMILIES))
def test_fused_pool_reuse_across_explorations_is_clean(family):
    """One poisoned Workspace shared across runs must never leak state."""
    g = SMOKE_FAMILIES[family](_N, _SEED)
    ws = Workspace(poison=True)
    base, _, _ = _run(g, 0, _BETA, True, "auto", fused=False)
    for trial in range(3):
        pram = PRAM(CostModel(), workspace=ws)
        res = bellman_ford(pram, g, 0, _BETA, engine="auto", fused=True)
        assert np.array_equal(base.dist, res.dist), trial
        assert np.array_equal(base.parent, res.parent), trial


def test_fused_env_toggle_end_to_end(monkeypatch):
    """REPRO_FUSED=0 flips every fused=None call site, bit-exactly."""
    from repro.hopsets.params import HopsetParams
    from repro.sssp.sssp import approximate_sssp

    g = SMOKE_FAMILIES["layered"](_N, _SEED)
    outs = {}
    for flag in ("1", "0"):
        monkeypatch.setenv("REPRO_FUSED", flag)
        pram = PRAM()
        r = approximate_sssp(g, 0, HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8), pram)
        outs[flag] = (r.dist, r.parent, r.rounds_used, pram.cost.work, pram.cost.depth)
    assert np.array_equal(outs["1"][0], outs["0"][0])
    assert np.array_equal(outs["1"][1], outs["0"][1])
    assert outs["1"][2:] == outs["0"][2:]
