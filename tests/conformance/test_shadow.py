"""The shadow detector itself: a deliberately racy program is rejected by
BOTH the literal ``CREWMemory`` and the vectorized machine under
``ShadowCREW``, and the finding lands in the obs trace/metrics."""

import numpy as np
import pytest

from repro.conformance.shadow import RaceFinding, ShadowCREW, shadowed
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer
from repro.pram.cost import RACE_TRAFFIC_PREFIX, CostModel
from repro.pram.errors import ShadowRaceError, WriteConflictError
from repro.pram.machine import PRAM
from repro.pram.memory import CREWMemory
from repro.pram.primitives import pscatter, scatter_min, scatter_min_arg
from repro.pram.reference import crew_scatter
from repro.pram.scan import prefix_sum


def _racy_pscatter(cost):
    """Two differing writes to target[3] in one round: the canonical race."""
    target = np.zeros(8)
    idx = np.asarray([3, 3], dtype=np.int64)
    vals = np.asarray([1.0, 2.0])
    return pscatter(cost, target, idx, vals)


# -- the regression pair: literal memory and shadow agree on rejection -------


def test_literal_memory_rejects_racy_program():
    with pytest.raises(WriteConflictError):
        crew_scatter([0.0] * 8, [3, 3], [1.0, 2.0])


def test_literal_memory_rejects_direct_double_write():
    mem = CREWMemory(4)
    mem.write(1, "a")
    with pytest.raises(WriteConflictError):
        mem.write(1, "b")


def test_shadow_raises_on_racy_program():
    pram = PRAM()
    with pytest.raises(ShadowRaceError, match=r"target\[3\]"):
        with shadowed(pram):
            _racy_pscatter(pram.cost)


def test_shadow_records_racy_program():
    cost = CostModel()
    shadow = ShadowCREW.attach(cost, mode="record")
    _racy_pscatter(cost)
    shadow.detach(cost)
    assert not shadow.clean
    (finding,) = shadow.findings
    assert isinstance(finding, RaceFinding)
    assert finding.kind == "write-conflict"
    assert finding.space == "target" and finding.cell == 3
    assert finding.values == (1.0, 2.0)
    assert "target[3]" in finding.describe()


def test_shadow_race_lands_in_obs_metrics_and_trace():
    # the finding must be visible to the observability layer: a
    # primitive.crew_race:* counter and an op on the enclosing span
    cost = CostModel()
    tracer = SpanTracer.attach(cost, root_name="racy")
    registry = MetricsRegistry.attach(cost)
    shadow = ShadowCREW.attach(cost, mode="record")
    with cost.phase("racy_phase"):
        _racy_pscatter(cost)
    shadow.detach(cost)
    root = tracer.finish()
    registry.detach(cost)

    race_label = RACE_TRAFFIC_PREFIX + "scatter"
    assert registry.counters[f"primitive.{race_label}.calls"].value >= 1
    span_labels = {
        label for span in root.walk() for label in span.ops
    }
    assert race_label in span_labels


# -- mode semantics ----------------------------------------------------------


def test_common_rule_tolerates_equal_writes_strict_rejects():
    idx = np.asarray([3, 3], dtype=np.int64)
    vals = np.asarray([5.0, 5.0])
    cost = CostModel()
    shadow = ShadowCREW.attach(cost, strict=False, mode="record")
    pscatter(cost, np.zeros(8), idx, vals)
    shadow.detach(cost)
    assert shadow.clean  # COMMON: equal concurrent writes commit

    cost = CostModel()
    shadow = ShadowCREW.attach(cost, strict=True, mode="record")
    pscatter(cost, np.zeros(8), idx, vals)
    shadow.detach(cost)
    assert [f.kind for f in shadow.findings] == ["strict-double-write"]


def test_strict_memory_matches_strict_shadow_on_equal_writes():
    # CREWMemory(strict=True) and ShadowCREW(strict=True) agree
    with pytest.raises(WriteConflictError):
        crew_scatter([0.0] * 8, [3, 3], [5.0, 5.0], strict=True)


def test_combining_primitives_stay_clean_in_strict_mode():
    idx = np.asarray([0, 0, 0, 1], dtype=np.int64)
    vals = np.asarray([3.0, 1.0, 2.0, 9.0])
    pram = PRAM()
    with shadowed(pram, strict=True) as shadow:
        scatter_min(pram.cost, np.full(4, 10.0), idx, vals)
        scatter_min_arg(
            pram.cost, np.full(4, 10.0), np.full(4, -1, dtype=np.int64),
            idx, vals, np.arange(4, dtype=np.int64),
        )
        prefix_sum(pram.cost, vals)
    assert shadow.clean


def test_scatter_min_arg_equal_key_ties_are_common_rule():
    # all updates tie at the minimum: the tie-set is declared "common", so
    # even strict mode accepts it (the satellite's tie-breaking contract)
    idx = np.full(6, 2, dtype=np.int64)
    vals = np.full(6, 1.0)
    payload_vals = np.asarray([9, 4, 7, 5, 8, 6], dtype=np.int64)
    pram = PRAM()
    with shadowed(pram, strict=True) as shadow:
        target, payload = scatter_min_arg(
            pram.cost, np.full(4, 10.0), np.full(4, -1, dtype=np.int64),
            idx, vals, payload_vals,
        )
    assert shadow.clean
    assert target[2] == 1.0
    assert payload[2] == 4  # lowest payload among the tied winners


def test_combine_depth_finding_on_undercharged_collision():
    # a fake primitive that collides 8 writes on one cell but charges depth
    # 1: the combine rule must flag it
    cost = CostModel()
    shadow = ShadowCREW.attach(cost, mode="record")
    cells = np.zeros(8, dtype=np.int64)
    cost.footprint("cheat", "out", cells, np.arange(8.0), rule="combine")
    cost.charge(work=8, depth=1, label="cheat")
    cost.commit_round("cheat")
    shadow.detach(cost)
    assert [f.kind for f in shadow.findings] == ["combine-depth"]


def test_detach_flushes_open_round():
    cost = CostModel()
    shadow = ShadowCREW.attach(cost, mode="record")
    cost.footprint("aborted", "t", np.asarray([1, 1]), np.asarray([1.0, 2.0]))
    shadow.detach(cost)  # no commit_round reached: detach must still check
    assert [f.kind for f in shadow.findings] == ["write-conflict"]


def test_summary_counts():
    cost = CostModel()
    shadow = ShadowCREW.attach(cost, strict=True, mode="record")
    prefix_sum(cost, np.arange(16.0))
    shadow.detach(cost)
    s = shadow.summary()
    assert s["clean"] and s["strict"]
    assert s["rounds_checked"] >= 1 and s["writes_checked"] >= 16


def test_no_footprint_overhead_without_detector():
    cost = CostModel()
    assert not cost.wants_footprints
    shadow = ShadowCREW.attach(cost)
    assert cost.wants_footprints
    shadow.detach(cost)
    assert not cost.wants_footprints
