"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import (
    erdos_renyi,
    grid_graph,
    layered_hop_graph,
    path_graph,
)
from repro.hopsets.params import HopsetParams
from repro.pram.machine import PRAM


@pytest.fixture
def pram() -> PRAM:
    return PRAM()


@pytest.fixture
def small_er():
    """Connected random graph, 40 vertices, mixed weights."""
    return erdos_renyi(40, 0.1, seed=101, w_range=(1.0, 4.0))


@pytest.fixture
def small_path():
    """Weighted path: the high-hop-diameter stress fixture."""
    return path_graph(32, w_range=(1.0, 3.0), seed=102)


@pytest.fixture
def small_grid():
    return grid_graph(6, 6, seed=103, w_range=(1.0, 2.0))


@pytest.fixture
def small_layered():
    return layered_hop_graph(8, 4, seed=104)


@pytest.fixture
def default_params() -> HopsetParams:
    return HopsetParams(epsilon=0.25, kappa=2, rho=0.4, beta=8)


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
