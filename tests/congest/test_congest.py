"""CONGEST simulator + distributed BFS / ruling sets."""

import numpy as np
import pytest

from repro.congest import (
    CongestError,
    CongestNetwork,
    distributed_bfs,
    distributed_ruling_set,
)
from repro.graphs.generators import cycle_graph, erdos_renyi, path_graph, star_graph
from repro.hopsets.clusters import Partition
from repro.hopsets.ruling_sets import ruling_set
from repro.pram.machine import PRAM
from repro.pram.primitives import ceil_log2


# ---------------------------------------------------------------------------
# the simulator itself
# ---------------------------------------------------------------------------


class _Gossip:
    """Every node forwards the max id it has seen (a legal algorithm)."""

    def init(self, node_id, neighbors):
        return {"id": node_id, "nbrs": neighbors, "best": node_id, "fresh": True}

    def step(self, state, inbox):
        for _, (val,) in inbox:
            if val > state["best"]:
                state["best"] = val
                state["fresh"] = True
        if state["fresh"]:
            state["fresh"] = False
            return {n: (state["best"],) for n in state["nbrs"]}, False
        return {}, True


class _Cheater(_Gossip):
    """Sends an over-wide payload — the network must reject it."""

    def step(self, state, inbox):
        return {n: tuple(range(99)) for n in state["nbrs"]}, False


class _Stranger(_Gossip):
    """Messages a non-neighbor."""

    def step(self, state, inbox):
        far = (state["id"] + 2) % 5
        return ({far: (1,)}, False) if far not in state["nbrs"] else ({}, True)


def test_gossip_converges_to_global_max():
    g = cycle_graph(9)
    net = CongestNetwork(g)
    states = net.run(_Gossip())
    assert all(s["best"] == 8 for s in states)
    assert net.rounds <= 9 + 2
    assert net.messages > 0


def test_bandwidth_enforced():
    with pytest.raises(CongestError):
        CongestNetwork(path_graph(4)).run(_Cheater())


def test_non_neighbor_messaging_rejected():
    with pytest.raises(CongestError):
        CongestNetwork(path_graph(5)).run(_Stranger())


def test_round_limit_enforced():
    class Forever(_Gossip):
        def step(self, state, inbox):
            return {n: (1,) for n in state["nbrs"]}, False

    with pytest.raises(CongestError):
        CongestNetwork(path_graph(4)).run(Forever(), max_rounds=5)


# ---------------------------------------------------------------------------
# distributed BFS
# ---------------------------------------------------------------------------


def test_bfs_levels_on_path():
    g = path_graph(7)
    levels, rounds, _ = distributed_bfs(g, np.array([0]))
    assert np.array_equal(levels, np.arange(7))
    assert rounds <= 7 + 2  # level flooding takes eccentricity rounds


def test_bfs_multi_source_nearest():
    g = path_graph(7)
    levels, _, _ = distributed_bfs(g, np.array([0, 6]))
    assert np.array_equal(levels, [0, 1, 2, 3, 2, 1, 0])


def test_bfs_star_is_constant_rounds():
    g = star_graph(20)
    levels, rounds, _ = distributed_bfs(g, np.array([0]))
    assert levels[0] == 0 and np.all(levels[1:] == 1)
    assert rounds <= 4


def test_bfs_matches_hop_oracle():
    from repro.graphs.distances import hop_limited_distances
    from repro.graphs.csr import Graph

    g = erdos_renyi(30, 0.12, seed=801)
    unit = Graph(g.n, g.edge_u, g.edge_v, np.ones(g.num_edges))
    levels, _, _ = distributed_bfs(g, np.array([3]))
    oracle = hop_limited_distances(unit, 3, g.n)
    expect = np.where(np.isfinite(oracle), oracle, -1).astype(np.int64)
    assert np.array_equal(levels, expect)


# ---------------------------------------------------------------------------
# distributed ruling sets
# ---------------------------------------------------------------------------


def check_properties(g, mask, candidates):
    from repro.graphs.distances import hop_limited_distances
    from repro.graphs.csr import Graph

    unit = Graph(g.n, g.edge_u, g.edge_v, np.ones(g.num_edges))
    sel = np.flatnonzero(mask)
    assert mask.any()
    for i, a in enumerate(sel):
        da = hop_limited_distances(unit, int(a), g.n)
        for b in sel[i + 1:]:
            assert not np.isfinite(da[b]) or da[b] >= 3
    bound = 2 * ceil_log2(max(g.n, 2))
    for c in np.flatnonzero(candidates):
        dc = hop_limited_distances(unit, int(c), g.n)
        dmin = min((dc[s] for s in sel if np.isfinite(dc[s])), default=np.inf)
        assert dmin <= bound


def test_distributed_ruling_set_properties():
    for make, seed in ((lambda: path_graph(16), 0),
                       (lambda: erdos_renyi(24, 0.15, seed=802), 0)):
        g = make()
        cands = np.ones(g.n, dtype=bool)
        mask, rounds, msgs = distributed_ruling_set(g, cands)
        check_properties(g, mask, cands)
        assert rounds <= 6 * ceil_log2(g.n) + 10  # O(log n) levels, O(1) each


def test_distributed_matches_pram_ruling_set():
    """The same derandomization object in both models: identical output."""
    for seed in (1, 2, 3):
        g = erdos_renyi(20, 0.2, seed=810 + seed, w_range=(1.0, 1.0))
        cands = np.ones(g.n, dtype=bool)
        dist_mask, _, _ = distributed_ruling_set(g, cands)
        pram_mask = ruling_set(
            PRAM(), g, Partition.singletons(g.n), cands, threshold=1.0, hops=1
        )
        assert np.array_equal(dist_mask, pram_mask), f"seed {seed}"


def test_distributed_ruling_subset_candidates():
    g = path_graph(12)
    cands = np.zeros(12, dtype=bool)
    cands[::3] = True
    mask, _, _ = distributed_ruling_set(g, cands)
    assert not np.any(mask & ~cands)
    check_properties(g, mask, cands)
