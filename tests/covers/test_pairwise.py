"""Pairwise covers: properties, and the cover-based hopset baseline."""

import numpy as np
import pytest

from repro.covers import build_cover_hopset, build_pairwise_cover, verify_cover
from repro.graphs.errors import InvalidGraphError
from repro.graphs.generators import erdos_renyi, grid_graph, path_graph
from repro.hopsets.verification import certify


def test_cover_properties_on_random_graph():
    g = erdos_renyi(30, 0.15, seed=701, w_range=(1.0, 3.0))
    for W in (2.0, 5.0):
        cover = build_pairwise_cover(g, W, rho=0.5)
        verify_cover(g, cover)  # raises on violation


def test_cover_properties_on_path():
    g = path_graph(24, weight=1.0)
    cover = build_pairwise_cover(g, W=3.0, rho=0.5)
    verify_cover(g, cover)
    # a path is sparse: radius stays within (1/rho + 1)·W
    assert cover.max_radius() <= (1 / 0.5 + 1) * 3.0 + 1e-9


def test_cover_radius_bound():
    """Region growing stops within ⌈1/ρ⌉ + 1 rings (the sparsity argument)."""
    for rho in (0.34, 0.5):
        g = erdos_renyi(40, 0.2, seed=702)
        cover = build_pairwise_cover(g, W=2.0, rho=rho)
        rings = int(np.ceil(1 / rho)) + 1
        assert cover.max_radius() <= rings * 2.0 + 1e-9


def test_cover_overlap_is_modest():
    g = grid_graph(6, 6)
    cover = build_pairwise_cover(g, W=2.0, rho=0.5)
    # overlap is bounded by ~n^rho (the region-growing charge argument);
    # on a 36-vertex grid that is 6, with small constants on top
    assert cover.max_overlap() <= 2 * int(36**0.5)


def test_every_vertex_covered():
    g = erdos_renyi(25, 0.2, seed=703)
    cover = build_pairwise_cover(g, W=1.5, rho=0.5)
    seen = set()
    for cl in cover.clusters:
        seen.update(int(v) for v in cl)
    assert seen == set(range(g.n))


def test_cover_deterministic():
    g = erdos_renyi(25, 0.2, seed=704)
    a = build_pairwise_cover(g, W=2.0, rho=0.5)
    b = build_pairwise_cover(g, W=2.0, rho=0.5)
    assert a.centers == b.centers
    assert all(np.array_equal(x, y) for x, y in zip(a.clusters, b.clusters))


def test_cover_validation():
    g = path_graph(5)
    with pytest.raises(InvalidGraphError):
        build_pairwise_cover(g, W=0.0)
    with pytest.raises(InvalidGraphError):
        build_pairwise_cover(g, W=1.0, rho=0.0)


def test_verify_cover_catches_missing_pair():
    from repro.covers.pairwise import PairwiseCover

    g = path_graph(4, weight=1.0)
    bad = PairwiseCover(
        W=1.0,
        clusters=[np.array([0, 1]), np.array([2, 3])],  # pair (1,2) uncovered
        centers=[0, 2],
        radius=[1.0, 1.0],
    )
    with pytest.raises(InvalidGraphError):
        verify_cover(g, bad)


def test_cover_hopset_is_safe_and_two_hop_covers_pairs():
    g = erdos_renyi(24, 0.15, seed=705, w_range=(1.0, 3.0))
    H, covers = build_cover_hopset(g, rho=0.5)
    cert = certify(g, H, beta=g.n - 1, epsilon=1e6)
    assert cert.safe
    # 2 hops through a shared cluster center reach every pair, with stretch
    # bounded by the cover radius ratio (O(1/rho), not 1+eps)
    cert2 = certify(g, H, beta=2, epsilon=1e6)
    assert cert2.pairs_within_eps == cert2.pairs_checked  # all pairs reached
    assert np.isfinite(cert2.max_stretch)


def test_cover_hopset_stretch_worse_than_ruling_set_hopset():
    """The E17 story in miniature: one-level covers trade stretch away."""
    from repro.hopsets.multi_scale import build_hopset
    from repro.hopsets.params import HopsetParams

    g = path_graph(32, w_range=(1.0, 2.0), seed=706)
    cover_h, _ = build_cover_hopset(g, rho=0.5)
    ours, _ = build_hopset(g, HopsetParams(epsilon=0.25, beta=8))
    c_cover = certify(g, cover_h, beta=17, epsilon=0.25)
    c_ours = certify(g, ours, beta=17, epsilon=0.25)
    assert c_ours.max_stretch <= c_cover.max_stretch + 1e-9
